#pragma once

// Local-search congestion minimization.
//
// The paper's congestion stretch is defined against C_G(R) — the *optimal*
// congestion of the routing problem on G — which is NP-hard in general.
// This module provides the practical baseline the experiments divide by
// when the optimum is not known analytically: start from a (randomized)
// shortest-path routing and iteratively reroute paths away from the most
// loaded nodes, optionally within a per-pair length budget.

#include "graph/graph.hpp"
#include "routing/routing.hpp"
#include "util/rng.hpp"

namespace dcs {

struct MinimizeCongestionOptions {
  std::uint64_t seed = 0;
  std::size_t max_rounds = 30;  ///< local-search sweeps over hot paths
  /// Per-pair length budget as a multiple of the shortest-path distance
  /// (Definition 3's α); 0 disables the length constraint.
  double stretch_budget = 0.0;
};

struct MinimizeCongestionResult {
  Routing routing;
  std::size_t initial_congestion = 0;
  std::size_t final_congestion = 0;
  std::size_t reroutes = 0;  ///< accepted path replacements
};

/// Approximates a minimum-congestion routing for `problem` on g.
MinimizeCongestionResult minimize_congestion(
    const Graph& g, const RoutingProblem& problem,
    const MinimizeCongestionOptions& options = {});

/// One building block, exposed for reuse and tests: a shortest path from s
/// to t that avoids (where possible) vertices whose load is ≥ `threshold`
/// (endpoints exempt). Returns an empty path if no such path exists.
Path load_avoiding_path(const Graph& g, Vertex s, Vertex t,
                        const std::vector<std::size_t>& load,
                        std::size_t threshold, Rng& rng);

}  // namespace dcs
