#include "routing/edge_coloring.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace dcs {

namespace {

constexpr int kUncolored = -1;

// Working state for Misra–Gries: at_[v][c] is the neighbor reached from v by
// the c-colored edge (kInvalidVertex if color c is free at v).
class Colorer {
 public:
  explicit Colorer(const Graph& g)
      : g_(g),
        palette_(static_cast<int>(g.max_degree()) + 1),
        at_(g.num_vertices(),
            std::vector<Vertex>(palette_, kInvalidVertex)) {}

  void run() {
    for (Edge e : g_.edges()) color_edge(e.u, e.v);
  }

  int color_of(Vertex u, Vertex v) const {
    const auto it = color_.find(edge_key(canonical(u, v)));
    return it == color_.end() ? kUncolored : it->second;
  }

  int palette() const { return palette_; }

 private:
  bool is_free(Vertex v, int c) const { return at_[v][c] == kInvalidVertex; }

  int free_color(Vertex v) const {
    for (int c = 0; c < palette_; ++c) {
      if (is_free(v, c)) return c;
    }
    throw std::logic_error("misra-gries: no free color (degree > palette)");
  }

  void set_color(Vertex u, Vertex v, int c) {
    DCS_CHECK(is_free(u, c) && is_free(v, c),
              "assigning a non-free color");
    at_[u][c] = v;
    at_[v][c] = u;
    color_[edge_key(canonical(u, v))] = c;
  }

  void uncolor(Vertex u, Vertex v) {
    const auto it = color_.find(edge_key(canonical(u, v)));
    DCS_CHECK(it != color_.end(), "uncoloring an uncolored edge");
    const int c = it->second;
    at_[u][c] = kInvalidVertex;
    at_[v][c] = kInvalidVertex;
    color_.erase(it);
  }

  // The maximal fan of u starting at v: f_{i+1} is an uncolored-fan
  // extension — a neighbor of u whose (u, f_{i+1}) color is free on f_i.
  std::vector<Vertex> build_fan(Vertex u, Vertex v) const {
    std::vector<Vertex> fan{v};
    for (;;) {
      bool extended = false;
      const Vertex back = fan.back();
      for (Vertex z : g_.neighbors(u)) {
        const int c = color_of(u, z);
        if (c == kUncolored) continue;
        if (std::find(fan.begin(), fan.end(), z) != fan.end()) continue;
        if (is_free(back, c)) {
          fan.push_back(z);
          extended = true;
          break;
        }
      }
      if (!extended) return fan;
    }
  }

  // Flips the colors of the maximal path starting at u whose edges alternate
  // d, c, d, ... After inversion, d is free at u.
  void invert_cd_path(Vertex u, int c, int d) {
    std::vector<Vertex> path{u};
    int want = d;
    Vertex cur = u;
    for (;;) {
      const Vertex next = at_[cur][want];
      if (next == kInvalidVertex) break;
      path.push_back(next);
      cur = next;
      want = (want == d) ? c : d;
    }
    // Uncolor all path edges, then reassign with swapped colors.
    std::vector<int> old_colors(path.size() - 1);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      old_colors[i] = color_of(path[i], path[i + 1]);
      uncolor(path[i], path[i + 1]);
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      set_color(path[i], path[i + 1], old_colors[i] == d ? c : d);
    }
  }

  void color_edge(Vertex u, Vertex v) {
    std::vector<Vertex> fan = build_fan(u, v);
    const int c = free_color(u);
    const int d = free_color(fan.back());
    if (c != d) invert_cd_path(u, c, d);
    // After inversion d is free on u. Find w = fan[j] such that the prefix
    // fan[0..j] is still a fan and d is free on fan[j]; the Misra–Gries
    // invariant guarantees such j exists. We re-validate the fan property
    // incrementally because the inversion may have recolored a fan edge.
    std::size_t w = fan.size();  // sentinel: not found
    for (std::size_t j = 0; j < fan.size(); ++j) {
      if (j > 0) {
        const int cj = color_of(u, fan[j]);
        // prefix breaks if (u, fan[j]) lost its color or it is no longer
        // free on fan[j-1]
        if (cj == kUncolored || !is_free(fan[j - 1], cj)) break;
      }
      if (is_free(fan[j], d)) {
        w = j;
        break;
      }
    }
    DCS_CHECK(w != fan.size(), "misra-gries: no rotatable fan vertex found");
    // Rotate the fan prefix: shift each (u, fan[i+1])'s color onto
    // (u, fan[i]), leaving (u, fan[w]) uncolored, then give it d.
    for (std::size_t i = 0; i < w; ++i) {
      const int shift = color_of(u, fan[i + 1]);
      uncolor(u, fan[i + 1]);
      if (i == 0) {
        // (u, fan[0]) is the yet-uncolored edge being inserted
        set_color(u, fan[0], shift);
      } else {
        set_color(u, fan[i], shift);
      }
    }
    DCS_CHECK(is_free(u, d) && is_free(fan[w], d),
              "misra-gries: color d not free after rotation");
    set_color(u, fan[w], d);
  }

  const Graph& g_;
  int palette_;
  std::vector<std::vector<Vertex>> at_;
  std::unordered_map<std::uint64_t, int> color_;
};

}  // namespace

std::vector<std::vector<Edge>> EdgeColoring::matchings() const {
  std::vector<std::vector<Edge>> groups(num_colors);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    groups[static_cast<std::size_t>(colors[i])].push_back(edges[i]);
  }
  // Drop empty color classes (possible when max degree < palette size).
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const auto& m) { return m.empty(); }),
               groups.end());
  return groups;
}

EdgeColoring misra_gries_edge_coloring(const Graph& g) {
  EdgeColoring out;
  out.edges = g.edges();
  if (out.edges.empty()) return out;

  Colorer colorer(g);
  colorer.run();

  out.colors.resize(out.edges.size());
  int max_color = 0;
  for (std::size_t i = 0; i < out.edges.size(); ++i) {
    const int c = colorer.color_of(out.edges[i].u, out.edges[i].v);
    DCS_CHECK(c != kUncolored, "edge left uncolored");
    out.colors[i] = c;
    max_color = std::max(max_color, c);
  }
  out.num_colors = max_color + 1;
  return out;
}

bool edge_coloring_is_proper(const Graph& g, const EdgeColoring& coloring) {
  if (coloring.edges.size() != g.num_edges()) return false;
  std::unordered_map<std::uint64_t, int> seen;  // (vertex, color) -> count
  for (std::size_t i = 0; i < coloring.edges.size(); ++i) {
    const Edge e = coloring.edges[i];
    if (!g.has_edge(e.u, e.v)) return false;
    const int c = coloring.colors[i];
    if (c < 0 || c >= coloring.num_colors) return false;
    for (Vertex v : {e.u, e.v}) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(v) << 32) |
          static_cast<std::uint32_t>(c);
      if (++seen[key] > 1) return false;
    }
  }
  return true;
}

}  // namespace dcs
