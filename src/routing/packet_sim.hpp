#pragma once

// Store-and-forward packet simulation under node capacity 1 — the model
// behind the paper's motivation that "routing paths with smaller congestion
// result in lower packet latency and queue sizes" (Section 1.1, wireless
// networks: at most one packet can be received and forwarded by a node at
// a time).
//
// One packet per routing path. In every synchronous round each node
// forwards at most one queued packet one hop along its assigned path
// (FIFO, with a seeded random shuffle of simultaneous injections). The
// classical bounds apply: makespan is at least max(C−1, D) for node
// congestion C and dilation D, and FIFO delivers within O(C·D).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "routing/routing.hpp"

namespace dcs {

/// How a simulation ended. A timed-out run is not an error: the result
/// carries the partial statistics accumulated up to the round limit so
/// benches can report degraded configurations instead of aborting.
enum class SimStatus : std::uint8_t {
  kCompleted,  ///< every packet delivered
  kTimedOut,   ///< round limit hit with packets still in flight
};

struct PacketSimOptions {
  std::uint64_t seed = 0;
  std::size_t max_rounds = 1u << 20;  ///< safety valve
  /// Strict mode (for tests): throw std::invalid_argument on the round
  /// limit instead of returning a kTimedOut result.
  bool throw_on_timeout = false;
};

struct PacketSimResult {
  SimStatus status = SimStatus::kCompleted;
  std::size_t makespan = 0;      ///< rounds until the last delivery (or the
                                 ///< round limit on timeout)
  double mean_latency = 0.0;     ///< average delivery round (delivered only)
  std::size_t max_queue = 0;     ///< largest queue observed at any node
  std::size_t dilation = 0;      ///< max path length (D)
  std::size_t delivered = 0;     ///< packets delivered within the limit
  std::vector<std::size_t> latency;  ///< per-packet delivery round;
                                     ///< kUndelivered if still in flight

  static constexpr std::size_t kUndelivered = static_cast<std::size_t>(-1);

  /// max(C−1, D) is a universal lower bound for node-capacitated
  /// store-and-forward scheduling of these paths.
  static std::size_t lower_bound(std::size_t congestion,
                                 std::size_t dilation) {
    return std::max(congestion > 0 ? congestion - 1 : 0, dilation);
  }
};

/// Simulates the routing on g. Paths must be valid walks on g (validated);
/// zero-length paths (source == destination) deliver at round 0.
PacketSimResult simulate_store_and_forward(
    const Graph& g, const Routing& routing,
    const PacketSimOptions& options = {});

}  // namespace dcs
