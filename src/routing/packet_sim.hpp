#pragma once

// Store-and-forward packet simulation under node capacity 1 — the model
// behind the paper's motivation that "routing paths with smaller congestion
// result in lower packet latency and queue sizes" (Section 1.1, wireless
// networks: at most one packet can be received and forwarded by a node at
// a time).
//
// One packet per routing path. In every synchronous round each node
// forwards at most one queued packet one hop along its assigned path
// (FIFO, with a seeded random shuffle of simultaneous injections). The
// classical bounds apply: makespan is at least max(C−1, D) for node
// congestion C and dilation D, and FIFO delivers within O(C·D).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "routing/routing.hpp"

namespace dcs {

struct PacketSimOptions {
  std::uint64_t seed = 0;
  std::size_t max_rounds = 1u << 20;  ///< safety valve; throws if exceeded
};

struct PacketSimResult {
  std::size_t makespan = 0;      ///< rounds until the last delivery
  double mean_latency = 0.0;     ///< average delivery round
  std::size_t max_queue = 0;     ///< largest queue observed at any node
  std::size_t dilation = 0;      ///< max path length (D)
  std::vector<std::size_t> latency;  ///< per-packet delivery round

  /// max(C−1, D) is a universal lower bound for node-capacitated
  /// store-and-forward scheduling of these paths.
  static std::size_t lower_bound(std::size_t congestion,
                                 std::size_t dilation) {
    return std::max(congestion > 0 ? congestion - 1 : 0, dilation);
  }
};

/// Simulates the routing on g. Paths must be valid walks on g (validated);
/// zero-length paths (source == destination) deliver at round 0.
PacketSimResult simulate_store_and_forward(
    const Graph& g, const Routing& routing,
    const PacketSimOptions& options = {});

}  // namespace dcs
