#pragma once

// Store-and-forward packet simulation under node capacity 1 — the model
// behind the paper's motivation that "routing paths with smaller congestion
// result in lower packet latency and queue sizes" (Section 1.1, wireless
// networks: at most one packet can be received and forwarded by a node at
// a time).
//
// One packet per routing path. In every synchronous round each node
// forwards at most one queued packet one hop along its assigned path
// (FIFO, with a seeded random shuffle of simultaneous injections). The
// classical bounds apply: makespan is at least max(C−1, D) for node
// congestion C and dilation D, and FIFO delivers within O(C·D).
//
// Overload protection (all opt-in; defaults reproduce the unbounded
// classical model):
//
//  * bounded queues  — `queue_capacity` caps every node's queue; a packet
//    arriving at a full queue is *shed* (kShedQueueFull) instead of
//    growing the queue without bound;
//  * admission control — with bounded queues, injection applies the same
//    cap: a packet whose source queue is already full is refused at round
//    0 (kShedAdmission), the backpressure signal that lets a degraded
//    spanner shed load at the edge instead of absorbing it;
//  * deadlines       — with `deadline = r`, a packet not delivered by
//    round r is shed when next serviced (kShedDeadline) rather than
//    limping on and congesting nodes it can no longer benefit from.
//
// Shedding keeps the simulation conservative: in every round
// delivered + shed + in-flight equals the number of injected packets
// (checked internally), so overload degrades throughput, never accounting.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "routing/routing.hpp"

namespace dcs {

/// How a simulation ended. Neither a timed-out nor a load-shedding run is
/// an error: the result carries the statistics accumulated so far so
/// benches can report degraded configurations instead of aborting.
enum class SimStatus : std::uint8_t {
  kCompleted,  ///< every packet delivered
  kTimedOut,   ///< round limit hit with packets still in flight
  kShed,       ///< drained, but overload protection shed some packets
};

/// Terminal state of one packet. kInFlight appears only in timed-out runs.
enum class PacketOutcome : std::uint8_t {
  kDelivered,
  kInFlight,       ///< still moving when the round limit hit
  kShedAdmission,  ///< refused at injection: source queue full
  kShedQueueFull,  ///< dropped mid-flight: next hop's queue full
  kShedDeadline,   ///< dropped: not delivered by the deadline round
};

const char* to_string(PacketOutcome outcome);

struct PacketSimOptions {
  std::uint64_t seed = 0;
  std::size_t max_rounds = 1u << 20;  ///< safety valve
  /// Strict mode (for tests): throw std::invalid_argument on the round
  /// limit instead of returning a kTimedOut result.
  bool throw_on_timeout = false;

  /// Per-node queue bound; 0 = unbounded (the classical model). Arrivals
  /// beyond the bound are shed, and injection refuses packets whose
  /// source queue is already full.
  std::size_t queue_capacity = 0;
  /// Latest delivery round; 0 = no deadline. A packet serviced after this
  /// round is shed instead of forwarded.
  std::size_t deadline = 0;
};

struct PacketSimResult {
  SimStatus status = SimStatus::kCompleted;
  std::size_t makespan = 0;      ///< rounds until the simulation drained
                                 ///< (or the round limit on timeout)
  /// Average delivery round over *delivered packets only*: shed and
  /// in-flight packets carry no latency and are excluded, so comparing
  /// mean_latency across configurations must always be read next to
  /// `delivered` / `shed` (a sim that sheds its slowest packets reports a
  /// lower mean over fewer deliveries).
  double mean_latency = 0.0;
  std::size_t max_queue = 0;     ///< largest queue observed at any node
  std::size_t dilation = 0;      ///< max path length (D)
  std::size_t delivered = 0;     ///< packets delivered within the limit
  std::size_t shed = 0;          ///< packets shed by overload protection
  std::vector<std::size_t> latency;  ///< per-packet delivery round;
                                     ///< kUndelivered unless delivered
  std::vector<PacketOutcome> outcome;  ///< per-packet terminal state

  static constexpr std::size_t kUndelivered = static_cast<std::size_t>(-1);

  /// Packets shed for the given reason.
  std::size_t shed_for(PacketOutcome reason) const;

  /// max(C−1, D) is a universal lower bound for node-capacitated
  /// store-and-forward scheduling of these paths.
  static std::size_t lower_bound(std::size_t congestion,
                                 std::size_t dilation) {
    return std::max(congestion > 0 ? congestion - 1 : 0, dilation);
  }
};

/// Simulates the routing on g. Paths must be valid walks on g (validated);
/// zero-length paths (source == destination) deliver at round 0.
PacketSimResult simulate_store_and_forward(
    const Graph& g, const Routing& routing,
    const PacketSimOptions& options = {});

}  // namespace dcs
