#pragma once

// Shortest-path routings: the canonical way to realize a routing problem on a
// graph. Random tie-breaking among equal-length paths spreads load, which is
// what the paper's replacement-path arguments rely on.

#include "graph/graph.hpp"
#include "routing/routing.hpp"
#include "util/rng.hpp"

namespace dcs {

/// Routes every pair along a shortest path. With `randomize` set, parent
/// choices are randomized per pair (deterministically derived from `seed`),
/// so repeated calls with different seeds sample different shortest-path
/// routings. Throws if some pair is disconnected.
Routing shortest_path_routing(const Graph& g, const RoutingProblem& problem,
                              std::uint64_t seed = 0, bool randomize = true);

/// Sum over pairs of d_G(s, t) — used to sanity-check distance stretch.
std::size_t total_distance(const Graph& g, const RoutingProblem& problem);

}  // namespace dcs
