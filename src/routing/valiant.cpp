#include "routing/valiant.hpp"

#include <atomic>

#include "graph/bfs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

Routing valiant_routing(const Graph& g, const RoutingProblem& problem,
                        const ValiantOptions& options) {
  Routing routing;
  routing.paths.resize(problem.size());
  std::atomic<bool> disconnected{false};
  parallel_for(0, problem.size(), [&](std::size_t i) {
    const auto [s, t] = problem.pairs[i];
    Rng rng(mix64(options.seed, i));
    Path path;
    if (options.use_intermediate) {
      const auto mid =
          static_cast<Vertex>(rng.uniform(g.num_vertices()));
      Path leg1 = bfs_shortest_path(g, s, mid, &rng);
      Path leg2 = bfs_shortest_path(g, mid, t, &rng);
      if (leg1.empty() || leg2.empty()) {
        disconnected.store(true, std::memory_order_relaxed);
        return;
      }
      path = std::move(leg1);
      path.insert(path.end(), leg2.begin() + 1, leg2.end());
      // Shortcut any revisited vertex so the final path is simple: keep the
      // first occurrence and splice to the last occurrence.
      // (Two shortest legs can intersect; congestion accounting expects each
      // node at most once per path.)
      {
        Path simple;
        std::vector<std::int64_t> pos(g.num_vertices(), -1);
        for (Vertex v : path) {
          if (pos[v] >= 0) {
            // unwind back to the previous occurrence of v
            while (static_cast<std::int64_t>(simple.size()) > pos[v] + 1) {
              pos[simple.back()] = -1;
              simple.pop_back();
            }
          } else {
            pos[v] = static_cast<std::int64_t>(simple.size());
            simple.push_back(v);
          }
        }
        path = std::move(simple);
      }
    } else {
      path = bfs_shortest_path(g, s, t, &rng);
      if (path.empty()) {
        disconnected.store(true, std::memory_order_relaxed);
        return;
      }
    }
    routing.paths[i] = std::move(path);
  });
  DCS_REQUIRE(!disconnected.load(), "valiant routing on a disconnected pair");
  return routing;
}

}  // namespace dcs
