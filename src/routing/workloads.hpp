#pragma once

// Workload generators: the routing problems the experiments are run on.

#include "graph/graph.hpp"
#include "routing/routing.hpp"

namespace dcs {

/// Random permutation routing: vertex i sends to π(i) for a uniformly random
/// permutation π with no fixed points removed (pairs with π(i)==i dropped).
RoutingProblem random_permutation_problem(std::size_t n, std::uint64_t seed);

/// k uniformly random (source ≠ destination) pairs; vertices may repeat.
RoutingProblem random_pairs_problem(std::size_t n, std::size_t k,
                                    std::uint64_t seed);

/// A random maximal-matching routing problem on g (congestion-1 optimum:
/// route each pair over its own edge).
RoutingProblem random_matching_problem(const Graph& g, std::uint64_t seed);

/// All-edges problem of Lemma 1: one pair per edge of g.
RoutingProblem all_edges_problem(const Graph& g);

/// The perfect-matching problem across the clique_matching_graph of Fig. 1:
/// pair (i, n/2 + i) for each i.
RoutingProblem clique_matching_pairs(std::size_t n);

/// Bit-reversal permutation on 2^dim vertices: i → reverse of i's dim-bit
/// representation. A classic adversarial permutation for deterministic
/// oblivious routing on hypercube-like networks.
RoutingProblem bit_reversal_problem(std::size_t dim);

/// Transpose permutation on 2^dim vertices, dim even: swap the high and
/// low dim/2-bit halves of the address.
RoutingProblem transpose_problem(std::size_t dim);

}  // namespace dcs
