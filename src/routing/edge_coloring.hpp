#pragma once

// Proper edge coloring. Algorithm 2 of the paper partitions each level
// subgraph G_k into m_k ≤ d_k + 1 matchings via edge coloring; Misra–Gries
// achieves exactly the (Δ+1)-color Vizing bound in O(nm) time.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dcs {

struct EdgeColoring {
  std::vector<Edge> edges;    ///< canonical edge list of the colored graph
  std::vector<int> colors;    ///< colors[i] colors edges[i]; values in [0, num_colors)
  int num_colors = 0;

  /// Groups edges by color; each group is a matching.
  std::vector<std::vector<Edge>> matchings() const;
};

/// Misra–Gries (Δ+1)-edge-coloring of g.
EdgeColoring misra_gries_edge_coloring(const Graph& g);

/// Checks properness: no two edges of the same color share a vertex, and the
/// coloring covers exactly the edges of g.
bool edge_coloring_is_proper(const Graph& g, const EdgeColoring& coloring);

}  // namespace dcs
