#include "routing/routing.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace dcs {

RoutingProblem RoutingProblem::from_edges(std::span<const Edge> edges) {
  RoutingProblem r;
  r.pairs.reserve(edges.size());
  for (Edge e : edges) {
    DCS_REQUIRE(e.u != e.v, "routing pair endpoints must differ");
    r.pairs.emplace_back(e.u, e.v);
  }
  return r;
}

bool RoutingProblem::is_matching() const {
  std::unordered_set<Vertex> seen;
  for (auto [u, v] : pairs) {
    if (!seen.insert(u).second) return false;
    if (!seen.insert(v).second) return false;
  }
  return true;
}

Routing Routing::direct_edges(const RoutingProblem& problem) {
  Routing r;
  r.paths.reserve(problem.size());
  for (auto [u, v] : problem.pairs) {
    r.paths.push_back(Path{u, v});
  }
  return r;
}

std::vector<std::size_t> node_loads(const Routing& routing, std::size_t n) {
  std::vector<std::size_t> load(n, 0);
  std::vector<bool> seen(n, false);
  std::vector<Vertex> touched;
  for (const auto& p : routing.paths) {
    touched.clear();
    for (Vertex v : p) {
      DCS_REQUIRE(v < n, "path vertex out of range");
      if (!seen[v]) {
        seen[v] = true;
        touched.push_back(v);
        ++load[v];
      }
    }
    for (Vertex v : touched) seen[v] = false;
  }
  return load;
}

std::size_t node_congestion(const Routing& routing, std::size_t n) {
  const auto load = node_loads(routing, n);
  return load.empty() ? 0
                      : *std::max_element(load.begin(), load.end());
}

std::unordered_map<std::uint64_t, std::size_t> edge_loads(
    const Routing& routing) {
  std::unordered_map<std::uint64_t, std::size_t> load;
  std::vector<std::uint64_t> touched;
  for (const auto& p : routing.paths) {
    touched.clear();
    for (std::size_t j = 0; j + 1 < p.size(); ++j) {
      touched.push_back(edge_key(canonical(p[j], p[j + 1])));
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    for (std::uint64_t k : touched) ++load[k];
  }
  return load;
}

std::size_t edge_congestion(const Routing& routing) {
  std::size_t best = 0;
  for (const auto& [key, count] : edge_loads(routing)) {
    best = std::max(best, count);
  }
  return best;
}

std::size_t max_path_length(const Routing& routing) {
  std::size_t best = 0;
  for (const auto& p : routing.paths) {
    best = std::max(best, path_length(p));
  }
  return best;
}

bool routing_is_valid(const Graph& g, const RoutingProblem& problem,
                      const Routing& routing) {
  if (routing.paths.size() != problem.pairs.size()) return false;
  for (std::size_t i = 0; i < routing.paths.size(); ++i) {
    const auto& p = routing.paths[i];
    const auto [s, t] = problem.pairs[i];
    if (p.empty() || p.front() != s || p.back() != t) return false;
    for (std::size_t j = 0; j + 1 < p.size(); ++j) {
      if (!g.has_edge(p[j], p[j + 1])) return false;
    }
  }
  return true;
}

}  // namespace dcs
