#include "routing/mwu_routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "graph/bfs.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

Path node_cost_shortest_path(const Graph& g, Vertex s, Vertex t,
                             std::span<const double> cost) {
  DCS_REQUIRE(s < g.num_vertices() && t < g.num_vertices(),
              "endpoint out of range");
  DCS_REQUIRE(cost.size() == g.num_vertices(),
              "cost vector size must match vertex count");
  if (s == t) return {s};

  // Dijkstra over (node-cost sum, hops) lexicographic distances.
  using Key = std::pair<double, std::size_t>;  // (cost, hops)
  const Key inf{std::numeric_limits<double>::infinity(), 0};
  std::vector<Key> dist(g.num_vertices(), inf);
  std::vector<Vertex> parent(g.num_vertices(), kInvalidVertex);
  using Entry = std::pair<Key, Vertex>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[s] = {cost[s], 0};
  heap.emplace(dist[s], s);
  while (!heap.empty()) {
    const auto [key, u] = heap.top();
    heap.pop();
    if (key > dist[u]) continue;
    if (u == t) break;
    for (Vertex v : g.neighbors(u)) {
      const Key nk{key.first + cost[v], key.second + 1};
      if (nk < dist[v]) {
        dist[v] = nk;
        parent[v] = u;
        heap.emplace(nk, v);
      }
    }
  }
  if (dist[t].first == std::numeric_limits<double>::infinity()) return {};
  Path path{t};
  Vertex cur = t;
  while (cur != s) {
    cur = parent[cur];
    DCS_CHECK(cur != kInvalidVertex, "parent chain broken");
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

MwuResult mwu_min_congestion(const Graph& g, const RoutingProblem& problem,
                             const MwuOptions& options) {
  const std::size_t n = g.num_vertices();
  MwuResult result;
  if (problem.empty()) return result;

  const double eta =
      options.eta > 0.0
          ? options.eta
          : std::log(static_cast<double>(std::max<std::size_t>(2, n))) + 1.0;

  // Length budgets.
  std::vector<std::size_t> budget(problem.size(), 0);
  if (options.stretch_budget > 0.0) {
    for (std::size_t i = 0; i < problem.size(); ++i) {
      const auto [s, t] = problem.pairs[i];
      const Dist d = bfs_distance(g, s, t);
      DCS_REQUIRE(d != kUnreachable, "disconnected pair");
      budget[i] = static_cast<std::size_t>(
          options.stretch_budget * static_cast<double>(d) + 1e-9);
    }
  }

  // Initial randomized shortest-path routing.
  Routing routing;
  routing.paths.resize(problem.size());
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const auto [s, t] = problem.pairs[i];
    Rng local(mix64(options.seed, i));
    routing.paths[i] = bfs_shortest_path(g, s, t, &local);
    DCS_REQUIRE(!routing.paths[i].empty(), "disconnected pair");
  }
  auto loads = node_loads(routing, n);
  auto congestion_of = [](const std::vector<std::size_t>& l) {
    return l.empty() ? std::size_t{0}
                     : *std::max_element(l.begin(), l.end());
  };
  result.initial_congestion = congestion_of(loads);

  Routing best = routing;
  std::size_t best_congestion = result.initial_congestion;

  std::vector<double> cost(n);
  Rng rng(options.seed ^ 0xfeedULL);
  std::vector<std::size_t> order(problem.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t round = 0; round < options.rounds; ++round) {
    ++result.rounds_used;
    const double scale =
        std::max<double>(1.0, static_cast<double>(best_congestion));
    rng.shuffle(order);
    for (std::size_t i : order) {
      Path& p = routing.paths[i];
      // remove current contribution
      for (Vertex v : p) --loads[v];
      for (Vertex v = 0; v < n; ++v) {
        cost[v] =
            std::exp(eta * static_cast<double>(loads[v]) / scale);
      }
      const auto [s, t] = problem.pairs[i];
      Path candidate = node_cost_shortest_path(g, s, t, cost);
      const bool fits =
          !candidate.empty() &&
          (budget[i] == 0 || path_length(candidate) <= budget[i]);
      if (fits) p = std::move(candidate);
      for (Vertex v : p) ++loads[v];
    }
    const std::size_t c = congestion_of(loads);
    if (c < best_congestion) {
      best_congestion = c;
      best = routing;
    }
  }

  DCS_CHECK(routing_is_valid(g, problem, best), "MWU routing invalid");
  result.routing = std::move(best);
  result.final_congestion = best_congestion;
  return result;
}

}  // namespace dcs
