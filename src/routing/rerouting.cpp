#include "routing/rerouting.hpp"

#include <algorithm>
#include <numeric>

#include "graph/bfs.hpp"
#include "util/check.hpp"

namespace dcs {

Path load_avoiding_path(const Graph& g, Vertex s, Vertex t,
                        const std::vector<std::size_t>& load,
                        std::size_t threshold, Rng& rng) {
  DCS_REQUIRE(s < g.num_vertices() && t < g.num_vertices(),
              "endpoint out of range");
  if (s == t) return {s};
  auto blocked = [&](Vertex v) {
    return v != s && v != t && load[v] >= threshold;
  };
  // BFS from t over non-blocked vertices so that walking parents from s
  // yields the forward path (mirrors bfs_shortest_path).
  std::vector<Dist> dist(g.num_vertices(), kUnreachable);
  std::vector<Vertex> frontier{t};
  std::vector<Vertex> next;
  dist[t] = 0;
  while (!frontier.empty() && dist[s] == kUnreachable) {
    next.clear();
    for (Vertex u : frontier) {
      for (Vertex v : g.neighbors(u)) {
        if (dist[v] != kUnreachable || blocked(v)) continue;
        dist[v] = dist[u] + 1;
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
  if (dist[s] == kUnreachable) return {};

  Path path{s};
  Vertex cur = s;
  while (cur != t) {
    const Dist want = dist[cur] - 1;
    Vertex chosen = kInvalidVertex;
    std::size_t count = 0;
    for (Vertex v : g.neighbors(cur)) {
      if (dist[v] == want) {
        ++count;
        if (rng.uniform(count) == 0) chosen = v;
      }
    }
    DCS_CHECK(chosen != kInvalidVertex, "parent chain broken");
    path.push_back(chosen);
    cur = chosen;
  }
  return path;
}

MinimizeCongestionResult minimize_congestion(
    const Graph& g, const RoutingProblem& problem,
    const MinimizeCongestionOptions& options) {
  MinimizeCongestionResult result;
  Rng rng(options.seed);

  // Length budgets (if requested): α · d_G(s,t) per pair.
  std::vector<std::size_t> budget(problem.size(), 0);
  if (options.stretch_budget > 0.0) {
    for (std::size_t i = 0; i < problem.size(); ++i) {
      const auto [s, t] = problem.pairs[i];
      const Dist d = bfs_distance(g, s, t);
      DCS_REQUIRE(d != kUnreachable, "disconnected pair");
      budget[i] = static_cast<std::size_t>(
          options.stretch_budget * static_cast<double>(d) + 1e-9);
    }
  }

  // Start from a randomized shortest-path routing.
  Routing routing;
  routing.paths.resize(problem.size());
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const auto [s, t] = problem.pairs[i];
    Rng local(mix64(options.seed, i));
    routing.paths[i] = bfs_shortest_path(g, s, t, &local);
    DCS_REQUIRE(!routing.paths[i].empty(), "disconnected pair");
  }

  auto loads = node_loads(routing, g.num_vertices());
  auto congestion = [&loads] {
    return loads.empty() ? std::size_t{0}
                         : *std::max_element(loads.begin(), loads.end());
  };
  result.initial_congestion = congestion();

  auto remove_path = [&](const Path& p) {
    for (Vertex v : p) --loads[v];
  };
  auto add_path = [&](const Path& p) {
    for (Vertex v : p) ++loads[v];
  };

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    const std::size_t cmax = congestion();
    if (cmax <= 1) break;
    bool improved = false;
    // Visit paths in a random order; try to reroute every path that
    // currently touches a maximally loaded node.
    std::vector<std::size_t> order(problem.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    rng.shuffle(order);
    for (std::size_t i : order) {
      Path& p = routing.paths[i];
      const bool hot =
          std::any_of(p.begin(), p.end(),
                      [&](Vertex v) { return loads[v] >= cmax; });
      if (!hot) continue;
      remove_path(p);
      // Avoid everything at or above cmax−1 so the replacement strictly
      // improves the path's bottleneck.
      Path candidate = load_avoiding_path(g, p.front(), p.back(), loads,
                                          cmax - 1, rng);
      const bool fits =
          !candidate.empty() &&
          (budget[i] == 0 || path_length(candidate) <= budget[i]);
      if (fits) {
        p = std::move(candidate);
        ++result.reroutes;
        improved = true;
      }
      add_path(p);
    }
    if (!improved) break;
  }

  result.final_congestion = congestion();
  result.routing = std::move(routing);
  DCS_CHECK(routing_is_valid(g, problem, result.routing),
            "rerouted paths became invalid");
  return result;
}

}  // namespace dcs
