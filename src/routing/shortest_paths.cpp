#include "routing/shortest_paths.hpp"

#include <atomic>

#include "graph/bfs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

Routing shortest_path_routing(const Graph& g, const RoutingProblem& problem,
                              std::uint64_t seed, bool randomize) {
  Routing routing;
  routing.paths.resize(problem.size());
  std::atomic<bool> disconnected{false};
  parallel_for(0, problem.size(), [&](std::size_t i) {
    const auto [s, t] = problem.pairs[i];
    Rng rng(mix64(seed, i));
    auto path = bfs_shortest_path(g, s, t, randomize ? &rng : nullptr);
    if (path.empty()) {
      disconnected.store(true, std::memory_order_relaxed);
    } else {
      routing.paths[i] = std::move(path);
    }
  });
  DCS_REQUIRE(!disconnected.load(),
              "routing problem contains a disconnected pair");
  return routing;
}

std::size_t total_distance(const Graph& g, const RoutingProblem& problem) {
  std::atomic<std::size_t> total{0};
  std::atomic<bool> disconnected{false};
  parallel_for(0, problem.size(), [&](std::size_t i) {
    const auto [s, t] = problem.pairs[i];
    const Dist d = bfs_distance(g, s, t);
    if (d == kUnreachable) {
      disconnected.store(true, std::memory_order_relaxed);
    } else {
      total.fetch_add(d, std::memory_order_relaxed);
    }
  });
  DCS_REQUIRE(!disconnected.load(), "pair is disconnected");
  return total.load();
}

}  // namespace dcs
