#pragma once

// Maximum bipartite matching (Hopcroft–Karp) between two vertex sets inside
// a host graph. This realizes the neighborhood matchings M_{u,v} of Lemma 4:
// a maximum matching between N(u) and N(v) using only edges of the host.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dcs {

/// Maximum matching between `left` and `right` using edges of `g` with one
/// endpoint in each set. The two sets may overlap: a shared vertex is
/// treated as a single entity and is used by at most one matched edge in the
/// result (overlap conflicts are resolved by dropping the later pair, which
/// costs at most |left ∩ right| edges off the optimum — negligible for the
/// neighborhood matchings of expanders where |N_u ∩ N_v| ≈ Δ²/n ≪ Δ).
///
/// Returned edges are canonical and are edges of g.
std::vector<Edge> maximum_bipartite_matching(const Graph& g,
                                             std::span<const Vertex> left,
                                             std::span<const Vertex> right);

/// Greedy maximal matching over the whole graph, scanning edges in the given
/// seed-shuffled order. Used to generate matching routing problems.
std::vector<Edge> greedy_maximal_matching(const Graph& g,
                                          std::uint64_t seed = 0);

/// Checks that `matching` is a node-disjoint set of edges of g.
bool is_matching_in_graph(const Graph& g, std::span<const Edge> matching);

}  // namespace dcs
