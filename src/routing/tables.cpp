#include "routing/tables.hpp"

#include <algorithm>
#include <bit>

#include "graph/bfs.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

namespace detail {

void fill_next_hop_row(const Graph& g, Vertex dest, std::uint64_t seed,
                       Vertex* row) {
  const std::size_t n = g.num_vertices();
  const auto dist = bfs_distances(g, dest);
  Rng rng(mix64(seed, dest));
  for (Vertex v = 0; v < n; ++v) {
    row[v] = kInvalidVertex;
    if (v == dest || dist[v] == kUnreachable) continue;
    // pick a random neighbor one step closer to dest
    std::size_t count = 0;
    Vertex chosen = kInvalidVertex;
    for (Vertex u : g.neighbors(v)) {
      if (dist[u] + 1 == dist[v]) {
        ++count;
        if (rng.uniform(count) == 0) chosen = u;
      }
    }
    DCS_CHECK(chosen != kInvalidVertex, "BFS tree chain broken");
    row[v] = chosen;
  }
}

}  // namespace detail

RoutingTables RoutingTables::build(const Graph& g, std::uint64_t seed) {
  RoutingTables t;
  t.n_ = g.num_vertices();
  t.next_.assign(t.n_ * t.n_, kInvalidVertex);

  parallel_for(0, t.n_, [&](std::size_t dest_i) {
    detail::fill_next_hop_row(g, static_cast<Vertex>(dest_i), seed,
                              t.next_.data() + dest_i * t.n_);
  });

  // Memory accounting: each node stores n−1 entries of ⌈log₂ deg⌉ bits.
  t.total_bits_ = 0;
  for (Vertex v = 0; v < t.n_; ++v) {
    const std::size_t deg = g.degree(v);
    const std::uint64_t entry_bits =
        deg <= 1 ? 1 : static_cast<std::uint64_t>(std::bit_width(deg - 1));
    t.total_bits_ +=
        entry_bits * static_cast<std::uint64_t>(t.n_ > 0 ? t.n_ - 1 : 0);
  }
  return t;
}

Vertex RoutingTables::next_hop(Vertex from, Vertex destination) const {
  DCS_REQUIRE(from < n_ && destination < n_, "vertex out of range");
  if (from == destination) return kInvalidVertex;
  return next_[static_cast<std::size_t>(destination) * n_ + from];
}

Path RoutingTables::route(Vertex from, Vertex destination) const {
  DCS_REQUIRE(from < n_ && destination < n_, "vertex out of range");
  Path path{from};
  Vertex cur = from;
  while (cur != destination) {
    const Vertex hop = next_hop(cur, destination);
    if (hop == kInvalidVertex) return {};  // unreachable
    path.push_back(hop);
    cur = hop;
    DCS_CHECK(path.size() <= n_, "routing table cycle detected");
  }
  return path;
}

std::size_t RoutingTables::route_length(Vertex from,
                                        Vertex destination) const {
  const Path p = route(from, destination);
  if (p.empty() && from != destination) {
    return static_cast<std::size_t>(-1);
  }
  return path_length(p);
}

LazyRoutingTables::LazyRoutingTables(const Graph& g, std::uint64_t seed)
    : g_(&g), seed_(seed), rows_(g.num_vertices()) {}

void LazyRoutingTables::reset(const Graph& g) {
  DCS_REQUIRE(g.num_vertices() == rows_.size(),
              "LazyRoutingTables::reset: vertex count must not change");
  g_ = &g;
  filled_ = 0;
  for (std::vector<Vertex>& r : rows_) {
    r.clear();
    r.shrink_to_fit();
  }
}

const std::vector<Vertex>& LazyRoutingTables::row(Vertex destination) {
  DCS_REQUIRE(destination < rows_.size(), "vertex out of range");
  std::vector<Vertex>& r = rows_[destination];
  if (r.empty() && !rows_.empty()) {
    r.resize(rows_.size(), kInvalidVertex);
    detail::fill_next_hop_row(*g_, destination, seed_, r.data());
    ++filled_;
  }
  return r;
}

void LazyRoutingTables::fill_rows(std::span<const Vertex> dests) {
  // Deduplicate down to the unfilled destinations so the parallel loop
  // writes disjoint rows.
  std::vector<Vertex> missing;
  for (Vertex d : dests) {
    DCS_REQUIRE(d < rows_.size(), "vertex out of range");
    if (!has_row(d)) missing.push_back(d);
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  const std::size_t n = rows_.size();
  for (Vertex d : missing) rows_[d].resize(n, kInvalidVertex);
  parallel_for(0, missing.size(), [&](std::size_t i) {
    detail::fill_next_hop_row(*g_, missing[i], seed_, rows_[missing[i]].data());
  });
  filled_ += missing.size();
}

Vertex LazyRoutingTables::next_hop(Vertex from, Vertex destination) {
  DCS_REQUIRE(from < rows_.size() && destination < rows_.size(),
              "vertex out of range");
  if (from == destination) return kInvalidVertex;
  return row(destination)[from];
}

Path LazyRoutingTables::route(Vertex from, Vertex destination) {
  DCS_REQUIRE(from < rows_.size() && destination < rows_.size(),
              "vertex out of range");
  const std::vector<Vertex>& next = row(destination);
  Path path{from};
  Vertex cur = from;
  while (cur != destination) {
    const Vertex hop = next[cur];
    if (hop == kInvalidVertex) return {};  // unreachable
    path.push_back(hop);
    cur = hop;
    DCS_CHECK(path.size() <= rows_.size(), "routing table cycle detected");
  }
  return path;
}

double RoutingTables::bits_per_entry() const {
  const auto entries =
      static_cast<double>(n_) * static_cast<double>(n_ > 0 ? n_ - 1 : 0);
  return entries == 0.0 ? 0.0 : static_cast<double>(total_bits_) / entries;
}

}  // namespace dcs
