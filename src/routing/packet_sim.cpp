#include "routing/packet_sim.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

PacketSimResult simulate_store_and_forward(const Graph& g,
                                           const Routing& routing,
                                           const PacketSimOptions& options) {
  const std::size_t n = g.num_vertices();
  const std::size_t packets = routing.paths.size();

  PacketSimResult result;
  result.latency.assign(packets, 0);
  if (packets == 0) return result;

  // Validate paths and compute dilation.
  for (const auto& p : routing.paths) {
    DCS_REQUIRE(!p.empty(), "packet with an empty path");
    for (std::size_t j = 0; j + 1 < p.size(); ++j) {
      DCS_REQUIRE(g.has_edge(p[j], p[j + 1]),
                  "packet path uses a non-edge");
    }
    result.dilation = std::max(result.dilation, path_length(p));
  }

  // progress[i] = index into paths[i] of the packet's current node.
  std::vector<std::size_t> progress(packets, 0);
  std::vector<std::deque<std::size_t>> queue(n);

  // Inject in a seeded random order so FIFO ties are unbiased.
  std::vector<std::size_t> order(packets);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(options.seed);
  rng.shuffle(order);
  std::size_t remaining = 0;
  for (std::size_t i : order) {
    if (routing.paths[i].size() <= 1) {
      result.latency[i] = 0;  // already at destination
    } else {
      queue[routing.paths[i].front()].push_back(i);
      ++remaining;
    }
  }

  for (auto& q : queue) {
    result.max_queue = std::max(result.max_queue, q.size());
  }

  std::size_t round = 0;
  std::vector<std::pair<Vertex, std::size_t>> arrivals;  // (node, packet)
  while (remaining > 0) {
    if (round >= options.max_rounds) {
      DCS_REQUIRE(!options.throw_on_timeout,
                  "packet simulation exceeded the round limit");
      // Graceful degradation: report the partial run; packets still in
      // flight keep kUndelivered latencies.
      result.status = SimStatus::kTimedOut;
      for (std::size_t i = 0; i < packets; ++i) {
        if (progress[i] + 1 < routing.paths[i].size()) {
          result.latency[i] = PacketSimResult::kUndelivered;
        }
      }
      break;
    }
    ++round;
    arrivals.clear();
    // Each node forwards the head of its queue one hop.
    for (Vertex v = 0; v < n; ++v) {
      if (queue[v].empty()) continue;
      const std::size_t packet = queue[v].front();
      queue[v].pop_front();
      const auto& path = routing.paths[packet];
      const Vertex next = path[progress[packet] + 1];
      ++progress[packet];
      if (progress[packet] + 1 == path.size()) {
        result.latency[packet] = round;
        --remaining;
      } else {
        // Buffer arrivals so a packet moves at most one hop per round.
        arrivals.emplace_back(next, packet);
      }
    }
    for (const auto& [node, packet] : arrivals) {
      queue[node].push_back(packet);
    }
    for (const auto& [node, packet] : arrivals) {
      result.max_queue = std::max(result.max_queue, queue[node].size());
    }
  }

  result.makespan = round;
  double total = 0.0;
  for (std::size_t l : result.latency) {
    if (l != PacketSimResult::kUndelivered) {
      total += static_cast<double>(l);
      ++result.delivered;
    }
  }
  result.mean_latency =
      result.delivered == 0
          ? 0.0
          : total / static_cast<double>(result.delivered);
  return result;
}

}  // namespace dcs
