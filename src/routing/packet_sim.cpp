#include "routing/packet_sim.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#define DCS_LOG_COMPONENT "packet_sim"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

const char* to_string(PacketOutcome outcome) {
  switch (outcome) {
    case PacketOutcome::kDelivered: return "delivered";
    case PacketOutcome::kInFlight: return "in-flight";
    case PacketOutcome::kShedAdmission: return "shed-admission";
    case PacketOutcome::kShedQueueFull: return "shed-queue-full";
    case PacketOutcome::kShedDeadline: return "shed-deadline";
  }
  return "?";
}

std::size_t PacketSimResult::shed_for(PacketOutcome reason) const {
  return static_cast<std::size_t>(
      std::count(outcome.begin(), outcome.end(), reason));
}

PacketSimResult simulate_store_and_forward(const Graph& g,
                                           const Routing& routing,
                                           const PacketSimOptions& options) {
  DCS_TRACE_SPAN("packet_sim");
  const std::size_t n = g.num_vertices();
  const std::size_t packets = routing.paths.size();

  PacketSimResult result;
  result.latency.assign(packets, PacketSimResult::kUndelivered);
  result.outcome.assign(packets, PacketOutcome::kInFlight);
  if (packets == 0) return result;

  // Validate paths and compute dilation.
  for (const auto& p : routing.paths) {
    DCS_REQUIRE(!p.empty(), "packet with an empty path");
    for (std::size_t j = 0; j + 1 < p.size(); ++j) {
      DCS_REQUIRE(g.has_edge(p[j], p[j + 1]),
                  "packet path uses a non-edge");
    }
    result.dilation = std::max(result.dilation, path_length(p));
  }

  // progress[i] = index into paths[i] of the packet's current node.
  std::vector<std::size_t> progress(packets, 0);
  std::vector<std::deque<std::size_t>> queue(n);

  // Incremental queue-depth tracking: depth_count[l] is the number of nodes
  // whose queue currently holds l packets, cur_max the largest occupied
  // depth. Every enqueue/dequeue updates both in O(1) amortized, so the
  // per-round load observations below are O(1) instead of the O(n) scan a
  // naive round-metrics hook would need — at production scale that scan
  // dominates the simulation loop itself. Queue depths only peak
  // immediately after an enqueue, so per-enqueue tracking of max_queue is
  // exact.
  std::vector<std::size_t> depth_count(1, n);
  std::size_t cur_max = 0;
  const auto note_enqueue = [&](std::size_t depth_after) {
    if (depth_after >= depth_count.size()) {
      depth_count.resize(depth_after + 1, 0);
    }
    --depth_count[depth_after - 1];
    ++depth_count[depth_after];
    cur_max = std::max(cur_max, depth_after);
    result.max_queue = std::max(result.max_queue, depth_after);
  };
  const auto note_dequeue = [&](std::size_t depth_after) {
    --depth_count[depth_after + 1];
    ++depth_count[depth_after];
    while (cur_max > 0 && depth_count[cur_max] == 0) --cur_max;
  };

  // Per-round load metrics (only when the process collects metrics).
  auto* round_max_queue =
      obs::metrics_enabled()
          ? &obs::MetricsRegistry::instance().histogram(
                "packet_sim.round_max_queue")
          : nullptr;
  auto* round_in_flight =
      obs::metrics_enabled()
          ? &obs::MetricsRegistry::instance().histogram(
                "packet_sim.round_in_flight")
          : nullptr;

  const std::size_t capacity = options.queue_capacity;
  std::size_t remaining = 0;
  const auto shed = [&](std::size_t packet, PacketOutcome reason) {
    result.outcome[packet] = reason;
    ++result.shed;
  };

  // Inject in a seeded random order so FIFO ties are unbiased — and, with
  // bounded queues, so admission is unbiased too.
  std::vector<std::size_t> order(packets);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(options.seed);
  rng.shuffle(order);
  for (std::size_t i : order) {
    if (routing.paths[i].size() <= 1) {
      result.latency[i] = 0;  // already at destination
      result.outcome[i] = PacketOutcome::kDelivered;
      ++result.delivered;
      continue;
    }
    auto& q = queue[routing.paths[i].front()];
    if (capacity > 0 && q.size() >= capacity) {
      // Backpressure at the edge of the network: the source is already
      // saturated, so the packet never enters it.
      shed(i, PacketOutcome::kShedAdmission);
      continue;
    }
    q.push_back(i);
    note_enqueue(q.size());
    ++remaining;
  }
  if (round_max_queue != nullptr) {
    round_max_queue->record(static_cast<double>(cur_max));
    round_in_flight->record(static_cast<double>(remaining));
  }

  std::size_t round = 0;
  std::vector<std::pair<Vertex, std::size_t>> arrivals;  // (node, packet)
  while (remaining > 0) {
    if (round >= options.max_rounds) {
      DCS_REQUIRE(!options.throw_on_timeout,
                  "packet simulation exceeded the round limit");
      // Graceful degradation: report the partial run; packets still in
      // flight keep kUndelivered latencies and kInFlight outcomes.
      result.status = SimStatus::kTimedOut;
      obs::MetricsRegistry::instance().counter("packet_sim.timeouts").inc();
      DCS_LOG(Warn) << "simulation timed out after " << round
                    << " rounds with " << remaining << " packets in flight";
      break;
    }
    ++round;
    arrivals.clear();
    // Each node forwards the head of its queue one hop.
    for (Vertex v = 0; v < n; ++v) {
      if (queue[v].empty()) continue;
      const std::size_t packet = queue[v].front();
      queue[v].pop_front();
      note_dequeue(queue[v].size());
      if (options.deadline > 0 && round > options.deadline) {
        // Past its deadline: delivering late helps nobody, so stop paying
        // forwarding slots for it.
        shed(packet, PacketOutcome::kShedDeadline);
        --remaining;
        continue;
      }
      const auto& path = routing.paths[packet];
      const Vertex next = path[progress[packet] + 1];
      ++progress[packet];
      if (progress[packet] + 1 == path.size()) {
        result.latency[packet] = round;
        result.outcome[packet] = PacketOutcome::kDelivered;
        ++result.delivered;
        --remaining;
      } else {
        // Buffer arrivals so a packet moves at most one hop per round.
        arrivals.emplace_back(next, packet);
      }
    }
    for (const auto& [node, packet] : arrivals) {
      auto& q = queue[node];
      if (capacity > 0 && q.size() >= capacity) {
        shed(packet, PacketOutcome::kShedQueueFull);
        --remaining;
        continue;
      }
      q.push_back(packet);
      note_enqueue(q.size());
    }
    // Conservation: overload protection may shed packets but never lose
    // them — every injected packet is delivered, shed, or still queued.
    DCS_CHECK(result.delivered + result.shed + remaining == packets,
              "packet leak: delivered + shed + in-flight != injected");
    if (round_max_queue != nullptr) {
      round_max_queue->record(static_cast<double>(cur_max));
      round_in_flight->record(static_cast<double>(remaining));
    }
  }

  result.makespan = round;
  if (result.status != SimStatus::kTimedOut && result.shed > 0) {
    result.status = SimStatus::kShed;
  }
  {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("packet_sim.runs").inc();
    reg.counter("packet_sim.rounds").inc(round);
    reg.counter("packet_sim.packets").inc(packets);
    if (result.shed > 0) {
      reg.counter("packet_sim.shed").inc(result.shed);
      reg.counter("packet_sim.shed.admission")
          .inc(result.shed_for(PacketOutcome::kShedAdmission));
      reg.counter("packet_sim.shed.queue_full")
          .inc(result.shed_for(PacketOutcome::kShedQueueFull));
      reg.counter("packet_sim.shed.deadline")
          .inc(result.shed_for(PacketOutcome::kShedDeadline));
    }
  }
  double total = 0.0;
  for (std::size_t i = 0; i < packets; ++i) {
    if (result.outcome[i] == PacketOutcome::kDelivered) {
      total += static_cast<double>(result.latency[i]);
    }
  }
  // Delivered-only by contract (see the header): shed / in-flight packets
  // have no delivery round to average.
  result.mean_latency =
      result.delivered == 0
          ? 0.0
          : total / static_cast<double>(result.delivered);
  return result;
}

}  // namespace dcs
