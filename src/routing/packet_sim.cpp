#include "routing/packet_sim.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#define DCS_LOG_COMPONENT "packet_sim"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

PacketSimResult simulate_store_and_forward(const Graph& g,
                                           const Routing& routing,
                                           const PacketSimOptions& options) {
  DCS_TRACE_SPAN("packet_sim");
  const std::size_t n = g.num_vertices();
  const std::size_t packets = routing.paths.size();

  PacketSimResult result;
  result.latency.assign(packets, 0);
  if (packets == 0) return result;

  // Validate paths and compute dilation.
  for (const auto& p : routing.paths) {
    DCS_REQUIRE(!p.empty(), "packet with an empty path");
    for (std::size_t j = 0; j + 1 < p.size(); ++j) {
      DCS_REQUIRE(g.has_edge(p[j], p[j + 1]),
                  "packet path uses a non-edge");
    }
    result.dilation = std::max(result.dilation, path_length(p));
  }

  // progress[i] = index into paths[i] of the packet's current node.
  std::vector<std::size_t> progress(packets, 0);
  std::vector<std::deque<std::size_t>> queue(n);

  // Incremental queue-depth tracking: depth_count[l] is the number of nodes
  // whose queue currently holds l packets, cur_max the largest occupied
  // depth. Every enqueue/dequeue updates both in O(1) amortized, so the
  // per-round load observations below are O(1) instead of the O(n) scan a
  // naive round-metrics hook would need — at production scale that scan
  // dominates the simulation loop itself. Queue depths only peak
  // immediately after an enqueue, so per-enqueue tracking of max_queue is
  // exact.
  std::vector<std::size_t> depth_count(1, n);
  std::size_t cur_max = 0;
  const auto note_enqueue = [&](std::size_t depth_after) {
    if (depth_after >= depth_count.size()) {
      depth_count.resize(depth_after + 1, 0);
    }
    --depth_count[depth_after - 1];
    ++depth_count[depth_after];
    cur_max = std::max(cur_max, depth_after);
    result.max_queue = std::max(result.max_queue, depth_after);
  };
  const auto note_dequeue = [&](std::size_t depth_after) {
    --depth_count[depth_after + 1];
    ++depth_count[depth_after];
    while (cur_max > 0 && depth_count[cur_max] == 0) --cur_max;
  };

  // Per-round load metrics (only when the process collects metrics).
  auto* round_max_queue =
      obs::metrics_enabled()
          ? &obs::MetricsRegistry::instance().histogram(
                "packet_sim.round_max_queue")
          : nullptr;
  auto* round_in_flight =
      obs::metrics_enabled()
          ? &obs::MetricsRegistry::instance().histogram(
                "packet_sim.round_in_flight")
          : nullptr;

  // Inject in a seeded random order so FIFO ties are unbiased.
  std::vector<std::size_t> order(packets);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(options.seed);
  rng.shuffle(order);
  std::size_t remaining = 0;
  for (std::size_t i : order) {
    if (routing.paths[i].size() <= 1) {
      result.latency[i] = 0;  // already at destination
    } else {
      auto& q = queue[routing.paths[i].front()];
      q.push_back(i);
      note_enqueue(q.size());
      ++remaining;
    }
  }
  if (round_max_queue != nullptr) {
    round_max_queue->record(static_cast<double>(cur_max));
    round_in_flight->record(static_cast<double>(remaining));
  }

  std::size_t round = 0;
  std::vector<std::pair<Vertex, std::size_t>> arrivals;  // (node, packet)
  while (remaining > 0) {
    if (round >= options.max_rounds) {
      DCS_REQUIRE(!options.throw_on_timeout,
                  "packet simulation exceeded the round limit");
      // Graceful degradation: report the partial run; packets still in
      // flight keep kUndelivered latencies.
      result.status = SimStatus::kTimedOut;
      for (std::size_t i = 0; i < packets; ++i) {
        if (progress[i] + 1 < routing.paths[i].size()) {
          result.latency[i] = PacketSimResult::kUndelivered;
        }
      }
      obs::MetricsRegistry::instance().counter("packet_sim.timeouts").inc();
      DCS_LOG(Warn) << "simulation timed out after " << round
                    << " rounds with " << remaining << " packets in flight";
      break;
    }
    ++round;
    arrivals.clear();
    // Each node forwards the head of its queue one hop.
    for (Vertex v = 0; v < n; ++v) {
      if (queue[v].empty()) continue;
      const std::size_t packet = queue[v].front();
      queue[v].pop_front();
      note_dequeue(queue[v].size());
      const auto& path = routing.paths[packet];
      const Vertex next = path[progress[packet] + 1];
      ++progress[packet];
      if (progress[packet] + 1 == path.size()) {
        result.latency[packet] = round;
        --remaining;
      } else {
        // Buffer arrivals so a packet moves at most one hop per round.
        arrivals.emplace_back(next, packet);
      }
    }
    for (const auto& [node, packet] : arrivals) {
      queue[node].push_back(packet);
      note_enqueue(queue[node].size());
    }
    if (round_max_queue != nullptr) {
      round_max_queue->record(static_cast<double>(cur_max));
      round_in_flight->record(static_cast<double>(remaining));
    }
  }

  result.makespan = round;
  {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("packet_sim.runs").inc();
    reg.counter("packet_sim.rounds").inc(round);
    reg.counter("packet_sim.packets").inc(packets);
  }
  double total = 0.0;
  for (std::size_t l : result.latency) {
    if (l != PacketSimResult::kUndelivered) {
      total += static_cast<double>(l);
      ++result.delivered;
    }
  }
  result.mean_latency =
      result.delivered == 0
          ? 0.0
          : total / static_cast<double>(result.delivered);
  return result;
}

}  // namespace dcs
