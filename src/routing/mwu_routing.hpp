#pragma once

// Multiplicative-weights min-congestion routing.
//
// A stronger C_G(R) estimator than the local search in rerouting.hpp: the
// classic soft-max scheme for minimizing maximum node load. Each round
// reroutes every pair along a node-cost shortest path where a node's cost
// grows exponentially with its current load, c_v = exp(η·load_v / C̃);
// heavily loaded nodes become expensive and traffic spreads. The best
// routing seen across rounds is returned. With η = Θ(log n) this is the
// standard O(log n / log log n)-style approximation heuristic for
// congestion minimization.

#include "graph/graph.hpp"
#include "routing/routing.hpp"

namespace dcs {

struct MwuOptions {
  std::uint64_t seed = 0;
  std::size_t rounds = 12;
  /// Soft-max temperature; ≤ 0 derives ln(n)+1.
  double eta = -1.0;
  /// Optional per-pair length budget as a multiple of d_G(s,t) (the
  /// α-constraint of Definition 3); 0 disables it. Budgeted reroutes that
  /// would exceed the length bound keep their previous path.
  double stretch_budget = 0.0;
};

struct MwuResult {
  Routing routing;                     ///< best routing found
  std::size_t initial_congestion = 0;  ///< randomized shortest paths
  std::size_t final_congestion = 0;    ///< congestion of `routing`
  std::size_t rounds_used = 0;
};

MwuResult mwu_min_congestion(const Graph& g, const RoutingProblem& problem,
                             const MwuOptions& options = {});

/// Building block (exposed for tests): shortest path under additive node
/// costs (cost of a path = Σ cost[v] over its vertices). Ties broken
/// towards fewer hops. Returns an empty path if unreachable.
Path node_cost_shortest_path(const Graph& g, Vertex s, Vertex t,
                             std::span<const double> cost);

}  // namespace dcs
