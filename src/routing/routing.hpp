#pragma once

// Routing problems and routings (Section 2 of the paper).
//
// A routing problem R is a set of source/destination pairs; a routing P is a
// set of paths realizing those pairs. The central quantity is *node
// congestion*: the maximum number of paths that use any single node
// (Definition of C(P) in the paper).

#include <cstddef>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace dcs {

using Path = std::vector<Vertex>;

/// Number of edges of a path (paper's l(p)).
inline std::size_t path_length(const Path& p) {
  return p.empty() ? 0 : p.size() - 1;
}

struct RoutingProblem {
  std::vector<std::pair<Vertex, Vertex>> pairs;

  std::size_t size() const { return pairs.size(); }
  bool empty() const { return pairs.empty(); }

  /// Routing problem whose pairs are the endpoints of the given edges
  /// (paper's R_M for a matching M, and the all-edges problem of Lemma 1).
  static RoutingProblem from_edges(std::span<const Edge> edges);

  /// True if no vertex occurs more than once across all pairs — i.e. the
  /// problem is a (partial) matching.
  bool is_matching() const;
};

struct Routing {
  std::vector<Path> paths;

  std::size_t size() const { return paths.size(); }

  /// The trivial routing of an edge-induced problem: each pair routed over
  /// its own single edge.
  static Routing direct_edges(const RoutingProblem& problem);
};

/// Per-vertex load: number of paths that visit each vertex. A path visiting
/// a vertex multiple times (which valid simple paths never do) counts once.
std::vector<std::size_t> node_loads(const Routing& routing, std::size_t n);

/// C(P): maximum node load.
std::size_t node_congestion(const Routing& routing, std::size_t n);

/// Per-edge load: number of paths traversing each (canonical) edge; a path
/// traversing an edge twice counts once. The paper's main quantity is node
/// congestion; edge congestion is the companion metric used when relating
/// to permutation-routing results ([25] / Section 1's discussion).
std::unordered_map<std::uint64_t, std::size_t> edge_loads(
    const Routing& routing);

/// Maximum edge load.
std::size_t edge_congestion(const Routing& routing);

/// Maximum path length in the routing.
std::size_t max_path_length(const Routing& routing);

/// Validates that `routing` solves `problem` on `g`: path i starts at the
/// i-th source, ends at the i-th destination, and every hop is an edge of g.
/// Returns false (rather than throwing) so verifiers can report failures.
bool routing_is_valid(const Graph& g, const RoutingProblem& problem,
                      const Routing& routing);

}  // namespace dcs
