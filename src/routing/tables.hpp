#pragma once

// Next-hop routing tables with memory accounting — the introduction's other
// application: sparsifying with a DC-spanner "allows to reduce the
// total/average size of routing tables (due to sparsity of the used spanner
// H), while maintaining similar quality of considered routing requests".
//
// A table stores, per (node, destination), the next hop along a shortest
// path of the host graph. Entry width is ⌈log₂ degree⌉ bits — a next hop is
// an index into the node's (sorted) adjacency list — so sparser graphs pay
// fewer bits per entry; total memory = Σ_v (n−1)·⌈log₂ deg(v)⌉ bits.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "routing/routing.hpp"

namespace dcs {

class RoutingTables {
 public:
  /// Builds all-destination shortest-path tables for g (parallel BFS per
  /// destination). Randomized tie-breaking is seeded per destination.
  static RoutingTables build(const Graph& g, std::uint64_t seed = 0);

  /// The next hop from `from` toward `destination`; kInvalidVertex if
  /// unreachable or already there.
  Vertex next_hop(Vertex from, Vertex destination) const;

  /// Extracts the full path from → destination; empty if unreachable.
  Path route(Vertex from, Vertex destination) const;

  /// Hop count of the stored route; kUnreachable semantics via max value.
  std::size_t route_length(Vertex from, Vertex destination) const;

  /// Per-entry width is ⌈log₂ deg(v)⌉ bits (≥ 1); total over all n·(n−1)
  /// entries. This is the quantity that shrinks on a sparse spanner.
  std::uint64_t total_bits() const { return total_bits_; }
  double bits_per_entry() const;

  std::size_t num_vertices() const { return n_; }

 private:
  std::size_t n_ = 0;
  // next_[dest * n + v] = neighbor of v toward dest.
  std::vector<Vertex> next_;
  std::uint64_t total_bits_ = 0;
};

namespace detail {
/// Fills row[v] with v's next hop toward `dest` for every vertex of g
/// (kInvalidVertex for dest itself and for vertices that cannot reach it),
/// with seeded random tie-breaking among equal-progress neighbors. `row`
/// must have g.num_vertices() entries. Shared by the eager all-destination
/// build and the lazy per-destination fill.
void fill_next_hop_row(const Graph& g, Vertex dest, std::uint64_t seed,
                       Vertex* row);
}  // namespace detail

/// Lazily-filled next-hop tables: rows materialize one destination at a
/// time, on first use, so a serving process pays one BFS per *queried*
/// destination instead of n BFS runs up front. Memory grows with the set
/// of filled rows only.
///
/// The graph is borrowed and must outlive the tables. Row fill produces
/// exactly the same next hops as RoutingTables::build with the same seed.
/// Not internally synchronized: concurrent use must be serialized by the
/// caller (the query engine funnels all fills through its dispatch path);
/// fill_rows() is the one exception — it parallelizes internally over
/// *distinct* unfilled destinations.
class LazyRoutingTables {
 public:
  explicit LazyRoutingTables(const Graph& g, std::uint64_t seed = 0);

  /// The next hop from `from` toward `destination`, filling the
  /// destination's row if needed; kInvalidVertex if unreachable or
  /// already there.
  Vertex next_hop(Vertex from, Vertex destination);

  /// Extracts the full path from → destination; empty if unreachable.
  Path route(Vertex from, Vertex destination);

  /// Materializes the rows for every destination in `dests` that is not
  /// filled yet (duplicates allowed), using the shared thread pool.
  void fill_rows(std::span<const Vertex> dests);

  /// Rebinds the tables to a new host graph (same vertex count) and drops
  /// every materialized row: next hops computed against the old topology
  /// are invalid the moment the serving snapshot advances an epoch. The
  /// new graph is borrowed like the constructor's.
  void reset(const Graph& g);

  bool has_row(Vertex destination) const {
    return destination < rows_.size() && !rows_[destination].empty();
  }
  std::size_t rows_filled() const { return filled_; }
  std::size_t num_vertices() const { return rows_.size(); }

 private:
  const std::vector<Vertex>& row(Vertex destination);

  const Graph* g_;
  std::uint64_t seed_;
  std::size_t filled_ = 0;
  std::vector<std::vector<Vertex>> rows_;  // [dest] → per-vertex next hop
};

}  // namespace dcs
