#pragma once

// Next-hop routing tables with memory accounting — the introduction's other
// application: sparsifying with a DC-spanner "allows to reduce the
// total/average size of routing tables (due to sparsity of the used spanner
// H), while maintaining similar quality of considered routing requests".
//
// A table stores, per (node, destination), the next hop along a shortest
// path of the host graph. Entry width is ⌈log₂ degree⌉ bits — a next hop is
// an index into the node's (sorted) adjacency list — so sparser graphs pay
// fewer bits per entry; total memory = Σ_v (n−1)·⌈log₂ deg(v)⌉ bits.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "routing/routing.hpp"

namespace dcs {

class RoutingTables {
 public:
  /// Builds all-destination shortest-path tables for g (parallel BFS per
  /// destination). Randomized tie-breaking is seeded per destination.
  static RoutingTables build(const Graph& g, std::uint64_t seed = 0);

  /// The next hop from `from` toward `destination`; kInvalidVertex if
  /// unreachable or already there.
  Vertex next_hop(Vertex from, Vertex destination) const;

  /// Extracts the full path from → destination; empty if unreachable.
  Path route(Vertex from, Vertex destination) const;

  /// Hop count of the stored route; kUnreachable semantics via max value.
  std::size_t route_length(Vertex from, Vertex destination) const;

  /// Per-entry width is ⌈log₂ deg(v)⌉ bits (≥ 1); total over all n·(n−1)
  /// entries. This is the quantity that shrinks on a sparse spanner.
  std::uint64_t total_bits() const { return total_bits_; }
  double bits_per_entry() const;

  std::size_t num_vertices() const { return n_; }

 private:
  std::size_t n_ = 0;
  // next_[dest * n + v] = neighbor of v toward dest.
  std::vector<Vertex> next_;
  std::uint64_t total_bits_ = 0;
};

}  // namespace dcs
