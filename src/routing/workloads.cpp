#include "routing/workloads.hpp"

#include <numeric>

#include "routing/matching.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

RoutingProblem random_permutation_problem(std::size_t n,
                                          std::uint64_t seed) {
  DCS_REQUIRE(n >= 2, "permutation workload needs n >= 2");
  Rng rng(seed);
  std::vector<Vertex> pi(n);
  std::iota(pi.begin(), pi.end(), Vertex{0});
  rng.shuffle(pi);
  RoutingProblem r;
  r.pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (pi[i] != i) r.pairs.emplace_back(static_cast<Vertex>(i), pi[i]);
  }
  return r;
}

RoutingProblem random_pairs_problem(std::size_t n, std::size_t k,
                                    std::uint64_t seed) {
  DCS_REQUIRE(n >= 2, "pairs workload needs n >= 2");
  Rng rng(seed);
  RoutingProblem r;
  r.pairs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto s = static_cast<Vertex>(rng.uniform(n));
    Vertex t = s;
    while (t == s) t = static_cast<Vertex>(rng.uniform(n));
    r.pairs.emplace_back(s, t);
  }
  return r;
}

RoutingProblem random_matching_problem(const Graph& g, std::uint64_t seed) {
  const auto matching = greedy_maximal_matching(g, seed);
  return RoutingProblem::from_edges(matching);
}

RoutingProblem all_edges_problem(const Graph& g) {
  const auto edges = g.edges();
  return RoutingProblem::from_edges(edges);
}

RoutingProblem bit_reversal_problem(std::size_t dim) {
  DCS_REQUIRE(dim >= 1 && dim < 30, "dimension out of range");
  const std::size_t n = std::size_t{1} << dim;
  RoutingProblem r;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t rev = 0;
    for (std::size_t b = 0; b < dim; ++b) {
      if ((i >> b) & 1u) rev |= std::size_t{1} << (dim - 1 - b);
    }
    if (rev != i) {
      r.pairs.emplace_back(static_cast<Vertex>(i),
                           static_cast<Vertex>(rev));
    }
  }
  return r;
}

RoutingProblem transpose_problem(std::size_t dim) {
  DCS_REQUIRE(dim >= 2 && dim % 2 == 0 && dim < 30,
              "transpose needs an even dimension");
  const std::size_t n = std::size_t{1} << dim;
  const std::size_t half = dim / 2;
  const std::size_t mask = (std::size_t{1} << half) - 1;
  RoutingProblem r;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t swapped = ((i & mask) << half) | (i >> half);
    if (swapped != i) {
      r.pairs.emplace_back(static_cast<Vertex>(i),
                           static_cast<Vertex>(swapped));
    }
  }
  return r;
}

RoutingProblem clique_matching_pairs(std::size_t n) {
  DCS_REQUIRE(n >= 4 && n % 2 == 0, "needs even n >= 4");
  RoutingProblem r;
  const std::size_t half = n / 2;
  r.pairs.reserve(half);
  for (std::size_t i = 0; i < half; ++i) {
    r.pairs.emplace_back(static_cast<Vertex>(i),
                         static_cast<Vertex>(half + i));
  }
  return r;
}

}  // namespace dcs
