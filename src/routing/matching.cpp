#include "routing/matching.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

namespace {

// Hopcroft–Karp on the bipartite graph (left copies, right copies). Indices
// are positions into the left/right vectors.
class HopcroftKarp {
 public:
  HopcroftKarp(std::size_t n_left, std::size_t n_right)
      : adj_(n_left),
        match_left_(n_left, kFree),
        match_right_(n_right, kFree),
        dist_(n_left) {}

  void add_edge(std::size_t l, std::size_t r) { adj_[l].push_back(r); }

  std::size_t solve() {
    std::size_t matched = 0;
    while (bfs()) {
      for (std::size_t l = 0; l < adj_.size(); ++l) {
        if (match_left_[l] == kFree && dfs(l)) ++matched;
      }
    }
    return matched;
  }

  std::size_t match_of_left(std::size_t l) const { return match_left_[l]; }

  static constexpr std::size_t kFree = std::numeric_limits<std::size_t>::max();

 private:
  bool bfs() {
    std::queue<std::size_t> q;
    bool reachable_free = false;
    for (std::size_t l = 0; l < adj_.size(); ++l) {
      if (match_left_[l] == kFree) {
        dist_[l] = 0;
        q.push(l);
      } else {
        dist_[l] = kFree;
      }
    }
    while (!q.empty()) {
      const std::size_t l = q.front();
      q.pop();
      for (std::size_t r : adj_[l]) {
        const std::size_t l2 = match_right_[r];
        if (l2 == kFree) {
          reachable_free = true;
        } else if (dist_[l2] == kFree) {
          dist_[l2] = dist_[l] + 1;
          q.push(l2);
        }
      }
    }
    return reachable_free;
  }

  bool dfs(std::size_t l) {
    for (std::size_t r : adj_[l]) {
      const std::size_t l2 = match_right_[r];
      if (l2 == kFree || (dist_[l2] == dist_[l] + 1 && dfs(l2))) {
        match_left_[l] = r;
        match_right_[r] = l;
        return true;
      }
    }
    dist_[l] = kFree;
    return false;
  }

  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::size_t> match_left_;
  std::vector<std::size_t> match_right_;
  std::vector<std::size_t> dist_;
};

}  // namespace

std::vector<Edge> maximum_bipartite_matching(const Graph& g,
                                             std::span<const Vertex> left,
                                             std::span<const Vertex> right) {
  std::unordered_map<Vertex, std::size_t> right_index;
  right_index.reserve(right.size());
  for (std::size_t i = 0; i < right.size(); ++i) right_index[right[i]] = i;

  HopcroftKarp hk(left.size(), right.size());
  for (std::size_t li = 0; li < left.size(); ++li) {
    for (Vertex nb : g.neighbors(left[li])) {
      const auto it = right_index.find(nb);
      if (it != right_index.end() && nb != left[li]) {
        hk.add_edge(li, it->second);
      }
    }
  }
  hk.solve();

  // Collect matched pairs, dropping overlap conflicts so each graph vertex
  // participates in at most one matched edge.
  std::vector<Edge> result;
  std::unordered_set<Vertex> used;
  for (std::size_t li = 0; li < left.size(); ++li) {
    const std::size_t ri = hk.match_of_left(li);
    if (ri == HopcroftKarp::kFree) continue;
    const Vertex x = left[li];
    const Vertex y = right[ri];
    if (used.count(x) > 0 || used.count(y) > 0) continue;
    used.insert(x);
    used.insert(y);
    result.push_back(canonical(x, y));
  }
  return result;
}

std::vector<Edge> greedy_maximal_matching(const Graph& g,
                                          std::uint64_t seed) {
  auto edges = g.edges();
  Rng rng(seed);
  rng.shuffle(edges);
  std::vector<bool> used(g.num_vertices(), false);
  std::vector<Edge> matching;
  for (Edge e : edges) {
    if (!used[e.u] && !used[e.v]) {
      used[e.u] = used[e.v] = true;
      matching.push_back(e);
    }
  }
  return matching;
}

bool is_matching_in_graph(const Graph& g, std::span<const Edge> matching) {
  std::unordered_set<Vertex> used;
  for (Edge e : matching) {
    if (!g.has_edge(e.u, e.v)) return false;
    if (!used.insert(e.u).second) return false;
    if (!used.insert(e.v).second) return false;
  }
  return true;
}

}  // namespace dcs
