#pragma once

// Valiant-style two-phase randomized routing: each pair routes to a uniformly
// random intermediate vertex and then to its destination, both legs along
// (randomized) shortest paths. On expanders this spreads load and achieves
// polylogarithmic node congestion for permutation routing — the mechanism
// behind the Table 1 rows derived from [16] and [5] (Scheideler-style
// permutation routing).

#include "graph/graph.hpp"
#include "routing/routing.hpp"
#include "util/rng.hpp"

namespace dcs {

struct ValiantOptions {
  std::uint64_t seed = 0;
  /// When false, routes directly along one randomized shortest path (used as
  /// the comparison arm in the ablation experiments).
  bool use_intermediate = true;
};

/// Routes `problem` on g with two-phase random-intermediate routing.
/// Throws if g is disconnected.
Routing valiant_routing(const Graph& g, const RoutingProblem& problem,
                        const ValiantOptions& options = {});

}  // namespace dcs
