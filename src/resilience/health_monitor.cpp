#include "resilience/health_monitor.hpp"

#include <sstream>

#include "core/router.hpp"
#include "routing/matching.hpp"
#include "util/check.hpp"

namespace dcs {

const char* to_string(GuaranteeStatus status) {
  switch (status) {
    case GuaranteeStatus::kHeld: return "held";
    case GuaranteeStatus::kDegraded: return "degraded";
    case GuaranteeStatus::kLost: return "lost";
  }
  return "?";
}

std::string DegradationReport::summary() const {
  std::ostringstream os;
  os << "distance " << to_string(distance) << " (max stretch "
     << stretch.max_stretch << ", certified alpha " << certified_alpha
     << ", " << stretch.unreachable << " uncovered)";
  os << ", faults: " << failed_vertices << "v/" << failed_edges << "e";
  os << ", survivors: " << surviving_g_edges << " G-edges, "
     << surviving_h_edges << " H-edges";
  if (congestion_checked) {
    os << ", congestion " << to_string(congestion_status) << " (C_H = "
       << congestion.spanner_congestion << ", stretch "
       << congestion.congestion_stretch() << ")";
  }
  return os.str();
}

HealthMonitor::HealthMonitor(const Graph& g, HealthMonitorOptions options)
    : g_(g), options_(options) {
  DCS_REQUIRE(options_.alpha >= 1.0, "alpha must be at least 1");
  DCS_REQUIRE(options_.bfs_cap >= 1, "verification horizon must be positive");
}

DegradationReport HealthMonitor::check(const Graph& h,
                                       const FaultState& state) const {
  return check_surviving(state.surviving(g_), state.surviving(h), state);
}

DegradationReport HealthMonitor::check_surviving(const Graph& g_surviving,
                                                 const Graph& h_surviving,
                                                 const FaultState& state) const {
  DCS_REQUIRE(g_surviving.num_vertices() == g_.num_vertices() &&
                  h_surviving.num_vertices() == g_.num_vertices(),
              "surviving graphs must share the host vertex set");
  DCS_REQUIRE(g_surviving.contains_subgraph(h_surviving),
              "spanner is not a subgraph of the surviving network");

  DegradationReport report;
  report.failed_vertices = state.failed_vertices();
  report.failed_edges = state.failed_edges();
  report.surviving_g_edges = g_surviving.num_edges();
  report.surviving_h_edges = h_surviving.num_edges();

  report.stretch =
      measure_distance_stretch(g_surviving, h_surviving, options_.bfs_cap);
  if (report.stretch.satisfies(options_.alpha)) {
    report.distance = GuaranteeStatus::kHeld;
    report.certified_alpha = options_.alpha;
  } else if (report.stretch.unreachable == 0) {
    report.distance = GuaranteeStatus::kDegraded;
    report.certified_alpha = report.stretch.max_stretch;
  } else {
    report.distance = GuaranteeStatus::kLost;
    report.certified_alpha = 0.0;  // no finite bound certifiable
  }

  // Congestion recertification only makes sense while every surviving pair
  // is still routable on H∖F; with the distance guarantee lost the router
  // would throw on the uncovered pairs.
  if (options_.check_congestion &&
      report.distance != GuaranteeStatus::kLost &&
      g_surviving.num_edges() > 0) {
    const auto matched = greedy_maximal_matching(g_surviving, options_.seed);
    if (!matched.empty()) {
      const auto problem = RoutingProblem::from_edges(matched);
      DetourRouter router(h_surviving, h_surviving);
      report.congestion = measure_matching_congestion(
          g_surviving, h_surviving, problem, router, options_.seed + 1);
      report.congestion_checked = true;
      report.congestion_status =
          options_.beta <= 0.0 ||
                  report.congestion.congestion_stretch() <=
                      options_.beta + 1e-9
              ? GuaranteeStatus::kHeld
              : GuaranteeStatus::kDegraded;
    }
  }
  return report;
}

}  // namespace dcs
