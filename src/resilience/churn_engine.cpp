#include "resilience/churn_engine.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

namespace {

// Mirrors failure_injector.cpp: recoveries sort before crashes within a
// wave so a recovered element can be re-crashed in the same wave.
int kind_rank(FaultKind kind) {
  switch (kind) {
    case FaultKind::kVertexUp:
    case FaultKind::kEdgeUp:
      return 0;
    case FaultKind::kVertexDown:
    case FaultKind::kEdgeDown:
      return 1;
  }
  return 2;
}

bool event_order(const FaultEvent& a, const FaultEvent& b) {
  if (a.wave != b.wave) return a.wave < b.wave;
  const int ra = kind_rank(a.kind);
  const int rb = kind_rank(b.kind);
  if (ra != rb) return ra < rb;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

}  // namespace

ChurnEngine::ChurnEngine(const Graph& g, const ChurnEngineOptions& options)
    : g_(g),
      options_(options),
      state_(g.num_vertices()),
      vertex_flap_pending_(g.num_vertices(), 0) {
  DCS_REQUIRE(options_.edge_churn_rate >= 0.0 &&
                  options_.edge_churn_rate <= 1.0,
              "edge churn rate must be in [0, 1]");
  DCS_REQUIRE(options_.vertex_churn_rate >= 0.0 &&
                  options_.vertex_churn_rate <= 1.0,
              "vertex churn rate must be in [0, 1]");
  DCS_REQUIRE(options_.recovery_rate >= 0.0 && options_.recovery_rate <= 1.0,
              "recovery rate must be in [0, 1]");
  DCS_REQUIRE(options_.flap_probability >= 0.0 &&
                  options_.flap_probability <= 1.0,
              "flap probability must be in [0, 1]");
  DCS_REQUIRE(options_.flap_duration >= 1, "flap duration must be >= 1");
  DCS_REQUIRE(options_.min_live_fraction >= 0.0 &&
                  options_.min_live_fraction <= 1.0,
              "min live fraction must be in [0, 1]");
}

void ChurnEngine::set_load_profile(std::vector<std::size_t> loads) {
  DCS_REQUIRE(loads.empty() || loads.size() == g_.num_vertices(),
              "load profile must cover every vertex");
  loads_ = std::move(loads);
}

void ChurnEngine::emit(const FaultEvent& event, Rng& rng,
                       std::vector<FaultEvent>& out) {
  state_.apply(event);
  out.push_back(event);
  const bool is_vertex = event.kind == FaultKind::kVertexDown;
  if (is_vertex) {
    down_vertices_.push_back(event.u);
  } else {
    down_edges_.push_back(canonical(event.u, event.v));
  }
  if (options_.flap_probability > 0.0 &&
      rng.bernoulli(options_.flap_probability)) {
    FaultEvent up = event;
    up.wave = wave_ + options_.flap_duration;
    up.kind = is_vertex ? FaultKind::kVertexUp : FaultKind::kEdgeUp;
    pending_up_.emplace_back(up.wave, up);
    if (is_vertex) {
      vertex_flap_pending_[event.u] = 1;
    } else {
      edge_flap_pending_.insert(event.u, event.v);
    }
  }
}

std::span<const FaultEvent> ChurnEngine::advance() {
  const std::size_t w = wave_;
  Rng rng(mix64(options_.seed, w));
  current_wave_.clear();

  // 1. Flap recoveries due this wave (deterministic, scheduled at crash
  //    time). pending_up_ is scanned rather than indexed: flap durations
  //    are small so the list stays short.
  std::vector<FaultEvent> due;
  for (auto& [fire_wave, up] : pending_up_) {
    if (fire_wave == w) due.push_back(up);
  }
  std::erase_if(pending_up_,
                [w](const auto& p) { return p.first == w; });
  std::sort(due.begin(), due.end(), event_order);
  for (FaultEvent up : due) {
    up.wave = w;
    state_.apply(up);
    current_wave_.push_back(up);
    if (up.kind == FaultKind::kVertexUp) {
      vertex_flap_pending_[up.u] = 0;
      std::erase(down_vertices_, up.u);
    } else {
      edge_flap_pending_.erase(canonical(up.u, up.v));
      std::erase(down_edges_, canonical(up.u, up.v));
    }
  }

  // 2. Slow recoveries: each individually-down element without a pending
  //    flap recovers independently. Sweeps run in sorted order so the
  //    draw sequence is a pure function of (seed, wave, state).
  if (options_.recovery_rate > 0.0) {
    std::sort(down_vertices_.begin(), down_vertices_.end());
    std::vector<Vertex> recovered;
    for (Vertex v : down_vertices_) {
      if (vertex_flap_pending_[v] == 0 &&
          rng.bernoulli(options_.recovery_rate)) {
        recovered.push_back(v);
      }
    }
    for (Vertex v : recovered) {
      const FaultEvent up = FaultEvent::vertex_up(w, v);
      state_.apply(up);
      current_wave_.push_back(up);
      std::erase(down_vertices_, v);
    }
    std::sort(down_edges_.begin(), down_edges_.end());
    std::vector<Edge> recovered_edges;
    for (Edge e : down_edges_) {
      if (!edge_flap_pending_.contains(e) &&
          rng.bernoulli(options_.recovery_rate)) {
        recovered_edges.push_back(e);
      }
    }
    for (Edge e : recovered_edges) {
      const FaultEvent up = FaultEvent::edge_up(w, e);
      state_.apply(up);
      current_wave_.push_back(up);
      std::erase(down_edges_, e);
    }
  }

  const std::size_t n = g_.num_vertices();
  const auto live_floor = [&](std::size_t total) {
    return static_cast<std::size_t>(options_.min_live_fraction *
                                    static_cast<double>(total));
  };

  // 3. Vertex crash arrivals.
  if (options_.vertex_churn_rate > 0.0) {
    std::vector<Vertex> alive;
    alive.reserve(n);
    for (Vertex v = 0; v < n; ++v) {
      if (state_.vertex_alive(v)) alive.push_back(v);
    }
    std::size_t count = 0;
    std::vector<Vertex> victims;
    if (!loads_.empty()) {
      // Adversarial: expected-count many of the highest-load live vertices.
      count = static_cast<std::size_t>(options_.vertex_churn_rate *
                                       static_cast<double>(alive.size()));
      std::stable_sort(alive.begin(), alive.end(), [&](Vertex a, Vertex b) {
        if (loads_[a] != loads_[b]) return loads_[a] > loads_[b];
        return a < b;
      });
      victims.assign(alive.begin(),
                     alive.begin() + std::min(count, alive.size()));
    } else {
      for (Vertex v : alive) {
        if (rng.bernoulli(options_.vertex_churn_rate)) victims.push_back(v);
      }
    }
    std::size_t live = alive.size();
    const std::size_t floor_v = live_floor(n);
    for (Vertex v : victims) {
      if (live <= floor_v || live <= 1) break;
      emit(FaultEvent::vertex_down(w, v), rng, current_wave_);
      --live;
    }
  }

  // 4. Edge crash arrivals among the edges still alive after this wave's
  //    vertex crashes.
  if (options_.edge_churn_rate > 0.0) {
    std::vector<Edge> live;
    live.reserve(g_.num_edges());
    for (Edge e : g_.edges()) {
      if (state_.edge_alive(e)) live.push_back(e);
    }
    std::vector<Edge> victims;
    if (!loads_.empty()) {
      const std::size_t count =
          static_cast<std::size_t>(options_.edge_churn_rate *
                                   static_cast<double>(live.size()));
      std::stable_sort(live.begin(), live.end(), [&](Edge a, Edge b) {
        const std::size_t la = loads_[a.u] + loads_[a.v];
        const std::size_t lb = loads_[b.u] + loads_[b.v];
        if (la != lb) return la > lb;
        return a < b;
      });
      victims.assign(live.begin(),
                     live.begin() + std::min(count, live.size()));
    } else {
      for (Edge e : live) {
        if (rng.bernoulli(options_.edge_churn_rate)) victims.push_back(e);
      }
    }
    std::size_t live_count = live.size();
    const std::size_t floor_e = live_floor(g_.num_edges());
    for (Edge e : victims) {
      if (live_count <= floor_e) break;
      emit(FaultEvent::edge_down(w, e), rng, current_wave_);
      --live_count;
    }
  }

  std::sort(current_wave_.begin(), current_wave_.end(), event_order);
  history_.events.insert(history_.events.end(), current_wave_.begin(),
                         current_wave_.end());
  ++wave_;
  return current_wave_;
}

}  // namespace dcs
