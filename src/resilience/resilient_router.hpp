#pragma once

// Degradation-aware packet routing: the store-and-forward model of
// routing/packet_sim.hpp extended with a live failure schedule and
// retry-with-backoff recovery.
//
// Semantics per synchronous round (all deterministic from the seed):
//
//  1. The failure schedule's wave for this round is applied. A packet
//     queued at a crashing vertex is lost in flight; its source
//     retransmits it after a backoff timeout (a *retry*).
//  2. Each alive node forwards the head of its FIFO queue one hop. A head
//     packet whose next hop is dead (crashed vertex or crashed edge) is
//     parked: it waits `reroute_timeout · backoff_factor^k` rounds (k =
//     reroutes so far) for the element to flap back, then re-routes from
//     its current node via `load_avoiding_path` on the surviving graph,
//     steering around the currently hottest queues.
//  3. Parked packets whose deadline arrived re-enter their node's queue —
//     on the old path if the element recovered, on a fresh path otherwise.
//
// Every undelivered packet ends with an explained fate: unreachable (its
// destination is dead or disconnected from its position — no router could
// deliver it) or retry-budget exhausted. The simulation never throws on
// long runs; like packet_sim it reports kTimedOut with partial stats.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "resilience/failure_injector.hpp"
#include "resilience/fault_state.hpp"
#include "routing/packet_sim.hpp"
#include "routing/routing.hpp"

namespace dcs {

enum class PacketFate : std::uint8_t {
  kDelivered,
  kDroppedUnreachable,  ///< destination dead/disconnected when last tried
  kDroppedRetryLimit,   ///< reroute budget exhausted
  kInFlight,            ///< still moving when the round limit hit
};

const char* to_string(PacketFate fate);

struct ResilientRouterOptions {
  std::uint64_t seed = 0;
  std::size_t max_rounds = 1u << 20;

  /// Rounds between schedule waves: wave w is applied at the start of
  /// round w · wave_interval + 1.
  std::size_t wave_interval = 1;

  /// Base wait before a stranded packet re-routes (also the retransmit
  /// delay for packets lost to a vertex crash).
  std::size_t reroute_timeout = 2;
  /// Exponential backoff multiplier per successive reroute of one packet.
  std::size_t backoff_factor = 2;
  /// Per-packet cap on reroutes + retransmits.
  std::size_t max_reroutes = 16;

  /// Steer reroutes around nodes whose queue is ≥ this fraction of the
  /// current maximum queue (soft: falls back to any shortest path).
  double load_avoidance = 0.75;
};

struct ResilientSimResult {
  SimStatus status = SimStatus::kCompleted;
  std::size_t rounds = 0;        ///< rounds executed
  std::size_t makespan = 0;      ///< last delivery round
  double mean_latency = 0.0;     ///< over delivered packets
  std::size_t max_queue = 0;

  std::size_t delivered = 0;
  std::size_t dropped_unreachable = 0;
  std::size_t dropped_retry_limit = 0;

  std::size_t reroutes = 0;      ///< successful path replacements
  std::size_t retransmits = 0;   ///< packets re-injected at their source
  std::size_t wait_rounds = 0;   ///< total rounds packets spent parked

  std::vector<PacketFate> fate;        ///< per-packet outcome
  std::vector<std::size_t> latency;    ///< delivery round (kUndelivered else)

  static constexpr std::size_t kUndelivered = static_cast<std::size_t>(-1);
};

/// Simulates `routing` on `g` while `schedule` plays out. Paths must be
/// valid walks on the fault-free g; faults strike mid-flight.
ResilientSimResult simulate_resilient(const Graph& g, const Routing& routing,
                                      const FailureSchedule& schedule,
                                      const ResilientRouterOptions& options = {});

}  // namespace dcs
