#pragma once

// Delta-debugging minimization of failing FailureSchedules.
//
// A soak run that trips an invariant hands back a schedule with thousands
// of events; almost none of them matter. `minimize_schedule` shrinks the
// event list with Zeller's ddmin: split the current reproducer into k
// chunks, try each chunk alone, then each complement, keep whichever
// smaller schedule still reproduces, and refine the granularity until the
// schedule is 1-minimal (removing any single event makes the failure
// vanish) or the evaluation budget runs out.
//
// The predicate receives candidate schedules with events in their original
// relative order and original wave numbers (waves need not be contiguous —
// FailureSchedule::wave() handles gaps), so a replay of the minimized
// schedule is a faithful sub-experiment of the original run.
//
// Orphaned recoveries are fine: an `up` event whose `down` was removed is
// a no-op for FaultState, so ddmin can drop either half of a flap pair
// independently.

#include <cstddef>
#include <functional>

#include "resilience/failure_injector.hpp"

namespace dcs {

struct MinimizerOptions {
  /// Hard cap on predicate evaluations (each one typically replays a
  /// soak). The minimizer returns its best-so-far when the budget runs
  /// out.
  std::size_t max_evaluations = 2048;
};

struct MinimizeResult {
  FailureSchedule schedule;     ///< smallest reproducer found
  std::size_t initial_events = 0;
  std::size_t evaluations = 0;  ///< predicate calls spent
  bool minimal = false;         ///< true iff 1-minimality was proven
};

/// Shrinks `failing` while `reproduces` stays true. Requires
/// `reproduces(failing)` — throws std::invalid_argument otherwise, since a
/// non-reproducing starting point would "minimize" to noise.
MinimizeResult minimize_schedule(
    const FailureSchedule& failing,
    const std::function<bool(const FailureSchedule&)>& reproduces,
    const MinimizerOptions& options = {});

}  // namespace dcs
