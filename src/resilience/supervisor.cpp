#include "resilience/supervisor.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#define DCS_LOG_COMPONENT "supervisor"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/snapshot.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace dcs {

const char* to_string(SupervisorState state) {
  switch (state) {
    case SupervisorState::kHealthy: return "healthy";
    case SupervisorState::kDegraded: return "degraded";
    case SupervisorState::kRepairing: return "repairing";
    case SupervisorState::kRebuilding: return "rebuilding";
    case SupervisorState::kLost: return "lost";
  }
  return "?";
}

std::string SupervisorReport::summary() const {
  std::ostringstream os;
  os << "wave " << wave << ": " << to_string(state) << ", " << events_applied
     << " events, +" << new_candidates << " endangered";
  if (repaired) {
    os << ", repair " << to_string(repair) << " (" << repaired_candidates
       << " edges)";
  }
  if (checked) {
    os << ", certificate " << to_string(certificate) << " (alpha "
       << certified_alpha << ")";
  }
  os << ", debt " << debt;
  if (epoch != 0) os << ", epoch " << epoch;
  return os.str();
}

SpannerSupervisor::SpannerSupervisor(const Graph& g, Graph h,
                                     SupervisorOptions options)
    : g_(g),
      h_(std::move(h)),
      options_(options),
      state_(g.num_vertices()),
      // The initial spanner arrives certified; start the ladder at healthy
      // with a full hysteresis streak behind it.
      held_streak_(options.hysteresis) {
  DCS_REQUIRE(h_.num_vertices() == g_.num_vertices() &&
                  g_.contains_subgraph(h_),
              "initial spanner must be a subgraph of the network");
  DCS_REQUIRE(options_.recheck_interval >= 1,
              "recheck interval must be >= 1");
  DCS_REQUIRE(options_.min_repair_batch >= 1,
              "min repair batch must be >= 1");
  last_check_.distance = GuaranteeStatus::kHeld;
  last_check_.certified_alpha = options_.health.alpha;
}

void SpannerSupervisor::refresh_debt() {
  // Later faults may have killed queued endangered edges; repairing a dead
  // edge would splice dead endpoints back into the spanner.
  std::deque<Edge> kept;
  for (Edge e : debt_) {
    if (state_.edge_alive(e) && g_.has_edge(e.u, e.v)) {
      kept.push_back(e);
    } else {
      debt_set_.erase(e);
    }
  }
  debt_.swap(kept);
}

void SpannerSupervisor::export_metrics(const SupervisorReport& report) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::instance();
  reg.gauge("supervisor.state")
      .set(static_cast<double>(static_cast<std::uint8_t>(report.state)));
  reg.gauge("supervisor.repair_debt")
      .set(static_cast<double>(report.debt));
  reg.gauge("supervisor.certified_alpha").set(report.certified_alpha);
  reg.counter("supervisor.waves").inc();
  reg.counter("supervisor.events").inc(report.events_applied);
  if (report.repaired) {
    reg.counter(report.repair == RepairOutcome::kRebuilt
                    ? "supervisor.rebuilds"
                    : "supervisor.repairs")
        .inc();
  }
  if (report.checked) reg.counter("supervisor.recertifications").inc();
  reg.histogram("supervisor.wave_candidates")
      .record(static_cast<double>(report.new_candidates));
  reg.histogram("supervisor.step_ms").record(report.seconds * 1e3);
}

void SpannerSupervisor::attach_snapshots(serve::SnapshotStore* store) {
  snapshots_ = store;
  if (snapshots_ == nullptr) return;
  DCS_REQUIRE(snapshots_->num_vertices() == g_.num_vertices(),
              "snapshot store vertex count must match the network");
  // Publish immediately: the serving plane must never read a view older
  // than the supervisor's current one.
  publish_snapshot(state_.surviving(g_));
}

std::uint64_t SpannerSupervisor::publish_snapshot(const Graph& g_surv) {
  serve::SpannerCertificate cert;
  cert.alpha = last_check_.certified_alpha;
  cert.beta = options_.health.beta;
  cert.status = last_check_.distance;
  cert.ladder = ladder_;
  cert.fresh = !cert_dirty_;
  last_published_state_ = ladder_;
  const std::uint64_t epoch = snapshots_->publish(g_surv, h_, cert);
  obs::FlightRecorder::instance().record(obs::FlightEventKind::kEpochPublish,
                                         to_string(ladder_), epoch, wave_);
  return epoch;
}

SupervisorReport SpannerSupervisor::step(std::span<const FaultEvent> events) {
  DCS_TRACE_SPAN("supervisor_step");
  Timer timer;
  SupervisorReport report;
  report.wave = wave_;

  // 1. Land the wave: update the overlay, drop dead spanner edges, and
  //    queue the endangered edges as repair debt.
  state_.apply(events);
  report.events_applied = events.size();
  const Graph g_surv = state_.surviving(g_);
  h_ = state_.surviving(h_);
  if (!events.empty()) cert_dirty_ = true;

  if (!events.empty()) {
    const auto candidates = repair_candidates(g_, g_surv, events);
    for (Edge e : candidates) {
      if (debt_set_.insert(e)) {
        if (debt_.empty()) debt_oldest_wave_ = wave_;
        debt_.push_back(e);
      }
    }
    report.new_candidates = candidates.size();
  }
  refresh_debt();

  // 2. Pay the debt down — full rebuild past the debt ceiling (debounced),
  //    budgeted incremental repair otherwise.
  const bool over_ceiling =
      options_.rebuild_debt > 0 && debt_.size() > options_.rebuild_debt;
  const bool debounce_ok =
      rebuilds_ == 0 ||
      wave_ - last_rebuild_wave_ >= options_.rebuild_debounce;
  if (emergency_rebuild_ || (over_ceiling && debounce_ok)) {
    const auto rebuilt = rebuild_spanner(g_surv, options_.repair);
    h_ = rebuilt.h;
    debt_.clear();
    debt_set_ = EdgeSet();
    ++rebuilds_;
    last_rebuild_wave_ = wave_;
    emergency_rebuild_ = false;
    report.repaired = true;
    report.repair = RepairOutcome::kRebuilt;
    DCS_LOG(Info) << "wave " << wave_ << ": full rebuild ("
                  << (over_ceiling ? "debt ceiling" : "emergency") << ")";
  } else if (!debt_.empty() &&
             (debt_.size() >= options_.min_repair_batch ||
              wave_ - debt_oldest_wave_ >= options_.max_defer_waves)) {
    const std::size_t batch_size =
        options_.repair_budget == 0
            ? debt_.size()
            : std::min(options_.repair_budget, debt_.size());
    std::vector<Edge> batch(debt_.begin(), debt_.begin() + batch_size);
    const auto repaired =
        repair_spanner(g_surv, h_, std::span<const Edge>(batch),
                       options_.repair);
    h_ = repaired.h;
    debt_.erase(debt_.begin(), debt_.begin() + batch_size);
    for (Edge e : batch) debt_set_.erase(e);
    if (!debt_.empty()) debt_oldest_wave_ = wave_;
    ++repairs_;
    report.repaired = true;
    report.repair = repaired.outcome;
    report.repaired_candidates = batch_size;

    if (repair_bug_) {
      // Harness self-test fault: silently lose one repaired edge. See
      // inject_repair_bug().
      for (Edge e : batch) {
        if (h_.has_edge(e.u, e.v)) {
          auto edges = h_.edges();
          std::erase(edges, canonical(e));
          h_ = Graph::from_edges(h_.num_vertices(), edges);
          break;
        }
      }
    }
  }

  // 3. Recertify: always after maintenance, at least every
  //    recheck_interval waves otherwise.
  if (report.repaired) cert_dirty_ = true;
  const bool check_due =
      report.repaired || wave_ - last_check_wave_ >= options_.recheck_interval;
  if (check_due) {
    const HealthMonitor monitor(g_, options_.health);
    last_check_ = monitor.check_surviving(g_surv, h_, state_);
    last_check_wave_ = wave_;
    report.checked = true;
    // The certificate now describes exactly this wave's post-maintenance
    // topology — the next published snapshot is `fresh`.
    cert_dirty_ = false;
    if (last_check_.distance == GuaranteeStatus::kHeld) {
      ++held_streak_;
    } else {
      held_streak_ = 0;
    }
  }
  report.certificate = last_check_.distance;
  report.certified_alpha = last_check_.certified_alpha;

  // 4. Advance the degradation ladder.
  const SupervisorState ladder_before = ladder_;
  if (debt_.empty() && report.checked &&
      last_check_.distance == GuaranteeStatus::kLost) {
    // Nothing left to repair yet the certificate is gone: the maintenance
    // loop failed. Schedule an emergency rebuild for the next step.
    ladder_ = SupervisorState::kLost;
    emergency_rebuild_ = true;
    DCS_LOG(Error) << "wave " << wave_
                   << ": certificate lost with zero repair debt";
  } else if (report.repair == RepairOutcome::kRebuilt && report.repaired) {
    ladder_ = SupervisorState::kRebuilding;
  } else if (report.repaired || !debt_.empty()) {
    ladder_ = SupervisorState::kRepairing;
  } else if (last_check_.distance == GuaranteeStatus::kHeld &&
             held_streak_ >= options_.hysteresis) {
    ladder_ = SupervisorState::kHealthy;
  } else {
    ladder_ = SupervisorState::kDegraded;
  }

  if (ladder_ != ladder_before) {
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::kLadder, to_string(ladder_),
        static_cast<std::uint64_t>(ladder_before),
        static_cast<std::uint64_t>(ladder_));
  }

  report.state = ladder_;
  report.debt = debt_.size();

  // 5. Hand the wave to the serving plane: publish a new epoch whenever
  //    anything serving-visible changed (topology, maintenance, or ladder
  //    position). Quiet waves publish nothing — readers keep the epoch
  //    they have, and the epoch counter stays meaningful.
  if (snapshots_ != nullptr &&
      (report.events_applied > 0 || report.repaired ||
       ladder_ != last_published_state_)) {
    report.epoch = publish_snapshot(g_surv);
  }

  if (report.repaired) {
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::kRepair, to_string(report.repair),
        report.repaired_candidates, report.debt);
  }

  report.seconds = timer.seconds();
  export_metrics(report);
  DCS_LOG(Debug) << report.summary();
  ++wave_;
  return report;
}

}  // namespace dcs
