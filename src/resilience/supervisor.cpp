#include "resilience/supervisor.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#define DCS_LOG_COMPONENT "supervisor"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/durability.hpp"
#include "serve/snapshot.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace dcs {

const char* to_string(SupervisorState state) {
  switch (state) {
    case SupervisorState::kHealthy: return "healthy";
    case SupervisorState::kDegraded: return "degraded";
    case SupervisorState::kRepairing: return "repairing";
    case SupervisorState::kRebuilding: return "rebuilding";
    case SupervisorState::kLost: return "lost";
  }
  return "?";
}

std::string SupervisorReport::summary() const {
  std::ostringstream os;
  os << "wave " << wave << ": " << to_string(state) << ", " << events_applied
     << " events, +" << new_candidates << " endangered";
  if (repaired) {
    os << ", repair " << to_string(repair) << " (" << repaired_candidates
       << " edges)";
  }
  if (checked) {
    os << ", certificate " << to_string(certificate) << " (alpha "
       << certified_alpha << ")";
  }
  os << ", debt " << debt;
  if (epoch != 0) os << ", epoch " << epoch;
  return os.str();
}

SpannerSupervisor::SpannerSupervisor(const Graph& g, Graph h,
                                     SupervisorOptions options)
    : g_(g),
      h_(std::move(h)),
      options_(options),
      state_(g.num_vertices()),
      // The initial spanner arrives certified; start the ladder at healthy
      // with a full hysteresis streak behind it.
      held_streak_(options.hysteresis) {
  DCS_REQUIRE(h_.num_vertices() == g_.num_vertices() &&
                  g_.contains_subgraph(h_),
              "initial spanner must be a subgraph of the network");
  DCS_REQUIRE(options_.recheck_interval >= 1,
              "recheck interval must be >= 1");
  DCS_REQUIRE(options_.min_repair_batch >= 1,
              "min repair batch must be >= 1");
  last_check_.distance = GuaranteeStatus::kHeld;
  last_check_.certified_alpha = options_.health.alpha;
}

void SpannerSupervisor::refresh_debt() {
  // Later faults may have killed queued endangered edges; repairing a dead
  // edge would splice dead endpoints back into the spanner.
  std::deque<Edge> kept;
  for (Edge e : debt_) {
    if (state_.edge_alive(e) && g_.has_edge(e.u, e.v)) {
      kept.push_back(e);
    } else {
      debt_set_.erase(e);
    }
  }
  debt_.swap(kept);
}

void SpannerSupervisor::export_metrics(const SupervisorReport& report) {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::instance();
  reg.gauge("supervisor.state")
      .set(static_cast<double>(static_cast<std::uint8_t>(report.state)));
  reg.gauge("supervisor.repair_debt")
      .set(static_cast<double>(report.debt));
  reg.gauge("supervisor.certified_alpha").set(report.certified_alpha);
  reg.counter("supervisor.waves").inc();
  reg.counter("supervisor.events").inc(report.events_applied);
  if (report.repaired) {
    reg.counter(report.repair == RepairOutcome::kRebuilt
                    ? "supervisor.rebuilds"
                    : "supervisor.repairs")
        .inc();
  }
  if (report.checked) reg.counter("supervisor.recertifications").inc();
  reg.histogram("supervisor.wave_candidates")
      .record(static_cast<double>(report.new_candidates));
  reg.histogram("supervisor.step_ms").record(report.seconds * 1e3);
}

void SpannerSupervisor::attach_snapshots(serve::SnapshotStore* store) {
  snapshots_ = store;
  if (snapshots_ == nullptr) return;
  DCS_REQUIRE(snapshots_->num_vertices() == g_.num_vertices(),
              "snapshot store vertex count must match the network");
  // Publish immediately: the serving plane must never read a view older
  // than the supervisor's current one.
  publish_snapshot(state_.surviving(g_));
}

std::uint64_t SpannerSupervisor::publish_snapshot(const Graph& g_surv) {
  serve::SpannerCertificate cert;
  cert.alpha = last_check_.certified_alpha;
  cert.beta = options_.health.beta;
  cert.status = last_check_.distance;
  cert.ladder = ladder_;
  cert.fresh = !cert_dirty_;
  last_published_state_ = ladder_;
  const std::uint64_t epoch = snapshots_->publish(g_surv, h_, cert);
  last_epoch_ = epoch;
  obs::FlightRecorder::instance().record(obs::FlightEventKind::kEpochPublish,
                                         to_string(ladder_), epoch, wave_);
  return epoch;
}

void SpannerSupervisor::attach_durability(
    persist::DurabilityManager* durability) {
  durability_ = durability;
}

persist::CheckpointData SpannerSupervisor::make_checkpoint() const {
  persist::CheckpointData data;
  data.wave = wave_;
  data.epoch = last_epoch_;
  data.graph = g_;
  data.spanner = h_;
  data.down_vertices = state_.down_vertices();
  data.down_edges = state_.down_edges();
  data.debt.assign(debt_.begin(), debt_.end());
  data.debt_oldest_wave = debt_oldest_wave_;
  data.repairs = repairs_;
  data.rebuilds = rebuilds_;
  data.last_rebuild_wave = last_rebuild_wave_;
  data.last_check_wave = last_check_wave_;
  data.held_streak = held_streak_;
  data.emergency_rebuild = emergency_rebuild_;
  data.cert_dirty = cert_dirty_;
  return data;
}

bool SpannerSupervisor::checkpoint_now() {
  if (durability_ == nullptr) return false;
  return durability_->checkpoint(make_checkpoint());
}

void SpannerSupervisor::force_recertify() {
  const HealthMonitor monitor(g_, options_.health);
  const Graph g_surv = state_.surviving(g_);
  last_check_ = monitor.check_surviving(g_surv, h_, state_);
  last_check_wave_ = wave_;
  cert_dirty_ = false;
  // Conservative streak: one held check is evidence, not a track record —
  // the recovered supervisor re-earns kHealthy through normal hysteresis.
  held_streak_ = last_check_.distance == GuaranteeStatus::kHeld ? 1 : 0;
  if (debt_.empty() && last_check_.distance == GuaranteeStatus::kLost) {
    ladder_ = SupervisorState::kLost;
    emergency_rebuild_ = true;
  } else if (!debt_.empty()) {
    ladder_ = SupervisorState::kRepairing;
  } else if (last_check_.distance == GuaranteeStatus::kHeld &&
             held_streak_ >= options_.hysteresis) {
    ladder_ = SupervisorState::kHealthy;
  } else {
    ladder_ = SupervisorState::kDegraded;
  }
}

SupervisorReport SpannerSupervisor::step(std::span<const FaultEvent> events) {
  DCS_TRACE_SPAN("supervisor_step");
  Timer timer;
  SupervisorReport report;
  report.wave = wave_;

  // 0. Write-ahead: the wave's events hit the log before any derived state
  //    changes, so a crash anywhere in this step replays the whole wave.
  //    A WAL failure degrades durability, never the maintenance loop.
  if (durability_ != nullptr) {
    durability_->log_wave(wave_, events);
  }

  // 1. Land the wave: update the overlay, drop dead spanner edges, and
  //    queue the endangered edges as repair debt.
  state_.apply(events);
  report.events_applied = events.size();
  const Graph g_surv = state_.surviving(g_);
  h_ = state_.surviving(h_);
  if (!events.empty()) cert_dirty_ = true;

  if (!events.empty()) {
    const auto candidates = repair_candidates(g_, g_surv, events);
    for (Edge e : candidates) {
      if (debt_set_.insert(e)) {
        if (debt_.empty()) debt_oldest_wave_ = wave_;
        debt_.push_back(e);
      }
    }
    report.new_candidates = candidates.size();
  }
  refresh_debt();

  // 2. Pay the debt down — full rebuild past the debt ceiling (debounced),
  //    budgeted incremental repair otherwise.
  const bool over_ceiling =
      options_.rebuild_debt > 0 && debt_.size() > options_.rebuild_debt;
  const bool debounce_ok =
      rebuilds_ == 0 ||
      wave_ - last_rebuild_wave_ >= options_.rebuild_debounce;
  if (emergency_rebuild_ || (over_ceiling && debounce_ok)) {
    const auto rebuilt = rebuild_spanner(g_surv, options_.repair);
    h_ = rebuilt.h;
    debt_.clear();
    debt_set_ = EdgeSet();
    ++rebuilds_;
    last_rebuild_wave_ = wave_;
    emergency_rebuild_ = false;
    report.repaired = true;
    report.repair = RepairOutcome::kRebuilt;
    DCS_LOG(Info) << "wave " << wave_ << ": full rebuild ("
                  << (over_ceiling ? "debt ceiling" : "emergency") << ")";
  } else if (!debt_.empty() &&
             (debt_.size() >= options_.min_repair_batch ||
              wave_ - debt_oldest_wave_ >= options_.max_defer_waves)) {
    const std::size_t batch_size =
        options_.repair_budget == 0
            ? debt_.size()
            : std::min(options_.repair_budget, debt_.size());
    std::vector<Edge> batch(debt_.begin(), debt_.begin() + batch_size);
    const auto repaired =
        repair_spanner(g_surv, h_, std::span<const Edge>(batch),
                       options_.repair);
    h_ = repaired.h;
    debt_.erase(debt_.begin(), debt_.begin() + batch_size);
    for (Edge e : batch) debt_set_.erase(e);
    if (!debt_.empty()) debt_oldest_wave_ = wave_;
    ++repairs_;
    report.repaired = true;
    report.repair = repaired.outcome;
    report.repaired_candidates = batch_size;

    if (repair_bug_) {
      // Harness self-test fault: silently lose one repaired edge. See
      // inject_repair_bug().
      for (Edge e : batch) {
        if (h_.has_edge(e.u, e.v)) {
          auto edges = h_.edges();
          std::erase(edges, canonical(e));
          h_ = Graph::from_edges(h_.num_vertices(), edges);
          break;
        }
      }
    }
  }

  // 3. Recertify: always after maintenance, at least every
  //    recheck_interval waves otherwise.
  if (report.repaired) cert_dirty_ = true;
  const bool check_due =
      report.repaired || wave_ - last_check_wave_ >= options_.recheck_interval;
  if (check_due) {
    const HealthMonitor monitor(g_, options_.health);
    last_check_ = monitor.check_surviving(g_surv, h_, state_);
    last_check_wave_ = wave_;
    report.checked = true;
    // The certificate now describes exactly this wave's post-maintenance
    // topology — the next published snapshot is `fresh`.
    cert_dirty_ = false;
    if (last_check_.distance == GuaranteeStatus::kHeld) {
      ++held_streak_;
    } else {
      held_streak_ = 0;
    }
  }
  report.certificate = last_check_.distance;
  report.certified_alpha = last_check_.certified_alpha;

  // 4. Advance the degradation ladder.
  const SupervisorState ladder_before = ladder_;
  if (debt_.empty() && report.checked &&
      last_check_.distance == GuaranteeStatus::kLost) {
    // Nothing left to repair yet the certificate is gone: the maintenance
    // loop failed. Schedule an emergency rebuild for the next step.
    ladder_ = SupervisorState::kLost;
    emergency_rebuild_ = true;
    DCS_LOG(Error) << "wave " << wave_
                   << ": certificate lost with zero repair debt";
  } else if (report.repair == RepairOutcome::kRebuilt && report.repaired) {
    ladder_ = SupervisorState::kRebuilding;
  } else if (report.repaired || !debt_.empty()) {
    ladder_ = SupervisorState::kRepairing;
  } else if (last_check_.distance == GuaranteeStatus::kHeld &&
             held_streak_ >= options_.hysteresis) {
    ladder_ = SupervisorState::kHealthy;
  } else {
    ladder_ = SupervisorState::kDegraded;
  }

  if (ladder_ != ladder_before) {
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::kLadder, to_string(ladder_),
        static_cast<std::uint64_t>(ladder_before),
        static_cast<std::uint64_t>(ladder_));
  }

  report.state = ladder_;
  report.debt = debt_.size();

  // 5. Hand the wave to the serving plane: publish a new epoch whenever
  //    anything serving-visible changed (topology, maintenance, or ladder
  //    position). Quiet waves publish nothing — readers keep the epoch
  //    they have, and the epoch counter stays meaningful.
  if (snapshots_ != nullptr &&
      (report.events_applied > 0 || report.repaired ||
       ladder_ != last_published_state_)) {
    report.epoch = publish_snapshot(g_surv);
  }

  if (report.repaired) {
    obs::FlightRecorder::instance().record(
        obs::FlightEventKind::kRepair, to_string(report.repair),
        report.repaired_candidates, report.debt);
  }

  report.seconds = timer.seconds();
  export_metrics(report);
  DCS_LOG(Debug) << report.summary();
  ++wave_;

  // 6. Checkpoint cadence: after the wave is fully consumed (wave_ already
  //    advanced, so the stored wave is "waves consumed" and WAL replay
  //    resumes exactly here). A failed cut leaves the previous generation
  //    and its WAL authoritative.
  if (durability_ != nullptr && options_.checkpoint_interval > 0 &&
      wave_ % options_.checkpoint_interval == 0) {
    checkpoint_now();
  }
  return report;
}

std::string SupervisorRecovery::summary() const {
  std::ostringstream os;
  if (!ok) {
    os << "recovery failed closed: " << error;
    return os.str();
  }
  os << "recovered generation " << generation << " (wave " << checkpoint_wave
     << " + " << wal_waves_replayed << " wal waves, "
     << wal_events_replayed << " events)";
  if (generations_skipped > 0) {
    os << ", " << generations_skipped << " corrupt generation(s) skipped";
  }
  if (wal_truncated) os << ", torn wal tail truncated";
  os << ", certificate " << to_string(certificate) << " (alpha "
     << certified_alpha << ")";
  if (!recheckpointed) os << ", re-checkpoint failed";
  os << ", " << seconds * 1e3 << " ms";
  return os.str();
}

std::unique_ptr<SpannerSupervisor> SpannerSupervisor::recover(
    const Graph& g, persist::DurabilityManager& durability,
    SupervisorOptions options, SupervisorRecovery& report) {
  Timer total;
  report = SupervisorRecovery{};

  Timer load_timer;
  auto loaded = durability.recover();
  if (!loaded.has_value()) {
    report.error = durability.last_error();
    return nullptr;
  }
  persist::CheckpointData& ckpt = loaded->checkpoint;
  report.generation = loaded->generation;
  report.checkpoint_wave = ckpt.wave;
  report.generations_skipped = loaded->generations_skipped;
  report.wal_truncated = loaded->wal_truncated;
  report.pre_crash_epoch = ckpt.epoch;

  // The checkpoint is self-contained; the caller's graph must be the same
  // network or the spanner/debt/overlay are meaningless against it.
  if (!(ckpt.graph == g)) {
    report.error = "checkpoint network differs from the provided graph";
    DCS_LOG(Error) << "recovery failed closed: " << report.error;
    return nullptr;
  }
  report.load_seconds = load_timer.seconds();

  // Reconstruct the supervisor at the checkpoint wave. The constructor
  // re-verifies H ⊆ G; private state is restored field by field (recover is
  // a member, so it may).
  auto sup = std::unique_ptr<SpannerSupervisor>(
      new SpannerSupervisor(g, std::move(ckpt.spanner), options));
  for (Vertex v : ckpt.down_vertices) {
    sup->state_.apply(FaultEvent::vertex_down(ckpt.wave, v));
  }
  for (Edge e : ckpt.down_edges) {
    sup->state_.apply(FaultEvent::edge_down(ckpt.wave, e));
  }
  sup->wave_ = static_cast<std::size_t>(ckpt.wave);
  sup->repairs_ = static_cast<std::size_t>(ckpt.repairs);
  sup->rebuilds_ = static_cast<std::size_t>(ckpt.rebuilds);
  sup->last_rebuild_wave_ = static_cast<std::size_t>(ckpt.last_rebuild_wave);
  sup->last_check_wave_ = static_cast<std::size_t>(ckpt.last_check_wave);
  sup->held_streak_ = static_cast<std::size_t>(ckpt.held_streak);
  sup->emergency_rebuild_ = ckpt.emergency_rebuild;
  sup->cert_dirty_ = ckpt.cert_dirty;
  sup->debt_oldest_wave_ = static_cast<std::size_t>(ckpt.debt_oldest_wave);
  for (Edge e : ckpt.debt) {
    if (sup->debt_set_.insert(e)) sup->debt_.push_back(e);
  }
  // A checkpoint that passed decoding but whose spanner contradicts its
  // own fault overlay could still smuggle in dead edges; reject it here
  // rather than serve paths through crashed elements.
  for (Edge e : sup->h_.edges()) {
    if (!sup->state_.edge_alive(e)) {
      report.error = "checkpoint spanner contains a crashed edge";
      DCS_LOG(Error) << "recovery failed closed: " << report.error;
      return nullptr;
    }
  }

  // Replay the WAL through the normal maintenance path. Every stage is
  // seeded/deterministic, so this reproduces the pre-crash state exactly.
  Timer replay_timer;
  for (const persist::WalWave& wave : loaded->wal) {
    report.wal_events_replayed += wave.events.size();
    sup->step(std::span<const FaultEvent>(wave.events));
    ++report.wal_waves_replayed;
  }
  report.replay_seconds = replay_timer.seconds();

  // Never trust a certificate that was in memory when the process died:
  // recertify against the live topology before anything gets served.
  Timer recheck_timer;
  sup->force_recertify();
  report.recheck_seconds = recheck_timer.seconds();
  report.certificate = sup->last_check_.distance;
  report.certified_alpha = sup->last_check_.certified_alpha;

  // End recovery on a fresh durable generation: the replayed WAL is now
  // baked into a checkpoint and new waves log against it.
  sup->attach_durability(&durability);
  report.recheckpointed = sup->checkpoint_now();

  report.ok = true;
  report.seconds = total.seconds();
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.gauge("persist.recovery.total_ms").set(report.seconds * 1e3);
    reg.gauge("persist.recovery.replay_ms").set(report.replay_seconds * 1e3);
    reg.gauge("persist.recovery.recheck_ms")
        .set(report.recheck_seconds * 1e3);
    reg.gauge("persist.recovery.certificate")
        .set(static_cast<double>(
            static_cast<std::uint8_t>(report.certificate)));
    reg.counter("persist.recovery.completed").inc();
  }
  obs::FlightRecorder::instance().record(
      obs::FlightEventKind::kCustom, "recovery-complete", loaded->generation,
      sup->wave_);
  DCS_LOG(Info) << report.summary();
  return sup;
}

}  // namespace dcs
