#include "resilience/failure_injector.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

namespace {

// Within a wave recoveries are applied before crashes, so an element that
// flaps back up can be crashed again in the same wave without the two
// events cancelling in the wrong order.
int kind_rank(FaultKind kind) {
  switch (kind) {
    case FaultKind::kVertexUp:
    case FaultKind::kEdgeUp:
      return 0;
    case FaultKind::kVertexDown:
    case FaultKind::kEdgeDown:
      return 1;
  }
  return 2;
}

bool event_order(const FaultEvent& a, const FaultEvent& b) {
  if (a.wave != b.wave) return a.wave < b.wave;
  const int ra = kind_rank(a.kind);
  const int rb = kind_rank(b.kind);
  if (ra != rb) return ra < rb;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

const char* kind_token(FaultKind kind) {
  switch (kind) {
    case FaultKind::kVertexDown: return "v-";
    case FaultKind::kVertexUp: return "v+";
    case FaultKind::kEdgeDown: return "e-";
    case FaultKind::kEdgeUp: return "e+";
  }
  return "?";
}

}  // namespace

std::size_t FailureSchedule::num_waves() const {
  return events.empty() ? 0 : events.back().wave + 1;
}

std::span<const FaultEvent> FailureSchedule::wave(std::size_t w) const {
  const auto lo = std::lower_bound(
      events.begin(), events.end(), w,
      [](const FaultEvent& e, std::size_t v) { return e.wave < v; });
  const auto hi = std::upper_bound(
      events.begin(), events.end(), w,
      [](std::size_t v, const FaultEvent& e) { return v < e.wave; });
  return {events.data() + (lo - events.begin()),
          static_cast<std::size_t>(hi - lo)};
}

std::size_t FailureSchedule::vertex_crashes() const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(), [](const FaultEvent& e) {
        return e.kind == FaultKind::kVertexDown;
      }));
}

std::size_t FailureSchedule::edge_crashes() const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(), [](const FaultEvent& e) {
        return e.kind == FaultKind::kEdgeDown;
      }));
}

void write_schedule(std::ostream& os, const FailureSchedule& schedule) {
  for (const FaultEvent& e : schedule.events) {
    os << e.wave << ' ' << kind_token(e.kind) << ' ' << e.u;
    if (e.kind == FaultKind::kEdgeDown || e.kind == FaultKind::kEdgeUp) {
      os << ' ' << e.v;
    }
    os << '\n';
  }
}

FailureSchedule read_schedule(std::istream& is) {
  FailureSchedule schedule;
  std::string line;
  std::size_t lineno = 0;
  std::size_t prev_wave = 0;
  const auto at = [&] { return " at line " + std::to_string(lineno); };
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    // iostreams silently wrap "-1" into a huge unsigned id, so a negative
    // token must be rejected up front. The kind tokens "v-"/"e-" carry the
    // only legitimate '-'.
    for (std::size_t i = first; i < line.size(); ++i) {
      DCS_REQUIRE(line[i] != '-' ||
                      (i > 0 && (line[i - 1] == 'v' || line[i - 1] == 'e')),
                  "negative value" + at());
    }
    std::istringstream ls(line);
    std::size_t wave = 0;
    std::string token;
    DCS_REQUIRE(static_cast<bool>(ls >> wave >> token),
                "truncated schedule line" + at());
    DCS_REQUIRE(schedule.events.empty() || wave >= prev_wave,
                "non-monotone wave " + std::to_string(wave) + " after " +
                    std::to_string(prev_wave) + at());
    FaultEvent event;
    if (token == "v-" || token == "v+") {
      Vertex u = kInvalidVertex;
      DCS_REQUIRE(static_cast<bool>(ls >> u), "missing vertex" + at());
      event = token == "v-" ? FaultEvent::vertex_down(wave, u)
                            : FaultEvent::vertex_up(wave, u);
    } else if (token == "e-" || token == "e+") {
      Vertex u = kInvalidVertex;
      Vertex v = kInvalidVertex;
      DCS_REQUIRE(static_cast<bool>(ls >> u >> v),
                  "missing edge endpoint" + at());
      DCS_REQUIRE(u != v, "self-loop edge" + at());
      event = token == "e-" ? FaultEvent::edge_down(wave, {u, v})
                            : FaultEvent::edge_up(wave, {u, v});
    } else {
      DCS_REQUIRE(false, "unknown event kind '" + token + "'" + at());
    }
    ls >> std::ws;
    DCS_REQUIRE(ls.eof(), "trailing garbage" + at());
    schedule.events.push_back(event);
    prev_wave = wave;
  }
  // Normalize within-wave order (recoveries before crashes); waves are
  // already verified monotone, so this is canonicalization, not repair.
  std::sort(schedule.events.begin(), schedule.events.end(), event_order);
  return schedule;
}

FailureInjector::FailureInjector(const Graph& g,
                                 const FailureInjectorOptions& options)
    : g_(g), options_(options) {
  DCS_REQUIRE(options_.waves >= 1, "schedule needs at least one wave");
  DCS_REQUIRE(options_.edge_fault_fraction >= 0.0 &&
                  options_.edge_fault_fraction <= 1.0,
              "edge fault fraction must be in [0, 1]");
  DCS_REQUIRE(options_.flap_probability >= 0.0 &&
                  options_.flap_probability <= 1.0,
              "flap probability must be in [0, 1]");
  DCS_REQUIRE(options_.flap_duration >= 1, "flap duration must be >= 1");
}

FailureSchedule FailureInjector::generate() const {
  return generate_impl(nullptr);
}

FailureSchedule FailureInjector::generate_adversarial(
    const Routing& routing) const {
  const auto loads = node_loads(routing, g_.num_vertices());
  return generate_impl(&loads);
}

FailureSchedule FailureInjector::generate_impl(
    const std::vector<std::size_t>* loads) const {
  const std::size_t n = g_.num_vertices();
  FailureSchedule schedule;
  FaultState state(n);
  // Recoveries scheduled by earlier waves, keyed by the wave they fire in.
  std::map<std::size_t, std::vector<FaultEvent>> pending_up;

  for (std::size_t w = 0; w < options_.waves; ++w) {
    Rng rng(mix64(options_.seed, w));

    // Flapped elements recover before this wave's crashes land.
    if (auto it = pending_up.find(w); it != pending_up.end()) {
      for (const FaultEvent& up : it->second) {
        state.apply(up);
        schedule.events.push_back(up);
      }
      pending_up.erase(it);
    }

    auto emit = [&](FaultEvent down) {
      state.apply(down);
      schedule.events.push_back(down);
      if (options_.flap_probability > 0.0 &&
          rng.bernoulli(options_.flap_probability)) {
        FaultEvent up = down;
        up.wave = w + options_.flap_duration;
        up.kind = down.kind == FaultKind::kVertexDown ? FaultKind::kVertexUp
                                                      : FaultKind::kEdgeUp;
        pending_up[up.wave].push_back(up);
      }
    };

    // Vertex crashes.
    if (options_.vertex_faults_per_wave > 0) {
      std::vector<Vertex> alive;
      alive.reserve(n);
      for (Vertex v = 0; v < n; ++v) {
        if (state.vertex_alive(v)) alive.push_back(v);
      }
      const std::size_t count =
          std::min(options_.vertex_faults_per_wave, alive.size());
      if (loads != nullptr) {
        std::stable_sort(alive.begin(), alive.end(),
                         [&](Vertex a, Vertex b) {
                           if ((*loads)[a] != (*loads)[b]) {
                             return (*loads)[a] > (*loads)[b];
                           }
                           return a < b;
                         });
      } else {
        rng.shuffle(alive);
      }
      for (std::size_t i = 0; i < count; ++i) {
        emit(FaultEvent::vertex_down(w, alive[i]));
      }
    }

    // Edge crashes among the edges still alive after this wave's vertex
    // crashes (crashing an edge of a dead vertex would be a no-op).
    std::vector<Edge> live;
    live.reserve(g_.num_edges());
    for (Edge e : g_.edges()) {
      if (state.edge_alive(e)) live.push_back(e);
    }
    std::size_t edge_count =
        static_cast<std::size_t>(options_.edge_fault_fraction *
                                 static_cast<double>(live.size())) +
        options_.edge_faults_per_wave;
    edge_count = std::min(edge_count, live.size());
    if (edge_count > 0) {
      if (loads != nullptr) {
        std::stable_sort(live.begin(), live.end(), [&](Edge a, Edge b) {
          const std::size_t la = (*loads)[a.u] + (*loads)[a.v];
          const std::size_t lb = (*loads)[b.u] + (*loads)[b.v];
          if (la != lb) return la > lb;
          return a < b;
        });
      } else {
        rng.shuffle(live);
      }
      for (std::size_t i = 0; i < edge_count; ++i) {
        emit(FaultEvent::edge_down(w, live[i]));
      }
    }
  }

  // Recoveries that fire after the last injection wave still belong to the
  // log (the router observes them as late link recoveries).
  for (auto& [wave, ups] : pending_up) {
    for (const FaultEvent& up : ups) schedule.events.push_back(up);
  }

  std::sort(schedule.events.begin(), schedule.events.end(), event_order);
  return schedule;
}

}  // namespace dcs
