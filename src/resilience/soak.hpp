#pragma once

// Chaos-soak harness: thousands of churn waves against a supervised
// spanner, with every run checked against explicit invariants and every
// violation automatically shrunk to a minimal replayable schedule.
//
// One soak iteration per wave:
//
//  1. the ChurnEngine emits the next wave of crashes/recoveries (or, in
//     replay mode, the wave comes from a recorded FailureSchedule);
//  2. the SpannerSupervisor lands the wave, pays repair debt, recertifies;
//  3. every `traffic_interval` waves a store-and-forward traffic burst
//     (a surviving-network matching routed over the live spanner, with
//     the overload protections of packet_sim engaged) exercises the
//     degraded data plane;
//  4. when `qps` > 0, a closed-loop batch of skewed distance/route
//     queries is served *during* the churn through a snapshot-backed
//     QueryEngine (the live-oracle path: the supervisor publishes
//     epochs, the engine pins them per batch and invalidates its caches
//     on adoption);
//  5. the invariants are checked:
//       * supervisor-lost        — the ladder never reaches kLost;
//       * certificate-after-repair — a recertification with zero
//         outstanding debt must certify α (the repair engine guarantees
//         a 3-spanner of the survivors deterministically);
//       * packet-leak            — delivered + shed + in-flight equals
//         injected for every traffic burst;
//       * repair-debt-monotone   — debt only grows by the wave's newly
//         endangered edges; it never appears from nowhere;
//       * query-certified        — every served answer is exact on the
//         snapshot it was pinned to AND inside the published (α,β)
//         envelope (d_H ≤ α_cert·d_G via per-edge subdivision), every
//         shed carries a valid structured reason, and conservation
//         (served + shed == submitted) holds across epoch boundaries;
//       * recovery-certified     — in crash-recovery mode (persist_dir +
//         crash_at_wave) the supervisor is destroyed mid-run without any
//         flush and rebuilt via SpannerSupervisor::recover(): the
//         recovered state must equal the pre-crash state exactly (wave
//         count, spanner topology, surviving network, repair debt — WAL
//         replay is deterministic), recertify to a non-lost certificate,
//         and serve a probe query batch whose every answer passes the
//         query-certified checks.
//
// On the first violation the harness stops, re-runs the recorded schedule
// through the delta-debugging minimizer (replays are deterministic, so
// reproduction is exact), and — when an artifact directory is set —
// writes the full schedule, the minimized schedule, and a JSON report
// next to each other, ready for `dcs_tool soak --replay`.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "resilience/churn_engine.hpp"
#include "resilience/minimizer.hpp"
#include "resilience/supervisor.hpp"
#include "routing/packet_sim.hpp"

namespace dcs {

struct SoakOptions {
  std::uint64_t seed = 1;
  std::size_t waves = 1000;

  ChurnEngineOptions churn;       ///< churn rates (seed is overridden)
  SupervisorOptions supervisor;   ///< maintenance policy

  /// Run a traffic burst every this many waves (0 = no traffic).
  std::size_t traffic_interval = 10;
  /// Overload protection for the traffic bursts (seed is overridden
  /// per-burst so every burst is independently reproducible).
  PacketSimOptions sim{.max_rounds = 1u << 12,
                       .queue_capacity = 64,
                       .deadline = 1u << 11};

  /// Shrink the schedule with ddmin after a violation.
  bool minimize_on_violation = true;
  MinimizerOptions minimizer;

  /// When non-empty: write schedule.txt, minimized.txt (on violation), and
  /// soak.json into this directory (created if missing).
  std::string artifacts_dir;

  /// Harness self-test: enable SpannerSupervisor::inject_repair_bug() so a
  /// deliberately broken maintenance loop proves the invariants and the
  /// minimizer actually catch bugs.
  bool inject_repair_bug = false;

  /// Closed-loop query traffic: queries served per wave (0 = none)
  /// through a snapshot-backed QueryEngine riding the supervisor's
  /// published epochs. The engine's policy is the strict live-oracle one:
  /// shed at kRebuilding and require a fresh certificate, so every served
  /// answer stands on a certificate measured against its own epoch.
  std::size_t qps = 0;

  /// Dispatcher shards for the query engine (requires qps > 0 to matter).
  /// 1 keeps the synchronous serve_batch path; >1 starts the engine and
  /// drives each wave's queries through submit() futures instead, so the
  /// sharded dispatch plane — per-shard EDF, work stealing, shared-pin
  /// epoch adoption — soaks under churn and crash-recovery too.
  std::size_t dispatchers = 1;

  /// Harness self-test: enable QueryEngine::inject_stale_cache_bug() so a
  /// distance-row cache that survives epoch swaps proves the
  /// query-certified invariant catches stale reads (requires qps > 0).
  bool inject_stale_cache_bug = false;

  /// When non-empty: attach a persist::DurabilityManager on this
  /// directory, checkpoint every `checkpoint_interval` waves, and
  /// write-ahead log every wave between checkpoints.
  std::string persist_dir;
  std::size_t checkpoint_interval = 16;

  /// Crash-recovery mode (requires persist_dir): immediately before
  /// consuming this wave, simulate a kill -9 — the supervisor and serving
  /// plane are destroyed with no flush — then recover from disk and check
  /// the recovery-certified invariant before the soak continues. 0 = no
  /// crash. The churn engine deliberately survives: it models the
  /// environment, which does not crash with the process.
  std::size_t crash_at_wave = 0;

  /// Graceful-shutdown hook: when non-null and set (e.g. from a SIGTERM
  /// handler), the soak stops at the next wave boundary with its result —
  /// and therefore its artifacts — intact.
  const std::atomic<bool>* stop_flag = nullptr;
};

struct SoakViolation {
  std::size_t wave = 0;
  std::string invariant;  ///< one of the names documented above
  std::string detail;
};

struct SoakResult {
  std::size_t waves_run = 0;
  std::vector<SoakViolation> violations;
  bool ok() const { return violations.empty(); }

  // Supervisor aggregates.
  std::size_t repairs = 0;
  std::size_t rebuilds = 0;
  std::size_t recertifications = 0;
  std::size_t max_debt = 0;
  SupervisorState worst_state = SupervisorState::kHealthy;
  SupervisorState final_state = SupervisorState::kHealthy;

  // Traffic aggregates.
  std::size_t sims_run = 0;
  std::size_t packets_injected = 0;
  std::size_t packets_delivered = 0;
  std::size_t packets_shed = 0;
  std::size_t max_queue = 0;

  // Query-serving aggregates (qps > 0). Conservation: submitted ==
  // served + shed, checked every wave by the query-certified invariant.
  std::size_t queries_submitted = 0;
  std::size_t queries_served = 0;
  std::size_t queries_shed = 0;      ///< structured kShedDegraded sheds
  std::size_t query_batches = 0;     ///< one per wave with qps > 0
  std::uint64_t epochs_published = 0;
  std::uint64_t epochs_adopted = 0;

  // Durability aggregates (persist_dir set).
  std::size_t checkpoints_written = 0;
  std::uint64_t final_generation = 0;
  bool crash_recovery_ran = false;   ///< the crash wave was reached
  std::size_t recovery_wal_replayed = 0;
  double recovery_seconds = 0.0;
  std::uint64_t recovery_generation = 0;

  /// True when a stop_flag shutdown ended the run early (not a failure).
  bool stopped_early = false;

  /// Every event the run consumed — replaying it reproduces the run.
  FailureSchedule schedule;

  /// Scalar metric deltas over the last executed wave (the violating wave
  /// when a violation stopped the run): the obs counters that moved during
  /// that wave alone, not the cumulative totals. Metrics are force-enabled
  /// for the soak's duration (and restored after) so the deltas exist even
  /// when the caller runs with metrics off. Exported into soak.json.
  obs::MetricsValueSnapshot wave_metrics_delta;
  std::size_t wave_metrics_wave = 0;

  /// Filled when a violation was minimized.
  bool minimized_available = false;
  FailureSchedule minimized;
  std::size_t minimizer_evaluations = 0;
  bool minimized_is_minimal = false;

  std::string summary() const;
};

/// Soaks `h` (a certified spanner of `g`) under freshly generated churn.
SoakResult run_soak(const Graph& g, const Graph& h,
                    const SoakOptions& options);

/// Re-runs a recorded schedule instead of generating churn: wave w of the
/// schedule is consumed at soak wave w, for `options.waves` waves (pass
/// the original run's `waves_run` for an exact replay). Used by the
/// minimizer's reproduction predicate and by `dcs_tool soak --replay`.
SoakResult replay_soak(const Graph& g, const Graph& h,
                       const FailureSchedule& schedule,
                       const SoakOptions& options);

/// Writes the artifact files for `result` into `dir` (created if
/// missing): schedule.txt, minimized.txt (when available), soak.json, and
/// flight.json (the flight recorder's event tail — on a violation its
/// last events are the epoch-publish / shed / invariant sequence that
/// explains it).
void write_soak_artifacts(const std::string& dir, const SoakResult& result);

}  // namespace dcs
