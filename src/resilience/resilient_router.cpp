#include "resilience/resilient_router.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>

#include "graph/bfs.hpp"
#include "routing/rerouting.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

const char* to_string(PacketFate fate) {
  switch (fate) {
    case PacketFate::kDelivered: return "delivered";
    case PacketFate::kDroppedUnreachable: return "unreachable";
    case PacketFate::kDroppedRetryLimit: return "retry-limit";
    case PacketFate::kInFlight: return "in-flight";
  }
  return "?";
}

namespace {

struct PacketState {
  Path path;          // current plan; path[pos] is the packet's node
  std::size_t pos = 0;
  Vertex source = kInvalidVertex;
  Vertex destination = kInvalidVertex;
  std::size_t reroutes = 0;
  bool parked = false;
};

}  // namespace

ResilientSimResult simulate_resilient(const Graph& g, const Routing& routing,
                                      const FailureSchedule& schedule,
                                      const ResilientRouterOptions& options) {
  DCS_REQUIRE(options.wave_interval >= 1, "wave interval must be positive");
  DCS_REQUIRE(options.reroute_timeout >= 1, "reroute timeout must be positive");
  DCS_REQUIRE(options.backoff_factor >= 1, "backoff factor must be >= 1");

  const std::size_t n = g.num_vertices();
  const std::size_t packets = routing.paths.size();

  ResilientSimResult result;
  result.fate.assign(packets, PacketFate::kInFlight);
  result.latency.assign(packets, ResilientSimResult::kUndelivered);
  if (packets == 0) {
    result.status = SimStatus::kCompleted;
    return result;
  }

  std::vector<PacketState> ps(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    const Path& p = routing.paths[i];
    DCS_REQUIRE(!p.empty(), "packet with an empty path");
    for (std::size_t j = 0; j + 1 < p.size(); ++j) {
      DCS_REQUIRE(g.has_edge(p[j], p[j + 1]), "packet path uses a non-edge");
    }
    ps[i].path = p;
    ps[i].source = p.front();
    ps[i].destination = p.back();
  }

  FaultState state(n);
  Graph surviving = g;
  bool surviving_dirty = false;
  auto survivors = [&]() -> const Graph& {
    if (surviving_dirty) {
      surviving = state.surviving(g);
      surviving_dirty = false;
    }
    return surviving;
  };

  std::vector<std::deque<std::size_t>> queue(n);
  // Queued + parked packets per node: the buffer occupancy reroutes avoid.
  std::vector<std::size_t> buffered(n, 0);
  std::map<std::size_t, std::vector<std::size_t>> parked;  // deadline → ids
  Rng rng(mix64(options.seed, 0x7e5111e27ULL));

  std::size_t active = 0;
  std::size_t round = 0;

  auto backoff_wait = [&](std::size_t reroutes_so_far) {
    std::size_t wait = options.reroute_timeout;
    for (std::size_t k = 0; k < reroutes_so_far; ++k) {
      if (wait > options.max_rounds / options.backoff_factor) break;
      wait *= options.backoff_factor;
    }
    return wait;
  };

  auto finish = [&](std::size_t i, PacketFate fate) {
    result.fate[i] = fate;
    --active;
    if (fate == PacketFate::kDelivered) {
      result.latency[i] = round;
      result.makespan = std::max(result.makespan, round);
      ++result.delivered;
    } else if (fate == PacketFate::kDroppedUnreachable) {
      ++result.dropped_unreachable;
    } else if (fate == PacketFate::kDroppedRetryLimit) {
      ++result.dropped_retry_limit;
    }
  };

  auto park = [&](std::size_t i) {
    const std::size_t wait = backoff_wait(ps[i].reroutes);
    ps[i].parked = true;
    parked[round + wait].push_back(i);
    result.wait_rounds += wait;
    ++buffered[ps[i].path[ps[i].pos]];
  };

  // Final classification when the retry budget runs out: a packet whose
  // destination is dead or disconnected from its position is unreachable —
  // an explained drop any router would share.
  auto drop_exhausted = [&](std::size_t i, const Graph& live) {
    const Vertex cur = ps[i].path[ps[i].pos];
    const bool reachable =
        state.vertex_alive(cur) && state.vertex_alive(ps[i].destination) &&
        bfs_distance(live, cur, ps[i].destination) != kUnreachable;
    finish(i, reachable ? PacketFate::kDroppedRetryLimit
                        : PacketFate::kDroppedUnreachable);
  };

  // A packet whose node crashed: lost in flight, retransmitted from the
  // source after backoff (if the retry budget allows).
  auto lose_to_crash = [&](std::size_t i) {
    if (!state.vertex_alive(ps[i].source)) {
      finish(i, PacketFate::kDroppedUnreachable);
      return;
    }
    if (ps[i].reroutes >= options.max_reroutes) {
      finish(i, PacketFate::kDroppedRetryLimit);
      return;
    }
    ++ps[i].reroutes;
    ++result.retransmits;
    ps[i].path = {ps[i].source};
    ps[i].pos = 0;
    park(i);
  };

  // Plan a fresh route from the packet's current node on the survivors,
  // steering around hot buffers. Empty result = no route right now.
  auto plan_route = [&](std::size_t i) -> Path {
    const Vertex cur = ps[i].path[ps[i].pos];
    const Vertex dest = ps[i].destination;
    if (!state.vertex_alive(dest) || !state.vertex_alive(cur)) return {};
    const Graph& live = survivors();
    const std::size_t max_buf =
        *std::max_element(buffered.begin(), buffered.end());
    const auto threshold = std::max<std::size_t>(
        2, static_cast<std::size_t>(options.load_avoidance *
                                    static_cast<double>(max_buf)) + 1);
    Path p = load_avoiding_path(live, cur, dest, buffered, threshold, rng);
    if (p.empty()) p = bfs_shortest_path(live, cur, dest, &rng);
    return p;
  };

  // Seeded random injection order, as in simulate_store_and_forward.
  std::vector<std::size_t> order(packets);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng inject_rng(options.seed);
  inject_rng.shuffle(order);
  active = packets;
  for (std::size_t i : order) {
    if (ps[i].path.size() <= 1) {
      result.fate[i] = PacketFate::kDelivered;
      result.latency[i] = 0;
      ++result.delivered;
      --active;
    } else {
      queue[ps[i].source].push_back(i);
      ++buffered[ps[i].source];
    }
  }
  for (const auto& b : buffered) result.max_queue = std::max(result.max_queue, b);

  std::size_t next_wave = 0;
  std::vector<std::pair<Vertex, std::size_t>> arrivals;

  while (active > 0 && round < options.max_rounds) {
    ++round;

    // 1. Fault waves due this round.
    while (next_wave < schedule.num_waves() &&
           next_wave * options.wave_interval + 1 == round) {
      const auto events = schedule.wave(next_wave);
      state.apply(events);
      if (!events.empty()) surviving_dirty = true;
      ++next_wave;
      // Packets buffered at freshly-dead nodes are lost in flight.
      for (const FaultEvent& e : events) {
        if (e.kind != FaultKind::kVertexDown) continue;
        for (std::size_t i : queue[e.u]) {
          buffered[e.u] = buffered[e.u] > 0 ? buffered[e.u] - 1 : 0;
          lose_to_crash(i);
        }
        queue[e.u].clear();
      }
    }

    // 2. Parked packets whose deadline arrived re-enter the network.
    while (!parked.empty() && parked.begin()->first <= round) {
      auto it = parked.begin();
      std::vector<std::size_t> due = std::move(it->second);
      parked.erase(it);
      for (std::size_t i : due) {
        ps[i].parked = false;
        const Vertex cur = ps[i].path[ps[i].pos];
        buffered[cur] = buffered[cur] > 0 ? buffered[cur] - 1 : 0;
        if (!state.vertex_alive(cur)) {
          // The node died while the packet was parked on it.
          lose_to_crash(i);
          continue;
        }
        const bool mid_path = ps[i].pos + 1 < ps[i].path.size();
        if (mid_path &&
            state.edge_alive(cur, ps[i].path[ps[i].pos + 1])) {
          // The link flapped back: resume the original plan for free.
          queue[cur].push_back(i);
          ++buffered[cur];
          continue;
        }
        if (ps[i].reroutes >= options.max_reroutes) {
          drop_exhausted(i, survivors());
          continue;
        }
        Path fresh = plan_route(i);
        if (fresh.empty()) {
          // No route right now; wait out another backoff window in case
          // a transient fault recovers.
          ++ps[i].reroutes;
          park(i);
          continue;
        }
        ++ps[i].reroutes;
        ++result.reroutes;
        ps[i].path = std::move(fresh);
        ps[i].pos = 0;
        if (ps[i].path.size() <= 1) {
          finish(i, PacketFate::kDelivered);
          continue;
        }
        queue[cur].push_back(i);
        ++buffered[cur];
      }
    }

    // 3. Forwarding: each alive node sends the first packet in its queue
    // whose next hop is alive; stranded heads are parked, not blocking.
    arrivals.clear();
    for (Vertex v = 0; v < n; ++v) {
      if (queue[v].empty() || !state.vertex_alive(v)) continue;
      while (!queue[v].empty()) {
        const std::size_t i = queue[v].front();
        const Vertex next = ps[i].path[ps[i].pos + 1];
        if (state.edge_alive(v, next)) {
          queue[v].pop_front();
          buffered[v] = buffered[v] > 0 ? buffered[v] - 1 : 0;
          ++ps[i].pos;
          if (ps[i].pos + 1 == ps[i].path.size()) {
            finish(i, PacketFate::kDelivered);
          } else {
            arrivals.emplace_back(next, i);
          }
          break;  // node capacity 1: one forward per round
        }
        // Next hop dead: park and consider the next queued packet.
        queue[v].pop_front();
        buffered[v] = buffered[v] > 0 ? buffered[v] - 1 : 0;
        park(i);
      }
    }
    for (const auto& [node, i] : arrivals) {
      queue[node].push_back(i);
      ++buffered[node];
      result.max_queue = std::max(result.max_queue, buffered[node]);
    }
  }

  result.rounds = round;
  result.status =
      active == 0 ? SimStatus::kCompleted : SimStatus::kTimedOut;
  double total = 0.0;
  for (std::size_t i = 0; i < packets; ++i) {
    if (result.fate[i] == PacketFate::kDelivered) {
      total += static_cast<double>(result.latency[i]);
    }
  }
  result.mean_latency =
      result.delivered == 0
          ? 0.0
          : total / static_cast<double>(result.delivered);
  return result;
}

}  // namespace dcs
