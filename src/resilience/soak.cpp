#include "resilience/soak.hpp"

#include <algorithm>
#include <filesystem>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <sstream>

#define DCS_LOG_COMPONENT "soak"
#include "graph/bfs.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/durability.hpp"
#include "persist/fs.hpp"
#include "routing/matching.hpp"
#include "serve/query_engine.hpp"
#include "serve/snapshot.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

namespace {

// Domain-separation salts for the per-purpose seed streams.
constexpr std::uint64_t kChurnSalt = 0x5eedc0ffee01ULL;
constexpr std::uint64_t kTrafficSalt = 0x5eedc0ffee02ULL;
constexpr std::uint64_t kQuerySalt = 0x5eedc0ffee03ULL;
constexpr std::uint64_t kRecoverySalt = 0x5eedc0ffee04ULL;

/// A traffic burst at `wave`: a maximal matching of the surviving network
/// routed over the live spanner. Pairs the spanner cannot currently reach
/// (mid-repair damage) are skipped — the burst probes the data plane, not
/// the certificate; the certificate has its own invariant.
Routing burst_routing(const Graph& g_surv, const Graph& h_live,
                      std::uint64_t seed) {
  Rng rng(seed);
  const auto matched = greedy_maximal_matching(g_surv, seed);
  Routing routing;
  routing.paths.reserve(matched.size());
  for (Edge e : matched) {
    auto path = bfs_shortest_path(h_live, e.u, e.v, &rng);
    if (!path.empty()) routing.paths.push_back(std::move(path));
  }
  return routing;
}

/// Wave `w`'s closed-loop query batch: `qps` skewed distance/route
/// queries, a pure function of (seed, wave) so replays — including the
/// minimizer's — submit the identical traffic.
std::vector<serve::Query> wave_queries(std::uint64_t seed, std::size_t w,
                                       std::size_t qps, std::size_t n) {
  Rng rng(mix64(mix64(seed, kQuerySalt), w));
  // Half the sources come from a small hot set: skewed traffic is the
  // realistic case the 2Q cache exists for, and repeat sources are what
  // give a stale distance row the chance to answer (which is exactly the
  // read the query-certified invariant must catch).
  const std::uint64_t hot = std::min<std::uint64_t>(8, n);
  std::vector<serve::Query> batch(qps);
  for (serve::Query& q : batch) {
    q.kind = rng.uniform(4) == 0 ? serve::QueryKind::kRoute
                                 : serve::QueryKind::kDistance;
    q.u = static_cast<Vertex>(rng.uniform(2) == 0 ? rng.uniform(hot)
                                                  : rng.uniform(n));
    q.v = static_cast<Vertex>(rng.uniform(n));
  }
  return batch;
}

/// The query-certified invariant, one answer at a time. Returns a detail
/// string on the first violated clause:
///  * a served answer must carry the pinned epoch, be *exact* on that
///    snapshot's spanner (a stale cache row fails here), and sit inside
///    the published envelope d_H(u,v) ≤ α_cert·d_G(u,v) — sound for
///    kHeld/kDegraded certificates because every surviving G-edge is
///    measured, so the per-edge bound extends to pairs by subdividing a
///    shortest G-path;
///  * a shed answer must carry a structured reason the published
///    certificate actually justifies.
std::optional<std::string> check_query_answer(
    const serve::ServeSnapshot& snap, const serve::Query& q,
    const serve::QueryResult& r) {
  std::ostringstream os;
  os << (q.kind == serve::QueryKind::kDistance ? "distance" : "route") << " "
     << q.u << "->" << q.v << ": ";
  const serve::SpannerCertificate& cert = snap.certificate;

  if (r.outcome == serve::QueryOutcome::kShedDegraded) {
    const bool justified =
        cert.status == GuaranteeStatus::kLost || !cert.fresh ||
        cert.ladder >= SupervisorState::kRebuilding;
    if (justified) return std::nullopt;
    os << "shed-degraded without cause (certificate "
       << to_string(cert.status) << ", " << (cert.fresh ? "fresh" : "stale")
       << ", ladder " << to_string(cert.ladder) << ")";
    return os.str();
  }
  if (r.outcome != serve::QueryOutcome::kServed) {
    os << "unexpected outcome " << serve::to_string(r.outcome)
       << " from the synchronous path";
    return os.str();
  }

  if (r.epoch != snap.epoch) {
    os << "answered under epoch " << r.epoch << " but epoch " << snap.epoch
       << " is published";
    return os.str();
  }
  const Dist want = bfs_distance(snap.spanner, q.u, q.v);
  if (r.distance != want) {
    os << "answer " << r.distance << " != " << want << " on the epoch-"
       << snap.epoch << " spanner (stale read?)";
    return os.str();
  }
  if (q.kind == serve::QueryKind::kRoute && want != kUnreachable) {
    if (r.path.empty() || r.path.front() != q.u || r.path.back() != q.v) {
      os << "served path does not connect the endpoints";
      return os.str();
    }
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      if (!snap.spanner.has_edge(r.path[i], r.path[i + 1])) {
        os << "served path uses edge (" << r.path[i] << "," << r.path[i + 1]
           << ") absent from the epoch-" << snap.epoch << " spanner";
        return os.str();
      }
    }
  }
  const Dist d_g = bfs_distance(snap.graph, q.u, q.v);
  if (want == kUnreachable) {
    if (d_g != kUnreachable) {
      os << "spanner cannot reach a pair at graph distance " << d_g;
      return os.str();
    }
    return std::nullopt;
  }
  if (static_cast<double>(want) >
      cert.alpha * static_cast<double>(d_g) + 1e-9) {
    os << "stretch " << want << "/" << d_g
       << " outside the published envelope alpha=" << cert.alpha
       << " (certificate " << to_string(cert.status) << ")";
    return os.str();
  }
  return std::nullopt;
}

/// Metrics are force-enabled for the soak's duration so the per-wave
/// counter deltas in soak.json exist even under a metrics-off caller; the
/// caller's switch is restored on exit.
struct MetricsEnableGuard {
  const bool prev = obs::metrics_enabled();
  MetricsEnableGuard() { obs::set_metrics_enabled(true); }
  ~MetricsEnableGuard() { obs::set_metrics_enabled(prev); }
};

struct SoakDriver {
  const Graph& g;
  const Graph& h0;
  const SoakOptions& options;
  const FailureSchedule* replay = nullptr;  ///< null = generate churn

  /// Flags a violation: one flight-recorder event (so the flight.json tail
  /// names the invariant and wave next to the epoch/shed events that led
  /// up to it), then the structured SoakViolation. `invariant` must be a
  /// string literal.
  static void flag(SoakResult& result, std::size_t wave,
                   const char* invariant, std::string detail) {
    obs::FlightRecorder::instance().record(obs::FlightEventKind::kInvariant,
                                           invariant, wave);
    result.violations.push_back({wave, invariant, std::move(detail)});
  }

  /// Crash-recovery mode's simulated kill -9 at wave `w` (before the wave
  /// is consumed): destroy the serving plane and the supervisor with no
  /// flush, recover from disk, and check the recovery-certified invariant —
  /// state equality with the pre-crash supervisor (WAL replay is
  /// deterministic), a non-lost certificate, and a probe query batch that
  /// passes the query-certified checks. Returns false when the soak cannot
  /// continue (recovery failed closed or the invariant flagged).
  template <class Wire, class Fold>
  bool run_crash_recovery(SoakResult& result, std::size_t w,
                          const SupervisorOptions& sup_options,
                          persist::DurabilityManager& durability,
                          std::unique_ptr<SpannerSupervisor>& supervisor,
                          std::optional<serve::SnapshotStore>& store,
                          std::optional<serve::QueryEngine>& query_engine,
                          const Wire& wire_serving,
                          const Fold& fold_serving) {
    result.crash_recovery_ran = true;
    const std::size_t pre_waves = supervisor->waves();
    const std::size_t pre_debt = supervisor->repair_debt();
    const Graph pre_spanner = supervisor->spanner();
    const Graph pre_surviving = supervisor->fault_state().surviving(g);

    // kill -9: nothing below gets to flush, checkpoint, or say goodbye.
    fold_serving();
    query_engine.reset();
    store.reset();
    supervisor.reset();
    obs::FlightRecorder::instance().record(obs::FlightEventKind::kCustom,
                                           "soak-crash", w, 0);

    SupervisorRecovery recovery;
    supervisor =
        SpannerSupervisor::recover(g, durability, sup_options, recovery);
    result.recovery_wal_replayed = recovery.wal_waves_replayed;
    result.recovery_seconds = recovery.seconds;
    result.recovery_generation = recovery.generation;
    if (supervisor == nullptr) {
      flag(result, w, "recovery-certified",
           "recovery failed closed: " + recovery.error);
      return false;
    }
    DCS_LOG(Info) << "crash at wave " << w << ": " << recovery.summary();

    std::ostringstream why;
    if (supervisor->waves() != pre_waves) {
      why << "recovered to wave " << supervisor->waves() << ", crashed at "
          << pre_waves;
    } else if (!(supervisor->spanner() == pre_spanner)) {
      why << "recovered spanner differs from the pre-crash spanner ("
          << supervisor->spanner().num_edges() << " vs "
          << pre_spanner.num_edges() << " edges)";
    } else if (!(supervisor->fault_state().surviving(g) == pre_surviving)) {
      why << "recovered fault overlay differs from the pre-crash overlay";
    } else if (supervisor->repair_debt() != pre_debt) {
      why << "recovered debt " << supervisor->repair_debt()
          << " != pre-crash debt " << pre_debt;
    } else if (recovery.certificate == GuaranteeStatus::kLost) {
      why << "recovered oracle recertified to kLost (alpha "
          << recovery.certified_alpha << ") — must not serve";
    }
    if (!why.str().empty()) {
      flag(result, w, "recovery-certified", why.str());
      return false;
    }

    // Publish the recovered epoch and prove the oracle serves certified
    // answers *now*, before churn resumes.
    wire_serving();
    if (query_engine) {
      const std::vector<serve::Query> batch = wave_queries(
          mix64(options.seed, kRecoverySalt), w, options.qps,
          g.num_vertices());
      const serve::SnapshotRef snap = store->pin();
      const auto answers = query_engine->serve_batch(batch);
      result.queries_submitted += batch.size();
      ++result.query_batches;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const auto fail = check_query_answer(*snap, batch[i], answers[i]);
        if (fail.has_value()) {
          flag(result, w, "recovery-certified",
               "post-recovery probe, epoch " + std::to_string(snap->epoch) +
                   ": " + *fail);
          return false;
        }
      }
    }
    return true;
  }

  SoakResult run() {
    DCS_TRACE_SPAN("soak");
    MetricsEnableGuard metrics_guard;
    obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
    SoakResult result;
    ChurnEngineOptions churn = options.churn;
    churn.seed = mix64(options.seed, kChurnSalt);
    ChurnEngine engine(g, churn);

    SupervisorOptions sup_options = options.supervisor;
    if (!options.persist_dir.empty()) {
      sup_options.checkpoint_interval = options.checkpoint_interval;
    }
    // unique_ptr, not a stack value: crash-recovery mode destroys the
    // supervisor mid-run (the simulated kill -9) and replaces it with the
    // one SpannerSupervisor::recover() rebuilds from disk.
    auto supervisor = std::make_unique<SpannerSupervisor>(g, h0, sup_options);
    if (options.inject_repair_bug) supervisor->inject_repair_bug();

    std::optional<persist::DurabilityManager> durability;
    if (!options.persist_dir.empty()) {
      durability.emplace(options.persist_dir);
      supervisor->attach_durability(&*durability);
      // Genesis generation: the WAL needs a base checkpoint to replay
      // against before the first cadence-driven cut.
      supervisor->checkpoint_now();
    }

    // Live-oracle wiring: the supervisor publishes epochs into the store,
    // the engine serves from pinned snapshots under the strict policy
    // (shed at kRebuilding, certificate must be fresh) so every answer it
    // does serve is certifiable against its own epoch. A lambda because
    // crash-recovery mode tears the serving plane down with the supervisor
    // and re-wires it around the recovered one.
    std::optional<serve::SnapshotStore> store;
    std::optional<serve::QueryEngine> query_engine;
    const auto wire_serving = [&]() {
      if (options.qps == 0) return;
      serve::SpannerCertificate cert;
      cert.alpha = options.supervisor.health.alpha;
      cert.beta = options.supervisor.health.beta;
      store.emplace(g, supervisor->spanner(), cert);
      supervisor->attach_snapshots(&*store);
      serve::ServeOptions serve_options;
      serve_options.shed_at = SupervisorState::kRebuilding;
      serve_options.require_fresh_certificate = true;
      // Request tracing rides along: soak queries carry TraceContexts and
      // feed tail exemplars, so the concurrent-tracing machinery soaks
      // under churn too (and under the sanitizers in CI).
      serve_options.trace.exemplars = true;
      serve_options.dispatchers = options.dispatchers;
      query_engine.emplace(*store, serve_options);
      if (options.inject_stale_cache_bug) {
        query_engine->inject_stale_cache_bug();
      }
      // Sharded mode serves through submit() futures, which need the
      // dispatcher threads running. (The engine's destructor stops them,
      // so crash-recovery teardown needs no extra handling.)
      if (options.dispatchers > 1) query_engine->start();
    };
    // Serving stats accumulate per engine incarnation; fold them into the
    // result before an incarnation dies (crash) and at the end.
    const auto fold_serving = [&]() {
      if (!query_engine) return;
      const serve::ServeStats es = query_engine->stats();
      result.queries_served += es.served;
      result.queries_shed += es.shed_admission + es.shed_deadline +
                             es.shed_degraded + es.shed_shutdown;
      result.epochs_published += store->published();
      result.epochs_adopted += es.epochs_adopted;
    };
    wire_serving();

    bool crashed = false;
    for (std::size_t w = 0; w < options.waves; ++w) {
      // Graceful shutdown (SIGTERM/SIGINT in dcs_tool): stop at a wave
      // boundary with the result — and so the artifacts — intact.
      if (options.stop_flag != nullptr &&
          options.stop_flag->load(std::memory_order_relaxed)) {
        result.stopped_early = true;
        DCS_LOG(Info) << "stop flag set; ending soak after " << w
                      << " waves";
        break;
      }

      if (durability && !crashed && options.crash_at_wave > 0 &&
          w == options.crash_at_wave) {
        crashed = true;
        if (!run_crash_recovery(result, w, sup_options, *durability,
                                supervisor, store, query_engine,
                                wire_serving, fold_serving)) {
          result.waves_run = w;
          break;
        }
      }
      const obs::MetricsValueSnapshot wave_before = registry.value_snapshot();
      result.wave_metrics_wave = w;
      std::span<const FaultEvent> events =
          replay != nullptr ? replay->wave(w) : engine.advance();
      const std::size_t prev_debt = supervisor->repair_debt();
      const auto report = supervisor->step(events);
      // Per-wave counter deltas: recomputed every wave so the last one
      // standing describes the final (or violating) wave. The early-break
      // violation paths below leave the delta covering everything the wave
      // did before it died.
      const auto delta_here = [&] {
        result.wave_metrics_delta =
            obs::snapshot_delta(wave_before, registry.value_snapshot());
      };
      delta_here();

      result.waves_run = w + 1;
      result.max_debt = std::max(result.max_debt, report.debt);
      result.worst_state = std::max(result.worst_state, report.state);
      result.final_state = report.state;
      if (report.checked) ++result.recertifications;

      // Invariant: the ladder never bottoms out.
      if (report.state == SupervisorState::kLost) {
        flag(result, w, "supervisor-lost",
             "degradation ladder reached kLost: " + report.summary());
        break;
      }
      // Invariant: a recertification with no outstanding debt certifies α —
      // the repair engine's deterministic guarantee, observed end to end.
      if (report.checked && report.debt == 0 &&
          report.certificate != GuaranteeStatus::kHeld) {
        flag(result, w, "certificate-after-repair",
             "zero debt but certificate " +
                 std::string(to_string(report.certificate)) + ": " +
                 supervisor->last_check().summary());
        break;
      }
      // Invariant: debt only grows by this wave's endangered edges.
      if (report.debt > prev_debt + report.new_candidates) {
        std::ostringstream os;
        os << "debt " << prev_debt << " -> " << report.debt << " with only "
           << report.new_candidates << " new candidates";
        flag(result, w, "repair-debt-monotone", os.str());
        break;
      }

      if (options.traffic_interval > 0 &&
          (w + 1) % options.traffic_interval == 0) {
        const Graph g_surv = supervisor->fault_state().surviving(g);
        const std::uint64_t burst_seed =
            mix64(mix64(options.seed, kTrafficSalt), w);
        const Routing routing =
            burst_routing(g_surv, supervisor->spanner(), burst_seed);
        if (!routing.paths.empty()) {
          PacketSimOptions sim = options.sim;
          sim.seed = burst_seed + 1;
          const auto sr =
              simulate_store_and_forward(supervisor->spanner(), routing, sim);
          ++result.sims_run;
          result.packets_injected += routing.paths.size();
          result.packets_delivered += sr.delivered;
          result.packets_shed += sr.shed;
          result.max_queue = std::max(result.max_queue, sr.max_queue);

          // Invariant: no packet leaks — every injected packet is
          // delivered, shed, or accounted as in flight.
          const auto in_flight = sr.shed_for(PacketOutcome::kInFlight);
          if (sr.delivered + sr.shed + in_flight != routing.paths.size()) {
            std::ostringstream os;
            os << sr.delivered << " delivered + " << sr.shed << " shed + "
               << in_flight << " in flight != " << routing.paths.size()
               << " injected";
            flag(result, w, "packet-leak", os.str());
            delta_here();
            break;
          }
        }
      }

      // Closed-loop query traffic through the live oracle, checked answer
      // by answer against the published snapshot.
      if (query_engine) {
        const std::vector<serve::Query> batch =
            wave_queries(options.seed, w, options.qps, g.num_vertices());
        const serve::SnapshotRef snap = store->pin();
        // The soak loop is single-threaded, so no publish races this wave:
        // sharded dispatchers adopt exactly snap's epoch, and the answers
        // stay checkable against the pinned snapshot either way.
        std::vector<serve::QueryResult> answers;
        if (options.dispatchers > 1) {
          std::vector<std::future<serve::QueryResult>> futures;
          futures.reserve(batch.size());
          for (const serve::Query& q : batch) {
            futures.push_back(query_engine->submit(q));
          }
          answers.reserve(batch.size());
          for (auto& f : futures) answers.push_back(f.get());
        } else {
          answers = query_engine->serve_batch(batch);
        }
        result.queries_submitted += batch.size();
        ++result.query_batches;

        std::optional<std::string> fail;
        for (std::size_t i = 0; i < batch.size() && !fail; ++i) {
          fail = check_query_answer(*snap, batch[i], answers[i]);
        }
        if (!fail) {
          // Conservation across every epoch boundary so far: nothing
          // submitted may vanish without a served answer or a structured
          // shed (the synchronous path never sheds on admission/deadline).
          const serve::ServeStats es = query_engine->stats();
          const std::uint64_t shed = es.shed_admission + es.shed_deadline +
                                     es.shed_degraded + es.shed_shutdown;
          if (es.served + shed != es.queries) {
            std::ostringstream os;
            os << "conservation: " << es.served << " served + " << shed
               << " shed != " << es.queries << " submitted";
            fail = os.str();
          }
        }
        if (fail) {
          flag(result, w, "query-certified",
               "epoch " + std::to_string(snap->epoch) + ": " + *fail);
          delta_here();
          break;
        }
      }
      delta_here();
    }

    fold_serving();
    if (supervisor != nullptr) {
      // (nullptr only when a failed recovery ended the run: the counters
      // died with the process and the violation record tells the story.)
      result.repairs = supervisor->repairs();
      result.rebuilds = supervisor->rebuilds();
    }
    if (durability) {
      result.checkpoints_written = durability->checkpoints_written();
      result.final_generation = durability->generation();
    }
    result.schedule =
        replay != nullptr ? *replay : engine.history();
    if (replay == nullptr) {
      // Trim the archived schedule to the waves actually consumed, so the
      // replay timeline matches the run that produced it.
      std::erase_if(result.schedule.events, [&](const FaultEvent& e) {
        return e.wave >= result.waves_run;
      });
    }
    return result;
  }
};

}  // namespace

std::string SoakResult::summary() const {
  std::ostringstream os;
  os << waves_run << " waves, " << repairs << " repairs, " << rebuilds
     << " rebuilds, " << recertifications << " recerts, max debt "
     << max_debt << ", worst state " << to_string(worst_state);
  if (sims_run > 0) {
    os << "; traffic: " << sims_run << " bursts, " << packets_injected
       << " injected, " << packets_delivered << " delivered, "
       << packets_shed << " shed, max queue " << max_queue;
  }
  if (query_batches > 0) {
    os << "; queries: " << queries_submitted << " submitted, "
       << queries_served << " served, " << queries_shed << " shed, "
       << epochs_published << " epochs published, " << epochs_adopted
       << " adopted";
  }
  if (checkpoints_written > 0 || final_generation > 0) {
    os << "; durability: " << checkpoints_written
       << " checkpoints, generation " << final_generation;
  }
  if (crash_recovery_ran) {
    os << "; crash recovery: generation " << recovery_generation << ", "
       << recovery_wal_replayed << " wal waves replayed in "
       << recovery_seconds * 1e3 << " ms";
  }
  if (stopped_early) os << "; stopped early (shutdown requested)";
  if (ok()) {
    os << "; all invariants held";
  } else {
    os << "; VIOLATION at wave " << violations.front().wave << " ["
       << violations.front().invariant << "] " << violations.front().detail;
    if (minimized_available) {
      os << "; minimized to " << minimized.events.size() << " events ("
         << minimizer_evaluations << " evaluations"
         << (minimized_is_minimal ? ", 1-minimal" : "") << ")";
    }
  }
  return os.str();
}

SoakResult run_soak(const Graph& g, const Graph& h,
                    const SoakOptions& options) {
  SoakDriver driver{g, h, options};
  SoakResult result = driver.run();

  if (!result.ok() && options.minimize_on_violation &&
      !result.schedule.events.empty()) {
    DCS_LOG(Info) << "invariant [" << result.violations.front().invariant
                  << "] violated at wave " << result.violations.front().wave
                  << "; minimizing " << result.schedule.events.size()
                  << " events";
    const std::string& invariant = result.violations.front().invariant;
    SoakOptions replay_options = options;
    replay_options.waves = result.waves_run;
    replay_options.minimize_on_violation = false;
    replay_options.artifacts_dir.clear();
    const auto reproduces = [&](const FailureSchedule& candidate) {
      const auto r = replay_soak(g, h, candidate, replay_options);
      return !r.ok() && r.violations.front().invariant == invariant;
    };
    const auto minimized =
        minimize_schedule(result.schedule, reproduces, options.minimizer);
    result.minimized_available = true;
    result.minimized = minimized.schedule;
    result.minimizer_evaluations = minimized.evaluations;
    result.minimized_is_minimal = minimized.minimal;
  }

  if (!options.artifacts_dir.empty()) {
    write_soak_artifacts(options.artifacts_dir, result);
  }
  return result;
}

SoakResult replay_soak(const Graph& g, const Graph& h,
                       const FailureSchedule& schedule,
                       const SoakOptions& options) {
  SoakOptions replay_options = options;
  if (replay_options.waves < schedule.num_waves()) {
    replay_options.waves = schedule.num_waves();
  }
  SoakDriver driver{g, h, replay_options, &schedule};
  SoakResult result = driver.run();

  if (!result.ok() && options.minimize_on_violation &&
      !schedule.events.empty()) {
    const std::string& invariant = result.violations.front().invariant;
    SoakOptions inner = replay_options;
    inner.waves = result.waves_run;
    inner.minimize_on_violation = false;
    inner.artifacts_dir.clear();
    const auto reproduces = [&](const FailureSchedule& candidate) {
      const auto r = replay_soak(g, h, candidate, inner);
      return !r.ok() && r.violations.front().invariant == invariant;
    };
    const auto minimized =
        minimize_schedule(result.schedule, reproduces, options.minimizer);
    result.minimized_available = true;
    result.minimized = minimized.schedule;
    result.minimizer_evaluations = minimized.evaluations;
    result.minimized_is_minimal = minimized.minimal;
  }

  if (!options.artifacts_dir.empty()) {
    write_soak_artifacts(options.artifacts_dir, result);
  }
  return result;
}

void write_soak_artifacts(const std::string& dir, const SoakResult& result) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);

  // Artifacts are rendered in memory and published with the persist
  // layer's temp → fsync → rename discipline: CI greps these files, and a
  // crash (or kill) mid-dump must leave either the previous artifact or
  // none — never a truncated JSON that parses as something else.
  const auto write_text = [&](const std::string& name, const auto& fn) {
    const std::string path = (fs::path(dir) / name).string();
    std::ostringstream os;
    fn(os);
    std::string err;
    DCS_REQUIRE(persist::atomic_write_file(path, os.str(), &err),
                "artifact write failed: " + path + " (" + err + ")");
  };

  write_text("schedule.txt", [&](std::ostream& os) {
    os << "# full soak schedule — replay with: dcs_tool soak ... "
          "--replay=schedule.txt\n";
    write_schedule(os, result.schedule);
  });
  if (result.minimized_available) {
    write_text("minimized.txt", [&](std::ostream& os) {
      os << "# minimal reproducer (" << result.minimized.events.size()
         << " events) for invariant ["
         << (result.violations.empty() ? "?"
                                       : result.violations.front().invariant)
         << "]\n";
      write_schedule(os, result.minimized);
    });
  }
  write_text("soak.json", [&](std::ostream& os) {
    os << "{\n  \"waves_run\": " << result.waves_run
       << ",\n  \"ok\": " << (result.ok() ? "true" : "false")
       << ",\n  \"repairs\": " << result.repairs
       << ",\n  \"rebuilds\": " << result.rebuilds
       << ",\n  \"recertifications\": " << result.recertifications
       << ",\n  \"max_debt\": " << result.max_debt << ",\n  \"worst_state\": "
       << obs::json_quote(to_string(result.worst_state))
       << ",\n  \"final_state\": "
       << obs::json_quote(to_string(result.final_state))
       << ",\n  \"traffic\": {\"bursts\": " << result.sims_run
       << ", \"injected\": " << result.packets_injected
       << ", \"delivered\": " << result.packets_delivered
       << ", \"shed\": " << result.packets_shed
       << ", \"max_queue\": " << result.max_queue << "}"
       << ",\n  \"queries\": {\"batches\": " << result.query_batches
       << ", \"submitted\": " << result.queries_submitted
       << ", \"served\": " << result.queries_served
       << ", \"shed\": " << result.queries_shed
       << ", \"epochs_published\": " << result.epochs_published
       << ", \"epochs_adopted\": " << result.epochs_adopted << "}"
       << ",\n  \"durability\": {\"checkpoints_written\": "
       << result.checkpoints_written
       << ", \"final_generation\": " << result.final_generation
       << ", \"crash_recovery_ran\": "
       << (result.crash_recovery_ran ? "true" : "false")
       << ", \"recovery_generation\": " << result.recovery_generation
       << ", \"recovery_wal_replayed\": " << result.recovery_wal_replayed
       << ", \"recovery_ms\": " << result.recovery_seconds * 1e3 << "}"
       << ",\n  \"stopped_early\": "
       << (result.stopped_early ? "true" : "false")
       << ",\n  \"schedule_events\": " << result.schedule.events.size();
    // Per-wave counter deltas (not cumulative totals): what moved during
    // the last executed wave — the violating one when the run died.
    os << ",\n  \"wave_metrics\": {\"wave\": " << result.wave_metrics_wave
       << ", \"delta\": " << obs::to_json(result.wave_metrics_delta) << "}";
    os << ",\n  \"violations\": [";
    for (std::size_t i = 0; i < result.violations.size(); ++i) {
      const auto& v = result.violations[i];
      os << (i == 0 ? "" : ", ") << "{\"wave\": " << v.wave
         << ", \"invariant\": " << obs::json_quote(v.invariant)
         << ", \"detail\": " << obs::json_quote(v.detail) << "}";
    }
    os << "]";
    if (result.minimized_available) {
      os << ",\n  \"minimized\": {\"events\": "
         << result.minimized.events.size()
         << ", \"evaluations\": " << result.minimizer_evaluations
         << ", \"minimal\": "
         << (result.minimized_is_minimal ? "true" : "false") << "}";
    }
    os << "\n}\n";
  });

  // The flight recorder is a first-class soak artifact next to
  // minimized.txt: on a violation its tail holds the epoch-publish / shed /
  // invariant event sequence that causally explains it. Dumped on clean
  // runs too — "what did the last waves do" is a question for those as
  // well.
  const std::string flight_path = (fs::path(dir) / "flight.json").string();
  std::string flight_err;
  DCS_REQUIRE(
      persist::atomic_write_file(
          flight_path, obs::FlightRecorder::instance().to_json(),
          &flight_err),
      "cannot write flight recorder artifact: " + flight_path + " (" +
          flight_err + ")");
}

}  // namespace dcs
