#include "resilience/fault_state.hpp"

#include "util/check.hpp"

namespace dcs {

void FaultState::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kVertexDown: {
      DCS_REQUIRE(event.u < num_vertices(), "fault event vertex out of range");
      if (vertex_down_[event.u] == 0) {
        vertex_down_[event.u] = 1;
        ++failed_vertex_count_;
      }
      break;
    }
    case FaultKind::kVertexUp: {
      DCS_REQUIRE(event.u < num_vertices(), "fault event vertex out of range");
      if (vertex_down_[event.u] != 0) {
        vertex_down_[event.u] = 0;
        --failed_vertex_count_;
      }
      break;
    }
    case FaultKind::kEdgeDown: {
      DCS_REQUIRE(event.u < num_vertices() && event.v < num_vertices(),
                  "fault event edge out of range");
      edge_down_.insert(event.u, event.v);
      break;
    }
    case FaultKind::kEdgeUp: {
      DCS_REQUIRE(event.u < num_vertices() && event.v < num_vertices(),
                  "fault event edge out of range");
      edge_down_.erase(canonical(event.u, event.v));
      break;
    }
  }
}

void FaultState::apply(std::span<const FaultEvent> events) {
  for (const FaultEvent& e : events) apply(e);
}

Graph FaultState::surviving(const Graph& g) const {
  DCS_REQUIRE(g.num_vertices() == num_vertices(),
              "fault state built for a different vertex set");
  if (clean()) return g;
  std::vector<Edge> kept;
  kept.reserve(g.num_edges());
  for (Edge e : g.edges()) {
    if (edge_alive(e)) kept.push_back(e);
  }
  return Graph::from_edges(g.num_vertices(), kept);
}

}  // namespace dcs
