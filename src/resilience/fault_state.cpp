#include "resilience/fault_state.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dcs {

void FaultState::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kVertexDown: {
      DCS_REQUIRE(event.u < num_vertices(), "fault event vertex out of range");
      if (vertex_down_[event.u] == 0) {
        vertex_down_[event.u] = 1;
        ++failed_vertex_count_;
      }
      break;
    }
    case FaultKind::kVertexUp: {
      DCS_REQUIRE(event.u < num_vertices(), "fault event vertex out of range");
      if (vertex_down_[event.u] != 0) {
        vertex_down_[event.u] = 0;
        --failed_vertex_count_;
      }
      break;
    }
    case FaultKind::kEdgeDown: {
      DCS_REQUIRE(event.u < num_vertices() && event.v < num_vertices(),
                  "fault event edge out of range");
      edge_down_.insert(event.u, event.v);
      break;
    }
    case FaultKind::kEdgeUp: {
      DCS_REQUIRE(event.u < num_vertices() && event.v < num_vertices(),
                  "fault event edge out of range");
      edge_down_.erase(canonical(event.u, event.v));
      break;
    }
  }
}

void FaultState::apply(std::span<const FaultEvent> events) {
  for (const FaultEvent& e : events) apply(e);
}

std::vector<Vertex> FaultState::down_vertices() const {
  std::vector<Vertex> out;
  out.reserve(failed_vertex_count_);
  for (std::size_t v = 0; v < vertex_down_.size(); ++v) {
    if (vertex_down_[v] != 0) out.push_back(static_cast<Vertex>(v));
  }
  return out;
}

std::vector<Edge> FaultState::down_edges() const {
  std::vector<Edge> out = edge_down_.to_vector();
  std::sort(out.begin(), out.end());
  return out;
}

Graph FaultState::surviving(const Graph& g) const {
  DCS_REQUIRE(g.num_vertices() == num_vertices(),
              "fault state built for a different vertex set");
  if (clean()) return g;
  std::vector<Edge> kept;
  kept.reserve(g.num_edges());
  for (Edge e : g.edges()) {
    if (edge_alive(e)) kept.push_back(e);
  }
  return Graph::from_edges(g.num_vertices(), kept);
}

}  // namespace dcs
