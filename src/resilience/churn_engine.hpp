#pragma once

// Open-ended continuous churn: the event-*stream* counterpart of
// FailureInjector's fixed-wave schedules.
//
// A FailureInjector answers "what does one experiment look like?" — a finite,
// pre-generated schedule. Under continuous operation the question inverts:
// faults arrive forever and the system must keep up. ChurnEngine generates
// that stream one wave at a time:
//
//  * crash arrivals   — every live edge (vertex) independently crashes with
//    probability `edge_churn_rate` (`vertex_churn_rate`) per wave, a
//    Poisson-like seeded arrival process;
//  * flap recoveries  — a crash is transient with probability
//    `flap_probability` and deterministically recovers `flap_duration`
//    waves later (lossy links that come right back);
//  * slow recoveries  — every other down element independently recovers
//    with probability `recovery_rate` per wave (geometric repair times),
//    so the live fraction reaches the equilibrium r/(r + p) instead of
//    decaying to zero;
//  * adversarial mode — with a load profile installed
//    (`set_load_profile`), crashes target the highest-load live vertices
//    and the live edges with the hottest endpoint sums instead of
//    sampling, mirroring FailureInjector::generate_adversarial.
//
// Determinism: wave w draws from Rng(mix64(seed, w)) over state that is a
// pure function of waves 0..w−1, so the stream is replayable byte-for-byte
// and `history()` at any point is a valid FailureSchedule — the soak
// harness archives it and the minimizer shrinks it.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "resilience/failure_injector.hpp"
#include "resilience/fault_state.hpp"
#include "util/rng.hpp"

namespace dcs {

struct ChurnEngineOptions {
  std::uint64_t seed = 0;

  /// Per-wave crash probability of each currently-live edge.
  double edge_churn_rate = 0.0;
  /// Per-wave crash probability of each currently-live vertex.
  double vertex_churn_rate = 0.0;

  /// Per-wave recovery probability of each individually-down element that
  /// is not already scheduled to flap back. 0 means crashes are permanent
  /// unless flapped — the stream then monotonically erodes the graph.
  double recovery_rate = 0.0;

  /// Probability that a crash is transient, recovering `flap_duration`
  /// waves later regardless of `recovery_rate`.
  double flap_probability = 0.0;
  std::size_t flap_duration = 1;

  /// Never crash a vertex (edge) when the live count would drop below this
  /// fraction of the total — a guardrail so aggressive rates cannot erode
  /// the network to nothing over a long soak.
  double min_live_fraction = 0.25;
};

class ChurnEngine {
 public:
  /// `g` is the fault-free network; it must outlive the engine.
  ChurnEngine(const Graph& g, const ChurnEngineOptions& options);

  /// Generates, applies, and returns the events of the next wave. The
  /// returned span stays valid until the next call. Waves may be empty —
  /// quiet rounds are part of the stream.
  std::span<const FaultEvent> advance();

  /// Index of the next wave `advance()` will generate.
  std::size_t next_wave() const { return wave_; }

  /// Live/dead state after all generated waves.
  const FaultState& fault_state() const { return state_; }

  /// Every event emitted so far, as a replayable schedule.
  const FailureSchedule& history() const { return history_; }

  /// Installs (or clears, with an empty vector) a per-vertex load profile;
  /// subsequent waves target the highest-load live elements instead of
  /// sampling. Typically refreshed from the live routing's `node_loads`.
  void set_load_profile(std::vector<std::size_t> loads);

 private:
  void emit(const FaultEvent& event, Rng& rng,
            std::vector<FaultEvent>& out);

  const Graph& g_;
  ChurnEngineOptions options_;
  std::size_t wave_ = 0;
  FaultState state_;
  FailureSchedule history_;
  std::vector<FaultEvent> current_wave_;
  std::vector<std::size_t> loads_;  ///< empty = random mode

  // Individually-down elements (never those silenced by a vertex crash),
  // kept sorted for deterministic recovery sweeps, plus the subset with a
  // pending flap recovery (excluded from the slow-recovery draw).
  std::vector<Vertex> down_vertices_;
  std::vector<Edge> down_edges_;
  std::vector<std::uint8_t> vertex_flap_pending_;
  EdgeSet edge_flap_pending_;
  // Flap recoveries keyed by the wave they fire in.
  std::vector<std::pair<std::size_t, FaultEvent>> pending_up_;
};

}  // namespace dcs
