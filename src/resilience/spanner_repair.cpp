#include "resilience/spanner_repair.hpp"

#include <algorithm>
#include <cmath>

#include "core/support.hpp"
#include "graph/subgraph.hpp"
#define DCS_LOG_COMPONENT "repair"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/matching.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dcs {

namespace {

// Salt for the repair resampling coin, so repaired regions draw fresh
// randomness instead of replaying the original construction's coin.
constexpr std::uint64_t kResampleSalt = 0x5e5a11edULL;

/// Average degree over the non-isolated vertices of g (isolated vertices
/// are dead hosts, not part of the surviving network).
double surviving_average_degree(const Graph& g) {
  std::size_t active = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > 0) ++active;
  }
  if (active == 0) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) /
         static_cast<double>(active);
}

std::vector<Edge> candidate_edges(const Graph& g_surviving,
                                  std::span<const Vertex> frontier) {
  std::vector<std::uint8_t> dirty(g_surviving.num_vertices(), 0);
  for (Vertex v : frontier) dirty[v] = 1;
  std::vector<Edge> candidates;
  for (Edge e : g_surviving.edges()) {
    if (dirty[e.u] || dirty[e.v]) candidates.push_back(e);
  }
  return candidates;
}

std::size_t count_endpoints(std::span<const Edge> edges, std::size_t n) {
  std::vector<std::uint8_t> seen(n, 0);
  std::size_t count = 0;
  for (Edge e : edges) {
    count += !seen[e.u] + !seen[e.v];
    seen[e.u] = 1;
    seen[e.v] = 1;
  }
  return count;
}

RepairResult repair_with_candidates(const Graph& g_surviving,
                                    const Graph& h_surviving,
                                    std::span<const Edge> candidates,
                                    std::size_t frontier_vertices,
                                    const SpannerRepairOptions& options);

}  // namespace

const char* to_string(RepairOutcome outcome) {
  switch (outcome) {
    case RepairOutcome::kNoop: return "noop";
    case RepairOutcome::kPatched: return "patched";
    case RepairOutcome::kRebuilt: return "rebuilt";
  }
  return "?";
}

std::vector<Vertex> damage_frontier(const Graph& g,
                                    std::span<const FaultEvent> events) {
  std::vector<std::uint8_t> mark(g.num_vertices(), 0);
  auto mark_neighborhood = [&](Vertex w) {
    for (Vertex x : g.neighbors(w)) mark[x] = 1;
  };
  for (const FaultEvent& e : events) {
    switch (e.kind) {
      case FaultKind::kVertexDown:
      case FaultKind::kVertexUp:
        mark_neighborhood(e.u);
        break;
      case FaultKind::kEdgeDown:
      case FaultKind::kEdgeUp:
        mark[e.u] = 1;
        mark[e.v] = 1;
        mark_neighborhood(e.u);
        mark_neighborhood(e.v);
        break;
    }
  }
  std::vector<Vertex> frontier;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (mark[v]) frontier.push_back(v);
  }
  return frontier;
}

std::vector<Edge> repair_candidates(const Graph& g, const Graph& g_surviving,
                                    std::span<const FaultEvent> events) {
  const std::size_t n = g.num_vertices();
  DCS_REQUIRE(g_surviving.num_vertices() == n,
              "surviving graph must share the vertex set");
  EdgeSet endangered;

  // Vertex events: w can appear as either interior of a ≤3-hop replacement,
  // which forces an endpoint of the covered edge into N_G(w).
  std::vector<std::uint8_t> near_vertex(n, 0);
  bool any_vertex_event = false;
  for (const FaultEvent& ev : events) {
    if (ev.kind != FaultKind::kVertexDown && ev.kind != FaultKind::kVertexUp) {
      continue;
    }
    any_vertex_event = true;
    for (Vertex x : g.neighbors(ev.u)) near_vertex[x] = 1;
  }
  if (any_vertex_event) {
    for (Edge e : g_surviving.edges()) {
      if (near_vertex[e.u] || near_vertex[e.v]) endangered.insert(e);
    }
  }

  // Edge events: a replacement u-…-v of length ≤ 3 can traverse (x,z) only
  // with u ∈ N[x], v ∈ N[z] (up to swapping x and z), so both endpoints
  // must sit near the faulted edge — one near each side.
  std::vector<std::uint8_t> in_nz(n, 0);
  std::vector<Vertex> stamped;
  for (const FaultEvent& ev : events) {
    if (ev.kind != FaultKind::kEdgeDown && ev.kind != FaultKind::kEdgeUp) {
      continue;
    }
    in_nz[ev.v] = 1;
    stamped.push_back(ev.v);
    for (Vertex y : g.neighbors(ev.v)) {
      in_nz[y] = 1;
      stamped.push_back(y);
    }
    // Scanning from the N[x] side alone covers both orientations: an edge
    // with one endpoint in N[x] and the other in N[z] is seen from its
    // N[x]-endpoint either way.
    auto scan_from = [&](Vertex w) {
      for (Vertex y : g_surviving.neighbors(w)) {
        if (in_nz[y]) endangered.insert(canonical(w, y));
      }
    };
    scan_from(ev.u);
    for (Vertex w : g.neighbors(ev.u)) scan_from(w);
    for (Vertex w : stamped) in_nz[w] = 0;
    stamped.clear();
  }

  auto out = endangered.to_vector();
  // EdgeSet iteration order is unspecified; sort for reproducible repairs.
  std::ranges::sort(out, [](Edge a, Edge b) {
    return edge_key(a) < edge_key(b);
  });
  return out;
}

RepairResult repair_spanner(const Graph& g_surviving,
                            const Graph& h_surviving,
                            std::span<const Vertex> frontier,
                            const SpannerRepairOptions& options) {
  return repair_with_candidates(g_surviving, h_surviving,
                                candidate_edges(g_surviving, frontier),
                                frontier.size(), options);
}

RepairResult repair_spanner(const Graph& g_surviving,
                            const Graph& h_surviving,
                            std::span<const Edge> candidates,
                            const SpannerRepairOptions& options) {
  return repair_with_candidates(
      g_surviving, h_surviving, candidates,
      count_endpoints(candidates, g_surviving.num_vertices()), options);
}

namespace {

RepairResult repair_with_candidates(const Graph& g_surviving,
                                    const Graph& h_surviving,
                                    std::span<const Edge> candidates,
                                    std::size_t frontier_vertices,
                                    const SpannerRepairOptions& options) {
  DCS_REQUIRE(g_surviving.num_vertices() == h_surviving.num_vertices(),
              "repair inputs must share the vertex set");
  DCS_REQUIRE(g_surviving.contains_subgraph(h_surviving),
              "spanner is not a subgraph of the surviving network");
  DCS_TRACE_SPAN("spanner_repair");
  Timer timer;

  auto& reg = obs::MetricsRegistry::instance();
  const auto note = [&](const RepairResult& r, std::size_t broken_edges) {
    reg.counter(std::string("repair.outcome.") + to_string(r.outcome)).inc();
    reg.histogram("repair.candidate_edges")
        .record(static_cast<double>(candidates.size()));
    reg.histogram("repair.broken_edges")
        .record(static_cast<double>(broken_edges));
    reg.histogram("repair.patch_ms").record(r.seconds * 1e3);
    DCS_LOG(Debug) << "repair: " << to_string(r.outcome) << ", "
                   << candidates.size() << " endangered, " << broken_edges
                   << " broken, +" << r.resampled_edges << " resampled +"
                   << r.reinserted_edges << " reinserted";
  };

  RepairResult result;
  result.frontier_vertices = frontier_vertices;
  result.candidate_edges = candidates.size();
  if (candidates.empty()) {
    result.h = h_surviving;
    result.outcome = RepairOutcome::kNoop;
    result.seconds = timer.seconds();
    note(result, 0);
    return result;
  }

  // Cheap screen first: most endangered edges kept their replacement (H
  // loses only its own share of the faults). Only the *broken* ones — not
  // in H∖F and without a surviving ≤3 replacement — need the construction
  // machinery re-run around them. The screen runs on the sparse H, so it is
  // far cheaper per edge than anything the rebuild does on G; the oracle
  // upgrades it to word-parallel bitmap probes when H is dense enough.
  std::vector<std::uint8_t> is_broken(candidates.size(), 0);
  {
    DCS_TRACE_SPAN("screen");
    const SupportOracle h_support(h_surviving);
    parallel_for(0, candidates.size(), [&](std::size_t i) {
      const Edge e = candidates[i];
      if (!h_surviving.has_edge(e.u, e.v) &&
          !h_support.has_short_replacement(e.u, e.v)) {
        is_broken[i] = 1;
      }
    });
  }
  std::vector<Edge> broken;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (is_broken[i]) broken.push_back(candidates[i]);
  }

  if (broken.empty()) {
    result.h = h_surviving;
    result.outcome = RepairOutcome::kNoop;
    result.seconds = timer.seconds();
    note(result, 0);
    return result;
  }

  // Locality budget, measured on the actual damage: past this point a full
  // rebuild makes more progress per edge examined than patching would.
  if (static_cast<double>(broken.size()) >
      options.rebuild_threshold *
          static_cast<double>(g_surviving.num_edges())) {
    RepairResult rebuilt = rebuild_spanner(g_surviving, options);
    rebuilt.frontier_vertices = frontier_vertices;
    rebuilt.candidate_edges = candidates.size();
    note(rebuilt, broken.size());
    return rebuilt;
  }

  const double avg_degree = surviving_average_degree(g_surviving);
  const auto delta = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(avg_degree)));
  const RegularSpannerParams params =
      compute_regular_spanner_params(delta, options.build);
  const double rho =
      options.resample_rho > 0.0 ? options.resample_rho : params.rho;

  std::vector<Edge> patched = h_surviving.edges();
  const std::size_t base_edges = patched.size();

  if (options.strategy == RepairStrategy::kDetourPatch) {
    DCS_TRACE_SPAN("detour_patch");
    // Step 1 analog: restore router capacity around the damage with the
    // construction's deterministic coin (salted, so the repair does not
    // replay the original sample that the faults just destroyed). Only the
    // neighborhoods of broken edges draw new capacity.
    std::vector<std::uint8_t> near_broken(g_surviving.num_vertices(), 0);
    for (Edge e : broken) {
      near_broken[e.u] = 1;
      near_broken[e.v] = 1;
    }
    for (Edge e : candidates) {
      if ((near_broken[e.u] || near_broken[e.v]) &&
          !h_surviving.has_edge(e.u, e.v) &&
          edge_sampled(e, rho, mix64(options.seed, kResampleSalt))) {
        patched.push_back(e);
        ++result.resampled_edges;
      }
    }
    const Graph h1 = Graph::from_edges(g_surviving.num_vertices(), patched);

    // Steps 2+3 analog: the Ê test and the undetoured-edge rule, applied
    // to the broken edges only. Verdicts are evaluated against the static
    // h1, so they are order-independent and parallel.
    const SupportOracle g_support(g_surviving);
    const SupportOracle h1_support(h1);
    std::vector<std::uint8_t> reinsert(broken.size(), 0);
    parallel_for(0, broken.size(), [&](std::size_t i) {
      const Edge e = broken[i];
      if (h1.has_edge(e.u, e.v)) return;
      if (!g_support.is_ab_supported(e, params.support_a,
                                     params.support_b) ||
          !h1_support.has_short_replacement(e.u, e.v)) {
        reinsert[i] = 1;
      }
    });
    for (std::size_t i = 0; i < broken.size(); ++i) {
      if (reinsert[i]) {
        patched.push_back(broken[i]);
        ++result.reinserted_edges;
      }
    }
  } else {
    DCS_TRACE_SPAN("matching_patch");
    // Theorem 2 repair: rebuild the neighborhood matching of every broken
    // edge and splice one matched 3-hop path back into the spanner.
    std::vector<std::vector<Edge>> additions(broken.size());
    std::vector<std::uint8_t> reinsert(broken.size(), 0);
    parallel_for(0, broken.size(), [&](std::size_t i) {
      const Edge e = broken[i];
      const auto nu = g_surviving.neighbors(e.u);
      const auto nv = g_surviving.neighbors(e.v);
      const auto matched = maximum_bipartite_matching(g_surviving, nu, nv);
      for (std::size_t k = 0; k < matched.size(); ++k) {
        // Deterministic per-edge pick spreads detour load across the
        // matching instead of always taking the first matched pair.
        const Edge m = matched[(mix64(options.seed, edge_key(e)) + k) %
                               matched.size()];
        Vertex x = m.u;
        Vertex z = m.v;
        if (!g_surviving.has_edge(e.u, x) || !g_surviving.has_edge(z, e.v)) {
          std::swap(x, z);
        }
        if (g_surviving.has_edge(e.u, x) && g_surviving.has_edge(z, e.v)) {
          additions[i] = {canonical(e.u, x), canonical(x, z),
                          canonical(z, e.v)};
          break;
        }
      }
      if (additions[i].empty()) reinsert[i] = 1;
    });
    for (std::size_t i = 0; i < broken.size(); ++i) {
      if (reinsert[i]) {
        patched.push_back(broken[i]);
        ++result.reinserted_edges;
      }
      for (Edge e : additions[i]) patched.push_back(e);
      result.resampled_edges += additions[i].size();
    }
  }

  result.h = Graph::from_edges(g_surviving.num_vertices(), patched);
  // Duplicate additions collapse in from_edges; recount what actually
  // landed so the stats stay truthful.
  result.resampled_edges =
      std::min(result.resampled_edges, result.h.num_edges() - base_edges);
  result.outcome = result.h.num_edges() == base_edges ? RepairOutcome::kNoop
                                                      : RepairOutcome::kPatched;
  result.seconds = timer.seconds();
  note(result, broken.size());
  return result;
}

}  // namespace

RepairResult repair_spanner_after(const Graph& g, const Graph& h,
                                  const FaultState& state,
                                  std::span<const FaultEvent> events,
                                  const SpannerRepairOptions& options) {
  const Graph g_surviving = state.surviving(g);
  const auto candidates = repair_candidates(g, g_surviving, events);
  return repair_spanner(g_surviving, state.surviving(h), candidates, options);
}

RepairResult rebuild_spanner(const Graph& g_surviving,
                             const SpannerRepairOptions& options) {
  DCS_TRACE_SPAN("rebuild");
  Timer timer;
  RepairResult result;
  result.outcome = RepairOutcome::kRebuilt;

  // Dead vertices are isolated in the surviving graph; Algorithm 1 rejects
  // isolated vertices, so rebuild on the induced live subgraph and map the
  // spanner back to host ids.
  std::vector<bool> keep(g_surviving.num_vertices(), false);
  std::size_t active = 0;
  for (Vertex v = 0; v < g_surviving.num_vertices(); ++v) {
    if (g_surviving.degree(v) > 0) {
      keep[v] = true;
      ++active;
    }
  }
  if (active < 2 || g_surviving.num_edges() == 0) {
    result.h = Graph(g_surviving.num_vertices());
    result.seconds = timer.seconds();
    return result;
  }
  const InducedSubgraph sub = induced_subgraph(g_surviving, keep);

  // Faults break exact regularity; widen the near-regular acceptance to the
  // survivors' actual degree spread (footnote 1 of the paper).
  RegularSpannerOptions build = options.build;
  build.seed = options.seed;
  const auto [sub_min_deg, sub_max_deg] = sub.graph.degree_bounds();
  const double ratio =
      static_cast<double>(sub_max_deg) /
      static_cast<double>(std::max<std::size_t>(1, sub_min_deg));
  build.max_degree_ratio = std::max(build.max_degree_ratio, ratio + 0.01);

  const auto rebuilt = build_regular_spanner(sub.graph, build);
  std::vector<Edge> host_edges;
  host_edges.reserve(rebuilt.spanner.h.num_edges());
  for (Edge e : rebuilt.spanner.h.edges()) {
    host_edges.push_back(sub.host_edge(e));
  }
  result.h = Graph::from_edges(g_surviving.num_vertices(), host_edges);
  result.candidate_edges = g_surviving.num_edges();
  result.reinserted_edges = rebuilt.spanner.stats.reinserted_edges;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace dcs
