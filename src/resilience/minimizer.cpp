#include "resilience/minimizer.hpp"

#include <algorithm>
#include <vector>

#define DCS_LOG_COMPONENT "minimizer"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace dcs {

namespace {

FailureSchedule subset(const std::vector<FaultEvent>& events,
                       const std::vector<std::size_t>& keep) {
  FailureSchedule s;
  s.events.reserve(keep.size());
  for (std::size_t i : keep) s.events.push_back(events[i]);
  return s;
}

}  // namespace

MinimizeResult minimize_schedule(
    const FailureSchedule& failing,
    const std::function<bool(const FailureSchedule&)>& reproduces,
    const MinimizerOptions& options) {
  MinimizeResult result;
  result.initial_events = failing.events.size();

  auto test = [&](const FailureSchedule& s) {
    ++result.evaluations;
    return reproduces(s);
  };
  DCS_REQUIRE(test(failing),
              "minimizer needs a reproducing schedule to start from");

  // Working set: indices into failing.events, always in ascending order so
  // candidate schedules preserve event order and wave numbers.
  std::vector<std::size_t> current(failing.events.size());
  for (std::size_t i = 0; i < current.size(); ++i) current[i] = i;

  std::size_t granularity = 2;
  bool budget_left = true;
  while (current.size() >= 2 && budget_left) {
    granularity = std::min(granularity, current.size());
    const std::size_t chunk =
        (current.size() + granularity - 1) / granularity;

    bool reduced = false;
    for (std::size_t start = 0; start < current.size() && !reduced;
         start += chunk) {
      const std::size_t end = std::min(start + chunk, current.size());

      if (result.evaluations >= options.max_evaluations) {
        budget_left = false;
        break;
      }
      // Try the chunk alone …
      std::vector<std::size_t> alone(current.begin() + start,
                                     current.begin() + end);
      if (alone.size() < current.size() &&
          test(subset(failing.events, alone))) {
        current = std::move(alone);
        granularity = 2;
        reduced = true;
        break;
      }
      if (result.evaluations >= options.max_evaluations) {
        budget_left = false;
        break;
      }
      // … then its complement.
      std::vector<std::size_t> complement;
      complement.reserve(current.size() - (end - start));
      complement.insert(complement.end(), current.begin(),
                        current.begin() + start);
      complement.insert(complement.end(), current.begin() + end,
                        current.end());
      if (!complement.empty() && complement.size() < current.size() &&
          test(subset(failing.events, complement))) {
        current = std::move(complement);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }

    if (!reduced) {
      if (granularity >= current.size()) {
        // Every single event is load-bearing: 1-minimal.
        result.minimal = true;
        break;
      }
      granularity = std::min(current.size(), granularity * 2);
    }
  }
  if (current.size() < 2 && budget_left) result.minimal = true;

  result.schedule = subset(failing.events, current);
  obs::MetricsRegistry::instance()
      .counter("minimizer.evaluations")
      .inc(result.evaluations);
  DCS_LOG(Info) << "minimized " << result.initial_events << " events to "
                << result.schedule.events.size() << " in "
                << result.evaluations << " evaluations"
                << (result.minimal ? " (1-minimal)" : " (budget)");
  return result;
}

}  // namespace dcs
