#pragma once

// Incremental self-healing of DC-spanners after faults.
//
// Rebuilding a spanner from scratch after every fault wave is wasteful:
// faults are local, and the paper's constructions make *per-edge* decisions
// (sample, support test, reinsert) that only depend on a constant-radius
// neighborhood. The repair engine re-runs exactly that machinery around the
// damage:
//
//  * damage frontier — replacement paths have length ≤ 3 with interior
//    vertices adjacent to the endpoints, so an edge's coverage can only
//    break if an endpoint is adjacent (in G) to a crashed vertex or to an
//    endpoint of a crashed edge. Those adjacent vertices form the frontier;
//    only surviving G-edges touching it need re-examination.
//
//  * detour patch (Theorem 3 / Algorithm 1): re-sample frontier edges with
//    the construction's deterministic per-edge coin (restoring router
//    capacity), then re-apply the Ê test — reinsert every frontier edge
//    that is no longer (a,b)-supported in G∖F or has no surviving
//    replacement of length ≤ 3 in the patched spanner.
//
//  * matching patch (Theorem 2): for every frontier edge without a
//    surviving short replacement, rebuild the neighborhood matching
//    M_{u,v} between N(u) and N(v) on the survivors and splice one matched
//    3-hop path into the spanner; reinsert the edge itself if the
//    matching is empty.
//
// Both strategies guarantee the repaired spanner is a 3-distance spanner
// of G∖F deterministically (every examined edge ends covered; unexamined
// edges kept their pre-fault replacement by the frontier argument). When
// the damage exceeds `rebuild_threshold`, locality stops paying and the
// engine falls back to a full rebuild on the surviving graph.

#include <span>

#include "core/regular_spanner.hpp"
#include "graph/graph.hpp"
#include "resilience/fault_state.hpp"

namespace dcs {

enum class RepairStrategy : std::uint8_t {
  kDetourPatch,    ///< Theorem 3: resample + support-based reinsertion
  kMatchingPatch,  ///< Theorem 2: rebuild neighborhood matchings
};

enum class RepairOutcome : std::uint8_t {
  kNoop,     ///< nothing to repair (no candidates, nothing added)
  kPatched,  ///< incremental local repair
  kRebuilt,  ///< budget exceeded — full rebuild on the survivors
};

const char* to_string(RepairOutcome outcome);

struct SpannerRepairOptions {
  std::uint64_t seed = 0;
  RepairStrategy strategy = RepairStrategy::kDetourPatch;

  /// Fraction of surviving G-edges that may be *broken* (uncovered after a
  /// cheap screen on H∖F) before the engine falls back to a full rebuild.
  double rebuild_threshold = 0.5;

  /// Construction parameters mirrored from the original build (support
  /// thresholds, sampling factors); also used by the fallback rebuild.
  RegularSpannerOptions build;

  /// Resampling probability for the detour patch; 0 derives √d̄/d̄ from the
  /// surviving average degree (the Algorithm 1 choice ρ = Δ'/Δ).
  double resample_rho = 0.0;
};

struct RepairResult {
  Graph h;  ///< repaired spanner (a subgraph of the surviving graph)
  RepairOutcome outcome = RepairOutcome::kNoop;
  std::size_t frontier_vertices = 0;
  std::size_t candidate_edges = 0;   ///< surviving edges re-examined
  std::size_t resampled_edges = 0;   ///< capacity edges added (coin / matching)
  std::size_t reinserted_edges = 0;  ///< edges reinserted for the 3-stretch
  double seconds = 0.0;              ///< wall-clock cost of this repair
};

/// Vertices whose incident coverage may have been invalidated by `events`:
/// for a crashed or recovered vertex w, N_G(w); for a crashed or recovered
/// edge (x,z), {x,z} ∪ N_G(x) ∪ N_G(z). Computed against the fault-free
/// G so recovered elements are found even while they are down.
std::vector<Vertex> damage_frontier(const Graph& g,
                                    std::span<const FaultEvent> events);

/// The precise endangered-edge set: surviving G-edges whose length-≤3
/// replacement could have traversed a faulted element. A crashed/recovered
/// vertex w endangers edges with an endpoint in N_G(w); a crashed/recovered
/// edge (x,z) endangers only pairs with one endpoint in N_G[x] and the
/// other in N_G[z] — a ≤3-hop path can use (x,z) in no other position.
/// Much tighter than edges-touching-the-frontier under edge faults, which
/// keeps the patch local even at ~10% edge-fault rates.
std::vector<Edge> repair_candidates(const Graph& g, const Graph& g_surviving,
                                    std::span<const FaultEvent> events);

/// Incrementally repairs `h_surviving` into a 3-distance spanner of
/// `g_surviving`, re-examining only the edges touching `frontier`.
RepairResult repair_spanner(const Graph& g_surviving,
                            const Graph& h_surviving,
                            std::span<const Vertex> frontier,
                            const SpannerRepairOptions& options = {});

/// Same, with the endangered edges already computed (see
/// `repair_candidates`); this is the overload `repair_spanner_after` uses.
RepairResult repair_spanner(const Graph& g_surviving,
                            const Graph& h_surviving,
                            std::span<const Edge> candidates,
                            const SpannerRepairOptions& options = {});

/// Convenience wrapper: filters G and H through `state`, derives the
/// frontier from `events`, and repairs.
RepairResult repair_spanner_after(const Graph& g, const Graph& h,
                                  const FaultState& state,
                                  std::span<const FaultEvent> events,
                                  const SpannerRepairOptions& options = {});

/// The fallback (and the baseline the benches compare against): a full
/// Algorithm 1 rebuild on the surviving graph, with the regularity
/// requirement relaxed to the survivors' actual degree spread (Theorem 2's
/// regular-expander premise cannot outlive faults, so both strategies fall
/// back to the Algorithm 1 construction).
RepairResult rebuild_spanner(const Graph& g_surviving,
                             const SpannerRepairOptions& options = {});

}  // namespace dcs
