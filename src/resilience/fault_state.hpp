#pragma once

// Runtime fault model: a mutable overlay of crashed vertices and edges on
// top of the immutable CSR graphs used everywhere else.
//
// Faults apply to the *network* G; the spanner H ⊆ G inherits them, so one
// FaultState filters both graphs consistently (`surviving`). Vertex and
// edge failures are tracked independently: a vertex crash silences every
// incident edge implicitly (they come back if the vertex recovers), while
// an edge crash marks the single edge and persists across vertex recovery
// until an explicit edge-up event.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"

namespace dcs {

enum class FaultKind : std::uint8_t {
  kVertexDown,
  kVertexUp,
  kEdgeDown,
  kEdgeUp,
};

/// One entry of a replayable failure log. Vertex events store the vertex in
/// `u` (v = kInvalidVertex); edge events store the canonical edge.
struct FaultEvent {
  std::size_t wave = 0;  ///< injection wave the event belongs to
  FaultKind kind = FaultKind::kVertexDown;
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;

  bool operator==(const FaultEvent&) const = default;

  static FaultEvent vertex_down(std::size_t wave, Vertex w) {
    return {wave, FaultKind::kVertexDown, w, kInvalidVertex};
  }
  static FaultEvent vertex_up(std::size_t wave, Vertex w) {
    return {wave, FaultKind::kVertexUp, w, kInvalidVertex};
  }
  static FaultEvent edge_down(std::size_t wave, Edge e) {
    e = canonical(e);
    return {wave, FaultKind::kEdgeDown, e.u, e.v};
  }
  static FaultEvent edge_up(std::size_t wave, Edge e) {
    e = canonical(e);
    return {wave, FaultKind::kEdgeUp, e.u, e.v};
  }
};

/// Live/dead bookkeeping for a graph on n vertices.
class FaultState {
 public:
  explicit FaultState(std::size_t n) : vertex_down_(n, 0) {}

  std::size_t num_vertices() const { return vertex_down_.size(); }

  void apply(const FaultEvent& event);
  void apply(std::span<const FaultEvent> events);

  bool vertex_alive(Vertex v) const { return vertex_down_[v] == 0; }

  /// An edge is alive iff both endpoints are alive and the edge itself has
  /// not been individually crashed.
  bool edge_alive(Vertex u, Vertex v) const {
    return vertex_alive(u) && vertex_alive(v) &&
           !edge_down_.contains(canonical(u, v));
  }
  bool edge_alive(Edge e) const { return edge_alive(e.u, e.v); }

  std::size_t failed_vertices() const { return failed_vertex_count_; }
  std::size_t failed_edges() const { return edge_down_.size(); }
  bool clean() const { return failed_vertex_count_ == 0 && edge_down_.empty(); }

  /// Deterministic enumeration of the overlay for checkpointing: crashed
  /// vertices ascending, individually-crashed edges sorted canonically.
  /// (EdgeSet iteration order is hash-dependent; persisted bytes must not
  /// be, or checkpoint CRCs would differ between identical states.)
  std::vector<Vertex> down_vertices() const;
  std::vector<Edge> down_edges() const;

  /// The surviving subgraph of `g` on the same vertex set: keeps exactly
  /// the edges that are alive under this state. Dead vertices remain as
  /// isolated vertices so vertex ids stay stable across the fleet of
  /// graphs (G, H, sampled G', …).
  Graph surviving(const Graph& g) const;

 private:
  std::vector<std::uint8_t> vertex_down_;
  std::size_t failed_vertex_count_ = 0;
  EdgeSet edge_down_;
};

}  // namespace dcs
