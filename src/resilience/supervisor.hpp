#pragma once

// SpannerSupervisor — keeps the (α, β) certificate alive under continuous
// churn.
//
// PR 1's repair engine answers "how do I fix the spanner after *this*
// wave?"; the supervisor answers "how do I keep it certified forever?". It
// consumes a fault-event stream wave by wave (from a ChurnEngine or a
// replayed FailureSchedule) and runs a budgeted maintenance loop:
//
//  * endangered edges from each wave's events join a *repair debt* queue
//    (deduplicated, dead entries dropped as faults land on them);
//  * every wave at most `repair_budget` debt edges are repaired through
//    the incremental engine — the budget caps tail latency per wave, and
//    the leftover debt is explicit, observable back-pressure;
//  * when debt exceeds `rebuild_debt`, locality has stopped paying and the
//    supervisor falls back to a full rebuild — but at most once per
//    `rebuild_debounce` waves, so a burst cannot thrash rebuilds;
//  * repairs launch only when debt ≥ `min_repair_batch` or has aged
//    `max_defer_waves` waves (repair hysteresis): a flapping link whose
//    down/up pair lands within the window is screened once, as a no-op,
//    instead of triggering two repairs;
//  * recertification (HealthMonitor) runs after every repair and at least
//    every `recheck_interval` waves, and feeds the degradation ladder
//
//      kHealthy → kDegraded → kRepairing → kRebuilding → kLost
//
//    exported through obs::metrics (`supervisor.state`,
//    `supervisor.repair_debt`, …). kLost — a clean certificate failure with
//    no outstanding debt — means the maintenance loop itself is broken; the
//    supervisor schedules an emergency rebuild on the next step, and the
//    soak harness treats the state as an invariant violation.
//
// Determinism: everything downstream of the event stream is seeded, so a
// supervisor run is replayable from (graph, initial spanner, schedule).

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>

#include "graph/graph.hpp"
#include "resilience/fault_state.hpp"
#include "resilience/health_monitor.hpp"
#include "resilience/spanner_repair.hpp"

namespace dcs::serve {
class SnapshotStore;  // serve/snapshot.hpp — serving-plane epoch store
}  // namespace dcs::serve

namespace dcs::persist {
class DurabilityManager;  // persist/durability.hpp — checkpoint + WAL
struct CheckpointData;    // persist/checkpoint.hpp — serialized state
}  // namespace dcs::persist

namespace dcs {

/// Degradation ladder, ordered by severity (numeric value is exported as
/// the `supervisor.state` gauge).
enum class SupervisorState : std::uint8_t {
  kHealthy = 0,     ///< certificate held, no outstanding repair debt
  kDegraded = 1,    ///< certified with a weaker bound, or in hysteresis
  kRepairing = 2,   ///< incremental repair in progress / debt outstanding
  kRebuilding = 3,  ///< full rebuild ran this wave
  kLost = 4,        ///< certificate lost with zero debt — repair loop bug
};

const char* to_string(SupervisorState state);

struct SupervisorOptions {
  HealthMonitorOptions health;  ///< certificate to maintain (α, cap, β)
  SpannerRepairOptions repair;  ///< strategy + construction parameters

  /// Maximum debt edges repaired per wave (0 = unlimited). The cap bounds
  /// per-wave repair latency; the remainder carries over as debt.
  std::size_t repair_budget = 0;

  /// Debt size that abandons patching for a full rebuild (0 = never).
  std::size_t rebuild_debt = 0;
  /// Minimum waves between debt-triggered rebuilds. While debounced, the
  /// supervisor keeps paying debt down through budgeted repairs.
  std::size_t rebuild_debounce = 8;

  /// Repair hysteresis: wait until debt ≥ min_repair_batch or the oldest
  /// debt is `max_defer_waves` waves old before launching a repair.
  std::size_t min_repair_batch = 1;
  std::size_t max_defer_waves = 4;

  /// Recertify at least every this many waves (1 = every wave); a wave
  /// that repaired or rebuilt always recertifies.
  std::size_t recheck_interval = 1;

  /// Consecutive held certificates required to climb back to kHealthy
  /// after any repair/rebuild/degradation.
  std::size_t hysteresis = 2;

  /// Cut a durable checkpoint every this many waves when a
  /// DurabilityManager is attached (0 = only explicit checkpoint_now()
  /// calls). Between checkpoints every wave's events are write-ahead
  /// logged, so the exposure window is bounded by WAL fsync cadence, not
  /// by this interval.
  std::size_t checkpoint_interval = 0;
};

/// What SpannerSupervisor::recover() reconstructed and how long it took.
struct SupervisorRecovery {
  bool ok = false;
  std::string error;  ///< set when !ok (recovery failed closed)

  std::uint64_t generation = 0;        ///< checkpoint generation loaded
  std::uint64_t checkpoint_wave = 0;   ///< wave the checkpoint was cut at
  std::size_t generations_skipped = 0; ///< corrupt newer generations
  std::size_t wal_waves_replayed = 0;
  std::size_t wal_events_replayed = 0;
  bool wal_truncated = false;          ///< torn/corrupt WAL tail dropped
  std::uint64_t pre_crash_epoch = 0;   ///< last epoch the crashed run served

  GuaranteeStatus certificate = GuaranteeStatus::kLost;  ///< post-recovery
  double certified_alpha = 0.0;
  bool recheckpointed = false;  ///< fresh generation cut after recovery

  double seconds = 0.0;  ///< total recovery wall time
  double load_seconds = 0.0;
  double replay_seconds = 0.0;
  double recheck_seconds = 0.0;

  std::string summary() const;
};

/// One wave's maintenance outcome.
struct SupervisorReport {
  std::size_t wave = 0;
  SupervisorState state = SupervisorState::kHealthy;
  RepairOutcome repair = RepairOutcome::kNoop;
  bool repaired = false;  ///< a repair or rebuild ran this wave
  bool checked = false;   ///< recertification ran this wave

  GuaranteeStatus certificate = GuaranteeStatus::kHeld;  ///< latest check
  double certified_alpha = 0.0;

  std::size_t events_applied = 0;
  std::size_t new_candidates = 0;   ///< endangered edges from this wave
  std::size_t repaired_candidates = 0;
  std::size_t debt = 0;             ///< outstanding debt after this wave
  /// Snapshot epoch published this wave (0 = nothing published: either no
  /// store is attached or nothing serving-visible changed).
  std::uint64_t epoch = 0;
  double seconds = 0.0;             ///< wall-clock cost of this step

  std::string summary() const;
};

class SpannerSupervisor {
 public:
  /// `g` is the fault-free network and must outlive the supervisor; `h` is
  /// the initial certified spanner (a subgraph of g).
  SpannerSupervisor(const Graph& g, Graph h, SupervisorOptions options = {});

  /// Consumes one wave of fault events: applies them, accumulates repair
  /// debt, repairs/rebuilds within budget, recertifies, advances the
  /// degradation ladder, and — when a snapshot store is attached —
  /// publishes the post-wave `{graph, spanner, certificate}` view as a
  /// new serving epoch if anything serving-visible changed.
  SupervisorReport step(std::span<const FaultEvent> events);

  /// Attaches the serving-plane epoch store (borrowed; may be nullptr to
  /// detach). The current state is published immediately so the serving
  /// plane never runs ahead of the maintenance plane; thereafter step()
  /// publishes whenever events landed, maintenance ran, or the ladder
  /// moved. The store's vertex count must match the network's.
  void attach_snapshots(serve::SnapshotStore* store);

  /// Attaches the durability plane (borrowed; nullptr detaches). Once
  /// attached, step() write-ahead logs every wave *before* applying it and
  /// cuts a checkpoint every `checkpoint_interval` waves. Call
  /// checkpoint_now() right after attaching so the WAL has a base
  /// generation to replay against.
  void attach_durability(persist::DurabilityManager* durability);

  /// Cuts a durable checkpoint of the current state (and rotates the WAL).
  /// False when no durability manager is attached or the write failed —
  /// in which case the previous generation remains authoritative.
  bool checkpoint_now();

  /// Rebuilds a supervisor from the newest valid generation in `durability`:
  /// loads the checkpoint, re-applies the fault overlay, replays the WAL
  /// wave by wave through the normal step()/repair path (deterministic, so
  /// the replayed state matches the pre-crash one), recertifies against a
  /// live HealthMonitor, attaches `durability`, and cuts a fresh
  /// checkpoint. `g` must equal the checkpointed network — recovery fails
  /// closed on mismatch rather than serve a spanner of the wrong graph.
  /// Returns nullptr (with report.error set) when recovery fails closed;
  /// the on-disk generations are left untouched either way. Attach a
  /// SnapshotStore afterwards to publish the recovered epoch.
  static std::unique_ptr<SpannerSupervisor> recover(
      const Graph& g, persist::DurabilityManager& durability,
      SupervisorOptions options, SupervisorRecovery& report);

  /// The current spanner (a subgraph of the current surviving network).
  const Graph& spanner() const { return h_; }
  const FaultState& fault_state() const { return state_; }

  SupervisorState ladder_state() const { return ladder_; }
  /// Last serving epoch published (0 = none yet).
  std::uint64_t last_epoch() const { return last_epoch_; }
  std::size_t repair_debt() const { return debt_.size(); }
  std::size_t waves() const { return wave_; }
  std::size_t repairs() const { return repairs_; }
  std::size_t rebuilds() const { return rebuilds_; }

  /// Latest recertification result (valid once a step has checked).
  const DegradationReport& last_check() const { return last_check_; }

  /// TEST HOOK — deliberately breaks the maintenance loop: after every
  /// repair, one repaired edge is silently removed from the spanner
  /// without re-entering the debt queue. Exists so the soak harness and
  /// its schedule minimizer can prove they catch real invariant
  /// violations; never enable outside a harness self-test.
  void inject_repair_bug() { repair_bug_ = true; }

 private:
  void refresh_debt();  ///< drop dead / already-covered-by-H entries
  void export_metrics(const SupervisorReport& report);
  /// Publishes {g_surv, h_, certificate-from-last_check_} to the attached
  /// store and returns the new epoch. Requires snapshots_ != nullptr.
  std::uint64_t publish_snapshot(const Graph& g_surv);
  /// Serializes the full maintenance state for the durability plane.
  persist::CheckpointData make_checkpoint() const;
  /// Recertifies immediately against the current topology (used by
  /// recovery; step() has its own cadence-driven version).
  void force_recertify();

  const Graph& g_;
  Graph h_;
  SupervisorOptions options_;
  FaultState state_;

  SupervisorState ladder_ = SupervisorState::kHealthy;
  std::size_t wave_ = 0;
  std::size_t repairs_ = 0;
  std::size_t rebuilds_ = 0;
  std::size_t last_rebuild_wave_ = 0;
  std::size_t last_check_wave_ = 0;
  std::size_t held_streak_ = 0;
  bool emergency_rebuild_ = false;
  bool repair_bug_ = false;

  // Serving-plane hand-off (tentpole of the live-oracle work): where new
  // epochs go, the last ladder state the serving plane saw, and whether
  // the certificate still describes the published topology.
  serve::SnapshotStore* snapshots_ = nullptr;
  SupervisorState last_published_state_ = SupervisorState::kHealthy;
  std::uint64_t last_epoch_ = 0;

  // Durability plane (borrowed): WAL target + checkpoint sink.
  persist::DurabilityManager* durability_ = nullptr;
  /// Set when faults or maintenance touch the topology, cleared by
  /// recertification: a published certificate is `fresh` iff clear.
  bool cert_dirty_ = false;

  // Debt queue in arrival order plus a membership set for deduplication.
  std::deque<Edge> debt_;
  EdgeSet debt_set_;
  std::size_t debt_oldest_wave_ = 0;  ///< wave the oldest debt arrived in

  DegradationReport last_check_;
};

}  // namespace dcs
