#pragma once

// Deterministic, seeded failure schedules over a Graph.
//
// A schedule is a flat, wave-ordered event log — the ground truth of an
// experiment. Everything downstream (health checks, repair, the resilient
// router) consumes the log, so a run is replayable byte-for-byte: same
// graph + same schedule ⇒ same outcome. Schedules round-trip through a
// plain-text format (`write_schedule`/`read_schedule`) so they can be
// archived next to bench output.
//
// Fault modes:
//  * edge crash      — a seeded sample of the currently-live edges per wave;
//  * vertex crash    — a seeded sample of the currently-live vertices;
//  * flapping        — any generated fault is transient with probability
//                      `flap_probability` and recovers `flap_duration`
//                      waves later (modeling lossy links that come back);
//  * adversarial     — instead of sampling, target the highest-load
//                      vertices (and their hottest edges) reported by a
//                      Routing's congestion profile: the worst case for a
//                      congestion-aware spanner is losing its hubs.

#include <iosfwd>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "resilience/fault_state.hpp"
#include "routing/routing.hpp"

namespace dcs {

struct FailureSchedule {
  /// Events sorted by (wave, kind, u, v); waves need not be contiguous.
  std::vector<FaultEvent> events;

  std::size_t num_waves() const;

  /// The contiguous slice of events belonging to `wave` (possibly empty).
  std::span<const FaultEvent> wave(std::size_t wave) const;

  /// Counts of injected (down) events, for reporting.
  std::size_t vertex_crashes() const;
  std::size_t edge_crashes() const;

  bool operator==(const FailureSchedule&) const = default;
};

/// Plain-text replayable log: one `wave kind u [v]` line per event.
void write_schedule(std::ostream& os, const FailureSchedule& schedule);
FailureSchedule read_schedule(std::istream& is);

struct FailureInjectorOptions {
  std::uint64_t seed = 0;
  std::size_t waves = 1;

  /// Per wave: crash this fraction of the currently-live edges …
  double edge_fault_fraction = 0.0;
  /// … plus this absolute number of live edges.
  std::size_t edge_faults_per_wave = 0;
  /// Per wave: crash this many currently-live vertices.
  std::size_t vertex_faults_per_wave = 0;

  /// Probability that a generated fault is transient (flapping).
  double flap_probability = 0.0;
  /// Waves until a transient fault recovers. Recovery events may land
  /// beyond `waves`; apply the full schedule to observe them.
  std::size_t flap_duration = 1;
};

class FailureInjector {
 public:
  FailureInjector(const Graph& g, const FailureInjectorOptions& options);

  /// Seeded random schedule (edge/vertex crashes + flapping).
  FailureSchedule generate() const;

  /// Adversarial schedule: vertex crashes target the highest-load alive
  /// vertices of `routing` (ties broken by vertex id), edge crashes the
  /// live edges with the largest endpoint-load sums. Flapping applies as
  /// in the random mode. `routing` is the congestion profile on the graph
  /// under attack (typically the substitute routing on the spanner).
  FailureSchedule generate_adversarial(const Routing& routing) const;

 private:
  FailureSchedule generate_impl(const std::vector<std::size_t>* loads) const;

  const Graph& g_;
  FailureInjectorOptions options_;
};

}  // namespace dcs
