#pragma once

// Post-fault recertification of the (α, β) spanner guarantees.
//
// After each fault wave the monitor re-measures Definition 1 (distance
// stretch) and, optionally, the matching congestion of Definition 2 on the
// *surviving* subgraphs G∖F and H∖F, and classifies each guarantee:
//
//  * held               — the original bound still holds (stretch ≤ α);
//  * degraded (bounded) — every surviving pair is still covered but the
//                         worst-case bound grew; the report carries the
//                         measured bound so routing can adapt;
//  * lost               — some pair that is connected in G∖F is not
//                         connected within the verification horizon in
//                         H∖F: the spanner needs repair, not tolerance.

#include <string>

#include "core/verifier.hpp"
#include "graph/graph.hpp"
#include "resilience/fault_state.hpp"

namespace dcs {

enum class GuaranteeStatus : std::uint8_t {
  kHeld,
  kDegraded,
  kLost,
};

const char* to_string(GuaranteeStatus status);

struct HealthMonitorOptions {
  double alpha = 3.0;  ///< distance-stretch bound to certify
  Dist bfs_cap = 16;   ///< verification horizon (pairs beyond it = lost)
  bool check_congestion = false;
  /// Matching congestion-stretch bound to certify when checking congestion
  /// (0 = measure and report, never degrade on congestion alone).
  double beta = 0.0;
  std::uint64_t seed = 0;  ///< seeds the congestion workload + routing
};

struct DegradationReport {
  GuaranteeStatus distance = GuaranteeStatus::kHeld;
  DistanceStretchReport stretch;   ///< measured on G∖F vs H∖F
  double certified_alpha = 0.0;    ///< the bound that actually holds
                                   ///< (= measured max stretch if degraded)
  std::size_t surviving_g_edges = 0;
  std::size_t surviving_h_edges = 0;
  std::size_t failed_vertices = 0;
  std::size_t failed_edges = 0;

  bool congestion_checked = false;
  GuaranteeStatus congestion_status = GuaranteeStatus::kHeld;
  CongestionReport congestion;     ///< matching workload on the survivors

  bool healthy() const { return distance == GuaranteeStatus::kHeld; }

  /// One-line human-readable digest for logs and the CLI.
  std::string summary() const;
};

class HealthMonitor {
 public:
  /// `g` is the fault-free network; it must outlive the monitor.
  explicit HealthMonitor(const Graph& g, HealthMonitorOptions options = {});

  /// Recertifies `h` (the current spanner, a subgraph of G) under `state`:
  /// both graphs are filtered to their surviving subgraphs first.
  DegradationReport check(const Graph& h, const FaultState& state) const;

  /// Same, with the survivors already materialized (avoids refiltering when
  /// the caller needs the surviving graphs anyway).
  DegradationReport check_surviving(const Graph& g_surviving,
                                    const Graph& h_surviving,
                                    const FaultState& state) const;

 private:
  const Graph& g_;
  HealthMonitorOptions options_;
};

}  // namespace dcs
