#pragma once

// Strict numeric parsing for command-line front ends.
//
// std::stod accepts trailing garbage ("1.5abc" parses as 1.5) and throws on
// overflow, so flag parsing built on it either silently mis-reads values or
// terminates with an uncaught exception instead of the documented usage
// exit code. These helpers consume the whole string or fail, never throw,
// and reject non-finite results, so callers can turn every malformed value
// into a clean diagnostic.

#include <cstdint>
#include <optional>
#include <string_view>

namespace dcs {

/// Parses the entire string as a finite double. std::nullopt on empty
/// input, leading/trailing garbage (including whitespace), values that
/// overflow to ±inf or underflow out of range, and explicit "inf"/"nan"
/// spellings.
std::optional<double> parse_double_strict(std::string_view s);

/// Parses the entire string as an unsigned 64-bit decimal integer;
/// std::nullopt on garbage, sign characters, or overflow.
std::optional<std::uint64_t> parse_u64_strict(std::string_view s);

}  // namespace dcs
