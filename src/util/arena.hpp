#pragma once

// First-touch-aware scratch arenas for the traversal core.
//
// On a NUMA machine, Linux places each page of a fresh allocation on the
// node of the CPU that first writes it. The traversal scratch arrays are
// thread-local and long-lived, so the policy that keeps repeated BFS
// sweeps on local memory is simple: every worker allocates its own
// arenas, and ArenaBuffer touches every page of newly grown capacity
// from the owning thread at grow time (instead of leaving the first
// touch to whatever thread happens to write first later). Combined with
// optional worker pinning (DCS_PIN_THREADS, see util/thread_pool.hpp),
// this pins each worker's scratch to its own node without a libnuma
// dependency. See docs/performance.md.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace dcs {

/// A growable 64-byte-aligned buffer of trivially-copyable elements.
///
/// Unlike std::vector: growth never copies the old contents (the
/// traversal scratch re-initializes via epoch stamps whenever the size
/// changes, so preserving data would be wasted bandwidth) and newly
/// acquired pages are written immediately by the calling thread to fix
/// their NUMA placement. Contents are unspecified after a growing
/// resize().
template <typename T>
class ArenaBuffer {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "ArenaBuffer holds raw scratch data only");

 public:
  ArenaBuffer() = default;
  ~ArenaBuffer() { release(); }

  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;

  ArenaBuffer(ArenaBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  /// Ensure size() == n. Growing discards old contents and first-touches
  /// the whole new allocation from the calling thread; shrinking just
  /// trims the visible size.
  void resize(std::size_t n) {
    if (n > capacity_) {
      release();
      void* p = ::operator new[](n * sizeof(T), std::align_val_t{64});
      // The first write decides NUMA page placement: do it here, on the
      // thread that owns this arena, not lazily on some other thread.
      std::memset(p, 0, n * sizeof(T));
      data_ = static_cast<T*>(p);
      capacity_ = n;
    }
    size_ = n;
  }

  /// resize(n) followed by filling the visible range with `value`.
  void assign(std::size_t n, const T& value) {
    resize(n);
    fill(value);
  }

  void fill(const T& value) {
    if constexpr (sizeof(T) == 1) {
      std::memset(data_, static_cast<unsigned char>(value), size_);
    } else {
      for (std::size_t i = 0; i < size_; ++i) data_[i] = value;
    }
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void release() {
    if (data_ != nullptr) {
      ::operator delete[](static_cast<void*>(data_), std::align_val_t{64});
      data_ = nullptr;
    }
    size_ = 0;
    capacity_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace dcs
