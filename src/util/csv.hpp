#pragma once

// Minimal CSV writing for the experiment harnesses: when the environment
// variable DCS_CSV_DIR is set, each bench additionally records its rows as
// machine-readable CSV next to the human-readable tables, so sweeps can be
// post-processed (plots, regression tracking) without re-running.

#include <fstream>
#include <optional>
#include <string>
#include <vector>

namespace dcs {

class CsvWriter {
 public:
  /// Opens `path` and writes the header row. Throws on I/O failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends one row (arity-checked; fields are quoted when needed).
  void add_row(const std::vector<std::string>& row);

  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({cell_to_string(cells)...});
  }

  std::size_t rows() const { return rows_; }

 private:
  template <typename T>
  static std::string cell_to_string(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      return std::to_string(value);
    }
  }

  static std::string escape(const std::string& field);

  std::ofstream os_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// If DCS_CSV_DIR is set, returns "<dir>/<name>.csv"; otherwise nullopt.
/// Benches use this to decide whether to record CSV.
std::optional<std::string> csv_output_path(const std::string& name);

}  // namespace dcs
