#pragma once

// Runtime-dispatched SIMD kernels for the traversal core.
//
// Three hot loops dominate the traversal engine's cycle budget: the
// word-parallel intersection popcount behind the support oracle, the
// bottom-up parent search of direction-optimizing BFS, and the 64-wide
// frontier merge of multi-source BFS. Each has exactly one scalar
// reference implementation here and (when the binary was configured with
// DCS_ENABLE_AVX2) one AVX2 implementation in util/simd_avx2.cpp,
// compiled as a separately-flagged translation unit so the rest of the
// binary stays portable.
//
// Dispatch is resolved at runtime: the AVX2 path is taken only when it
// was compiled in AND the executing CPU reports AVX2 AND the
// forced-scalar override is off. The override (DCS_FORCE_SCALAR=1 in the
// environment, or set_force_scalar(true) programmatically) exists so CI
// can run the identical workload on both tiers and diff the checksums,
// and so sanitizer jobs exercise the fallback kernels — see
// docs/performance.md.
//
// Contract: for every kernel, both tiers return bit-identical results on
// identical inputs. tests/test_simd.cpp pins this property; the
// bench_microbench kernel-comparison pass re-asserts it on every perf run.

#include <cstddef>
#include <cstdint>

namespace dcs::simd {

enum class DispatchTier : std::uint8_t {
  kScalar = 0,  ///< portable std::popcount / scalar bit tests
  kAvx2 = 1,    ///< AVX2 translation unit (util/simd_avx2.cpp)
};

/// Best tier compiled into this binary and supported by the executing CPU
/// (ignores the forced-scalar override).
DispatchTier hardware_tier();

/// Tier the kernels dispatch to right now (hardware_tier() unless the
/// forced-scalar override is on).
DispatchTier active_tier();

const char* tier_name(DispatchTier tier);

/// Forced-scalar override. Initialized once from the DCS_FORCE_SCALAR
/// environment variable (any value other than empty or "0" forces the
/// scalar tier); toggleable at runtime for A/B checksum tests.
bool force_scalar();
void set_force_scalar(bool force);

/// True when kernels will take the AVX2 path on the next call.
inline bool avx2_active() { return active_tier() == DispatchTier::kAvx2; }

// --- kernels ---------------------------------------------------------------

/// popcount(a[i] & b[i]) summed over `words` 64-bit words. The adjacency-
/// bitmap intersection loop (AdjacencyBitmap::common_count). No alignment
/// requirement.
std::size_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words);

/// True iff any of the `count` 32-bit vertex ids in `vs` has its bit set
/// in the bitset `bits` (bit v lives in bits[v >> 6]). The bottom-up
/// parent search: "does any neighbor of v sit on the frontier?".
bool any_bit_of(const std::uint32_t* vs, std::size_t count,
                const std::uint64_t* bits);

/// The MS-BFS frontier merge: out[i] = fmask & ~seen_at(vs[i]) for
/// i < count, where seen_at(v) = (seen_stamp[v] == epoch ? seen[v] : 0).
/// The caller applies the non-zero lanes (next-mask update + frontier
/// push) scalar — the gathers are the vectorizable part.
void ms_propagate(const std::uint32_t* vs, std::size_t count,
                  std::uint64_t fmask, const std::uint64_t* seen,
                  const std::uint32_t* seen_stamp, std::uint32_t epoch,
                  std::uint64_t* out);

namespace detail {

// Scalar reference implementations (always compiled; the semantic
// definition of each kernel and the forced-scalar/sanitizer path).
std::size_t and_popcount_scalar(const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t words);
bool any_bit_of_scalar(const std::uint32_t* vs, std::size_t count,
                       const std::uint64_t* bits);
void ms_propagate_scalar(const std::uint32_t* vs, std::size_t count,
                         std::uint64_t fmask, const std::uint64_t* seen,
                         const std::uint32_t* seen_stamp, std::uint32_t epoch,
                         std::uint64_t* out);

#ifdef DCS_HAVE_AVX2
// AVX2 implementations (util/simd_avx2.cpp, compiled with -mavx2; only
// ever called after the runtime cpuid check).
std::size_t and_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words);
bool any_bit_of_avx2(const std::uint32_t* vs, std::size_t count,
                     const std::uint64_t* bits);
void ms_propagate_avx2(const std::uint32_t* vs, std::size_t count,
                       std::uint64_t fmask, const std::uint64_t* seen,
                       const std::uint32_t* seen_stamp, std::uint32_t epoch,
                       std::uint64_t* out);
#endif

}  // namespace detail

}  // namespace dcs::simd
