#pragma once

// Summary statistics and growth-exponent fitting for experiment output.
//
// The experiments validate asymptotic claims ("the spanner has O(n^{5/3})
// edges") by fitting the slope of log(metric) against log(n) across a sweep;
// `loglog_slope` performs that least-squares fit.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dcs {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Full summary of a sample; values are copied and sorted internally.
Summary summarize(std::span<const double> values);

/// Percentile in [0, 1] by linear interpolation on the sorted sample.
double percentile(std::span<const double> values, double q);

/// Exact percentile over an unsorted sample, with total edge-case
/// handling (never throws, unlike percentile()). Contract:
///  * empty sample     → quiet NaN — there is no percentile of no data,
///    and a silent 0.0 would masquerade as a real measurement (the JSON
///    exporter maps NaN to null, the CSV exporter to an empty cell);
///  * one element      → that element, for every q;
///  * q outside [0, 1] → clamped.
/// Used by the metrics layer, where an empty histogram is an expected
/// state, not API misuse. Callers that want a numeric placeholder must
/// substitute it themselves after an std::isnan check.
double exact_percentile(std::span<const double> values, double q);

/// Batch variant: sorts the sample once and evaluates every rank in `qs`
/// (same edge-case behaviour as exact_percentile). Returns one value per
/// entry of `qs`, in order.
std::vector<double> exact_percentiles(std::span<const double> values,
                                      std::span<const double> qs);

/// Least-squares slope of y against x.
double linear_slope(std::span<const double> x, std::span<const double> y);

/// Least-squares slope of log(y) against log(x); the empirical growth
/// exponent of y as a function of x. All inputs must be positive.
double loglog_slope(std::span<const double> x, std::span<const double> y);

/// Pearson correlation coefficient.
double correlation(std::span<const double> x, std::span<const double> y);

/// Human-readable "1234567 (n^1.67)" style annotation used in bench output.
std::string format_with_exponent(double value, double n, double exponent);

/// Fixed-width histogram over [min, max] of the sample.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> bins;

  /// ASCII rendering, one line per bin ("[lo, hi) ####").
  std::string render(std::size_t max_width = 40) const;
};

Histogram histogram(std::span<const double> values, std::size_t bins);

/// Bootstrap confidence interval for the mean: percentile interval at
/// confidence `level` (e.g. 0.95) over `resamples` resamples.
struct BootstrapCi {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
};

BootstrapCi bootstrap_mean_ci(std::span<const double> values,
                              double level = 0.95,
                              std::size_t resamples = 2000,
                              std::uint64_t seed = 1);

}  // namespace dcs
