#pragma once

// Plain-text aligned table printer used by the benchmark harnesses to emit
// the rows/series the paper's Table 1 reports.

#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace dcs {

/// Formats a number with sensible precision (integer values render without
/// a fractional part).
std::string format_cell(double value);
std::string format_cell(std::size_t value);
std::string format_cell(int value);
std::string format_cell(long value);
std::string format_cell(unsigned value);

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats arbitrary streamable cells.
  template <typename... Cells>
  void add(const Cells&... cells) {
    add_row({to_cell(cells)...});
  }

  std::size_t rows() const { return rows_.size(); }

  /// Renders the table with a separator line under the header.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      return format_cell(value);
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dcs
