#pragma once

// Deterministic, splittable pseudo-random generation.
//
// Every randomized algorithm in this library takes an explicit seed so that
// experiments are reproducible bit-for-bit. The core generator is
// xoshiro256** seeded through SplitMix64, which is both fast and of high
// statistical quality; `Rng::split` derives independent child streams so
// parallel workers never share a generator.

#include <array>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace dcs {

/// SplitMix64 step: used for seeding and for stateless hashing of indices.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values; handy for per-item deterministic
/// randomness in parallel loops.
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** by Blackman & Vigna.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t s = seed;
    for (auto& w : state_) w = splitmix64(s);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream (e.g. one per thread or per trial).
  Rng split() { return Rng(mix64((*this)(), (*this)())); }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform(std::uint64_t bound) {
    DCS_REQUIRE(bound > 0, "uniform bound must be positive");
    unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * bound;
    auto low = static_cast<std::uint64_t>(product);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        product = static_cast<unsigned __int128>((*this)()) * bound;
        low = static_cast<std::uint64_t>(product);
      }
    }
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    DCS_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform_double() < p; }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = uniform(i);
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Pick a uniformly random element of a non-empty container.
  template <typename Container>
  auto& pick(Container& c) {
    DCS_REQUIRE(!c.empty(), "pick from empty container");
    return c[uniform(c.size())];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dcs
