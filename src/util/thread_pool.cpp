#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace dcs {

namespace detail {
bool& in_parallel_region() {
  thread_local bool flag = false;
  return flag;
}
}  // namespace detail

namespace {

// RAII marker for the parallel-region flag.
class RegionGuard {
 public:
  RegionGuard() : previous_(detail::in_parallel_region()) {
    detail::in_parallel_region() = true;
  }
  ~RegionGuard() { detail::in_parallel_region() = previous_; }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;

 private:
  bool previous_;
};

bool pin_threads_requested() {
  const char* v = std::getenv("DCS_PIN_THREADS");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

// Pin the calling thread to one CPU, round-robin over the online set.
// Best-effort: a failed setaffinity (cgroup restrictions, shrunk cpuset)
// silently leaves the thread unpinned.
void maybe_pin_current_thread(std::size_t slot) {
#ifdef __linux__
  if (!pin_threads_requested()) return;
  const long ncpu = sysconf(_SC_NPROCESSORS_ONLN);
  if (ncpu <= 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(slot % static_cast<std::size_t>(ncpu)), &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)slot;
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in every parallel_ranges call, so we
  // spawn n-1 workers.
  jobs_.resize(n > 0 ? n - 1 : 0);
  workers_.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::warm(const std::function<void(std::size_t)>& fn) {
  // Static partitioning of [0, size()) hands each worker exactly one
  // index, so fn runs once per thread — on that thread.
  parallel_ranges(0, size(),
                  [&fn](std::size_t lo, std::size_t hi, std::size_t) {
                    for (std::size_t i = lo; i < hi; ++i) fn(i);
                  });
}

void ThreadPool::worker_loop(std::size_t index) {
  // Slot 0 is the caller; workers occupy slots 1..n-1.
  maybe_pin_current_thread(index + 1);
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      job = jobs_[index];
    }
    std::exception_ptr error;
    if (job.fn != nullptr && job.begin < job.end) {
      try {
        RegionGuard guard;
        (*job.fn)(job.begin, job.end, index + 1);
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  // A nested call from inside a parallel region (a pool worker, or the
  // caller's chunk of an enclosing parallel_ranges) must not post jobs to
  // the already-busy pool: the outer batch's pending_ latch can never
  // reach zero while this thread blocks on the inner one. Degrade to
  // serial, exactly like parallel_for does. A pool with no workers
  // (size() == 1) takes the same path.
  if (workers_.empty() || detail::in_parallel_region()) {
    RegionGuard guard;
    fn(begin, end, 0);
    return;
  }
  // Serialize concurrent top-level callers (e.g. a serving thread and the
  // main thread): jobs_/pending_/generation_ describe one batch at a time.
  std::lock_guard submit_lock(submit_mutex_);
  const std::size_t total = end - begin;
  const std::size_t workers = size();
  const std::size_t chunk = (total + workers - 1) / workers;

  // Slot 0 (the caller's chunk) is handled inline below; workers get 1..n-1.
  std::size_t caller_begin = begin;
  std::size_t caller_end = std::min(end, begin + chunk);
  {
    std::lock_guard lock(mutex_);
    pending_ = workers_.size();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const std::size_t lo = std::min(end, begin + (i + 1) * chunk);
      const std::size_t hi = std::min(end, lo + chunk);
      jobs_[i] = Job{lo, hi, &fn};
    }
    ++generation_;
  }
  cv_start_.notify_all();

  std::exception_ptr caller_error;
  try {
    RegionGuard guard;
    fn(caller_begin, caller_end, 0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    error = first_error_ ? first_error_ : caller_error;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace dcs
