#include "util/thread_pool.hpp"

#include <algorithm>

namespace dcs {

namespace detail {
bool& in_parallel_region() {
  thread_local bool flag = false;
  return flag;
}
}  // namespace detail

namespace {

// RAII marker for the parallel-region flag.
class RegionGuard {
 public:
  RegionGuard() : previous_(detail::in_parallel_region()) {
    detail::in_parallel_region() = true;
  }
  ~RegionGuard() { detail::in_parallel_region() = previous_; }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in every parallel_ranges call, so we
  // spawn n-1 workers.
  jobs_.resize(n > 0 ? n - 1 : 0);
  workers_.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(std::size_t index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
      job = jobs_[index];
    }
    std::exception_ptr error;
    if (job.fn != nullptr && job.begin < job.end) {
      try {
        RegionGuard guard;
        (*job.fn)(job.begin, job.end, index + 1);
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  // A nested call from inside a parallel region (a pool worker, or the
  // caller's chunk of an enclosing parallel_ranges) must not post jobs to
  // the already-busy pool: the outer batch's pending_ latch can never
  // reach zero while this thread blocks on the inner one. Degrade to
  // serial, exactly like parallel_for does. A pool with no workers
  // (size() == 1) takes the same path.
  if (workers_.empty() || detail::in_parallel_region()) {
    RegionGuard guard;
    fn(begin, end, 0);
    return;
  }
  // Serialize concurrent top-level callers (e.g. a serving thread and the
  // main thread): jobs_/pending_/generation_ describe one batch at a time.
  std::lock_guard submit_lock(submit_mutex_);
  const std::size_t total = end - begin;
  const std::size_t workers = size();
  const std::size_t chunk = (total + workers - 1) / workers;

  // Slot 0 (the caller's chunk) is handled inline below; workers get 1..n-1.
  std::size_t caller_begin = begin;
  std::size_t caller_end = std::min(end, begin + chunk);
  {
    std::lock_guard lock(mutex_);
    pending_ = workers_.size();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      const std::size_t lo = std::min(end, begin + (i + 1) * chunk);
      const std::size_t hi = std::min(end, lo + chunk);
      jobs_[i] = Job{lo, hi, &fn};
    }
    ++generation_;
  }
  cv_start_.notify_all();

  std::exception_ptr caller_error;
  try {
    RegionGuard guard;
    fn(caller_begin, caller_end, 0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    error = first_error_ ? first_error_ : caller_error;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace dcs
