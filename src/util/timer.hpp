#pragma once

// Wall-clock timing helper for the benchmark harnesses.

#include <chrono>

namespace dcs {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII timer that reports its elapsed time when the scope closes.
///
/// `Sink` is any type with record(double) taking *milliseconds* — in
/// practice obs::HistogramMetric, so phase timings land in the metrics
/// registry without the caller threading stopwatch code through every
/// branch:
///
///   { ScopedTimer timer(registry.histogram("spanner.build.ms"));
///     build(); }                       // records on scope exit
///
/// The optional `out_seconds` additionally receives the elapsed seconds,
/// for call sites that also print the value (bench tables).
template <typename Sink>
class ScopedTimer {
 public:
  explicit ScopedTimer(Sink& sink, double* out_seconds = nullptr)
      : sink_(&sink), out_seconds_(out_seconds) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const double s = timer_.seconds();
    if (out_seconds_ != nullptr) *out_seconds_ = s;
    sink_->record(s * 1e3);
  }

  /// Elapsed seconds so far (the destructor reports the final value).
  double seconds() const { return timer_.seconds(); }

 private:
  Timer timer_;
  Sink* sink_;
  double* out_seconds_;
};

}  // namespace dcs
