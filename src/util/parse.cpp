#include "util/parse.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>

namespace dcs {

std::optional<double> parse_double_strict(std::string_view s) {
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64_strict(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

}  // namespace dcs
