#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

double percentile(std::span<const double> values, double q) {
  DCS_REQUIRE(!values.empty(), "percentile of empty sample");
  DCS_REQUIRE(q >= 0.0 && q <= 1.0, "percentile rank must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

namespace {

/// Rank lookup on an already sorted sample with clamped q. An empty sample
/// has no percentiles: NaN is the explicit "no data" signal (a silent 0.0
/// here once exported misleading zero p99s from empty metric histograms).
double sorted_percentile(std::span<const double> sorted, double q) {
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double exact_percentile(std::span<const double> values, double q) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_percentile(sorted, q);
}

std::vector<double> exact_percentiles(std::span<const double> values,
                                      std::span<const double> qs) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) out.push_back(sorted_percentile(sorted, q));
  return out;
}

Summary summarize(std::span<const double> values) {
  DCS_REQUIRE(!values.empty(), "summarize of empty sample");
  Summary s;
  s.count = values.size();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1
                 ? std::sqrt(var / static_cast<double>(s.count - 1))
                 : 0.0;
  s.median = percentile(sorted, 0.5);
  s.p90 = percentile(sorted, 0.9);
  s.p99 = percentile(sorted, 0.99);
  return s;
}

double linear_slope(std::span<const double> x, std::span<const double> y) {
  DCS_REQUIRE(x.size() == y.size(), "slope inputs must have equal length");
  DCS_REQUIRE(x.size() >= 2, "slope needs at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  DCS_REQUIRE(denom != 0.0, "slope undefined: x values are all equal");
  return (n * sxy - sx * sy) / denom;
}

double loglog_slope(std::span<const double> x, std::span<const double> y) {
  DCS_REQUIRE(x.size() == y.size(), "slope inputs must have equal length");
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    DCS_REQUIRE(x[i] > 0.0 && y[i] > 0.0, "loglog_slope needs positive data");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return linear_slope(lx, ly);
}

double correlation(std::span<const double> x, std::span<const double> y) {
  DCS_REQUIRE(x.size() == y.size() && x.size() >= 2,
              "correlation needs two equal-length samples");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  DCS_REQUIRE(sxx > 0.0 && syy > 0.0, "correlation undefined: zero variance");
  return sxy / std::sqrt(sxx * syy);
}

std::string format_with_exponent(double value, double n, double exponent) {
  std::ostringstream os;
  os << value << " (~ n^" << exponent << " at n=" << n << ")";
  return os.str();
}

Histogram histogram(std::span<const double> values, std::size_t bins) {
  DCS_REQUIRE(!values.empty(), "histogram of empty sample");
  DCS_REQUIRE(bins >= 1, "histogram needs at least one bin");
  Histogram h;
  h.lo = *std::min_element(values.begin(), values.end());
  h.hi = *std::max_element(values.begin(), values.end());
  h.bins.assign(bins, 0);
  const double width = h.hi - h.lo;
  for (double v : values) {
    std::size_t idx =
        width <= 0.0
            ? 0
            : static_cast<std::size_t>((v - h.lo) / width *
                                       static_cast<double>(bins));
    if (idx >= bins) idx = bins - 1;  // v == hi lands in the last bin
    ++h.bins[idx];
  }
  return h;
}

std::string Histogram::render(std::size_t max_width) const {
  const std::size_t peak =
      bins.empty() ? 0 : *std::max_element(bins.begin(), bins.end());
  std::ostringstream os;
  const double width =
      bins.empty() ? 0.0 : (hi - lo) / static_cast<double>(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const double b_lo = lo + width * static_cast<double>(i);
    const double b_hi = b_lo + width;
    const std::size_t bar =
        peak == 0 ? 0 : bins[i] * max_width / peak;
    os << "[" << b_lo << ", " << b_hi << ") " << std::string(bar, '#')
       << " " << bins[i] << '\n';
  }
  return os.str();
}

BootstrapCi bootstrap_mean_ci(std::span<const double> values, double level,
                              std::size_t resamples, std::uint64_t seed) {
  DCS_REQUIRE(!values.empty(), "bootstrap of empty sample");
  DCS_REQUIRE(level > 0.0 && level < 1.0, "confidence level in (0,1)");
  DCS_REQUIRE(resamples >= 10, "too few bootstrap resamples");
  Rng rng(seed);
  const auto n = values.size();
  std::vector<double> means(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += values[rng.uniform(n)];
    }
    means[r] = sum / static_cast<double>(n);
  }
  BootstrapCi ci;
  double total = 0.0;
  for (double v : values) total += v;
  ci.mean = total / static_cast<double>(n);
  const double tail = (1.0 - level) / 2.0;
  ci.lower = percentile(means, tail);
  ci.upper = percentile(means, 1.0 - tail);
  return ci;
}

}  // namespace dcs
