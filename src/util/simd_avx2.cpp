// AVX2 implementations of the traversal kernels. This translation unit is
// the only one compiled with -mavx2 (see src/CMakeLists.txt); nothing here
// runs unless the runtime cpuid check in simd.cpp passed, so the rest of
// the binary stays portable to pre-AVX2 x86-64.

#include "util/simd.hpp"

#ifdef DCS_HAVE_AVX2

#include <immintrin.h>

#include <bit>

namespace dcs::simd::detail {

namespace {

// Mula nibble-LUT popcount: per-byte popcounts via two PSHUFB lookups,
// horizontally summed into the four 64-bit lanes with PSADBW.
inline __m256i popcount_epi64(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

}  // namespace

std::size_t and_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  // Two 256-bit lanes per iteration hides the shuffle latency behind the
  // loads; the accumulator lanes cannot overflow for any realistic bitmap
  // (2^64 bits would be needed).
  for (; w + 8 <= words; w += 8) {
    const __m256i x0 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    const __m256i x1 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w + 4)));
    acc = _mm256_add_epi64(acc, popcount_epi64(x0));
    acc = _mm256_add_epi64(acc, popcount_epi64(x1));
  }
  for (; w + 4 <= words; w += 4) {
    const __m256i x = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    acc = _mm256_add_epi64(acc, popcount_epi64(x));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; w < words; ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

bool any_bit_of_avx2(const std::uint32_t* vs, std::size_t count,
                     const std::uint64_t* bits) {
  // View the bitset as 32-bit words (little-endian x86: bit v of the
  // uint64 view is bit (v & 31) of 32-bit word (v >> 5)) so one
  // vpgatherdd fetches eight candidate words at once.
  const int* words32 = reinterpret_cast<const int*>(bits);
  const __m256i thirty_one = _mm256_set1_epi32(31);
  const __m256i one = _mm256_set1_epi32(1);
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vs + i));
    const __m256i widx = _mm256_srli_epi32(v, 5);
    const __m256i w = _mm256_i32gather_epi32(words32, widx, 4);
    const __m256i sh = _mm256_and_si256(v, thirty_one);
    const __m256i hit = _mm256_and_si256(_mm256_srlv_epi32(w, sh), one);
    if (!_mm256_testz_si256(hit, hit)) return true;
  }
  for (; i < count; ++i) {
    const std::uint32_t v = vs[i];
    if ((bits[v >> 6] >> (v & 63)) & 1) return true;
  }
  return false;
}

void ms_propagate_avx2(const std::uint32_t* vs, std::size_t count,
                       std::uint64_t fmask, const std::uint64_t* seen,
                       const std::uint32_t* seen_stamp, std::uint32_t epoch,
                       std::uint64_t* out) {
  const __m256i epoch_v = _mm256_set1_epi32(static_cast<int>(epoch));
  const __m256i fmask_v = _mm256_set1_epi64x(static_cast<long long>(fmask));
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vs + i));
    // Stamp gather decides which seen words are live this epoch; stale
    // entries contribute 0 without ever being cleared.
    const __m256i stamp = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(seen_stamp), v, 4);
    const __m256i valid = _mm256_cmpeq_epi32(stamp, epoch_v);
    const __m128i v_lo = _mm256_castsi256_si128(v);
    const __m128i v_hi = _mm256_extracti128_si256(v, 1);
    const __m256i seen_lo = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(seen), _mm256_cvtepu32_epi64(v_lo),
        8);
    const __m256i seen_hi = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(seen), _mm256_cvtepu32_epi64(v_hi),
        8);
    // Sign-extend the 32-bit all-ones/all-zeros compare masks to 64 bits.
    const __m256i valid_lo =
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(valid));
    const __m256i valid_hi =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(valid, 1));
    const __m256i out_lo = _mm256_andnot_si256(
        _mm256_and_si256(seen_lo, valid_lo), fmask_v);
    const __m256i out_hi = _mm256_andnot_si256(
        _mm256_and_si256(seen_hi, valid_hi), fmask_v);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), out_lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), out_hi);
  }
  for (; i < count; ++i) {
    const std::uint32_t v = vs[i];
    const std::uint64_t seen_v = seen_stamp[v] == epoch ? seen[v] : 0;
    out[i] = fmask & ~seen_v;
  }
}

}  // namespace dcs::simd::detail

#endif  // DCS_HAVE_AVX2
