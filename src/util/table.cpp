#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace dcs {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DCS_REQUIRE(!header_.empty(), "table must have at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  DCS_REQUIRE(row.size() == header_.size(),
              "row arity does not match header");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string format_cell(double value) {
  std::ostringstream os;
  if (std::abs(value - std::round(value)) < 1e-9 && std::abs(value) < 1e15) {
    os << static_cast<long long>(std::llround(value));
  } else {
    os << std::fixed << std::setprecision(3) << value;
  }
  return os.str();
}

std::string format_cell(std::size_t value) { return std::to_string(value); }
std::string format_cell(int value) { return std::to_string(value); }
std::string format_cell(long value) { return std::to_string(value); }
std::string format_cell(unsigned value) { return std::to_string(value); }

}  // namespace dcs
