#include "util/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace dcs::simd {

namespace {

bool cpu_supports_avx2() {
#if defined(DCS_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool env_forces_scalar() {
  const char* v = std::getenv("DCS_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

std::atomic<bool>& force_flag() {
  static std::atomic<bool> flag{env_forces_scalar()};
  return flag;
}

}  // namespace

DispatchTier hardware_tier() {
  static const DispatchTier tier =
      cpu_supports_avx2() ? DispatchTier::kAvx2 : DispatchTier::kScalar;
  return tier;
}

DispatchTier active_tier() {
  if (force_flag().load(std::memory_order_relaxed)) {
    return DispatchTier::kScalar;
  }
  return hardware_tier();
}

const char* tier_name(DispatchTier tier) {
  switch (tier) {
    case DispatchTier::kAvx2:
      return "avx2";
    case DispatchTier::kScalar:
      return "scalar";
  }
  return "unknown";
}

bool force_scalar() { return force_flag().load(std::memory_order_relaxed); }

void set_force_scalar(bool force) {
  force_flag().store(force, std::memory_order_relaxed);
}

// --- scalar reference implementations --------------------------------------

namespace detail {

std::size_t and_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    count += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

bool any_bit_of_scalar(const std::uint32_t* vs, std::size_t count,
                       const std::uint64_t* bits) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t v = vs[i];
    if ((bits[v >> 6] >> (v & 63)) & 1) return true;
  }
  return false;
}

void ms_propagate_scalar(const std::uint32_t* vs, std::size_t count,
                         std::uint64_t fmask, const std::uint64_t* seen,
                         const std::uint32_t* seen_stamp, std::uint32_t epoch,
                         std::uint64_t* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t v = vs[i];
    const std::uint64_t seen_v = seen_stamp[v] == epoch ? seen[v] : 0;
    out[i] = fmask & ~seen_v;
  }
}

}  // namespace detail

// --- dispatch ----------------------------------------------------------------

std::size_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t words) {
#ifdef DCS_HAVE_AVX2
  if (avx2_active()) return detail::and_popcount_avx2(a, b, words);
#endif
  return detail::and_popcount_scalar(a, b, words);
}

bool any_bit_of(const std::uint32_t* vs, std::size_t count,
                const std::uint64_t* bits) {
#ifdef DCS_HAVE_AVX2
  if (avx2_active()) return detail::any_bit_of_avx2(vs, count, bits);
#endif
  return detail::any_bit_of_scalar(vs, count, bits);
}

void ms_propagate(const std::uint32_t* vs, std::size_t count,
                  std::uint64_t fmask, const std::uint64_t* seen,
                  const std::uint32_t* seen_stamp, std::uint32_t epoch,
                  std::uint64_t* out) {
#ifdef DCS_HAVE_AVX2
  if (avx2_active()) {
    detail::ms_propagate_avx2(vs, count, fmask, seen, seen_stamp, epoch, out);
    return;
  }
#endif
  detail::ms_propagate_scalar(vs, count, fmask, seen, seen_stamp, epoch, out);
}

}  // namespace dcs::simd
