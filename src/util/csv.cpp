#include "util/csv.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace dcs {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> header)
    : os_(path), arity_(header.size()) {
  DCS_REQUIRE(os_.good(), "cannot open CSV file for writing: " + path);
  DCS_REQUIRE(arity_ >= 1, "CSV needs at least one column");
  add_row(header);
  rows_ = 0;  // the header does not count as a data row
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  DCS_REQUIRE(row.size() == arity_, "CSV row arity mismatch");
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << escape(row[i]);
  }
  os_ << '\n';
  DCS_REQUIRE(os_.good(), "CSV write failed");
  ++rows_;
}

std::optional<std::string> csv_output_path(const std::string& name) {
  const char* dir = std::getenv("DCS_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string(dir) + "/" + name + ".csv";
}

}  // namespace dcs
