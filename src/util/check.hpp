#pragma once

// Lightweight precondition / invariant checking used across the library.
//
// DCS_REQUIRE is for public API preconditions: it throws std::invalid_argument
// so callers can recover and tests can assert on misuse.
// DCS_CHECK is for internal invariants: failure indicates a library bug and
// aborts via std::logic_error.
//
// Stream-style variants (DCS_REQUIRE_MSG / DCS_CHECK_MSG) accept a
// `<<`-chain so failure messages can carry runtime values without building
// strings on the happy path:
//
//   DCS_CHECK_MSG(load <= cap, "load " << load << " exceeds cap " << cap);
//
// Exception safety in noexcept contexts: both throwing macros are
// *deliberately not* safe to use inside `noexcept` functions or
// destructors — a throw escaping a noexcept boundary calls
// std::terminate, which turns a recoverable report into an abort with no
// unwinding. In such contexts use DCS_CHECK_ABORT, which never throws: it
// prints the diagnostic to stderr and calls std::abort() directly, so the
// failure location survives into the core dump instead of being masked by
// the terminate handler. (The library itself contains no bare `assert`
// calls; this header is the single checking facility.)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dcs::detail {

/// Hook invoked (once, before std::abort) when DCS_CHECK_ABORT fails. The
/// observability layer arms this to dump the flight recorder; the default is
/// none. Must be noexcept and async-termination-tolerant: the process is
/// already dying when it runs.
using CheckFailureHook = void (*)() noexcept;

inline std::atomic<CheckFailureHook>& check_failure_hook() {
  static std::atomic<CheckFailureHook> hook{nullptr};
  return hook;
}

inline void set_check_failure_hook(CheckFailureHook hook) noexcept {
  check_failure_hook().store(hook, std::memory_order_release);
}

/// Fires the armed hook, if any (also a test seam: lets tests exercise the
/// dump path without actually aborting).
inline void notify_check_failure() noexcept {
  if (CheckFailureHook hook =
          check_failure_hook().load(std::memory_order_acquire))
    hook();
}

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

[[noreturn]] inline void abort_check(const char* expr, const char* file,
                                     int line,
                                     const std::string& msg) noexcept {
  // No allocation-free guarantee is attempted: if formatting itself fails
  // we still reach std::abort via the noexcept boundary.
  std::fprintf(stderr, "invariant violated: %s at %s:%d%s%s\n", expr, file,
               line, msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  notify_check_failure();
  std::abort();
}

}  // namespace dcs::detail

#define DCS_REQUIRE(expr, msg)                                       \
  do {                                                               \
    if (!(expr))                                                     \
      ::dcs::detail::throw_require(#expr, __FILE__, __LINE__, msg);  \
  } while (false)

#define DCS_CHECK(expr, msg)                                         \
  do {                                                               \
    if (!(expr))                                                     \
      ::dcs::detail::throw_check(#expr, __FILE__, __LINE__, msg);    \
  } while (false)

/// Stream-style message: the chain is only evaluated on failure.
#define DCS_REQUIRE_MSG(expr, stream_msg)                            \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream dcs_os_;                                    \
      dcs_os_ << stream_msg;                                         \
      ::dcs::detail::throw_require(#expr, __FILE__, __LINE__,        \
                                   dcs_os_.str());                   \
    }                                                                \
  } while (false)

#define DCS_CHECK_MSG(expr, stream_msg)                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream dcs_os_;                                    \
      dcs_os_ << stream_msg;                                         \
      ::dcs::detail::throw_check(#expr, __FILE__, __LINE__,          \
                                 dcs_os_.str());                     \
    }                                                                \
  } while (false)

/// Non-throwing invariant check for noexcept contexts (destructors, thread
/// teardown): prints and aborts instead of throwing into std::terminate.
#define DCS_CHECK_ABORT(expr, stream_msg)                            \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream dcs_os_;                                    \
      dcs_os_ << stream_msg;                                         \
      ::dcs::detail::abort_check(#expr, __FILE__, __LINE__,          \
                                 dcs_os_.str());                     \
    }                                                                \
  } while (false)
