#pragma once

// Lightweight precondition / invariant checking used across the library.
//
// DCS_REQUIRE is for public API preconditions: it throws std::invalid_argument
// so callers can recover and tests can assert on misuse.
// DCS_CHECK is for internal invariants: failure indicates a library bug and
// aborts via std::logic_error.

#include <sstream>
#include <stdexcept>
#include <string>

namespace dcs::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace dcs::detail

#define DCS_REQUIRE(expr, msg)                                       \
  do {                                                               \
    if (!(expr))                                                     \
      ::dcs::detail::throw_require(#expr, __FILE__, __LINE__, msg);  \
  } while (false)

#define DCS_CHECK(expr, msg)                                         \
  do {                                                               \
    if (!(expr))                                                     \
      ::dcs::detail::throw_check(#expr, __FILE__, __LINE__, msg);    \
  } while (false)
