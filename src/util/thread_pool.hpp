#pragma once

// A small fixed-size thread pool with a static-partition parallel_for.
//
// The verification loops in this library (batch BFS over every non-spanner
// edge, congestion accumulation over many paths) are embarrassingly parallel
// over large index ranges with roughly uniform cost, so static partitioning
// into one contiguous chunk per worker is the right scheduling policy: no
// queue contention, no atomics on the hot path, cache-friendly ranges.
//
// NUMA: workers allocate their own thread-local scratch (first-touch, see
// util/arena.hpp), so memory locality follows thread placement. Setting
// DCS_PIN_THREADS=1 pins each worker to a fixed CPU (round-robin over the
// online set, Linux only), which keeps a worker — and therefore its
// first-touched arenas — on one node across repeated sweeps.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcs {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }

  /// Runs fn(begin, end, worker_index) on disjoint contiguous subranges of
  /// [begin, end), one per worker (including the calling thread), and blocks
  /// until all complete. worker_index is in [0, size()).
  ///
  /// Safe to call from inside a parallel region (including the pool's own
  /// workers): nested calls degrade to serial execution of the whole range
  /// instead of deadlocking on the pool's completion latch. Concurrent
  /// top-level calls from different threads serialize on an internal mutex.
  void parallel_ranges(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Runs fn(worker_index) exactly once on every worker (including the
  /// calling thread, as index 0). Used to warm per-thread state — e.g.
  /// first-touching traversal scratch arenas on each worker's NUMA node
  /// before a timed region. Degrades to serial execution of all indices
  /// on the caller when invoked from inside a parallel region.
  void warm(const std::function<void(std::size_t)>& fn);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& shared();

 private:
  void worker_loop(std::size_t index);

  struct Job {
    std::size_t begin = 0;
    std::size_t end = 0;
    const std::function<void(std::size_t, std::size_t, std::size_t)>* fn =
        nullptr;
  };

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;  // one batch in flight at a time
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<Job> jobs_;        // one slot per worker thread
  std::uint64_t generation_ = 0; // bumped when a new batch of jobs is posted
  std::size_t pending_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;  // first exception thrown by any worker
};

namespace detail {
/// True while the current thread is executing inside a parallel region;
/// nested parallel constructs then degrade to serial execution instead of
/// deadlocking on the pool's completion latch.
bool& in_parallel_region();
}  // namespace detail

/// Convenience: parallel loop over [begin, end) calling body(i) for each i,
/// using the shared pool. Falls back to serial execution for tiny ranges
/// and when called from inside another parallel region.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body) {
  constexpr std::size_t kSerialCutoff = 2048;
  if (end <= begin) return;
  if (end - begin < kSerialCutoff || detail::in_parallel_region()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  ThreadPool::shared().parallel_ranges(
      begin, end, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      });
}

/// Parallel loop where each worker gets (range, worker_index) — used when the
/// body needs a per-thread accumulator or RNG stream.
template <typename Body>
void parallel_chunks(std::size_t begin, std::size_t end, Body&& body) {
  if (end <= begin) return;
  if (detail::in_parallel_region()) {
    body(begin, end, 0);
    return;
  }
  ThreadPool::shared().parallel_ranges(
      begin, end,
      [&](std::size_t lo, std::size_t hi, std::size_t w) { body(lo, hi, w); });
}

}  // namespace dcs
