#pragma once

// Umbrella header: the full public API of the dcspanner library.
//
// Fine-grained headers remain the recommended includes for library users;
// this header exists for quick experiments and the examples.

// observability (structured logging, metrics, phase tracing)
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// utilities
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

// graphs
#include "graph/bfs.hpp"
#include "graph/connectivity.hpp"
#include "graph/dijkstra.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/ramanujan.hpp"
#include "graph/subgraph.hpp"
#include "graph/weighted_graph.hpp"

// spectral
#include "spectral/cheeger.hpp"
#include "spectral/dense.hpp"
#include "spectral/expansion.hpp"
#include "spectral/lanczos.hpp"

// routing
#include "routing/edge_coloring.hpp"
#include "routing/matching.hpp"
#include "routing/mwu_routing.hpp"
#include "routing/packet_sim.hpp"
#include "routing/rerouting.hpp"
#include "routing/routing.hpp"
#include "routing/shortest_paths.hpp"
#include "routing/tables.hpp"
#include "routing/valiant.hpp"
#include "routing/workloads.hpp"

// the paper's constructions and baselines
#include "core/baseline_spanners.hpp"
#include "core/dc_spanner.hpp"
#include "core/expander_spanner.hpp"
#include "core/general_spanner.hpp"
#include "core/lower_bound.hpp"
#include "core/matching_decomposition.hpp"
#include "core/regular_spanner.hpp"
#include "core/report.hpp"
#include "core/router.hpp"
#include "core/sparsify.hpp"
#include "core/support.hpp"
#include "core/verifier.hpp"
#include "core/vft_spanner.hpp"
#include "core/weighted_spanners.hpp"

// distributed (LOCAL model)
#include "dist/dist_expander.hpp"
#include "dist/dist_spanner.hpp"
#include "dist/dist_verify.hpp"
#include "dist/local_model.hpp"

// resilience (fault injection, self-healing, degradation-aware routing)
#include "resilience/failure_injector.hpp"
#include "resilience/fault_state.hpp"
#include "resilience/health_monitor.hpp"
#include "resilience/resilient_router.hpp"
#include "resilience/spanner_repair.hpp"
