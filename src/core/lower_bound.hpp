#pragma once

// Section 5: distance spanners with inherently large congestion stretch.
//
//  * Lemma 18 — the "fan" gadget (graph/generators.hpp) admits an optimal
//    3-distance spanner obtained by deleting one line edge per face; every
//    length-≤3 substitute for a deleted line edge is forced through the hub,
//    so the deleted-edge routing problem has congestion k on the spanner
//    versus ≤ 2 on the gadget.
//  * Lemma 19 / Theorem 4 — n fan instances over a shared pool of n line
//    nodes, any two instances sharing at most one node (enforced by
//    rejection sampling), give a graph whose optimal-size 3-spanners are
//    (3, Ω(n^{1/6}))-DC-spanners.

#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "routing/routing.hpp"

namespace dcs {

// ---------------------------------------------------------------------------
// Lemma 18: single gadget
// ---------------------------------------------------------------------------

struct FanSpanner {
  Graph h;
  std::vector<Edge> removed;  ///< the k removed line edges, one per face
};

/// The optimal-size 3-distance spanner of a fan gadget: remove the first
/// line edge of every face, keep all rays. |E(H)| = |E(G)| − k.
FanSpanner fan_optimal_spanner(const FanGadget& fan);

/// The adversarial routing problem of Lemma 18: one pair per removed line
/// edge. Its optimal congestion on the gadget is 1 (disjoint edges); every
/// valid (3,·)-substitute routing on the spanner has congestion ≥ k at the
/// hub.
RoutingProblem fan_adversarial_problem(const FanSpanner& spanner);

// ---------------------------------------------------------------------------
// Theorem 4: composed graph
// ---------------------------------------------------------------------------

struct LowerBoundInstance {
  Vertex hub = kInvalidVertex;
  std::vector<Vertex> line;  ///< 2k+1 pool nodes in this instance's order
};

struct LowerBoundGraph {
  Graph g;
  std::size_t k = 0;          ///< per-instance fan parameter
  std::size_t pool_size = 0;  ///< line-node pool: vertex ids [0, pool_size)
  std::vector<LowerBoundInstance> instances;  ///< hubs follow the pool ids
};

/// Builds the Theorem 4 graph with `n` instances over a pool of `n` line
/// nodes; k defaults to max(1, ⌊(n/17)^{1/6}/2⌋) per the paper and can be
/// overridden (0 = default). Instance node sets pairwise share ≤ 1 node
/// (Lemma 19(ii)), making instances edge-disjoint.
LowerBoundGraph build_lower_bound_graph(std::size_t n, std::uint64_t seed,
                                        std::size_t k_override = 0);

struct LowerBoundSpanner {
  Graph h;
  /// removed[i] = the k line edges removed from instance i.
  std::vector<std::vector<Edge>> removed_per_instance;
  std::size_t total_removed = 0;
};

/// Optimal-size 3-spanner: applies the Lemma 18 removal to every instance.
LowerBoundSpanner lower_bound_optimal_spanner(const LowerBoundGraph& g);

/// The adversarial routing problem restricted to one instance (the paper's
/// per-instance argument: C_G = 1, every 3-stretch substitute on H funnels
/// through that instance's hub, so C_H ≥ k).
RoutingProblem lower_bound_adversarial_problem(
    const LowerBoundSpanner& spanner, std::size_t instance);

/// The canonical within-instance substitute routing for the adversarial
/// problem: removed edge (line[2i], line[2i+1]) routes over
/// line[2i] – hub – line[2i+2] – line[2i+1]. All k paths share the hub, so
/// its congestion is exactly k — the Lemma 18 lower-bound witness.
/// (At finite n the composed graph can contain additional cross-instance
/// 3-hop shortcuts, so a min-congestion router may do slightly better; the
/// asymptotic argument makes those shortcuts vanish as deg³/n → 0.)
Routing lower_bound_hub_routing(const LowerBoundGraph& g,
                                std::size_t instance);

// ---------------------------------------------------------------------------
// Stretch-constrained routing (used to measure C_H(R) under Definition 3's
// 3-stretch requirement)
// ---------------------------------------------------------------------------

/// All simple paths from s to t of length ≤ max_len (depth-limited DFS; only
/// suitable for bounded-degree neighborhoods / small max_len).
std::vector<Path> all_paths_up_to(const Graph& g, Vertex s, Vertex t,
                                  std::size_t max_len);

/// Greedy minimum-congestion routing where every pair must be routed within
/// `max_len` hops: pairs are routed sequentially, each picking the candidate
/// path that minimizes the resulting maximum node load. Throws if some pair
/// has no path within the bound.
Routing min_congestion_short_routing(const Graph& g,
                                     const RoutingProblem& problem,
                                     std::size_t max_len);

}  // namespace dcs
