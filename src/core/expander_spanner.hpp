#pragma once

// Theorem 2 construction (Section 3): DC-spanner for regular spectral
// expanders with Δ = n^{2/3+ε}.
//
// Every edge is sampled independently with probability p = n^{-ε} (i.e. the
// expected spanner degree is n^{2/3}); a routed edge {u,v} absent from the
// spanner is replaced by a uniformly random 3-hop path u–x–y–v whose middle
// edge (x,y) belongs to a maximum matching between the spanner-neighborhoods
// of u and v (Lemma 4 guarantees this matching is large on expanders via the
// expander mixing lemma).
//
// The paper's distance guarantee is w.h.p.; `repair_uncovered` (default on)
// reinserts the (rare, finite-n) edges with no replacement of length ≤ 3 so
// the resulting spanner is deterministically a 3-distance spanner.

#include "core/dc_spanner.hpp"
#include "graph/graph.hpp"

namespace dcs {

struct ExpanderSpannerOptions {
  std::uint64_t seed = 1;

  /// Sampling exponent: keep probability p = n^{-epsilon}. If negative, the
  /// probability is derived from the target degree n^{2/3}: p = n^{2/3}/Δ.
  double epsilon = -1.0;

  /// Reinsert edges that end up with no replacement path of length ≤ 3.
  bool repair_uncovered = true;
};

struct ExpanderSpannerResult {
  Spanner spanner;
  double sample_probability = 0.0;
  std::size_t repaired_edges = 0;  ///< edges reinserted by the repair pass
};

/// Runs the Theorem 2 sampling construction. Requires a regular input; the
/// expansion premise is verified by experiments (spectral/expansion.hpp),
/// not assumed here.
ExpanderSpannerResult build_expander_spanner(
    const Graph& g, const ExpanderSpannerOptions& options = {});

}  // namespace dcs
