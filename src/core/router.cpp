#include "core/router.hpp"

#include <atomic>

#include "core/support.hpp"
#include "graph/bfs.hpp"
#include "routing/matching.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

DetourRouter::DetourRouter(const Graph& h, const Graph& detour_graph)
    : h_(h), detours_(detour_graph) {
  DCS_REQUIRE(h.num_vertices() == detour_graph.num_vertices(),
              "spanner and detour graph must share the vertex set");
}

Path DetourRouter::route(Vertex s, Vertex t, Rng& rng) const {
  if (h_.has_edge(s, t)) return {s, t};
  Path p = random_short_replacement(detours_, s, t, rng);
  if (!p.empty()) return p;
  return bfs_shortest_path(h_, s, t, &rng);
}

ExpanderMatchingRouter::ExpanderMatchingRouter(const Graph& h,
                                               const Graph* full_graph)
    : h_(h), g_(full_graph) {
  DCS_REQUIRE(full_graph == nullptr ||
                  full_graph->num_vertices() == h.num_vertices(),
              "original graph must share the spanner's vertex set");
}

Path ExpanderMatchingRouter::route(Vertex s, Vertex t, Rng& rng) const {
  if (h_.has_edge(s, t)) return {s, t};
  // Neighborhoods come from the full graph in paper-literal mode, from the
  // spanner otherwise; the matching is computed over that graph's edges.
  const Graph& nbhd = g_ != nullptr ? *g_ : h_;
  std::vector<Vertex> left;
  for (Vertex x : nbhd.neighbors(s)) {
    if (x != t) left.push_back(x);
  }
  std::vector<Vertex> right;
  for (Vertex y : nbhd.neighbors(t)) {
    if (y != s) right.push_back(y);
  }
  auto matching = maximum_bipartite_matching(nbhd, left, right);
  if (g_ != nullptr) {
    // M^S_{u,v}: keep matched edges whose full 3-hop path survived in H.
    std::vector<Edge> surviving;
    for (Edge e : matching) {
      if (!h_.has_edge(e.u, e.v)) continue;
      if ((h_.has_edge(s, e.u) && h_.has_edge(e.v, t)) ||
          (h_.has_edge(s, e.v) && h_.has_edge(e.u, t))) {
        surviving.push_back(e);
      }
    }
    matching = std::move(surviving);
  }
  if (!matching.empty()) {
    const Edge e = rng.pick(matching);
    // Matched edges are canonical; figure out which endpoint neighbors s.
    if (h_.has_edge(s, e.u) && h_.has_edge(e.v, t)) {
      return {s, e.u, e.v, t};
    }
    DCS_CHECK(h_.has_edge(s, e.v) && h_.has_edge(e.u, t),
              "matched edge does not span the neighborhoods");
    return {s, e.v, e.u, t};
  }
  // Degenerate fallbacks: 2-hop via a common neighbor, then BFS.
  auto routers = common_neighbors(h_, s, t);
  if (!routers.empty()) return {s, rng.pick(routers), t};
  return bfs_shortest_path(h_, s, t, &rng);
}

ShortestPathPairRouter::ShortestPathPairRouter(const Graph& h) : h_(h) {}

Path ShortestPathPairRouter::route(Vertex s, Vertex t, Rng& rng) const {
  return bfs_shortest_path(h_, s, t, &rng);
}

Routing route_problem(const PairRouter& router, const RoutingProblem& problem,
                      std::uint64_t seed) {
  Routing routing;
  routing.paths.resize(problem.size());
  std::atomic<bool> failed{false};
  parallel_for(0, problem.size(), [&](std::size_t i) {
    const auto [s, t] = problem.pairs[i];
    Rng rng(mix64(seed, i));
    Path p = router.route(s, t, rng);
    if (p.empty()) {
      failed.store(true, std::memory_order_relaxed);
    } else {
      routing.paths[i] = std::move(p);
    }
  });
  DCS_REQUIRE(!failed.load(), "router failed on a pair (spanner disconnected?)");
  return routing;
}

MatchingRouteFn matching_route_fn(const PairRouter& router) {
  return [&router](const RoutingProblem& problem, std::uint64_t seed) {
    return route_problem(router, problem, seed);
  };
}

}  // namespace dcs
