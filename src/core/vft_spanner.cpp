#include "core/vft_spanner.hpp"

#include <cmath>

#include "core/baseline_spanners.hpp"
#include "graph/bfs.hpp"
#include "graph/subgraph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

VftSpannerResult build_vft_spanner(const Graph& g,
                                   const VftSpannerOptions& options) {
  const std::size_t n = g.num_vertices();
  DCS_REQUIRE(n >= 2, "vft spanner input too small");
  DCS_REQUIRE(options.faults >= 1, "faults must be at least 1");
  DCS_REQUIRE(options.stretch_k >= 1, "stretch parameter must be >= 1");

  const auto f = static_cast<double>(options.faults);
  std::size_t rounds = options.rounds;
  if (rounds == 0) {
    rounds = static_cast<std::size_t>(std::ceil(
        (f + 1.0) * (f + 1.0) * std::log(static_cast<double>(n))));
  }

  Rng rng(options.seed);
  EdgeSet union_edges;
  const double keep_p = f / (f + 1.0);

  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<bool> keep(n);
    for (std::size_t v = 0; v < n; ++v) keep[v] = rng.bernoulli(keep_p);
    const InducedSubgraph sub = induced_subgraph(g, keep);
    if (sub.graph.num_vertices() < 2) continue;
    const Spanner round_spanner =
        baswana_sen_spanner(sub.graph, options.stretch_k, rng());
    for (Edge e : round_spanner.h.edges()) {
      union_edges.insert(sub.host_edge(e));
    }
  }

  VftSpannerResult result;
  result.rounds = rounds;
  const auto list = union_edges.to_vector();
  result.spanner.h = Graph::from_edges(n, list);
  result.spanner.stats.input_edges = g.num_edges();
  result.spanner.stats.spanner_edges = result.spanner.h.num_edges();
  return result;
}

std::size_t count_vft_violations(const Graph& g, const Graph& h,
                                 std::size_t f, double alpha,
                                 std::size_t trials, std::uint64_t seed) {
  DCS_REQUIRE(g.num_vertices() == h.num_vertices(),
              "spanner must share the vertex set");
  const std::size_t n = g.num_vertices();
  // f ≥ n kills every vertex: G∖F has no surviving pairs, so the property
  // holds vacuously in every trial (and sampling f distinct vertices would
  // never terminate).
  const std::size_t f_eff = std::min(f, n);
  std::vector<std::uint8_t> failed(trials, 0);
  parallel_for(0, trials, [&](std::size_t trial) {
    Rng rng(mix64(seed, trial));
    // random fault set of size exactly min(f, n) (≤ f is implied by
    // monotonicity)
    std::vector<Vertex> faults;
    while (faults.size() < f_eff) {
      const auto v = static_cast<Vertex>(rng.uniform(n));
      bool dup = false;
      for (Vertex u : faults) dup |= (u == v);
      if (!dup) faults.push_back(v);
    }
    const Graph rg = remove_vertices(g, faults);
    const Graph rh = remove_vertices(h, faults);
    // stretch over surviving pairs: it suffices to check the edges of
    // G∖F (worst-case stretch of an unweighted spanner is on edges).
    for (Edge e : rg.edges()) {
      const Dist dh = bfs_distance(rh, e.u, e.v);
      if (dh == kUnreachable ||
          static_cast<double>(dh) > alpha + 1e-9) {
        failed[trial] = 1;
        return;
      }
    }
  });
  std::size_t violations = 0;
  for (auto v : failed) violations += v;
  return violations;
}

}  // namespace dcs
