#pragma once

// The detour/support machinery of Section 4 (Figures 3 and 4):
//
//  * a 2-detour with base {u,z} and router x is the edge pair (u,x),(x,z);
//  * a base {u,z} is a-supported if it has ≥ a distinct routers, i.e.
//    |N(u) ∩ N(z)| ≥ a;
//  * an extension (v,z) of edge (u,v) toward v is a-supported if the base
//    {u,z} is (a+1)-supported (one of its 2-detours goes through v);
//  * edge e=(u,v) is (a,b)-supported toward v if ≥ b of its extensions
//    toward v are a-supported;
//  * a 3-detour of e=(u,v) toward v is a path u–x–z–v where (v,z) is an
//    extension and x ≠ v is a router of base {u,z}.

#include <vector>

#include "graph/adjacency_bitmap.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dcs {

/// Number of routers of base {u,z}: |N(u) ∩ N(z)|.
std::size_t base_support(const Graph& g, Vertex u, Vertex z);

/// Number of a-supported extensions of (u,v) toward v, i.e. the number of
/// z ∈ N(v)\{u} with |N(u) ∩ N(z)| ≥ a + 1 (counting the router v itself).
std::size_t count_supported_extensions(const Graph& g, Vertex u, Vertex v,
                                       std::size_t a);

/// (a,b)-supported toward v: at least b a-supported extensions toward v.
bool is_ab_supported_toward(const Graph& g, Vertex u, Vertex v,
                            std::size_t a, std::size_t b);

/// (a,b)-supported in at least one direction (the Ê test of Algorithm 1).
bool is_ab_supported(const Graph& g, Edge e, std::size_t a, std::size_t b);

/// A 3-detour u–x–z–v (stored as its two interior nodes {x, z}).
struct Detour3 {
  Vertex x = kInvalidVertex;  ///< neighbor of u
  Vertex z = kInvalidVertex;  ///< neighbor of v
};

/// All 3-detours of (u,v) present in `h` (both directions), up to `limit`
/// (0 = unlimited). Interior nodes exclude u and v themselves.
std::vector<Detour3> find_3detours(const Graph& h, Vertex u, Vertex v,
                                   std::size_t limit = 0);

/// True iff (u,v) has at least one path of length ≤ 3 in `h` between its
/// endpoints (direct edge, common neighbor, or 3-detour).
bool has_short_replacement(const Graph& h, Vertex u, Vertex v);

/// Common neighbors of u and v in h (the 2-detour routers).
std::vector<Vertex> common_neighbors(const Graph& h, Vertex u, Vertex v);

/// Picks one replacement path for (u,v) in h uniformly at random among the
/// available 3-detours; falls back to a random common neighbor (2-detour)
/// and finally to the direct edge if present. Returns the full path
/// including endpoints, or an empty path if no replacement of length ≤ 3
/// exists.
std::vector<Vertex> random_short_replacement(const Graph& h, Vertex u,
                                             Vertex v, Rng& rng,
                                             bool prefer_3detour = true);

/// Accelerated support queries over one graph. Construction builds the
/// dense adjacency bitmap when the density justifies it (exactly the
/// paper's Δ ≥ n^{2/3} regime, see AdjacencyBitmap::worthwhile); every
/// query then runs as a word-parallel popcount loop, falling back to the
/// scalar sorted-merge reference functions above on sparse graphs. The
/// answers are identical either way (pinned by tests/test_traversal.cpp).
///
/// The oracle borrows `g`; it must outlive the oracle. Queries are const
/// and safe to issue concurrently from many threads.
class SupportOracle {
 public:
  explicit SupportOracle(const Graph& g)
      : g_(g), bitmap_(AdjacencyBitmap::build_if_worthwhile(g)) {}

  const Graph& graph() const { return g_; }
  bool bitmapped() const { return !bitmap_.empty(); }

  /// |N(u) ∩ N(z)|, cf. ::base_support.
  std::size_t base_support(Vertex u, Vertex z) const;

  /// cf. ::count_supported_extensions.
  std::size_t count_supported_extensions(Vertex u, Vertex v,
                                         std::size_t a) const;

  /// cf. ::is_ab_supported_toward (early-exit at b).
  bool is_ab_supported_toward(Vertex u, Vertex v, std::size_t a,
                              std::size_t b) const;

  /// cf. ::is_ab_supported (the Ê test of Algorithm 1).
  bool is_ab_supported(Edge e, std::size_t a, std::size_t b) const;

  /// cf. ::has_short_replacement (direct edge, 2-detour, or 3-detour).
  bool has_short_replacement(Vertex u, Vertex v) const;

  /// cf. ::common_neighbors.
  std::vector<Vertex> common_neighbors(Vertex u, Vertex v) const;

 private:
  const Graph& g_;
  AdjacencyBitmap bitmap_;
};

}  // namespace dcs
