#include "core/regular_spanner.hpp"

#include <algorithm>
#include <cmath>

#include "core/support.hpp"
#define DCS_LOG_COMPONENT "spanner"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

RegularSpannerParams compute_regular_spanner_params(
    std::size_t delta, const RegularSpannerOptions& options) {
  DCS_REQUIRE(delta >= 1, "degree must be positive");
  RegularSpannerParams params;
  params.delta = delta;
  params.delta_prime = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             options.delta_prime_factor *
             std::sqrt(static_cast<double>(delta)))));
  params.rho =
      std::min(1.0, static_cast<double>(params.delta_prime) /
                        static_cast<double>(delta));
  params.support_a = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             options.support_a_factor *
             static_cast<double>(params.delta_prime))));
  params.support_b = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             options.support_b_factor * static_cast<double>(delta))));
  return params;
}

RegularSpannerResult build_regular_spanner(
    const Graph& g, const RegularSpannerOptions& options) {
  DCS_REQUIRE(g.num_vertices() >= 2, "spanner input too small");
  const auto [min_deg, max_deg] = g.degree_bounds();
  DCS_REQUIRE(min_deg >= 1, "input graph has isolated vertices");
  std::size_t delta;
  if (options.max_degree_ratio <= 1.0) {
    DCS_REQUIRE(min_deg == max_deg,
                "Algorithm 1 requires a Δ-regular input (set "
                "max_degree_ratio > 1 for near-regular graphs)");
    delta = min_deg;
  } else {
    // Footnote 1: degrees within a constant factor of each other.
    DCS_REQUIRE(static_cast<double>(max_deg) <=
                    options.max_degree_ratio * static_cast<double>(min_deg),
                "input degrees exceed the allowed near-regular ratio");
    delta = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               2.0 * static_cast<double>(g.num_edges()) /
               static_cast<double>(g.num_vertices()))));
  }

  const RegularSpannerParams params =
      compute_regular_spanner_params(delta, options);

  RegularSpannerResult result;
  result.delta = delta;
  result.delta_prime = params.delta_prime;
  const double rho = params.rho;
  result.support_a = params.support_a;
  result.support_b = params.support_b;

  DCS_TRACE_SPAN("regular_spanner");
  const auto all_edges = g.edges();

  // Step 1: independent sampling with the shared per-edge coin, so the
  // distributed construction (dist/dist_spanner) reproduces G' exactly.
  std::vector<Edge> sampled;
  std::vector<Edge> removed;
  {
    DCS_TRACE_SPAN("sample");
    sampled.reserve(static_cast<std::size_t>(
        rho * static_cast<double>(all_edges.size()) * 1.2) + 16);
    for (Edge e : all_edges) {
      if (edge_sampled(e, rho, options.seed)) {
        sampled.push_back(e);
      } else {
        removed.push_back(e);
      }
    }
    result.sampled = Graph::from_edges(g.num_vertices(), sampled);
  }

  // Steps 2+3: decide per removed edge whether it must be reinserted.
  // 0 = keep removed, 1 = unsupported, 2 = supported but undetoured.
  std::vector<std::uint8_t> verdict(removed.size(), 0);
  {
    DCS_TRACE_SPAN("support_reinsert_loop");
    // In the paper's Δ ≥ n^{2/3} regime both oracles go word-parallel via
    // the dense adjacency bitmap; sparse inputs stay on the sorted merge.
    const SupportOracle support(g);
    const SupportOracle sampled_support(result.sampled);
    const std::size_t a = result.support_a;
    const std::size_t b = result.support_b;
    parallel_for(0, removed.size(), [&](std::size_t i) {
      const Edge e = removed[i];
      const bool supported = support.is_ab_supported(e, a, b);
      if (!supported) {
        if (options.reinsert_unsupported) verdict[i] = 1;
        return;
      }
      if (options.reinsert_undetoured &&
          !sampled_support.has_short_replacement(e.u, e.v)) {
        verdict[i] = 2;
      }
    });
  }

  DCS_TRACE_SPAN("assemble");
  std::vector<Edge> spanner_edges = sampled;
  for (std::size_t i = 0; i < removed.size(); ++i) {
    if (verdict[i] == 1) {
      spanner_edges.push_back(removed[i]);
      ++result.reinserted_unsupported;
    } else if (verdict[i] == 2) {
      spanner_edges.push_back(removed[i]);
      ++result.reinserted_undetoured;
    }
  }

  result.spanner.h = Graph::from_edges(g.num_vertices(), spanner_edges);
  auto& stats = result.spanner.stats;
  stats.input_edges = g.num_edges();
  stats.sampled_edges = sampled.size();
  stats.reinserted_edges =
      result.reinserted_unsupported + result.reinserted_undetoured;
  stats.spanner_edges = result.spanner.h.num_edges();
  stats.sample_probability = rho;

  // Aggregated once per build (no per-edge atomics in the loops above):
  // every removed edge is one iteration of the support-test + reinsert
  // loop, so the counter tracks the Theorem 3 loop's total work.
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("spanner.regular.builds").inc();
  reg.counter("spanner.regular.edges_sampled").inc(sampled.size());
  reg.counter("spanner.regular.reinsert_loop_iterations")
      .inc(removed.size());
  reg.counter("spanner.regular.support_tests").inc(removed.size());
  reg.counter("spanner.regular.edges_reinserted")
      .inc(stats.reinserted_edges);
  DCS_LOG(Debug) << "regular spanner: n=" << g.num_vertices()
                 << " Δ=" << delta << " ρ=" << rho << " sampled "
                 << sampled.size() << "/" << all_edges.size()
                 << ", reinserted " << result.reinserted_unsupported
                 << " unsupported + " << result.reinserted_undetoured
                 << " undetoured";
  return result;
}

}  // namespace dcs
