#include "core/report.hpp"

#include <sstream>

#include "core/verifier.hpp"
#include "graph/connectivity.hpp"
#include "routing/tables.hpp"
#include "routing/workloads.hpp"
#include "spectral/expansion.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace dcs {

SpannerReport make_spanner_report(const Graph& g, const Graph& h,
                                  const PairRouter& router,
                                  const SpannerReportOptions& options) {
  DCS_REQUIRE(g.num_vertices() == h.num_vertices(),
              "spanner must share the vertex set");
  DCS_REQUIRE(g.contains_subgraph(h), "H must be a subgraph of G");

  SpannerReport report;
  report.input_edges = g.num_edges();
  report.spanner_edges = h.num_edges();
  report.compression =
      g.num_edges() == 0
          ? 1.0
          : static_cast<double>(h.num_edges()) /
                static_cast<double>(g.num_edges());
  report.connected = is_connected(h);

  const auto stretch = measure_distance_stretch(g, h);
  report.max_stretch = stretch.max_stretch;
  report.mean_stretch = stretch.mean_stretch;

  if (options.measure_expansion && g.num_vertices() >= 2 &&
      g.num_edges() > 0 && h.num_edges() > 0) {
    report.input_expansion = estimate_expansion(g).normalized();
    report.spanner_expansion = estimate_expansion(h).normalized();
  }

  double congestion_sum = 0.0;
  for (std::size_t trial = 0; trial < options.matching_trials; ++trial) {
    const auto matching =
        random_matching_problem(g, options.seed + trial);
    if (matching.empty()) continue;
    const auto mc = measure_matching_congestion(
        g, h, matching, router, options.seed + 100 + trial);
    report.worst_matching_congestion =
        std::max(report.worst_matching_congestion, mc.spanner_congestion);
    congestion_sum += static_cast<double>(mc.spanner_congestion);
  }
  if (options.matching_trials > 0) {
    report.mean_matching_congestion =
        congestion_sum / static_cast<double>(options.matching_trials);
  }

  if (options.measure_tables) {
    report.input_table_bits = RoutingTables::build(g, options.seed)
                                  .total_bits();
    report.spanner_table_bits = RoutingTables::build(h, options.seed)
                                    .total_bits();
  }
  return report;
}

std::string SpannerReport::to_string() const {
  Table t({"metric", "value"});
  t.add("input edges", input_edges);
  t.add("spanner edges", spanner_edges);
  t.add("compression", compression);
  t.add("connected", std::string(connected ? "yes" : "NO"));
  t.add("max distance stretch", max_stretch);
  t.add("mean distance stretch", mean_stretch);
  if (input_expansion > 0.0) {
    t.add("normalized expansion (G)", input_expansion);
    t.add("normalized expansion (H)", spanner_expansion);
  }
  t.add("worst matching congestion", worst_matching_congestion);
  t.add("mean matching congestion", mean_matching_congestion);
  if (input_table_bits > 0) {
    t.add("routing-table bits (G)", static_cast<double>(input_table_bits));
    t.add("routing-table bits (H)",
          static_cast<double>(spanner_table_bits));
  }
  return t.to_string();
}

}  // namespace dcs
