#pragma once

// Shared types for DC-spanner constructions (Definitions 1–4 of the paper).
//
// A spanner construction returns the subgraph H together with build
// statistics; the stretch guarantees of Definition 3 are checked empirically
// by core/verifier.hpp rather than assumed.

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace dcs {

struct SpannerStats {
  std::size_t input_edges = 0;      ///< |E(G)|
  std::size_t sampled_edges = 0;    ///< edges kept by random sampling (E')
  std::size_t reinserted_edges = 0; ///< edges reinserted for support (E'')
  std::size_t spanner_edges = 0;    ///< |E(H)|
  double sample_probability = 0.0;  ///< ρ used by the sampling step

  double compression() const {
    return input_edges == 0
               ? 1.0
               : static_cast<double>(spanner_edges) /
                     static_cast<double>(input_edges);
  }
};

struct Spanner {
  Graph h;  ///< spanner graph: same vertex set, subset of edges
  SpannerStats stats;
};

/// Deterministic per-edge coin flip shared by the sequential and the
/// distributed (LOCAL-model) constructions, so both produce identical
/// spanners from the same seed: edge e is kept iff hash(seed, e) < ρ.
inline bool edge_sampled(Edge e, double rho, std::uint64_t seed);

}  // namespace dcs

#include "util/rng.hpp"

namespace dcs {

inline bool edge_sampled(Edge e, double rho, std::uint64_t seed) {
  const std::uint64_t h = mix64(seed, edge_key(canonical(e)));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < rho;
}

}  // namespace dcs
