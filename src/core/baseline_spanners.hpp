#pragma once

// Classical distance-spanner baselines. The paper's point of comparison:
// classic sparsification achieves the same distance stretch and size, but
// gives no handle on congestion (Section 5 proves some 3-spanners *must*
// incur Ω(n^{1/6}) congestion stretch). These baselines let the experiments
// measure that gap.

#include "core/dc_spanner.hpp"
#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace dcs {

/// Baswana–Sen (2k−1)-spanner for unweighted graphs, specialized to k = 2
/// (a 3-distance spanner with O(n^{3/2}) expected edges): sample cluster
/// centers with probability n^{-1/2}; unclustered vertices keep all their
/// edges, clustered vertices keep one edge into their own cluster and one
/// edge into every adjacent cluster.
Spanner baswana_sen_3_spanner(const Graph& g, std::uint64_t seed);

/// General Baswana–Sen (2k−1)-spanner for unweighted graphs, k ≥ 1:
/// k−1 cluster-sampling phases (survival probability n^{-1/k} each) grow
/// clusters of radius i at phase i; a vertex with no sampled neighbor
/// cluster keeps one edge per adjacent cluster and retires; the final
/// phase connects every surviving vertex to each adjacent cluster.
/// Expected size O(k·n^{1+1/k}).
Spanner baswana_sen_spanner(const Graph& g, std::size_t k,
                            std::uint64_t seed);

/// Greedy α-spanner (Althöfer et al.): scan edges, keep (u,v) iff the
/// current spanner distance d_H(u,v) exceeds α. Produces the sparsest
/// simple guarantee but with no congestion control. O(m · bounded-BFS).
Spanner greedy_spanner(const Graph& g, Dist alpha, std::uint64_t seed = 0);

}  // namespace dcs
