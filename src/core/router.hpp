#pragma once

// Pair routers: strategies for realizing a single source/destination pair on
// a spanner H. These are the "substitute routing" building blocks the
// paper's congestion arguments are about — the choice of replacement path
// (random among available 3-detours) is exactly what controls congestion in
// Theorems 2 and 3.

#include <memory>

#include "core/matching_decomposition.hpp"
#include "graph/graph.hpp"
#include "routing/routing.hpp"
#include "util/rng.hpp"

namespace dcs {

class PairRouter {
 public:
  virtual ~PairRouter() = default;

  /// Routes s → t on the router's spanner. The returned path includes both
  /// endpoints; an empty path means unroutable (disconnected spanner).
  virtual Path route(Vertex s, Vertex t, Rng& rng) const = 0;
};

/// Routes pairs that are edges of the original graph: directly if the edge
/// survived in H, otherwise along a uniformly random replacement path of
/// length ≤ 3 drawn from `detour_graph` (Algorithm 1 routes over G', the
/// sampled subgraph, so reinserted edges never attract detour traffic), with
/// a randomized-BFS fallback on H for pairs with no short replacement.
class DetourRouter final : public PairRouter {
 public:
  /// `h` and `detour_graph` must outlive the router; pass the same graph
  /// twice to draw detours from the full spanner.
  DetourRouter(const Graph& h, const Graph& detour_graph);

  Path route(Vertex s, Vertex t, Rng& rng) const override;

 private:
  const Graph& h_;
  const Graph& detours_;
};

/// Theorem 2 router: a non-spanner pair routes over a random 3-hop path
/// whose middle edge lies in a maximum matching between the neighborhoods
/// of the endpoints (Lemma 4 / Figure 2).
///
/// Two modes:
///  * spanner-neighborhood mode (default): the matching is computed between
///    the *spanner* neighborhoods N_H(u), N_H(v) using edges of H — every
///    matched edge immediately yields a valid 3-hop path;
///  * paper-literal mode (pass the original graph): the matching M_{u,v} is
///    computed between the *full* neighborhoods N_G(u), N_G(v) in G, and
///    the candidate set is M^S_{u,v} — the matched edges that survived in H
///    together with surviving connector edges (the construction analyzed in
///    Lemmas 5–7).
class ExpanderMatchingRouter final : public PairRouter {
 public:
  explicit ExpanderMatchingRouter(const Graph& h,
                                  const Graph* full_graph = nullptr);

  Path route(Vertex s, Vertex t, Rng& rng) const override;

 private:
  const Graph& h_;
  const Graph* g_ = nullptr;  // non-null → paper-literal mode
};

/// Baseline: randomized shortest path on H.
class ShortestPathPairRouter final : public PairRouter {
 public:
  explicit ShortestPathPairRouter(const Graph& h);

  Path route(Vertex s, Vertex t, Rng& rng) const override;

 private:
  const Graph& h_;
};

/// Routes a whole problem with independent per-pair randomness (parallel).
/// Throws if any pair is unroutable.
Routing route_problem(const PairRouter& router, const RoutingProblem& problem,
                      std::uint64_t seed);

/// Adapter: a MatchingRouteFn (for Algorithm 2) backed by a PairRouter.
MatchingRouteFn matching_route_fn(const PairRouter& router);

}  // namespace dcs
