#include "core/baseline_spanners.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

Spanner baswana_sen_3_spanner(const Graph& g, std::uint64_t seed) {
  const std::size_t n = g.num_vertices();
  DCS_REQUIRE(n >= 1, "empty graph");
  Rng rng(seed);
  const double p = 1.0 / std::sqrt(static_cast<double>(n));

  std::vector<Vertex> cluster(n, kInvalidVertex);
  std::vector<bool> is_center(n, false);
  for (Vertex v = 0; v < n; ++v) {
    if (rng.bernoulli(p)) {
      is_center[v] = true;
      cluster[v] = v;
    }
  }

  EdgeSet spanner_edges;

  // Phase 1: join a cluster through a sampled neighbor, or keep everything.
  for (Vertex v = 0; v < n; ++v) {
    if (is_center[v]) continue;
    std::vector<Vertex> centers;
    for (Vertex u : g.neighbors(v)) {
      if (is_center[u]) centers.push_back(u);
    }
    if (centers.empty()) {
      for (Vertex u : g.neighbors(v)) spanner_edges.insert(v, u);
    } else {
      const Vertex c = rng.pick(centers);
      cluster[v] = c;
      spanner_edges.insert(v, c);
    }
  }

  // Phase 2: one edge per adjacent cluster.
  std::unordered_map<Vertex, Vertex> pick;  // cluster center -> neighbor
  for (Vertex v = 0; v < n; ++v) {
    pick.clear();
    for (Vertex u : g.neighbors(v)) {
      const Vertex c = cluster[u];
      if (c == kInvalidVertex || c == cluster[v]) continue;
      pick.emplace(c, u);  // keeps the first edge into each cluster
    }
    for (const auto& [c, u] : pick) spanner_edges.insert(v, u);
  }

  Spanner out;
  const auto list = spanner_edges.to_vector();
  out.h = Graph::from_edges(n, list);
  out.stats.input_edges = g.num_edges();
  out.stats.spanner_edges = out.h.num_edges();
  out.stats.sample_probability = p;
  return out;
}

Spanner baswana_sen_spanner(const Graph& g, std::size_t k,
                            std::uint64_t seed) {
  DCS_REQUIRE(k >= 1, "stretch parameter k must be at least 1");
  const std::size_t n = g.num_vertices();
  DCS_REQUIRE(n >= 1, "empty graph");
  if (k == 1) {  // a 1-spanner is the graph itself
    Spanner out;
    out.h = g;
    out.stats.input_edges = g.num_edges();
    out.stats.spanner_edges = g.num_edges();
    return out;
  }

  Rng rng(seed);
  const double sample_p =
      std::pow(static_cast<double>(n), -1.0 / static_cast<double>(k));

  // cluster[v] = center id of v's current cluster; kInvalidVertex once v
  // has retired (kept one edge per adjacent cluster and left the game).
  std::vector<Vertex> cluster(n);
  for (Vertex v = 0; v < n; ++v) cluster[v] = v;

  // E_work: edges still awaiting coverage. Edges leave the working set when
  // their coverage is certified (by a same-cluster join or a retirement).
  EdgeSet work(std::span<const Edge>(g.edges()));
  EdgeSet spanner_edges;

  // One edge per adjacent cluster for vertex v, over the current working
  // edges; removes all of v's working edges afterwards.
  auto retire = [&](Vertex v) {
    std::unordered_map<Vertex, Vertex> pick;  // cluster center -> neighbor
    for (Vertex u : g.neighbors(v)) {
      if (!work.contains(v, u)) continue;
      const Vertex c = cluster[u];
      if (c == kInvalidVertex) continue;
      pick.emplace(c, u);
    }
    for (const auto& [c, u] : pick) spanner_edges.insert(v, u);
    for (Vertex u : g.neighbors(v)) work.erase(canonical(v, u));
    cluster[v] = kInvalidVertex;
  };

  for (std::size_t phase = 1; phase < k; ++phase) {
    // Sample the surviving clusters of the previous phase.
    std::vector<bool> sampled(n, false);
    for (Vertex c = 0; c < n; ++c) {
      sampled[c] = rng.bernoulli(sample_p);
    }
    std::vector<Vertex> next_cluster(n, kInvalidVertex);
    for (Vertex v = 0; v < n; ++v) {
      if (cluster[v] == kInvalidVertex) continue;
      if (sampled[cluster[v]]) {
        next_cluster[v] = cluster[v];  // cluster survives wholesale
        continue;
      }
      // Look for a neighbor in a sampled cluster (through working edges).
      Vertex join_via = kInvalidVertex;
      for (Vertex u : g.neighbors(v)) {
        if (!work.contains(v, u)) continue;
        const Vertex c = cluster[u];
        if (c != kInvalidVertex && sampled[c]) {
          join_via = u;
          break;
        }
      }
      if (join_via == kInvalidVertex) {
        retire(v);
        continue;
      }
      const Vertex joined = cluster[join_via];
      spanner_edges.insert(v, join_via);
      next_cluster[v] = joined;
      // Edges from v into the joined cluster are now covered through the
      // join edge plus the cluster's bounded radius.
      for (Vertex u : g.neighbors(v)) {
        if (work.contains(v, u) && cluster[u] == joined) {
          work.erase(canonical(v, u));
        }
      }
    }
    cluster = next_cluster;
  }

  // Final phase: every surviving vertex keeps one edge per adjacent
  // cluster among the remaining working edges.
  for (Vertex v = 0; v < n; ++v) {
    if (cluster[v] == kInvalidVertex) continue;
    std::unordered_map<Vertex, Vertex> pick;
    for (Vertex u : g.neighbors(v)) {
      if (!work.contains(v, u)) continue;
      const Vertex c = cluster[u];
      if (c == kInvalidVertex || c == cluster[v]) continue;
      pick.emplace(c, u);
    }
    for (const auto& [c, u] : pick) spanner_edges.insert(v, u);
    // Same-cluster working edges are covered via the cluster tree (radius
    // ≤ k−1 on spanner edges), but only if the two endpoints connect to
    // the center through spanner edges — which they do by construction.
  }

  Spanner out;
  const auto list = spanner_edges.to_vector();
  out.h = Graph::from_edges(n, list);
  out.stats.input_edges = g.num_edges();
  out.stats.spanner_edges = out.h.num_edges();
  out.stats.sample_probability = sample_p;
  return out;
}

namespace {

// Dynamic adjacency with depth-bounded BFS used by the greedy spanner.
class IncrementalGraph {
 public:
  explicit IncrementalGraph(std::size_t n)
      : adj_(n), stamp_(n, 0), dist_(n, 0), current_stamp_(0) {}

  void add_edge(Vertex u, Vertex v) {
    adj_[u].push_back(v);
    adj_[v].push_back(u);
  }

  /// True iff dist(u, v) <= bound in the current spanner.
  bool within_distance(Vertex u, Vertex v, Dist bound) {
    if (u == v) return true;
    ++current_stamp_;
    frontier_.clear();
    frontier_.push_back(u);
    stamp_[u] = current_stamp_;
    dist_[u] = 0;
    std::size_t head = 0;
    while (head < frontier_.size()) {
      const Vertex x = frontier_[head++];
      if (dist_[x] >= bound) continue;
      for (Vertex y : adj_[x]) {
        if (stamp_[y] == current_stamp_) continue;
        if (y == v) return true;
        stamp_[y] = current_stamp_;
        dist_[y] = dist_[x] + 1;
        frontier_.push_back(y);
      }
    }
    return false;
  }

 private:
  std::vector<std::vector<Vertex>> adj_;
  std::vector<std::uint64_t> stamp_;
  std::vector<Dist> dist_;
  std::uint64_t current_stamp_;
  std::vector<Vertex> frontier_;
};

}  // namespace

Spanner greedy_spanner(const Graph& g, Dist alpha, std::uint64_t seed) {
  DCS_REQUIRE(alpha >= 1, "stretch must be at least 1");
  auto edges = g.edges();
  Rng rng(seed);
  rng.shuffle(edges);

  IncrementalGraph partial(g.num_vertices());
  std::vector<Edge> kept;
  for (Edge e : edges) {
    if (!partial.within_distance(e.u, e.v, alpha)) {
      partial.add_edge(e.u, e.v);
      kept.push_back(e);
    }
  }

  Spanner out;
  out.h = Graph::from_edges(g.num_vertices(), kept);
  out.stats.input_edges = g.num_edges();
  out.stats.spanner_edges = out.h.num_edges();
  return out;
}

}  // namespace dcs
