#include "core/support.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dcs {

std::vector<Vertex> common_neighbors(const Graph& h, Vertex u, Vertex v) {
  auto nu = h.neighbors(u);
  auto nv = h.neighbors(v);
  std::vector<Vertex> out;
  std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                        std::back_inserter(out));
  return out;
}

std::size_t base_support(const Graph& g, Vertex u, Vertex z) {
  auto nu = g.neighbors(u);
  auto nz = g.neighbors(z);
  // Counted merge over the sorted adjacency lists.
  std::size_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nz.size()) {
    if (nu[i] < nz[j]) {
      ++i;
    } else if (nu[i] > nz[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::size_t count_supported_extensions(const Graph& g, Vertex u, Vertex v,
                                       std::size_t a) {
  std::size_t count = 0;
  for (Vertex z : g.neighbors(v)) {
    if (z == u) continue;
    // The extension (v,z) is a-supported iff base {u,z} is (a+1)-supported.
    if (base_support(g, u, z) >= a + 1) ++count;
  }
  return count;
}

bool is_ab_supported_toward(const Graph& g, Vertex u, Vertex v,
                            std::size_t a, std::size_t b) {
  // Early-exit variant of count_supported_extensions.
  std::size_t count = 0;
  for (Vertex z : g.neighbors(v)) {
    if (z == u) continue;
    if (base_support(g, u, z) >= a + 1) {
      if (++count >= b) return true;
    }
  }
  return false;
}

bool is_ab_supported(const Graph& g, Edge e, std::size_t a, std::size_t b) {
  return is_ab_supported_toward(g, e.u, e.v, a, b) ||
         is_ab_supported_toward(g, e.v, e.u, a, b);
}

std::vector<Detour3> find_3detours(const Graph& h, Vertex u, Vertex v,
                                   std::size_t limit) {
  std::vector<Detour3> out;
  // Enumerate z ∈ N(v), then routers x ∈ N(u) ∩ N(z); interior nodes must
  // avoid the endpoints. x == z is impossible (no self-loops).
  for (Vertex z : h.neighbors(v)) {
    if (z == u || z == v) continue;
    for (Vertex x : common_neighbors(h, u, z)) {
      if (x == v || x == u) continue;
      out.push_back(Detour3{x, z});
      if (limit != 0 && out.size() >= limit) return out;
    }
  }
  return out;
}

bool has_short_replacement(const Graph& h, Vertex u, Vertex v) {
  if (h.has_edge(u, v)) return true;
  if (!common_neighbors(h, u, v).empty()) return true;
  return !find_3detours(h, u, v, /*limit=*/1).empty();
}

std::vector<Vertex> random_short_replacement(const Graph& h, Vertex u,
                                             Vertex v, Rng& rng,
                                             bool prefer_3detour) {
  DCS_REQUIRE(u != v, "replacement endpoints must differ");
  if (!prefer_3detour && h.has_edge(u, v)) return {u, v};
  auto detours = find_3detours(h, u, v);
  if (!detours.empty()) {
    const auto& d = rng.pick(detours);
    return {u, d.x, d.z, v};
  }
  auto routers = common_neighbors(h, u, v);
  if (!routers.empty()) {
    return {u, rng.pick(routers), v};
  }
  if (h.has_edge(u, v)) return {u, v};
  return {};
}

std::size_t SupportOracle::base_support(Vertex u, Vertex z) const {
  if (bitmap_.empty()) return dcs::base_support(g_, u, z);
  return bitmap_.common_count(u, z);
}

std::size_t SupportOracle::count_supported_extensions(Vertex u, Vertex v,
                                                      std::size_t a) const {
  if (bitmap_.empty()) return dcs::count_supported_extensions(g_, u, v, a);
  std::size_t count = 0;
  for (Vertex z : g_.neighbors(v)) {
    if (z == u) continue;
    if (bitmap_.common_count(u, z) >= a + 1) ++count;
  }
  return count;
}

bool SupportOracle::is_ab_supported_toward(Vertex u, Vertex v, std::size_t a,
                                           std::size_t b) const {
  if (bitmap_.empty()) return dcs::is_ab_supported_toward(g_, u, v, a, b);
  std::size_t count = 0;
  for (Vertex z : g_.neighbors(v)) {
    if (z == u) continue;
    if (bitmap_.common_count(u, z) >= a + 1) {
      if (++count >= b) return true;
    }
  }
  return false;
}

bool SupportOracle::is_ab_supported(Edge e, std::size_t a,
                                    std::size_t b) const {
  return is_ab_supported_toward(e.u, e.v, a, b) ||
         is_ab_supported_toward(e.v, e.u, a, b);
}

bool SupportOracle::has_short_replacement(Vertex u, Vertex v) const {
  if (bitmap_.empty()) return dcs::has_short_replacement(g_, u, v);
  if (bitmap_.test(u, v)) return true;
  if (bitmap_.has_common(u, v)) return true;
  // 3-detour u–x–z–v: since (u,v) ∉ E and x ∈ N(u), the router x can never
  // be v here, so any common neighbor of u and z witnesses a detour.
  for (Vertex z : g_.neighbors(v)) {
    if (z == u) continue;
    if (bitmap_.has_common(u, z)) return true;
  }
  return false;
}

std::vector<Vertex> SupportOracle::common_neighbors(Vertex u,
                                                    Vertex v) const {
  if (bitmap_.empty()) return dcs::common_neighbors(g_, u, v);
  std::vector<Vertex> out;
  bitmap_.common_into(u, v, out);
  return out;
}

}  // namespace dcs
