#include "core/matching_decomposition.hpp"

#include <algorithm>
#include <unordered_map>

#define DCS_LOG_COMPONENT "decomposition"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/edge_coloring.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

namespace {

// Orients `sub` so that it runs from `from` to `to`; the substitute routing
// stored one path per canonical pair.
Path oriented(const Path& sub, Vertex from, Vertex to) {
  DCS_CHECK(!sub.empty(), "empty substitute path");
  if (sub.front() == from && sub.back() == to) return sub;
  DCS_CHECK(sub.front() == to && sub.back() == from,
            "substitute path endpoints do not match the edge");
  Path rev(sub.rbegin(), sub.rend());
  return rev;
}

}  // namespace

SubstituteRouting substitute_routing_via_matchings(
    std::size_t n, const Routing& p, const MatchingRouteFn& route_matching,
    std::uint64_t seed) {
  DCS_TRACE_SPAN("matching_decomposition");
  SubstituteRouting out;

  // --- Level assignment -------------------------------------------------
  // For every edge e, the list of paths whose A_p contains e (each path
  // contributes e once even if it traverses it twice). The i-th path in the
  // list has level i for that edge, matching Algorithm 2's peeling loop.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> users;
  std::size_t levels = 0;
  {
    DCS_TRACE_SPAN("level_assignment");
    for (std::size_t pi = 0; pi < p.paths.size(); ++pi) {
      const Path& path = p.paths[pi];
      // Deduplicate within the path: A_p is a set.
      std::vector<std::uint64_t> keys;
      keys.reserve(path.size());
      for (std::size_t j = 0; j + 1 < path.size(); ++j) {
        keys.push_back(edge_key(canonical(path[j], path[j + 1])));
      }
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      for (std::uint64_t k : keys) users[k].push_back(pi);
    }

    for (const auto& [key, paths] : users) {
      levels = std::max(levels, paths.size());
    }
  }
  out.stats.levels = levels;

  // level_of[(edge, path)] — resolved by position in users[edge].
  auto level_of = [&users](Vertex a, Vertex b, std::size_t pi) {
    const auto& list = users.at(edge_key(canonical(a, b)));
    const auto it = std::find(list.begin(), list.end(), pi);
    DCS_CHECK(it != list.end(), "path/edge pair missing from level index");
    return static_cast<std::size_t>(it - list.begin());
  };

  // --- Per-level coloring and matching routing --------------------------
  // substitutes[level][edge_key] = routed path for that edge at that level.
  std::vector<std::unordered_map<std::uint64_t, Path>> substitutes(levels);
  std::uint64_t matching_counter = 0;
  auto& reg = obs::MetricsRegistry::instance();
  auto& level_degree_hist = reg.histogram("decomposition.level_degree");
  auto& level_colors_hist = reg.histogram("decomposition.level_colors");
  for (std::size_t k = 0; k < levels; ++k) {
    DCS_TRACE_SPAN("level_subgraph");
    std::vector<Edge> level_edges;
    for (const auto& [key, paths] : users) {
      if (paths.size() > k) {
        level_edges.push_back(Edge{static_cast<Vertex>(key >> 32),
                                   static_cast<Vertex>(key & 0xffffffffu)});
      }
    }
    if (level_edges.empty()) continue;
    const Graph gk = Graph::from_edges(n, level_edges);
    out.stats.sum_degree_plus_one += gk.max_degree() + 1;
    out.stats.max_level_degree =
        std::max(out.stats.max_level_degree, gk.max_degree());
    level_degree_hist.record(static_cast<double>(gk.max_degree()));

    const EdgeColoring coloring = misra_gries_edge_coloring(gk);
    level_colors_hist.record(
        static_cast<double>(coloring.matchings().size()));
    reg.counter("decomposition.colors_used")
        .inc(coloring.matchings().size());
    for (const auto& matching : coloring.matchings()) {
      ++out.stats.total_matchings;
      const RoutingProblem problem = RoutingProblem::from_edges(matching);
      const Routing routed =
          route_matching(problem, mix64(seed, ++matching_counter));
      DCS_CHECK(routed.paths.size() == matching.size(),
                "matching router returned wrong path count");
      for (std::size_t i = 0; i < matching.size(); ++i) {
        substitutes[k][edge_key(matching[i])] = routed.paths[i];
      }
    }
  }

  // --- Reassembly --------------------------------------------------------
  {
    DCS_TRACE_SPAN("reassembly");
    out.routing.paths.resize(p.paths.size());
    for (std::size_t pi = 0; pi < p.paths.size(); ++pi) {
      const Path& path = p.paths[pi];
      Path& sub = out.routing.paths[pi];
      if (path.size() <= 1) {
        sub = path;
        continue;
      }
      sub.push_back(path.front());
      for (std::size_t j = 0; j + 1 < path.size(); ++j) {
        const Vertex a = path[j];
        const Vertex b = path[j + 1];
        const std::size_t k = level_of(a, b, pi);
        const auto& level_map = substitutes[k];
        const auto it = level_map.find(edge_key(canonical(a, b)));
        DCS_CHECK(it != level_map.end(), "no substitute path for edge level");
        const Path seg = oriented(it->second, a, b);
        sub.insert(sub.end(), seg.begin() + 1, seg.end());
      }
    }
  }

  reg.counter("decomposition.runs").inc();
  reg.counter("decomposition.levels_built").inc(levels);
  reg.counter("decomposition.matchings_routed").inc(out.stats.total_matchings);
  DCS_LOG(Debug) << "decomposition: " << p.paths.size() << " paths, "
                 << levels << " levels, " << out.stats.total_matchings
                 << " matchings, Σ(d_k+1)=" << out.stats.sum_degree_plus_one;
  return out;
}

}  // namespace dcs
