#include "core/general_spanner.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

double stretch_sample_probability(std::size_t n, double avg_degree,
                                  Dist alpha) {
  DCS_REQUIRE(alpha >= 1, "stretch must be at least 1");
  DCS_REQUIRE(avg_degree > 0.0, "average degree must be positive");
  const double k = (static_cast<double>(alpha) + 1.0) / 2.0;
  const double target_degree =
      2.0 * std::pow(static_cast<double>(n), 1.0 / k);
  return std::min(1.0, target_degree / avg_degree);
}

StretchSpannerResult build_stretch_spanner(
    const Graph& g, const StretchSpannerOptions& options) {
  DCS_REQUIRE(g.num_vertices() >= 2, "spanner input too small");
  DCS_REQUIRE(g.num_edges() >= 1, "spanner input has no edges");
  const std::size_t n = g.num_vertices();
  const double avg_degree =
      2.0 * static_cast<double>(g.num_edges()) / static_cast<double>(n);

  double p = options.sample_probability;
  if (p <= 0.0) {
    p = stretch_sample_probability(n, avg_degree, options.alpha);
  }
  p = std::min(1.0, p);

  std::vector<Edge> kept;
  std::vector<Edge> dropped;
  for (Edge e : g.edges()) {
    if (edge_sampled(e, p, options.seed)) {
      kept.push_back(e);
    } else {
      dropped.push_back(e);
    }
  }
  Graph sampled = Graph::from_edges(n, kept);

  StretchSpannerResult result;
  result.sample_probability = p;

  if (options.repair && !dropped.empty()) {
    // One bounded BFS per vertex that lost an edge suffices: reinserting
    // edges only shrinks distances, so checking against G' is conservative.
    std::vector<std::vector<Edge>> missing_per(dropped.size());
    // Group dropped edges by smaller endpoint to batch BFS runs.
    std::vector<std::vector<std::size_t>> by_source(n);
    for (std::size_t i = 0; i < dropped.size(); ++i) {
      by_source[dropped[i].u].push_back(i);
    }
    std::vector<std::uint8_t> need(dropped.size(), 0);
    parallel_for(0, n, [&](std::size_t ui) {
      if (by_source[ui].empty()) return;
      const auto dist = bfs_distances_bounded(
          sampled, static_cast<Vertex>(ui), options.alpha);
      for (std::size_t i : by_source[ui]) {
        if (dist[dropped[i].v] == kUnreachable) need[i] = 1;
      }
    });
    for (std::size_t i = 0; i < dropped.size(); ++i) {
      if (need[i] != 0) {
        kept.push_back(dropped[i]);
        ++result.repaired_edges;
      }
    }
  }

  result.spanner.h = Graph::from_edges(n, kept);
  auto& stats = result.spanner.stats;
  stats.input_edges = g.num_edges();
  stats.sampled_edges = kept.size() - result.repaired_edges;
  stats.reinserted_edges = result.repaired_edges;
  stats.spanner_edges = result.spanner.h.num_edges();
  stats.sample_probability = p;
  return result;
}

}  // namespace dcs
