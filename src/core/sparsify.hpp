#pragma once

// Expander sparsification — the mechanism behind Table 1's rows for [16]
// (Koutis–Xu: O(n log n)-edge expander from any expander) and [5]
// (Becchetti et al.: O(n)-edge expander inside a dense one).
//
// On a regular expander, keeping each edge independently with probability
// p = target_degree/Δ preserves the (normalized) spectral gap w.h.p. once
// the target degree is Ω(log n); the experiments verify the gap of the
// output with spectral/expansion.hpp rather than assuming it. Distance
// stretch degrades from 1 to O(log n) (the sparsifier's diameter) and
// congestion is handled by Valiant-style routing — reproducing the shape of
// those two rows.

#include "core/dc_spanner.hpp"
#include "graph/graph.hpp"

namespace dcs {

struct SparsifyOptions {
  std::uint64_t seed = 1;
  /// Expected degree of the output; Θ(log n) reproduces [16]'s row, a
  /// constant (≥ 3) reproduces [5]'s row on dense inputs.
  double target_degree = 0.0;
  /// Reinsert one incident edge for isolated vertices and re-connect
  /// stranded components through one original edge each, so the output is
  /// usable for routing (the cited constructions guarantee connectivity
  /// w.h.p.; at finite n we repair the exceptions and report the count).
  bool repair_connectivity = true;
};

struct SparsifyResult {
  Spanner spanner;
  std::size_t repair_edges = 0;  ///< edges added by the connectivity repair
};

SparsifyResult uniform_sparsify(const Graph& g, const SparsifyOptions& options);

}  // namespace dcs
