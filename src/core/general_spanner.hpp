#pragma once

// Generalized-stretch sampling spanner — an empirical probe of the paper's
// open problem #2 ("increase the distance stretches for the spectral
// expanders and regular graphs; this may give better congestion bounds").
//
// For odd α = 2k−1, sample every edge independently with probability
// p ≈ c·n^{1/k}/Δ (targeting the classical Θ(n^{1+1/k}) spanner density)
// and reinsert every edge whose endpoints end up further than α apart in
// the sampled graph. The result is deterministically an α-distance spanner;
// replacement paths are randomized shortest paths, so the congestion
// behaviour under growing α can be measured directly
// (bench_ext_stretch_tradeoff).

#include "core/dc_spanner.hpp"
#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace dcs {

struct StretchSpannerOptions {
  std::uint64_t seed = 1;
  Dist alpha = 3;  ///< target distance stretch (α ≥ 1)
  /// Edge sampling probability; ≤ 0 derives c·n^{1/k}/Δ̄ with k = (α+1)/2
  /// and c = 2 from the average degree Δ̄.
  double sample_probability = -1.0;
  bool repair = true;  ///< reinsert edges with d_{G'}(u,v) > α
};

struct StretchSpannerResult {
  Spanner spanner;
  double sample_probability = 0.0;
  std::size_t repaired_edges = 0;
};

/// The sampling probability rule described above (exposed for tests).
double stretch_sample_probability(std::size_t n, double avg_degree,
                                  Dist alpha);

StretchSpannerResult build_stretch_spanner(
    const Graph& g, const StretchSpannerOptions& options = {});

}  // namespace dcs
