#pragma once

// Algorithm 2 / Theorem 1 (Section 6): converting an arbitrary routing P on
// G into a substitute routing P' on a spanner H by decomposing the edges of
// P into matchings.
//
//  * Level assignment: repeatedly peel one (path, edge) pair per edge; the
//    level-k subgraph G_k contains the edges still present after k peels,
//    so r = max edge multiplicity ≤ C(P).
//  * Each G_k is edge-colored (Misra–Gries, m_k ≤ d_k + 1 colors); each
//    color class is a matching, routed on H by a caller-supplied routine.
//  * Each path of P is reassembled by splicing in the substitute path of
//    each of its edges at that edge's level.
//
// Lemma 21/22 bound the resulting congestion by 12·β'·C(P)·log₂ n; Lemma 23
// bounds the number of distinct matchings by O(n³).

#include <functional>

#include "graph/graph.hpp"
#include "routing/routing.hpp"

namespace dcs {

/// Routes a matching routing problem on the spanner; `seed` derives the
/// replacement-path randomness. Must return one path per pair, in order.
using MatchingRouteFn =
    std::function<Routing(const RoutingProblem&, std::uint64_t seed)>;

struct DecompositionStats {
  std::size_t levels = 0;               ///< r — number of level subgraphs
  std::size_t total_matchings = 0;      ///< Σ_k m_k (Lemma 23's count)
  std::size_t sum_degree_plus_one = 0;  ///< Σ_k (d_k + 1) (Lemma 21's bound)
  std::size_t max_level_degree = 0;     ///< d_1
};

struct SubstituteRouting {
  Routing routing;  ///< P' — one walk per path of P, same endpoints
  DecompositionStats stats;
};

/// Runs Algorithm 2 on routing `p` over a vertex set of size n. Substitute
/// paths for each matching come from `route_matching`. Every returned walk
/// starts and ends where the corresponding path of `p` does.
SubstituteRouting substitute_routing_via_matchings(
    std::size_t n, const Routing& p, const MatchingRouteFn& route_matching,
    std::uint64_t seed);

}  // namespace dcs
