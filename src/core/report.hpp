#pragma once

// One-call spanner quality report: everything a user needs to judge a
// spanner of their graph — size, exact distance stretch, expansion before
// and after, congestion statistics over matching workloads, routing-table
// memory — rendered as a table or consumed programmatically.

#include <string>

#include "core/router.hpp"
#include "graph/graph.hpp"

namespace dcs {

struct SpannerReportOptions {
  std::uint64_t seed = 1;
  std::size_t matching_trials = 5;  ///< workloads for the congestion stats
  bool measure_expansion = true;    ///< Lanczos on both graphs (costlier)
  bool measure_tables = true;       ///< next-hop table memory (n BFS each)
};

struct SpannerReport {
  // size
  std::size_t input_edges = 0;
  std::size_t spanner_edges = 0;
  double compression = 1.0;
  // distance
  double max_stretch = 0.0;
  double mean_stretch = 0.0;
  bool connected = false;
  // expansion (normalized λ/λ₁; lower = better expander)
  double input_expansion = 0.0;
  double spanner_expansion = 0.0;
  // congestion over matching workloads (C_G = 1 by construction)
  std::size_t worst_matching_congestion = 0;
  double mean_matching_congestion = 0.0;
  // routing-table memory (bits)
  std::uint64_t input_table_bits = 0;
  std::uint64_t spanner_table_bits = 0;

  /// Human-readable two-column rendering.
  std::string to_string() const;
};

/// Measures `h` against `g` using `router` for the congestion workloads
/// (pass a DetourRouter/ExpanderMatchingRouter for the paper's
/// constructions, or a ShortestPathPairRouter for arbitrary spanners).
SpannerReport make_spanner_report(const Graph& g, const Graph& h,
                                  const PairRouter& router,
                                  const SpannerReportOptions& options = {});

}  // namespace dcs
