#include "core/verifier.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <mutex>

#include "graph/bfs.hpp"
#include "graph/traversal.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

DistanceStretchReport measure_distance_stretch(const Graph& g,
                                               const Graph& h, Dist cap) {
  DCS_REQUIRE(g.num_vertices() == h.num_vertices(),
              "spanner must share the vertex set");
  const std::size_t n = g.num_vertices();

  // Only vertices with a canonical (v > u) neighbor need a BFS; batching
  // them 64 per multi-source pass is the single hottest win in the repo —
  // one sweep of H serves a whole word of sources.
  std::vector<Vertex> sources;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : g.neighbors(u)) {
      if (v > u) {
        sources.push_back(u);
        break;
      }
    }
  }
  const std::size_t num_batches =
      (sources.size() + kMsBfsBatch - 1) / kMsBfsBatch;

  std::mutex merge_mutex;
  DistanceStretchReport report;
  double total = 0.0;

  parallel_chunks(
      0, num_batches, [&](std::size_t lo, std::size_t hi, std::size_t) {
        double local_total = 0.0;
        double local_max = 0.0;
        std::size_t local_checked = 0;
        std::size_t local_unreachable = 0;
        auto& scratch = traversal_scratch();
        for (std::size_t b = lo; b < hi; ++b) {
          const std::size_t first = b * kMsBfsBatch;
          const std::size_t count =
              std::min(kMsBfsBatch, sources.size() - first);
          const std::span<const Vertex> batch(sources.data() + first, count);
          const MsBfsView view = multi_source_bfs(h, batch, cap, &scratch);
          for (std::size_t i = 0; i < count; ++i) {
            const Vertex u = batch[i];
            for (Vertex v : g.neighbors(u)) {
              if (v <= u) continue;
              ++local_checked;
              const Dist d = view.at(i, v);
              if (d == kUnreachable) {
                ++local_unreachable;
              } else {
                local_total += d;
                local_max = std::max(local_max, static_cast<double>(d));
              }
            }
          }
        }
        std::lock_guard lock(merge_mutex);
        total += local_total;
        report.max_stretch = std::max(report.max_stretch, local_max);
        report.checked_edges += local_checked;
        report.unreachable += local_unreachable;
      });

  const std::size_t reached = report.checked_edges - report.unreachable;
  report.mean_stretch =
      reached == 0 ? 0.0 : total / static_cast<double>(reached);
  return report;
}

double exact_pairwise_stretch(const Graph& g, const Graph& h) {
  DCS_REQUIRE(g.num_vertices() == h.num_vertices(),
              "spanner must share the vertex set");
  const std::size_t n = g.num_vertices();
  std::atomic<std::uint64_t> worst_bits{0};
  auto update_max = [&worst_bits](double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    std::uint64_t cur = worst_bits.load(std::memory_order_relaxed);
    double cur_val;
    std::memcpy(&cur_val, &cur, sizeof(cur_val));
    while (value > cur_val &&
           !worst_bits.compare_exchange_weak(cur, bits)) {
      std::memcpy(&cur_val, &cur, sizeof(cur_val));
    }
  };

  const std::size_t num_batches = (n + kMsBfsBatch - 1) / kMsBfsBatch;
  parallel_chunks(
      0, num_batches, [&](std::size_t lo, std::size_t hi, std::size_t) {
        // Two arenas per worker: the G and H batches must stay live
        // simultaneously while their rows are compared.
        TraversalScratch scratch_g, scratch_h;
        for (std::size_t b = lo; b < hi; ++b) {
          const std::size_t first = b * kMsBfsBatch;
          const std::size_t count = std::min(kMsBfsBatch, n - first);
          std::array<Vertex, kMsBfsBatch> batch;
          for (std::size_t i = 0; i < count; ++i) {
            batch[i] = static_cast<Vertex>(first + i);
          }
          const std::span<const Vertex> sources(batch.data(), count);
          const MsBfsView dg =
              multi_source_bfs(g, sources, kUnreachable, &scratch_g);
          const MsBfsView dh =
              multi_source_bfs(h, sources, kUnreachable, &scratch_h);
          for (std::size_t i = 0; i < count; ++i) {
            const Vertex u = batch[i];
            for (Vertex v = u + 1; v < n; ++v) {
              const Dist dgv = dg.at(i, v);
              if (dgv == kUnreachable || dgv == 0) continue;
              const Dist dhv = dh.at(i, v);
              DCS_CHECK(dhv != kUnreachable,
                        "spanner disconnected a pair connected in G");
              update_max(static_cast<double>(dhv) /
                         static_cast<double>(dgv));
            }
          }
        }
      });

  std::uint64_t bits = worst_bits.load();
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

CongestionReport measure_matching_congestion(const Graph& g, const Graph& h,
                                             const RoutingProblem& matching,
                                             const PairRouter& router,
                                             std::uint64_t seed) {
  DCS_REQUIRE(matching.is_matching(),
              "measure_matching_congestion requires a matching problem");
  for (auto [u, v] : matching.pairs) {
    DCS_REQUIRE(g.has_edge(u, v),
                "matching pairs must be edges of G so that C_G = 1");
  }
  const Routing base = Routing::direct_edges(matching);
  const Routing sub = route_problem(router, matching, seed);
  DCS_REQUIRE(routing_is_valid(h, matching, sub),
              "substitute routing is invalid on H");

  CongestionReport report;
  report.base_congestion = node_congestion(base, g.num_vertices());
  report.spanner_congestion = node_congestion(sub, h.num_vertices());
  for (std::size_t i = 0; i < sub.paths.size(); ++i) {
    report.max_length_ratio =
        std::max(report.max_length_ratio,
                 static_cast<double>(path_length(sub.paths[i])));
  }
  return report;
}

CongestionReport measure_general_congestion(const Graph& g, const Graph& h,
                                            const Routing& p_on_g,
                                            const PairRouter& router,
                                            std::uint64_t seed) {
  // Implied problem: each path's endpoints.
  RoutingProblem problem;
  problem.pairs.reserve(p_on_g.paths.size());
  for (const auto& path : p_on_g.paths) {
    DCS_REQUIRE(path.size() >= 2, "paths must have at least one edge");
    problem.pairs.emplace_back(path.front(), path.back());
  }
  DCS_REQUIRE(routing_is_valid(g, problem, p_on_g),
              "input routing is invalid on G");

  const SubstituteRouting sub = substitute_routing_via_matchings(
      g.num_vertices(), p_on_g, matching_route_fn(router), seed);
  DCS_REQUIRE(routing_is_valid(h, problem, sub.routing),
              "substitute routing is invalid on H");

  CongestionReport report;
  report.base_congestion = node_congestion(p_on_g, g.num_vertices());
  report.spanner_congestion = node_congestion(sub.routing, h.num_vertices());
  report.decomposition = sub.stats;
  for (std::size_t i = 0; i < sub.routing.paths.size(); ++i) {
    const double lp = static_cast<double>(path_length(p_on_g.paths[i]));
    const double lq = static_cast<double>(path_length(sub.routing.paths[i]));
    if (lp > 0) {
      report.max_length_ratio = std::max(report.max_length_ratio, lq / lp);
    }
  }
  return report;
}

}  // namespace dcs
