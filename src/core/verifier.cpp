#include "core/verifier.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>

#include "graph/bfs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

DistanceStretchReport measure_distance_stretch(const Graph& g,
                                               const Graph& h, Dist cap) {
  DCS_REQUIRE(g.num_vertices() == h.num_vertices(),
              "spanner must share the vertex set");
  const std::size_t n = g.num_vertices();

  std::mutex merge_mutex;
  DistanceStretchReport report;
  double total = 0.0;

  parallel_chunks(0, n, [&](std::size_t lo, std::size_t hi, std::size_t) {
    double local_total = 0.0;
    double local_max = 0.0;
    std::size_t local_checked = 0;
    std::size_t local_unreachable = 0;
    for (std::size_t ui = lo; ui < hi; ++ui) {
      const auto u = static_cast<Vertex>(ui);
      // Only canonical directions to count each edge once.
      bool any = false;
      for (Vertex v : g.neighbors(u)) {
        if (v > u) {
          any = true;
          break;
        }
      }
      if (!any) continue;
      const auto dist = bfs_distances_bounded(h, u, cap);
      for (Vertex v : g.neighbors(u)) {
        if (v <= u) continue;
        ++local_checked;
        if (dist[v] == kUnreachable) {
          ++local_unreachable;
        } else {
          local_total += dist[v];
          local_max = std::max(local_max, static_cast<double>(dist[v]));
        }
      }
    }
    std::lock_guard lock(merge_mutex);
    total += local_total;
    report.max_stretch = std::max(report.max_stretch, local_max);
    report.checked_edges += local_checked;
    report.unreachable += local_unreachable;
  });

  const std::size_t reached = report.checked_edges - report.unreachable;
  report.mean_stretch =
      reached == 0 ? 0.0 : total / static_cast<double>(reached);
  return report;
}

double exact_pairwise_stretch(const Graph& g, const Graph& h) {
  DCS_REQUIRE(g.num_vertices() == h.num_vertices(),
              "spanner must share the vertex set");
  const std::size_t n = g.num_vertices();
  std::atomic<std::uint64_t> worst_bits{0};
  auto update_max = [&worst_bits](double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    std::uint64_t cur = worst_bits.load(std::memory_order_relaxed);
    double cur_val;
    std::memcpy(&cur_val, &cur, sizeof(cur_val));
    while (value > cur_val &&
           !worst_bits.compare_exchange_weak(cur, bits)) {
      std::memcpy(&cur_val, &cur, sizeof(cur_val));
    }
  };

  parallel_for(0, n, [&](std::size_t ui) {
    const auto u = static_cast<Vertex>(ui);
    const auto dg = bfs_distances(g, u);
    const auto dh = bfs_distances(h, u);
    for (Vertex v = u + 1; v < n; ++v) {
      if (dg[v] == kUnreachable || dg[v] == 0) continue;
      DCS_CHECK(dh[v] != kUnreachable || dg[v] == kUnreachable,
                "spanner disconnected a pair connected in G");
      update_max(static_cast<double>(dh[v]) / static_cast<double>(dg[v]));
    }
  });

  std::uint64_t bits = worst_bits.load();
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

CongestionReport measure_matching_congestion(const Graph& g, const Graph& h,
                                             const RoutingProblem& matching,
                                             const PairRouter& router,
                                             std::uint64_t seed) {
  DCS_REQUIRE(matching.is_matching(),
              "measure_matching_congestion requires a matching problem");
  for (auto [u, v] : matching.pairs) {
    DCS_REQUIRE(g.has_edge(u, v),
                "matching pairs must be edges of G so that C_G = 1");
  }
  const Routing base = Routing::direct_edges(matching);
  const Routing sub = route_problem(router, matching, seed);
  DCS_REQUIRE(routing_is_valid(h, matching, sub),
              "substitute routing is invalid on H");

  CongestionReport report;
  report.base_congestion = node_congestion(base, g.num_vertices());
  report.spanner_congestion = node_congestion(sub, h.num_vertices());
  for (std::size_t i = 0; i < sub.paths.size(); ++i) {
    report.max_length_ratio =
        std::max(report.max_length_ratio,
                 static_cast<double>(path_length(sub.paths[i])));
  }
  return report;
}

CongestionReport measure_general_congestion(const Graph& g, const Graph& h,
                                            const Routing& p_on_g,
                                            const PairRouter& router,
                                            std::uint64_t seed) {
  // Implied problem: each path's endpoints.
  RoutingProblem problem;
  problem.pairs.reserve(p_on_g.paths.size());
  for (const auto& path : p_on_g.paths) {
    DCS_REQUIRE(path.size() >= 2, "paths must have at least one edge");
    problem.pairs.emplace_back(path.front(), path.back());
  }
  DCS_REQUIRE(routing_is_valid(g, problem, p_on_g),
              "input routing is invalid on G");

  const SubstituteRouting sub = substitute_routing_via_matchings(
      g.num_vertices(), p_on_g, matching_route_fn(router), seed);
  DCS_REQUIRE(routing_is_valid(h, problem, sub.routing),
              "substitute routing is invalid on H");

  CongestionReport report;
  report.base_congestion = node_congestion(p_on_g, g.num_vertices());
  report.spanner_congestion = node_congestion(sub.routing, h.num_vertices());
  report.decomposition = sub.stats;
  for (std::size_t i = 0; i < sub.routing.paths.size(); ++i) {
    const double lp = static_cast<double>(path_length(p_on_g.paths[i]));
    const double lq = static_cast<double>(path_length(sub.routing.paths[i]));
    if (lp > 0) {
      report.max_length_ratio = std::max(report.max_length_ratio, lq / lp);
    }
  }
  return report;
}

}  // namespace dcs
