#pragma once

// Algorithm 1 of the paper: DC-spanner construction for Δ-regular graphs
// with Δ ≥ n^{2/3} (Section 4, Theorem 3).
//
//  1. Sample every edge independently with probability ρ = Δ'/Δ, Δ' = √Δ,
//     producing G'.
//  2. Reinsert every edge of G that is not (a, b)-supported in either
//     direction (the paper's Ê test with a = λΔ', b = c₁Δ).
//  3. Additionally (per the paper's prose in Section 4, "Reinserted Edges"),
//     reinsert a removed supported edge whose 3-detours all failed to
//     survive in G' — this makes the 3-distance property deterministic
//     instead of with-high-probability.
//
// The paper's constants (λ = 2⁷ln²n/c₁) only take effect at astronomically
// large n; the thresholds here are exposed as fractions of Δ' and Δ so that
// finite-n experiments can sweep them (defaults chosen so that random
// Δ-regular graphs at Δ ≈ n^{2/3} are supported in the typical case).

#include "core/dc_spanner.hpp"
#include "graph/graph.hpp"

namespace dcs {

struct RegularSpannerOptions {
  std::uint64_t seed = 1;

  /// Δ' = delta_prime_factor · √Δ (paper: factor 1).
  double delta_prime_factor = 1.0;

  /// Support thresholds: a = max(1, support_a_factor·Δ'),
  /// b = max(1, support_b_factor·Δ). The paper's asymptotic choice is
  /// a = λΔ', b = c₁Δ with λ polylogarithmic and c₁ < 1.
  double support_a_factor = 0.25;
  double support_b_factor = 0.25;

  /// Step 2 — reinsert unsupported edges (Ê test). Disabling this is the
  /// ABL-1 ablation: distance stretch 3 is then no longer guaranteed.
  bool reinsert_unsupported = true;

  /// Step 3 — reinsert removed supported edges without a surviving
  /// replacement of length ≤ 3 in G'.
  bool reinsert_undetoured = true;

  /// Footnote 1 of the paper: the construction extends to graphs whose
  /// degrees are all Θ(Δ). 1.0 demands exact regularity; a larger value r
  /// accepts any input with max_degree ≤ r·min_degree and derives Δ from
  /// the average degree.
  double max_degree_ratio = 1.0;
};

/// The derived numeric parameters of Algorithm 1 — shared by the sequential
/// and the distributed implementation so both make identical decisions.
struct RegularSpannerParams {
  std::size_t delta = 0;
  std::size_t delta_prime = 0;
  double rho = 0.0;           ///< sampling probability Δ'/Δ
  std::size_t support_a = 0;  ///< a threshold (paper: λΔ')
  std::size_t support_b = 0;  ///< b threshold (paper: c₁Δ)
};

RegularSpannerParams compute_regular_spanner_params(
    std::size_t delta, const RegularSpannerOptions& options);

struct RegularSpannerResult {
  Spanner spanner;
  Graph sampled;  ///< G' — routers draw 3-detours from this subgraph

  std::size_t delta = 0;        ///< input degree Δ
  std::size_t delta_prime = 0;  ///< Δ'
  std::size_t support_a = 0;    ///< effective a threshold
  std::size_t support_b = 0;    ///< effective b threshold
  std::size_t reinserted_unsupported = 0;
  std::size_t reinserted_undetoured = 0;
};

/// Runs Algorithm 1. Requires a regular graph; the Δ ≥ n^{2/3} premise is
/// not enforced (experiments sweep Δ below and above the threshold) but the
/// guarantees only hold above it.
RegularSpannerResult build_regular_spanner(
    const Graph& g, const RegularSpannerOptions& options = {});

}  // namespace dcs
