#pragma once

// Vertex fault-tolerant spanners — the related-work comparator of the
// paper's Figure 1 discussion ([8] Chechik et al., [22] Parter). An f-VFT
// α-spanner H keeps d_{H∖F}(u,v) ≤ α·d_{G∖F}(u,v) for every fault set F of
// at most f vertices.
//
// Construction: the Dinitz–Krauthgamer random-subgraph scheme — build an
// α-spanner of many random induced subgraphs (each vertex kept with
// probability f/(f+1)) and take the union. For any fault set F and any
// pair still connected in G∖F, some round w.h.p. keeps the pair's
// replacement path and drops all of F, so the union inherits the stretch.
// Tests validate the property by fault injection rather than relying on
// the constants.
//
// The point of including this baseline: even a correct f-VFT spanner gives
// *no* congestion control — bench_fig1_ft_congestion measures the Ω(n^{2/3})
// blow-up on the clique–matching graph.

#include "core/dc_spanner.hpp"
#include "graph/graph.hpp"

namespace dcs {

struct VftSpannerOptions {
  std::uint64_t seed = 1;
  std::size_t faults = 1;     ///< f — number of tolerated vertex faults
  std::size_t stretch_k = 2;  ///< spanner parameter: stretch 2k−1 per round
  /// Number of random-subgraph rounds; 0 derives c·(f+1)²·ln n.
  std::size_t rounds = 0;
};

struct VftSpannerResult {
  Spanner spanner;
  std::size_t rounds = 0;
};

VftSpannerResult build_vft_spanner(const Graph& g,
                                   const VftSpannerOptions& options = {});

/// Fault-injection check: for `trials` random fault sets of size ≤ f,
/// verifies that every pair connected in G∖F keeps stretch ≤ alpha in
/// H∖F. Returns the number of failing trials (0 = property held).
std::size_t count_vft_violations(const Graph& g, const Graph& h,
                                 std::size_t f, double alpha,
                                 std::size_t trials, std::uint64_t seed);

}  // namespace dcs
