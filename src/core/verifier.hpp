#pragma once

// Empirical verification of the spanner definitions:
//
//  * Definition 1 (distance stretch) — exact: on unweighted graphs the
//    worst-case stretch is attained on an edge of G, so it suffices to
//    measure d_H(u,v) over all edges (u,v) ∈ E(G). An exhaustive all-pairs
//    variant is provided for small graphs.
//  * Definitions 2–4 (congestion stretch) — measured on concrete routing
//    problems: the base congestion is C(P) of a supplied routing on G
//    (optimal = 1 for matchings routed over their own edges), the spanner
//    congestion is C(P') of the substitute routing produced either per-pair
//    (matchings) or through Algorithm 2 (general routings).

#include "core/matching_decomposition.hpp"
#include "core/router.hpp"
#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "routing/routing.hpp"

namespace dcs {

struct DistanceStretchReport {
  double max_stretch = 0.0;   ///< max over G-edges of d_H(u,v)
  double mean_stretch = 0.0;  ///< average over G-edges
  std::size_t checked_edges = 0;
  std::size_t unreachable = 0;  ///< edges whose endpoints exceed the cap

  bool satisfies(double alpha) const {
    return unreachable == 0 && max_stretch <= alpha + 1e-9;
  }
};

/// Measures the per-edge distance stretch of H w.r.t. G. `cap` bounds the
/// BFS depth; endpoints further apart than cap in H count as unreachable.
DistanceStretchReport measure_distance_stretch(const Graph& g,
                                               const Graph& h, Dist cap = 16);

/// Exhaustive max over all connected pairs of d_H(u,v)/d_G(u,v); O(n·m).
double exact_pairwise_stretch(const Graph& g, const Graph& h);

struct CongestionReport {
  std::size_t base_congestion = 0;     ///< C(P) on G
  std::size_t spanner_congestion = 0;  ///< C(P') on H
  double max_length_ratio = 0.0;       ///< max_i l(p'_i)/l(p_i)
  DecompositionStats decomposition;    ///< filled by the general-case path

  double congestion_stretch() const {
    return base_congestion == 0
               ? 0.0
               : static_cast<double>(spanner_congestion) /
                     static_cast<double>(base_congestion);
  }
};

/// Matching case: the problem is routed on G over its own edges
/// (congestion 1 by definition) and on H per-pair through `router`.
/// Requires every pair of `matching` to be an edge of g.
CongestionReport measure_matching_congestion(const Graph& g, const Graph& h,
                                             const RoutingProblem& matching,
                                             const PairRouter& router,
                                             std::uint64_t seed);

/// General case (Theorem 1): `p_on_g` is an arbitrary routing on G; the
/// substitute routing on H is assembled via Algorithm 2 with `router`
/// handling each matching. Also validates P' against the implied problem.
CongestionReport measure_general_congestion(const Graph& g, const Graph& h,
                                            const Routing& p_on_g,
                                            const PairRouter& router,
                                            std::uint64_t seed);

}  // namespace dcs
