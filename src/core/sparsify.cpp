#include "core/sparsify.hpp"

#include <algorithm>

#include "graph/connectivity.hpp"
#include "util/check.hpp"

namespace dcs {

SparsifyResult uniform_sparsify(const Graph& g,
                                const SparsifyOptions& options) {
  DCS_REQUIRE(g.num_vertices() >= 2, "sparsify input too small");
  DCS_REQUIRE(options.target_degree > 0.0, "target degree must be positive");
  const double avg_degree =
      2.0 * static_cast<double>(g.num_edges()) /
      static_cast<double>(g.num_vertices());
  const double p = std::min(1.0, options.target_degree / avg_degree);

  std::vector<Edge> kept;
  for (Edge e : g.edges()) {
    if (edge_sampled(e, p, options.seed)) kept.push_back(e);
  }

  SparsifyResult result;
  result.spanner.stats.input_edges = g.num_edges();
  result.spanner.stats.sample_probability = p;

  Graph h = Graph::from_edges(g.num_vertices(), kept);

  if (options.repair_connectivity) {
    // Attach every stranded component to the component of vertex 0 through
    // one original edge; repeat until connected (components can only merge).
    for (;;) {
      const auto comp = connected_components(h);
      const std::size_t comps =
          *std::max_element(comp.begin(), comp.end()) + 1;
      if (comps == 1) break;
      const std::size_t main_comp = comp[0];
      // For each non-main component, find one G-edge leaving it.
      std::vector<bool> fixed(comps, false);
      fixed[main_comp] = true;
      bool progress = false;
      for (Vertex u = 0; u < g.num_vertices() && !progress; ++u) {
        if (fixed[comp[u]]) continue;
        for (Vertex v : g.neighbors(u)) {
          if (comp[v] != comp[u]) {
            kept.push_back(canonical(u, v));
            ++result.repair_edges;
            progress = true;
            break;
          }
        }
      }
      DCS_REQUIRE(progress,
                  "input graph is disconnected; cannot repair sparsifier");
      h = Graph::from_edges(g.num_vertices(), kept);
    }
  }

  result.spanner.h = std::move(h);
  result.spanner.stats.sampled_edges = kept.size() - result.repair_edges;
  result.spanner.stats.reinserted_edges = result.repair_edges;
  result.spanner.stats.spanner_edges = result.spanner.h.num_edges();
  return result;
}

}  // namespace dcs
