#include "core/weighted_spanners.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <queue>
#include <unordered_map>

#include "graph/dijkstra.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

namespace {

// Incremental weighted adjacency with a limit-pruned Dijkstra, for the
// greedy spanner's "is there already a path of weight ≤ limit?" queries.
class IncrementalWeighted {
 public:
  explicit IncrementalWeighted(std::size_t n)
      : adj_(n), dist_(n, kInfDistance), stamp_(n, 0), current_stamp_(0) {}

  void add_edge(Vertex u, Vertex v, double w) {
    adj_[u].emplace_back(v, w);
    adj_[v].emplace_back(u, w);
  }

  bool within_distance(Vertex u, Vertex v, double limit) {
    if (u == v) return true;
    ++current_stamp_;
    using Entry = std::pair<double, Vertex>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    set_dist(u, 0.0);
    heap.emplace(0.0, u);
    while (!heap.empty()) {
      const auto [d, x] = heap.top();
      heap.pop();
      if (d > get_dist(x) || d > limit) continue;
      if (x == v) return true;
      for (const auto& [y, w] : adj_[x]) {
        const double nd = d + w;
        if (nd <= limit && nd < get_dist(y)) {
          set_dist(y, nd);
          heap.emplace(nd, y);
        }
      }
    }
    return false;
  }

 private:
  double get_dist(Vertex v) const {
    return stamp_[v] == current_stamp_ ? dist_[v] : kInfDistance;
  }
  void set_dist(Vertex v, double d) {
    stamp_[v] = current_stamp_;
    dist_[v] = d;
  }

  std::vector<std::vector<std::pair<Vertex, double>>> adj_;
  std::vector<double> dist_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t current_stamp_;
};

}  // namespace

WeightedGraph weighted_greedy_spanner(const WeightedGraph& g, double alpha) {
  DCS_REQUIRE(alpha >= 1.0, "stretch must be at least 1");
  auto edges = g.edges();
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.w < b.w;
            });
  IncrementalWeighted partial(g.num_vertices());
  std::vector<WeightedEdge> kept;
  for (const auto& e : edges) {
    // strict comparison with a tiny slack keeps exact-α detours admissible
    if (!partial.within_distance(e.u, e.v, alpha * e.w * (1.0 + 1e-12))) {
      partial.add_edge(e.u, e.v, e.w);
      kept.push_back(e);
    }
  }
  return WeightedGraph::from_edges(g.num_vertices(), kept);
}

WeightedGraph weighted_baswana_sen_spanner(const WeightedGraph& g,
                                           std::size_t k,
                                           std::uint64_t seed) {
  DCS_REQUIRE(k >= 1, "stretch parameter k must be at least 1");
  const std::size_t n = g.num_vertices();
  DCS_REQUIRE(n >= 1, "empty graph");
  if (k == 1) return g;

  Rng rng(seed);
  const double sample_p =
      std::pow(static_cast<double>(n), -1.0 / static_cast<double>(k));

  std::vector<Vertex> cluster(n);
  for (Vertex v = 0; v < n; ++v) cluster[v] = v;

  EdgeSet work;
  for (const auto& e : g.edges()) work.insert(e.u, e.v);
  std::vector<WeightedEdge> spanner_edges;

  auto add_edge = [&](Vertex u, Vertex v) {
    spanner_edges.push_back(WeightedEdge{u, v, g.weight(u, v)});
  };

  // lightest working edge from v into each adjacent cluster
  auto lightest_per_cluster = [&](Vertex v) {
    std::unordered_map<Vertex, std::pair<Vertex, double>> best;
    const auto nb = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const Vertex u = nb[i];
      if (!work.contains(v, u)) continue;
      const Vertex c = cluster[u];
      if (c == kInvalidVertex) continue;
      const auto [it, inserted] = best.emplace(c, std::pair{u, ws[i]});
      if (!inserted && ws[i] < it->second.second) {
        it->second = {u, ws[i]};
      }
    }
    return best;
  };

  auto retire = [&](Vertex v) {
    for (const auto& [c, pick] : lightest_per_cluster(v)) {
      add_edge(v, pick.first);
    }
    for (Vertex u : g.neighbors(v)) work.erase(dcs::canonical(v, u));
    cluster[v] = kInvalidVertex;
  };

  for (std::size_t phase = 1; phase < k; ++phase) {
    std::vector<bool> sampled(n, false);
    for (Vertex c = 0; c < n; ++c) sampled[c] = rng.bernoulli(sample_p);

    std::vector<Vertex> next_cluster(n, kInvalidVertex);
    for (Vertex v = 0; v < n; ++v) {
      if (cluster[v] == kInvalidVertex) continue;
      if (sampled[cluster[v]]) {
        next_cluster[v] = cluster[v];
        continue;
      }
      const auto best = lightest_per_cluster(v);
      // lightest edge into a *sampled* cluster
      Vertex join_cluster = kInvalidVertex;
      Vertex join_via = kInvalidVertex;
      double join_w = kInfDistance;
      for (const auto& [c, pick] : best) {
        if (sampled[c] && pick.second < join_w) {
          join_cluster = c;
          join_via = pick.first;
          join_w = pick.second;
        }
      }
      if (join_cluster == kInvalidVertex) {
        retire(v);
        continue;
      }
      add_edge(v, join_via);
      next_cluster[v] = join_cluster;
      // keep every strictly lighter inter-cluster edge; drop the covered
      // clusters' edges from the working set
      for (const auto& [c, pick] : best) {
        const bool covered = (c == join_cluster) || (pick.second < join_w);
        if (c != join_cluster && pick.second < join_w) {
          add_edge(v, pick.first);
        }
        if (covered) {
          for (Vertex u : g.neighbors(v)) {
            if (work.contains(v, u) && cluster[u] == c) {
              work.erase(dcs::canonical(v, u));
            }
          }
        }
      }
    }
    cluster = next_cluster;
  }

  // final phase: lightest edge into every adjacent foreign cluster
  for (Vertex v = 0; v < n; ++v) {
    if (cluster[v] == kInvalidVertex) continue;
    for (const auto& [c, pick] : lightest_per_cluster(v)) {
      if (c != cluster[v]) add_edge(v, pick.first);
    }
  }

  return WeightedGraph::from_edges(n, spanner_edges);
}

double weighted_edge_stretch(const WeightedGraph& g,
                             const WeightedGraph& h) {
  DCS_REQUIRE(g.num_vertices() == h.num_vertices(),
              "spanner must share the vertex set");
  std::mutex merge;
  double worst = 0.0;
  parallel_for(0, g.num_vertices(), [&](std::size_t ui) {
    const auto u = static_cast<Vertex>(ui);
    bool any = false;
    for (Vertex v : g.neighbors(u)) {
      if (v > u) {
        any = true;
        break;
      }
    }
    if (!any) return;
    const auto dist = dijkstra_distances(h, u);
    double local = 0.0;
    const auto nb = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (nb[i] <= u) continue;
      local = std::max(local, dist[nb[i]] / ws[i]);
    }
    std::lock_guard lock(merge);
    worst = std::max(worst, local);
  });
  return worst;
}

}  // namespace dcs
