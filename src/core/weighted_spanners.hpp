#pragma once

// Weighted distance spanners — the classical constructions the paper
// builds on ([4] Baswana–Sen; Althöfer et al.'s greedy spanner). These are
// distance-only baselines: the DC constructions (Sections 3–4) are defined
// for unweighted graphs.

#include "graph/weighted_graph.hpp"

namespace dcs {

/// Greedy (2k−1)-spanner (Althöfer et al.): scan edges by increasing
/// weight; keep (u,v) iff the current spanner distance exceeds α·w(u,v).
/// Exact stretch guarantee α, size O(n^{1+1/k}) for α = 2k−1.
WeightedGraph weighted_greedy_spanner(const WeightedGraph& g, double alpha);

/// Baswana–Sen (2k−1)-spanner for weighted graphs: the full two-rule
/// clustering algorithm of [4] — per phase, a vertex adjacent to a sampled
/// cluster joins through its lightest such edge and keeps every strictly
/// lighter inter-cluster edge; otherwise it keeps its lightest edge into
/// every adjacent cluster and retires. Expected size O(k·n^{1+1/k}).
WeightedGraph weighted_baswana_sen_spanner(const WeightedGraph& g,
                                           std::size_t k,
                                           std::uint64_t seed);

/// Exact maximum stretch of h w.r.t. g over the *edges* of g (on weighted
/// graphs the worst pairwise stretch is attained on an edge).
double weighted_edge_stretch(const WeightedGraph& g, const WeightedGraph& h);

}  // namespace dcs
