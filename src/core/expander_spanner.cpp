#include "core/expander_spanner.hpp"

#include <cmath>

#include "core/support.hpp"
#define DCS_LOG_COMPONENT "spanner"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

ExpanderSpannerResult build_expander_spanner(
    const Graph& g, const ExpanderSpannerOptions& options) {
  DCS_REQUIRE(g.num_vertices() >= 2, "spanner input too small");
  DCS_REQUIRE(g.is_regular(), "Theorem 2 requires a Δ-regular expander");
  const auto n = static_cast<double>(g.num_vertices());
  const auto delta = static_cast<double>(g.min_degree());

  double p;
  if (options.epsilon >= 0.0) {
    p = std::pow(n, -options.epsilon);
  } else {
    p = std::pow(n, 2.0 / 3.0) / delta;
  }
  p = std::min(1.0, p);

  DCS_TRACE_SPAN("expander_spanner");
  const auto all_edges = g.edges();
  std::vector<Edge> kept;
  std::vector<Edge> dropped;
  ExpanderSpannerResult result;
  result.sample_probability = p;
  Graph s;
  {
    DCS_TRACE_SPAN("sample");
    for (Edge e : all_edges) {
      if (edge_sampled(e, p, options.seed)) {
        kept.push_back(e);
      } else {
        dropped.push_back(e);
      }
    }
    s = Graph::from_edges(g.num_vertices(), kept);
  }

  if (options.repair_uncovered) {
    DCS_TRACE_SPAN("repair_uncovered");
    std::vector<std::uint8_t> need(dropped.size(), 0);
    parallel_for(0, dropped.size(), [&](std::size_t i) {
      const Edge e = dropped[i];
      if (!has_short_replacement(s, e.u, e.v)) need[i] = 1;
    });
    for (std::size_t i = 0; i < dropped.size(); ++i) {
      if (need[i] != 0) {
        kept.push_back(dropped[i]);
        ++result.repaired_edges;
      }
    }
    if (result.repaired_edges > 0) {
      s = Graph::from_edges(g.num_vertices(), kept);
    }
  }

  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("spanner.expander.builds").inc();
  reg.counter("spanner.expander.edges_sampled")
      .inc(kept.size() - result.repaired_edges);
  reg.counter("spanner.expander.cover_tests").inc(dropped.size());
  reg.counter("spanner.expander.edges_repaired").inc(result.repaired_edges);
  DCS_LOG(Debug) << "expander spanner: n=" << g.num_vertices() << " p=" << p
                 << " kept " << kept.size() - result.repaired_edges << "/"
                 << all_edges.size() << ", repaired "
                 << result.repaired_edges;

  result.spanner.h = std::move(s);
  auto& stats = result.spanner.stats;
  stats.input_edges = g.num_edges();
  stats.sampled_edges = kept.size() - result.repaired_edges;
  stats.reinserted_edges = result.repaired_edges;
  stats.spanner_edges = result.spanner.h.num_edges();
  stats.sample_probability = p;
  return result;
}

}  // namespace dcs
