#include "core/lower_bound.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dcs {

FanSpanner fan_optimal_spanner(const FanGadget& fan) {
  FanSpanner out;
  EdgeSet keep(std::span<const Edge>{});
  for (Edge e : fan.g.edges()) keep.insert(e);
  // Face f_i (1-based) consists of hub rays to line[2i-2], line[2i] and the
  // two line edges between them; removing the first line edge of every face
  // keeps a 3-detour line[2i-2] – hub – line[2i] – line[2i-1].
  out.removed.reserve(fan.k);
  for (std::size_t i = 0; i < fan.k; ++i) {
    const Edge e = canonical(fan.line[2 * i], fan.line[2 * i + 1]);
    DCS_CHECK(keep.erase(e), "face line edge missing from gadget");
    out.removed.push_back(e);
  }
  const auto kept = keep.to_vector();
  out.h = Graph::from_edges(fan.g.num_vertices(), kept);
  return out;
}

RoutingProblem fan_adversarial_problem(const FanSpanner& spanner) {
  return RoutingProblem::from_edges(spanner.removed);
}

LowerBoundGraph build_lower_bound_graph(std::size_t n, std::uint64_t seed,
                                        std::size_t k_override) {
  DCS_REQUIRE(n >= 4, "lower-bound graph needs n >= 4");
  LowerBoundGraph out;
  out.pool_size = n;
  if (k_override > 0) {
    out.k = k_override;
  } else {
    const double two_k =
        std::pow(static_cast<double>(n) / 17.0, 1.0 / 6.0);
    out.k = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(two_k / 2.0)));
  }
  const std::size_t line_len = 2 * out.k + 1;
  DCS_REQUIRE(line_len <= n,
              "instance line length exceeds the pool; lower k or raise n");

  Rng rng(seed);
  GraphBuilder builder(n + n);  // pool nodes then one hub per instance

  // membership[v] = instances that contain pool node v; used to enforce the
  // pairwise-intersection-≤-1 condition of Lemma 19 by rejection.
  std::vector<std::vector<std::size_t>> membership(n);
  out.instances.reserve(n);

  std::vector<Vertex> pool(n);
  for (std::size_t v = 0; v < n; ++v) pool[v] = static_cast<Vertex>(v);

  for (std::size_t inst = 0; inst < n; ++inst) {
    const std::size_t max_tries = 50;
    bool placed = false;
    for (std::size_t attempt = 0; attempt < max_tries && !placed;
         ++attempt) {
      // Greedy node-by-node selection: a node is acceptable iff none of the
      // instances it already belongs to has been touched by this instance
      // (that would create a ≥2-node overlap). Shuffling the pool keeps the
      // construction random, scanning keeps it complete.
      rng.shuffle(pool);
      std::vector<Vertex> chosen;
      std::unordered_set<std::size_t> touched;  // instances sharing 1 node
      for (Vertex v : pool) {
        bool conflict = false;
        for (std::size_t other : membership[v]) {
          if (touched.count(other) > 0) {
            conflict = true;
            break;
          }
        }
        if (conflict) continue;
        chosen.push_back(v);
        for (std::size_t other : membership[v]) touched.insert(other);
        if (chosen.size() == line_len) break;
      }
      if (chosen.size() < line_len) continue;
      LowerBoundInstance instance;
      instance.hub = static_cast<Vertex>(n + inst);
      instance.line = std::move(chosen);
      for (Vertex v : instance.line) membership[v].push_back(inst);
      // line edges
      for (std::size_t i = 0; i + 1 < line_len; ++i) {
        builder.add_edge(instance.line[i], instance.line[i + 1]);
      }
      // rays to odd-indexed line positions (0-based even indices)
      for (std::size_t i = 0; i < line_len; i += 2) {
        builder.add_edge(instance.hub, instance.line[i]);
      }
      out.instances.push_back(std::move(instance));
      placed = true;
    }
    DCS_REQUIRE(placed,
                "could not place an instance with pairwise intersection <= 1;"
                " n is too small for this k");
  }

  out.g = builder.build();
  DCS_CHECK(out.g.num_edges() == n * (3 * out.k + 1),
            "lower-bound graph edge count mismatch (instances overlapped)");
  return out;
}

LowerBoundSpanner lower_bound_optimal_spanner(const LowerBoundGraph& g) {
  LowerBoundSpanner out;
  EdgeSet keep(std::span<const Edge>{});
  for (Edge e : g.g.edges()) keep.insert(e);
  out.removed_per_instance.resize(g.instances.size());
  for (std::size_t inst = 0; inst < g.instances.size(); ++inst) {
    const auto& instance = g.instances[inst];
    for (std::size_t i = 0; i < g.k; ++i) {
      const Edge e =
          canonical(instance.line[2 * i], instance.line[2 * i + 1]);
      DCS_CHECK(keep.erase(e), "instance line edge missing");
      out.removed_per_instance[inst].push_back(e);
      ++out.total_removed;
    }
  }
  const auto kept = keep.to_vector();
  out.h = Graph::from_edges(g.g.num_vertices(), kept);
  return out;
}

RoutingProblem lower_bound_adversarial_problem(
    const LowerBoundSpanner& spanner, std::size_t instance) {
  DCS_REQUIRE(instance < spanner.removed_per_instance.size(),
              "instance index out of range");
  return RoutingProblem::from_edges(
      spanner.removed_per_instance[instance]);
}

Routing lower_bound_hub_routing(const LowerBoundGraph& g,
                                std::size_t instance) {
  DCS_REQUIRE(instance < g.instances.size(), "instance index out of range");
  const auto& inst = g.instances[instance];
  Routing routing;
  routing.paths.reserve(g.k);
  for (std::size_t i = 0; i < g.k; ++i) {
    Path p{inst.line[2 * i], inst.hub, inst.line[2 * i + 2],
           inst.line[2 * i + 1]};
    // Orient to match the canonical source of the adversarial problem.
    if (canonical(inst.line[2 * i], inst.line[2 * i + 1]).u != p.front()) {
      std::reverse(p.begin(), p.end());
    }
    routing.paths.push_back(std::move(p));
  }
  return routing;
}

std::vector<Path> all_paths_up_to(const Graph& g, Vertex s, Vertex t,
                                  std::size_t max_len) {
  std::vector<Path> out;
  Path current{s};
  std::vector<bool> on_path(g.num_vertices(), false);
  on_path[s] = true;

  // Iterative DFS with explicit neighbor cursors.
  std::vector<std::size_t> cursor{0};
  while (!current.empty()) {
    const Vertex u = current.back();
    const auto nbrs = g.neighbors(u);
    bool advanced = false;
    while (cursor.back() < nbrs.size()) {
      const Vertex v = nbrs[cursor.back()++];
      if (v == t) {
        Path found = current;
        found.push_back(t);
        out.push_back(std::move(found));
        continue;
      }
      if (on_path[v] || current.size() >= max_len) continue;
      current.push_back(v);
      on_path[v] = true;
      cursor.push_back(0);
      advanced = true;
      break;
    }
    if (!advanced) {
      on_path[u] = false;
      current.pop_back();
      cursor.pop_back();
    }
  }
  return out;
}

Routing min_congestion_short_routing(const Graph& g,
                                     const RoutingProblem& problem,
                                     std::size_t max_len) {
  std::vector<std::size_t> load(g.num_vertices(), 0);
  Routing routing;
  routing.paths.reserve(problem.size());
  for (auto [s, t] : problem.pairs) {
    auto candidates = all_paths_up_to(g, s, t, max_len);
    DCS_REQUIRE(!candidates.empty(),
                "pair has no path within the stretch bound");
    // Pick the candidate minimizing (resulting max load, total load, length)
    // lexicographically — the secondary criteria spread ties across
    // parallel detours instead of piling onto the first one found.
    std::size_t best_idx = 0;
    auto cost_of = [&load](const Path& path) {
      std::size_t max_load = 0, sum_load = 0;
      for (Vertex v : path) {
        max_load = std::max(max_load, load[v] + 1);
        sum_load += load[v];
      }
      return std::tuple(max_load, sum_load, path.size());
    };
    auto best_cost = cost_of(candidates[0]);
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      const auto cost = cost_of(candidates[i]);
      if (cost < best_cost) {
        best_cost = cost;
        best_idx = i;
      }
    }
    for (Vertex v : candidates[best_idx]) ++load[v];
    routing.paths.push_back(std::move(candidates[best_idx]));
  }
  return routing;
}

}  // namespace dcs
