#include "obs/stats_endpoint.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "util/check.hpp"

// SIGPIPE guard: send(MSG_NOSIGNAL) turns a write to a half-closed client
// socket into an EPIPE error instead of a process-killing signal. (Linux
// always has MSG_NOSIGNAL; the fallback keeps other POSIX systems
// compiling, at the cost of relying on the caller ignoring SIGPIPE.)
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace dcs::obs {

namespace {

/// Writes the whole buffer with EINTR retries, short-write looping, and no
/// SIGPIPE. Returns false when the peer is gone or the write truly failed —
/// a disconnecting `top` client must drop its own reply, not the server.
bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ::ssize_t w = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

struct StatsEndpoint::Impl {
  Options options;
  std::vector<std::pair<std::string, std::function<std::string()>>> sections;
  int listen_fd = -1;
  std::thread server;
  std::atomic<bool> stop{false};
  std::atomic<bool> running{false};

  std::string dispatch(const std::string& request) const {
    if (request == "all") {
      std::string out = "{";
      bool first = true;
      for (const auto& [name, provider] : sections) {
        if (!first) out += ',';
        first = false;
        out += json_quote(name);
        out += ':';
        out += provider();
      }
      out += '}';
      return out;
    }
    for (const auto& [name, provider] : sections)
      if (name == request) return provider();
    return "{\"error\":" + json_quote("unknown section '" + request + "'") +
           "}";
  }

  // One client connection: read '\n'-terminated section names, answer each
  // with one JSON line. Returns when the client closes or misbehaves.
  void serve_client(int fd) const {
    std::string pending;
    char buf[512];
    while (!stop.load(std::memory_order_relaxed)) {
      pollfd p{fd, POLLIN, 0};
      const int rc = ::poll(&p, 1, 100);
      if (rc < 0 && errno != EINTR) break;
      if (rc <= 0 || (p.revents & (POLLIN | POLLHUP)) == 0) continue;
      const ::ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      pending.append(buf, static_cast<std::size_t>(n));
      if (pending.size() > 4096) break;  // no section name is that long
      std::size_t eol;
      while ((eol = pending.find('\n')) != std::string::npos) {
        std::string request = pending.substr(0, eol);
        pending.erase(0, eol + 1);
        if (!request.empty() && request.back() == '\r') request.pop_back();
        std::string reply = dispatch(request);
        reply += '\n';
        if (!send_all(fd, reply.data(), reply.size())) return;
      }
    }
  }

  void run() {
    while (!stop.load(std::memory_order_relaxed)) {
      pollfd p{listen_fd, POLLIN, 0};
      const int rc = ::poll(&p, 1, 100);
      if (rc < 0 && errno != EINTR) break;
      if (rc <= 0 || (p.revents & POLLIN) == 0) continue;
      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client < 0) continue;
      serve_client(client);
      ::close(client);
    }
  }
};

StatsEndpoint::StatsEndpoint(Options options) : impl_(new Impl) {
  impl_->options = std::move(options);
  const std::size_t tail = impl_->options.flight_tail;
  impl_->sections = {
      {"metrics", [] { return MetricsRegistry::instance().to_json(); }},
      {"flight", [tail] { return FlightRecorder::instance().to_json(tail); }},
      {"slo", [] { return slo_registry_to_json(); }},
  };
}

StatsEndpoint::~StatsEndpoint() {
  stop();
  delete impl_;
}

void StatsEndpoint::add_section(const std::string& name,
                                std::function<std::string()> provider) {
  DCS_REQUIRE(!impl_->running.load(std::memory_order_acquire),
              "add_section must be called before start()");
  DCS_REQUIRE(!name.empty() && name != "all",
              "section name must be non-empty and not 'all'");
  for (auto& [existing, fn] : impl_->sections)
    if (existing == name) {
      fn = std::move(provider);
      return;
    }
  impl_->sections.emplace_back(name, std::move(provider));
}

void StatsEndpoint::start() {
  DCS_REQUIRE(!impl_->running.load(std::memory_order_acquire),
              "stats endpoint already running");
  const std::string& path = impl_->options.socket_path;
  sockaddr_un addr{};
  DCS_REQUIRE(!path.empty() && path.size() < sizeof addr.sun_path,
              "stats socket path must be non-empty and fit sockaddr_un");
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  DCS_REQUIRE(fd >= 0, "cannot create stats socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 8) != 0) {
    const int err = errno;
    ::close(fd);
    DCS_REQUIRE(false, "cannot bind/listen stats socket '" + path +
                           "': " + std::strerror(err));
  }
  impl_->listen_fd = fd;
  impl_->stop.store(false, std::memory_order_relaxed);
  impl_->running.store(true, std::memory_order_release);
  impl_->server = std::thread([this] { impl_->run(); });
}

void StatsEndpoint::stop() {
  if (!impl_->running.load(std::memory_order_acquire)) return;
  impl_->stop.store(true, std::memory_order_relaxed);
  if (impl_->server.joinable()) impl_->server.join();
  if (impl_->listen_fd >= 0) {
    ::close(impl_->listen_fd);
    impl_->listen_fd = -1;
  }
  ::unlink(impl_->options.socket_path.c_str());
  impl_->running.store(false, std::memory_order_release);
}

bool StatsEndpoint::running() const {
  return impl_->running.load(std::memory_order_acquire);
}

const std::string& StatsEndpoint::socket_path() const {
  return impl_->options.socket_path;
}

}  // namespace dcs::obs
