#include "obs/slo.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace dcs::obs {

SloTracker::SloTracker(SloOptions options)
    : options_(options),
      bucket_s_(options.window_s / static_cast<double>(
                                       std::max<std::size_t>(1, options.buckets))),
      buckets_(std::max<std::size_t>(1, options.buckets)) {
  DCS_REQUIRE(options.threshold_us > 0.0, "SLO threshold must be positive");
  DCS_REQUIRE(options.objective > 0.0 && options.objective < 1.0,
              "SLO objective must be in (0,1)");
  DCS_REQUIRE(options.window_s > 0.0, "SLO window must be positive");
}

void SloTracker::record(double latency_us) {
  const double now_s = Trace::now_us() / 1e6;
  const auto period = static_cast<std::uint64_t>(now_s / bucket_s_);
  Bucket& b = buckets_[period % buckets_.size()];
  std::uint64_t seen = b.period.load(std::memory_order_acquire);
  if (seen != period) {
    // Recycle a stale bucket: the CAS winner zeroes the counts. Increments
    // racing the zeroing can be dropped — see header.
    if (b.period.compare_exchange_strong(seen, period,
                                         std::memory_order_acq_rel)) {
      b.total.store(0, std::memory_order_relaxed);
      b.breaching.store(0, std::memory_order_relaxed);
    }
  }
  b.total.fetch_add(1, std::memory_order_relaxed);
  if (latency_us >= options_.threshold_us)
    b.breaching.fetch_add(1, std::memory_order_relaxed);
}

SloTracker::Window SloTracker::sum_windows(std::size_t bucket_count) const {
  const double now_s = Trace::now_us() / 1e6;
  const auto now_period = static_cast<std::uint64_t>(now_s / bucket_s_);
  Window w;
  w.seconds = bucket_s_ * static_cast<double>(bucket_count);
  for (const Bucket& b : buckets_) {
    const std::uint64_t period = b.period.load(std::memory_order_acquire);
    if (period == kIdle) continue;
    if (period > now_period || now_period - period >= bucket_count) continue;
    w.total += b.total.load(std::memory_order_relaxed);
    w.breaching += b.breaching.load(std::memory_order_relaxed);
  }
  if (w.total > 0) {
    w.bad_fraction =
        static_cast<double>(w.breaching) / static_cast<double>(w.total);
    w.burn_rate = w.bad_fraction / (1.0 - options_.objective);
  }
  return w;
}

std::vector<SloTracker::Window> SloTracker::windows() const {
  const std::size_t n = buckets_.size();
  return {sum_windows(n), sum_windows(std::max<std::size_t>(1, n / 6))};
}

std::string SloTracker::to_json() const {
  std::ostringstream os;
  os << "{\"threshold_us\":" << json_number(options_.threshold_us)
     << ",\"objective\":" << json_number(options_.objective) << ",\"windows\":[";
  bool first = true;
  for (const Window& w : windows()) {
    if (!first) os << ',';
    first = false;
    os << "{\"seconds\":" << json_number(w.seconds) << ",\"total\":" << w.total
       << ",\"breaching\":" << w.breaching
       << ",\"bad_fraction\":" << json_number(w.bad_fraction)
       << ",\"burn_rate\":" << json_number(w.burn_rate) << '}';
  }
  os << "]}";
  return os.str();
}

void SloTracker::reset() {
  for (Bucket& b : buckets_) {
    b.period.store(kIdle, std::memory_order_relaxed);
    b.total.store(0, std::memory_order_relaxed);
    b.breaching.store(0, std::memory_order_relaxed);
  }
}

namespace {

struct SloRegistry {
  std::mutex mutex;
  // Stable addresses: trackers are handed out by reference and recorded into
  // concurrently, so they live behind unique_ptr and are never erased until
  // reset_slo_registry().
  std::vector<std::pair<std::string, std::unique_ptr<SloTracker>>> entries;
};

SloRegistry& slo_registry() {
  static SloRegistry* r = new SloRegistry;
  return *r;
}

}  // namespace

SloTracker& slo_tracker(std::string_view name, SloOptions options) {
  DCS_REQUIRE(!name.empty(), "SLO tracker name must be non-empty");
  SloRegistry& r = slo_registry();
  std::lock_guard lock(r.mutex);
  for (auto& [entry_name, tracker] : r.entries)
    if (entry_name == name) return *tracker;
  r.entries.emplace_back(std::string(name),
                         std::make_unique<SloTracker>(options));
  return *r.entries.back().second;
}

std::string slo_registry_to_json() {
  SloRegistry& r = slo_registry();
  std::lock_guard lock(r.mutex);
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, tracker] : r.entries) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << tracker->to_json();
  }
  os << '}';
  return os.str();
}

void reset_slo_registry() {
  SloRegistry& r = slo_registry();
  std::lock_guard lock(r.mutex);
  r.entries.clear();
}

}  // namespace dcs::obs
