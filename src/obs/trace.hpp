#pragma once

// Phase-scoped tracing with Chrome trace-event export.
//
//   Trace::start();
//   { DCS_TRACE_SPAN("regular_spanner");
//     { DCS_TRACE_SPAN("sample"); ... }
//     { DCS_TRACE_SPAN("support_reinsert_loop"); ... } }
//   Trace::write_json("build.trace.json");   // open in ui.perfetto.dev
//
// Spans are RAII: construction stamps the start, destruction records one
// complete ("ph":"X") event with duration, thread id, and nesting depth.
// Without an active session a span is two relaxed atomic loads — the
// DCS_TRACE_SPAN macros sprinkled through construction, routing, and
// resilience cost nothing in normal library use.
//
// Nesting is positional (Perfetto stacks events on the same thread by time
// containment) and also explicit: every event carries its depth at record
// time in args.depth, which is what the round-trip test asserts on.
//
// Span names must be string literals (or otherwise outlive the session):
// the span stores the pointer, not a copy, to keep the armed path cheap.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dcs::obs {

struct TraceEvent {
  const char* name;
  double ts_us;    ///< start, microseconds on the shared monotonic epoch
  double dur_us;   ///< duration in microseconds
  std::uint32_t tid;    ///< small sequential id assigned per thread
  std::uint32_t depth;  ///< span nesting depth on that thread (0 = root)
  /// Request trace id (obs/request_trace); 0 = not tied to a request.
  /// Non-zero ids are exported as args.trace so a Perfetto query can pull
  /// every span of one request's causal chain.
  std::uint64_t trace_id = 0;
};

class Trace {
 public:
  /// True while a session is collecting. Spans check this on entry.
  static bool active() {
    return active_.load(std::memory_order_relaxed);
  }

  /// Begins a session, clearing previously collected events.
  static void start();
  /// Stops collecting; collected events remain readable until the next
  /// start(). Spans still open simply record after the stop and are
  /// dropped.
  static void stop();

  /// Chrome trace-event JSON ({"traceEvents":[...]}) of the collected
  /// events; loadable in Perfetto / chrome://tracing.
  static std::string to_json();
  /// Stops the session (if active) and writes to_json() to `path`.
  static void write_json(const std::string& path);

  /// Snapshot of the collected events (test hook).
  static std::vector<TraceEvent> events();

  /// Appends one event if a session is active (called by TraceSpan).
  static void record(const TraceEvent& event);

  /// Microseconds since the shared observability epoch (same clock as the
  /// logger's ts_us field).
  static double now_us();

  /// Small sequential id of the calling thread (assigned on first use).
  static std::uint32_t thread_id();

 private:
  static std::atomic<bool> active_;
};

namespace detail {
/// Per-thread span nesting depth.
std::uint32_t& trace_depth();
}  // namespace detail

class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!Trace::active()) return;
    armed_ = true;
    name_ = name;
    depth_ = detail::trace_depth()++;
    start_us_ = Trace::now_us();
  }

  ~TraceSpan() {
    if (!armed_) return;
    --detail::trace_depth();
    Trace::record({name_, start_us_, Trace::now_us() - start_us_,
                   Trace::thread_id(), depth_});
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool armed_ = false;
  const char* name_ = nullptr;
  double start_us_ = 0.0;
  std::uint32_t depth_ = 0;
};

}  // namespace dcs::obs

#define DCS_OBS_CONCAT_INNER(a, b) a##b
#define DCS_OBS_CONCAT(a, b) DCS_OBS_CONCAT_INNER(a, b)

/// Opens an RAII span covering the rest of the enclosing scope.
#define DCS_TRACE_SPAN(name) \
  ::dcs::obs::TraceSpan DCS_OBS_CONCAT(dcs_trace_span_, __COUNTER__)(name)
