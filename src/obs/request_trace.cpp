#include "obs/request_trace.hpp"

#include <atomic>
#include <mutex>
#include <sstream>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace dcs::obs {

namespace {

std::atomic<std::uint64_t> g_next_trace_id{1};
std::atomic<std::uint64_t> g_next_batch_id{1};
std::atomic<double> g_threshold_us{0.0};

struct ExemplarRing {
  std::mutex mutex;
  std::vector<RequestExemplar> slots;
  std::size_t capacity = 256;
  std::size_t next = 0;      ///< ring cursor
  std::uint64_t total = 0;   ///< exemplars ever kept
};

ExemplarRing& ring() {
  static ExemplarRing* r = new ExemplarRing;
  return *r;
}

// Expands a kept exemplar into its span chain on the live trace stream. The
// root span covers the whole request; phase spans nest at depth+1 and all
// carry the request's trace id. Zero-length phases are skipped so distance
// queries don't emit empty row_fill spans.
void export_span_chain(const RequestExemplar& e) {
  const std::uint32_t tid = Trace::thread_id();
  Trace::record({"req", e.start_us, e.total_us, tid, 0, e.trace_id});
  double at = e.start_us;
  struct Phase {
    const char* name;
    double dur;
  };
  const Phase phases[] = {{"req.queue_wait", e.queue_us},
                          {"req.dispatch", e.dispatch_us},
                          {"req.execute", e.execute_us},
                          {"req.row_fill", e.row_fill_us}};
  for (const Phase& p : phases) {
    if (p.dur > 0.0) Trace::record({p.name, at, p.dur, tid, 1, e.trace_id});
    at += p.dur;
  }
}

}  // namespace

RequestTracer& RequestTracer::instance() {
  static RequestTracer* tracer = new RequestTracer;
  return *tracer;
}

void RequestTracer::configure(double threshold_us, std::size_t capacity) {
  DCS_REQUIRE(threshold_us >= 0.0, "exemplar threshold must be >= 0");
  DCS_REQUIRE(capacity > 0, "exemplar capacity must be positive");
  g_threshold_us.store(threshold_us, std::memory_order_relaxed);
  ExemplarRing& r = ring();
  std::lock_guard lock(r.mutex);
  r.slots.clear();
  r.capacity = capacity;
  r.next = 0;
  r.total = 0;
}

double RequestTracer::threshold_us() const {
  return g_threshold_us.load(std::memory_order_relaxed);
}

std::size_t RequestTracer::capacity() const {
  ExemplarRing& r = ring();
  std::lock_guard lock(r.mutex);
  return r.capacity;
}

std::uint64_t RequestTracer::next_trace_id() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t RequestTracer::next_batch_id() {
  return g_next_batch_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t RequestTracer::next_trace_id_block(std::uint64_t n) {
  DCS_REQUIRE(n > 0, "trace id block must be non-empty");
  return g_next_trace_id.fetch_add(n, std::memory_order_relaxed);
}

void RequestTracer::offer(const RequestExemplar& exemplar) {
  if (exemplar.total_us < g_threshold_us.load(std::memory_order_relaxed))
    return;
  if (Trace::active()) export_span_chain(exemplar);
  ExemplarRing& r = ring();
  std::lock_guard lock(r.mutex);
  if (r.slots.size() < r.capacity) {
    r.slots.push_back(exemplar);
  } else {
    r.slots[r.next] = exemplar;
    r.next = (r.next + 1) % r.capacity;
  }
  ++r.total;
}

void RequestTracer::offer_batch(const std::vector<RequestExemplar>& batch) {
  const double threshold = g_threshold_us.load(std::memory_order_relaxed);
  const bool tracing = Trace::active();
  ExemplarRing& r = ring();
  std::unique_lock<std::mutex> lock;  // taken on the first kept exemplar
  for (const RequestExemplar& e : batch) {
    if (e.total_us < threshold) continue;
    if (tracing) export_span_chain(e);
    if (!lock.owns_lock()) lock = std::unique_lock(r.mutex);
    if (r.slots.size() < r.capacity) {
      r.slots.push_back(e);
    } else {
      r.slots[r.next] = e;
      r.next = (r.next + 1) % r.capacity;
    }
    ++r.total;
  }
}

std::vector<RequestExemplar> RequestTracer::exemplars() const {
  ExemplarRing& r = ring();
  std::lock_guard lock(r.mutex);
  std::vector<RequestExemplar> out;
  out.reserve(r.slots.size());
  // `next` points at the oldest slot once the ring has wrapped.
  const std::size_t n = r.slots.size();
  const std::size_t start = n == r.capacity ? r.next : 0;
  for (std::size_t i = 0; i < n; ++i) out.push_back(r.slots[(start + i) % n]);
  return out;
}

std::size_t RequestTracer::size() const {
  ExemplarRing& r = ring();
  std::lock_guard lock(r.mutex);
  return r.slots.size();
}

std::string RequestTracer::to_json() const {
  const std::vector<RequestExemplar> kept = exemplars();
  std::ostringstream os;
  os << "{\"threshold_us\":" << json_number(threshold_us())
     << ",\"exemplars\":[";
  bool first = true;
  for (const RequestExemplar& e : kept) {
    if (!first) os << ',';
    first = false;
    os << "{\"trace_id\":" << e.trace_id << ",\"batch_id\":" << e.batch_id
       << ",\"epoch\":" << e.epoch << ",\"kind\":" << e.kind
       << ",\"outcome\":" << e.outcome << ",\"dispatcher\":" << e.dispatcher
       << ",\"cache_hit\":" << (e.cache_hit ? "true" : "false")
       << ",\"start_us\":" << json_number(e.start_us)
       << ",\"queue_us\":" << json_number(e.queue_us)
       << ",\"dispatch_us\":" << json_number(e.dispatch_us)
       << ",\"execute_us\":" << json_number(e.execute_us)
       << ",\"row_fill_us\":" << json_number(e.row_fill_us)
       << ",\"total_us\":" << json_number(e.total_us) << '}';
  }
  os << "]}";
  return os.str();
}

void RequestTracer::clear() {
  ExemplarRing& r = ring();
  std::lock_guard lock(r.mutex);
  r.slots.clear();
  r.next = 0;
  r.total = 0;
}

}  // namespace dcs::obs
