#pragma once

// Live introspection endpoint: a unix-socket, newline-delimited-JSON server.
//
// A client connects to the socket, writes a section name terminated by '\n'
// ("metrics", "flight", "slo", or "all"), and receives exactly one JSON
// document on a single line in response; the connection stays open for
// further requests until the client closes it. `dcs_tool top` is the
// reference client, but the protocol is deliberately shell-friendly:
//
//   printf 'all\n' | socat - UNIX-CONNECT:/tmp/dcs.sock
//
// Built-in sections:
//   metrics  — MetricsRegistry::instance().to_json()
//   flight   — FlightRecorder tail (most recent 64 events)
//   slo      — slo_registry_to_json()
//   all      — {"metrics":...,"flight":...,"slo":...} over every section
//
// add_section() registers (or overrides) a provider before start(); the
// ROADMAP's daemon architecture will reuse this server as its control
// socket, which is why providers are generic string thunks rather than a
// fixed enum.
//
// The server runs one background thread; start() binds and listens (and
// throws via DCS_REQUIRE if the path is unusable), stop() — also run by the
// destructor — shuts the thread down and unlinks the socket path.

#include <functional>
#include <string>

namespace dcs::obs {

class StatsEndpoint {
 public:
  struct Options {
    std::string socket_path;       ///< filesystem path for the AF_UNIX socket
    std::size_t flight_tail = 64;  ///< events served by the "flight" section
  };

  explicit StatsEndpoint(Options options);
  ~StatsEndpoint();

  StatsEndpoint(const StatsEndpoint&) = delete;
  StatsEndpoint& operator=(const StatsEndpoint&) = delete;

  /// Registers `provider` under `name` (replacing any existing section).
  /// Must be called before start(); providers run on the server thread and
  /// must return a complete JSON document.
  void add_section(const std::string& name,
                   std::function<std::string()> provider);

  /// Binds, listens, and starts the server thread. A stale socket file at
  /// the path is removed first.
  void start();

  /// Stops the server thread and unlinks the socket. Idempotent.
  void stop();

  bool running() const;
  const std::string& socket_path() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace dcs::obs
