#pragma once

// Rolling SLO burn-rate windows over serve latencies.
//
// An SLO is "objective fraction of requests finish under threshold_us". The
// tracker time-buckets request outcomes into a fixed ring of atomic
// counters and reports, over a long (full-window) and a short (most recent
// sixth) horizon:
//
//   bad_fraction = breaching / total
//   burn_rate    = bad_fraction / (1 - objective)
//
// burn_rate 1.0 means the error budget is being spent exactly as fast as
// the objective allows; >1 means the budget is burning down (the classic
// multi-window alert pairs the long and short windows so a real regression
// trips both while a blip only trips the short one). record() is a few
// relaxed atomic ops and is called by the query engine only when metrics
// are enabled, preserving the obs layer's disabled-cost discipline.
//
// Bucket recycling is approximate by design: when a bucket's time period
// goes stale the first recorder to notice CAS-claims it and zeroes the
// counts; a concurrent increment can be lost at the boundary. This is
// metrics-grade accounting, not billing.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dcs::obs {

struct SloOptions {
  double threshold_us = 10'000.0;  ///< good = latency < threshold
  double objective = 0.99;         ///< required good fraction, in (0,1)
  double window_s = 60.0;          ///< long-window horizon
  std::size_t buckets = 60;        ///< ring granularity (window_s / buckets)
};

class SloTracker {
 public:
  explicit SloTracker(SloOptions options = {});

  /// Records one finished request with the given end-to-end latency.
  void record(double latency_us);

  struct Window {
    double seconds = 0.0;
    std::uint64_t total = 0;
    std::uint64_t breaching = 0;
    double bad_fraction = 0.0;  ///< 0 when total == 0
    double burn_rate = 0.0;     ///< bad_fraction / (1 - objective)
  };

  /// [long window, short window]: the full horizon and its most recent
  /// sixth (at least one bucket).
  std::vector<Window> windows() const;

  /// {"threshold_us":..,"objective":..,"windows":[{"seconds":..,...},..]}
  std::string to_json() const;

  void reset();

  const SloOptions& options() const { return options_; }

 private:
  struct Bucket {
    std::atomic<std::uint64_t> period{kIdle};
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> breaching{0};
  };
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  Window sum_windows(std::size_t bucket_count) const;

  SloOptions options_;
  double bucket_s_;
  std::vector<Bucket> buckets_;
};

/// Process-wide named tracker registry: returns the tracker for `name`,
/// creating it with `options` on first use (later calls ignore options,
/// mirroring MetricsRegistry::find_or_create semantics). Unlike the
/// metrics registry, reset_slo_registry() *destroys* trackers — do not
/// cache the reference across test boundaries; re-look-up instead.
SloTracker& slo_tracker(std::string_view name, SloOptions options = {});

/// {"<name>":<tracker json>,...} over every registered tracker.
std::string slo_registry_to_json();

/// Drops all registered trackers (test hook).
void reset_slo_registry();

}  // namespace dcs::obs
