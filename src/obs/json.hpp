#pragma once

// Minimal JSON support for the observability layer.
//
// The logger's JSON-lines sink, the metrics exporter, and the Chrome-trace
// writer all need correct string escaping; the tests and the CI smoke step
// need to parse those artifacts back to assert their structure. Both live
// here so the producers and the validators agree on one dialect (RFC 8259,
// no extensions, objects with deterministic key order on output).
//
// This is not a general-purpose JSON library: numbers parse as double,
// objects are std::map (sorted), and the parser favours clear error
// messages over speed. Artifacts are written once per process, so neither
// side is on a hot path.

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dcs::obs {

/// Escapes `s` for inclusion inside a JSON string literal. Quotes,
/// backslashes, and control characters (U+0000–U+001F) become escape
/// sequences; everything else passes through byte-for-byte (UTF-8 safe).
/// The surrounding quotes are not added.
std::string json_escape(std::string_view s);

/// `"` + json_escape(s) + `"`.
std::string json_quote(std::string_view s);

/// Formats a double as a JSON number. Infinities and NaN are not valid
/// JSON; they are emitted as null so exported artifacts always parse.
std::string json_number(double v);

/// A parsed JSON document. Access helpers throw std::invalid_argument on
/// kind mismatch or missing key so test assertions read naturally.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  JsonValue() : v_(nullptr) {}
  JsonValue(Storage v) : v_(std::move(v)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member access; throws if not an object or the key is absent.
  const JsonValue& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  bool has(const std::string& key) const;

 private:
  Storage v_;
};

/// Parses a complete JSON document (trailing garbage rejected). Throws
/// std::invalid_argument with an offset-annotated message on malformed
/// input.
JsonValue parse_json(std::string_view text);

}  // namespace dcs::obs
