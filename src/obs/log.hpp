#pragma once

// Structured logging for the library.
//
//   DCS_LOG(Info) << "built spanner with " << edges << " edges";
//
// Key properties:
//
//  * Lazy formatting. The macro expands to a level check before the `<<`
//    chain; when the record is filtered out, none of the operands are
//    evaluated. The check is one relaxed atomic load and a comparison, so
//    disabled logging is near-free on hot paths.
//  * Per-component levels. Every record carries a component tag ("spanner",
//    "packet_sim", ...). A translation unit sets its default tag by
//    defining DCS_LOG_COMPONENT before including this header; DCS_LOG_C
//    overrides it per call. Levels are configurable globally and per
//    component ("info,spanner=debug").
//  * Structured sinks. Text ("level component message") for humans,
//    JSON-lines ({"ts_us":...,"level":...,"component":...,"msg":...}) for
//    machines; either to stderr or to a file. Writes are serialized under a
//    mutex, so records from thread_pool workers never interleave.
//
// The logger is process-global (like the metrics registry): library code
// logs without plumbing a logger handle through every call, and the tool /
// bench front ends configure it once in main().

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

namespace dcs::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,  ///< configuration-only: no record carries this level
};

const char* to_string(LogLevel level);

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off".
/// Throws std::invalid_argument on anything else.
LogLevel parse_log_level(std::string_view text);

class Logger {
 public:
  enum class Format { kText, kJsonLines };

  static Logger& instance();

  /// Default level for components without an override. Starts at kWarn so
  /// the library is quiet unless asked.
  void set_level(LogLevel level);
  void set_component_level(std::string_view component, LogLevel level);
  void clear_component_levels();

  /// Comma-separated spec: each item is either a bare level (sets the
  /// default) or "component=level". E.g. "info,spanner=debug".
  /// Throws std::invalid_argument on malformed specs.
  void configure(std::string_view spec);

  void set_format(Format format);

  /// Redirects output to `os` (not owned; pass nullptr to restore stderr).
  void set_stream(std::ostream* os);
  /// Opens `path` for appending and logs there. Throws on I/O failure.
  void open_file(const std::string& path);

  /// Fast filter: false whenever a record at `level` for `component` would
  /// be dropped. The common reject path is lock-free.
  bool enabled(std::string_view component, LogLevel level) const {
    return static_cast<int>(level) >=
               floor_.load(std::memory_order_relaxed) &&
           enabled_slow(component, level);
  }

  /// Emits one record (already filtered; DCS_LOG calls enabled() first).
  void write(std::string_view component, LogLevel level,
             std::string_view message);

  /// Restores defaults: level kWarn, no overrides, text format, stderr.
  /// Used by tests to isolate fixtures.
  void reset();

 private:
  Logger();
  bool enabled_slow(std::string_view component, LogLevel level) const;
  void recompute_floor_locked();

  // floor_ = min(default level, every component override): anything below
  // it is rejected without taking the mutex.
  std::atomic<int> floor_;
  struct Impl;
  Impl* impl_;  // intentionally leaked: loggable code may run during static
                // destruction (thread teardown), so the logger never dies
};

/// One in-flight record; the destructor hands the composed message to the
/// logger. Created only when the level check passed.
class LogRecord {
 public:
  LogRecord(std::string_view component, LogLevel level)
      : component_(component), level_(level) {}
  ~LogRecord() { Logger::instance().write(component_, level_, os_.str()); }

  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;

  std::ostream& stream() { return os_; }

 private:
  std::string_view component_;
  LogLevel level_;
  std::ostringstream os_;
};

namespace detail {
/// Swallows the stream expression so the conditional operator in DCS_LOG
/// has void type on both arms. operator& binds looser than operator<<, so
/// the whole chain is evaluated first.
struct LogVoidify {
  void operator&(std::ostream&) const {}
};
}  // namespace detail

}  // namespace dcs::obs

/// Default component tag for a translation unit; define before including
/// this header to override:
///   #define DCS_LOG_COMPONENT "spanner"
///   #include "obs/log.hpp"
#ifndef DCS_LOG_COMPONENT
#define DCS_LOG_COMPONENT "dcs"
#endif

/// Log with an explicit component: DCS_LOG_C("spanner", Debug) << ...;
/// The operands after `<<` are evaluated only when the record is enabled.
#define DCS_LOG_C(component, level)                                       \
  (!::dcs::obs::Logger::instance().enabled(                               \
       component, ::dcs::obs::LogLevel::k##level))                        \
      ? (void)0                                                           \
      : ::dcs::obs::detail::LogVoidify() &                                \
            ::dcs::obs::LogRecord(component, ::dcs::obs::LogLevel::k##level) \
                .stream()

/// Log with the translation unit's DCS_LOG_COMPONENT tag:
///   DCS_LOG(Info) << "value " << x;
#define DCS_LOG(level) DCS_LOG_C(DCS_LOG_COMPONENT, level)
