#include "obs/json.hpp"

// GCC 12's inliner emits spurious -Wmaybe-uninitialized / -Wrestrict
// warnings for std::variant moves at -O2 (gcc PR 105705 and friends); the
// code paths it flags construct the variant alternative before use. Local
// suppression, this translation unit only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dcs::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  std::ostringstream os;
  os << "malformed JSON at offset " << pos << ": " << what;
  throw std::invalid_argument(os.str());
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail(pos_, "bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.insert_or_assign(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
    }
    JsonValue out{JsonValue::Storage{std::move(obj)}};
    return out;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
    } else {
      while (true) {
        arr.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        break;
      }
    }
    JsonValue out{JsonValue::Storage{std::move(arr)}};
    return out;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail(pos_ - 1, "bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8. Surrogate pairs are not
          // reassembled (the writers in this repo never emit them); each
          // half round-trips as its raw three-byte sequence.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(pos_ - 1, "unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(pos_, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &used);
    } catch (const std::exception&) {
      fail(start, "bad number '" + token + "'");
    }
    if (used != token.size()) fail(start, "bad number '" + token + "'");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_error(const char* want) {
  throw std::invalid_argument(std::string("JSON value is not a ") + want);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (!is_bool()) kind_error("bool");
  return std::get<bool>(v_);
}

double JsonValue::as_number() const {
  if (!is_number()) kind_error("number");
  return std::get<double>(v_);
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) kind_error("string");
  return std::get<std::string>(v_);
}

const JsonValue::Array& JsonValue::as_array() const {
  if (!is_array()) kind_error("array");
  return std::get<Array>(v_);
}

const JsonValue::Object& JsonValue::as_object() const {
  if (!is_object()) kind_error("object");
  return std::get<Object>(v_);
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::invalid_argument("JSON object has no key '" + key + "'");
  }
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace dcs::obs
