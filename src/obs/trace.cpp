#include "obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace dcs::obs {

std::atomic<bool> Trace::active_{false};

namespace {

std::mutex& trace_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::vector<TraceEvent>& trace_events() {
  static std::vector<TraceEvent>* events = new std::vector<TraceEvent>;
  return *events;
}

}  // namespace

namespace detail {

std::uint32_t& trace_depth() {
  thread_local std::uint32_t depth = 0;
  return depth;
}

}  // namespace detail

double Trace::now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}

std::uint32_t Trace::thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Trace::start() {
  std::lock_guard lock(trace_mutex());
  trace_events().clear();
  active_.store(true, std::memory_order_relaxed);
}

void Trace::stop() { active_.store(false, std::memory_order_relaxed); }

void Trace::record(const TraceEvent& event) {
  if (!active()) return;
  std::lock_guard lock(trace_mutex());
  trace_events().push_back(event);
}

std::vector<TraceEvent> Trace::events() {
  std::lock_guard lock(trace_mutex());
  return trace_events();
}

std::string Trace::to_json() {
  std::lock_guard lock(trace_mutex());
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : trace_events()) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":" << json_quote(e.name)
       << ",\"cat\":\"dcs\",\"ph\":\"X\",\"ts\":" << json_number(e.ts_us)
       << ",\"dur\":" << json_number(e.dur_us)
       << ",\"pid\":1,\"tid\":" << e.tid << ",\"args\":{\"depth\":"
       << e.depth;
    if (e.trace_id != 0) os << ",\"trace\":" << e.trace_id;
    os << "}}";
  }
  os << "]}";
  return os.str();
}

void Trace::write_json(const std::string& path) {
  stop();
  std::ofstream os(path);
  DCS_REQUIRE(static_cast<bool>(os),
              "cannot open trace output '" + path + "'");
  os << to_json() << '\n';
  DCS_REQUIRE(static_cast<bool>(os),
              "failed writing trace output '" + path + "'");
}

}  // namespace dcs::obs
