#pragma once

// Always-on black-box flight recorder.
//
// The metrics registry answers "how many sheds so far"; the flight recorder
// answers "what happened right before things went wrong". Every thread owns a
// small bounded ring of recent structured events — epoch publishes, ladder
// transitions, sheds with reasons, repair outcomes, check failures — written
// with a handful of relaxed atomic stores and never blocking on a lock. When
// a soak invariant fires, a DCS_CHECK_ABORT trips, or a fatal signal lands,
// the merged time-ordered tail is dumped to `flight.json` so the last few
// hundred events per thread survive into the artifacts next to
// `minimized.txt`.
//
// Concurrency model: each ring has exactly one writer (its owning thread).
// Readers (snapshot/dump, possibly concurrent with writers) validate each
// slot with a per-slot sequence number derived from the monotonically
// increasing event index — a slot is accepted only if the sequence read
// before and after the payload both equal the expected value for that event
// index, so a torn read of a slot being overwritten is discarded rather than
// surfaced. All payload fields are themselves atomics accessed relaxed,
// keeping the scheme TSan-clean.
//
// `detail` must be a string literal (or otherwise immortal): the recorder
// stores the pointer, never a copy, so the record path stays allocation-free.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dcs::obs {

enum class FlightEventKind : std::uint8_t {
  kEpochPublish,  ///< supervisor published a snapshot; a = epoch, b = wave
  kEpochAdopt,    ///< query engine adopted an epoch; a = epoch, b = rows dropped
  kLadder,        ///< supervisor ladder transition; a = from, b = to
  kShed,          ///< queries shed; detail = reason, a = count, b = epoch
                  ///< (degraded) or dispatcher shard id (deadline)
  kRepair,        ///< repair/rebuild outcome; a = repaired, b = debt left
  kCheckFail,     ///< DCS_CHECK_ABORT / armed failure hook fired
  kInvariant,     ///< soak invariant violated; detail = invariant, a = wave
  kCustom,        ///< anything else; meaning of a/b is site-defined
};

/// Stable lowercase-dashed name ("epoch-publish", "shed", ...).
const char* to_string(FlightEventKind kind);

struct FlightEvent {
  double ts_us = 0.0;       ///< Trace::now_us() — shared obs epoch
  std::uint32_t tid = 0;    ///< Trace::thread_id() of the recording thread
  FlightEventKind kind = FlightEventKind::kCustom;
  const char* detail = "";  ///< string literal; never owned
  std::uint64_t a = 0;      ///< kind-specific payload (see enum docs)
  std::uint64_t b = 0;
};

class FlightRecorder {
 public:
  /// Process-wide recorder (rings are intentionally leaked so events from
  /// exiting threads remain dumpable until process end).
  static FlightRecorder& instance();

  /// Appends one event to the calling thread's ring. Lock-free and wait-free
  /// after the thread's first call (which registers the ring). `detail` must
  /// be a string literal. No-op while disabled.
  void record(FlightEventKind kind, const char* detail, std::uint64_t a = 0,
              std::uint64_t b = 0);

  /// The recorder is on by default ("always-on"); disabling makes record()
  /// a single relaxed load + branch.
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Per-thread ring capacity for rings created *after* this call (existing
  /// rings keep their size). 0 is rejected; call set_enabled(false) to turn
  /// the recorder off instead.
  void set_capacity(std::size_t events_per_thread);
  std::size_t capacity() const;

  /// Merged snapshot of all rings, sorted by timestamp. Safe to call while
  /// other threads record; slots overwritten mid-read are skipped.
  std::vector<FlightEvent> snapshot() const;

  /// The most recent `max_events` of snapshot() (all of them if 0).
  std::vector<FlightEvent> tail(std::size_t max_events) const;

  /// {"flight":[{"ts_us":..,"tid":..,"kind":"shed","detail":..,"a":..,"b":..},..]}
  /// Events are time-ordered; `max_events` 0 means no limit.
  std::string to_json(std::size_t max_events = 0) const;

  /// Writes to_json() to `path` (best effort: returns false instead of
  /// throwing so it is usable from failure paths).
  bool dump(const std::string& path) const;

  /// Hides all currently recorded events from future snapshots (test hook;
  /// safe with concurrent writers — events recorded after clear() show up).
  void clear();

  /// Arms crash dumping: on DCS_CHECK_ABORT (via the check-failure hook) and
  /// — when `install_signal_handlers` — on SIGABRT/SIGSEGV/SIGBUS/SIGFPE/
  /// SIGILL, the recorder appends a check-fail event and writes `path`
  /// before the process dies. Re-arming replaces the path.
  void arm_crash_dump(const std::string& path,
                      bool install_signal_handlers = true);

  /// Immediately writes the armed crash-dump path (no-op when unarmed).
  /// async-signal-cautious: fixed buffers, write(2), no allocation.
  static void crash_dump_now() noexcept;

 private:
  FlightRecorder() = default;
};

}  // namespace dcs::obs
