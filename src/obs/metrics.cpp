#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace dcs::obs {

std::vector<double> HistogramMetric::default_bounds() {
  std::vector<double> bounds;
  bounds.reserve(31);
  for (int e = -10; e <= 20; ++e) {
    bounds.push_back(std::ldexp(1.0, e));
  }
  return bounds;
}

std::vector<double> HistogramMetric::latency_bounds_us() {
  std::vector<double> bounds;
  bounds.reserve(22);
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0)
    for (double factor : {1.0, 2.0, 5.0}) bounds.push_back(factor * decade);
  bounds.push_back(1e7);
  return bounds;
}

HistogramMetric::HistogramMetric(std::vector<double> bounds,
                                 std::uint64_t reservoir_seed)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1, 0),
      rng_(reservoir_seed) {
  DCS_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "histogram bounds must be strictly increasing");
  samples_.reserve(std::min<std::size_t>(kReservoirSize, 64));
}

void HistogramMetric::record(double value) {
  if (!metrics_enabled()) return;
  std::lock_guard lock(mutex_);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (seen_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++seen_;
  // Reservoir sampling (Algorithm R): keeps a uniform sample of everything
  // recorded so percentiles stay exact over a representative subset even
  // for very long runs.
  if (samples_.size() < kReservoirSize) {
    samples_.push_back(value);
  } else {
    const std::uint64_t slot = rng_.uniform(seen_);
    if (slot < kReservoirSize) samples_[slot] = value;
  }
}

HistogramSnapshot HistogramMetric::snapshot() const {
  std::lock_guard lock(mutex_);
  HistogramSnapshot s;
  s.count = seen_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  s.bounds = bounds_;
  s.buckets = buckets_;
  const auto qs =
      exact_percentiles(samples_, std::vector<double>{0.5, 0.95, 0.99});
  s.p50 = qs[0];
  s.p95 = qs[1];
  s.p99 = qs[2];
  return s;
}

void HistogramMetric::reset() {
  std::lock_guard lock(mutex_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  samples_.clear();
  seen_ = 0;
  sum_ = min_ = max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry;  // never destroyed
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, Kind kind, std::span<const double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& entry, std::string_view key) {
        return entry.first < key;
      });
  if (it != entries_.end() && it->first == name) {
    DCS_REQUIRE(it->second.kind == kind,
                "metric '" + std::string(name) +
                    "' already registered with a different kind");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram: {
      // Seed the reservoir from the metric name so runs are reproducible.
      std::uint64_t h = 14695981039346656037ULL;
      for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
      entry.histogram = std::make_unique<HistogramMetric>(
          bounds.empty() ? HistogramMetric::default_bounds()
                         : std::vector<double>(bounds.begin(), bounds.end()),
          h);
      break;
    }
  }
  return entries_.emplace(it, std::string(name), std::move(entry))->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *find_or_create(name, Kind::kCounter, {}).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *find_or_create(name, Kind::kGauge, {}).gauge;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name,
                                            std::span<const double> bounds) {
  return *find_or_create(name, Kind::kHistogram, bounds).histogram;
}

MetricsValueSnapshot MetricsRegistry::value_snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsValueSnapshot s;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        s.counters.emplace_back(name, entry.counter->value());
        break;
      case Kind::kGauge:
        s.gauges.emplace_back(name, entry.gauge->value());
        break;
      case Kind::kHistogram:
        break;
    }
  }
  return s;
}

MetricsValueSnapshot snapshot_delta(const MetricsValueSnapshot& before,
                                    const MetricsValueSnapshot& after) {
  MetricsValueSnapshot delta;
  // Both sides are sorted by name; a merge walk finds what changed. A
  // counter missing from `before` (registered mid-interval) contributes its
  // full value, which is also its delta from zero.
  std::size_t i = 0;
  for (const auto& [name, value] : after.counters) {
    while (i < before.counters.size() && before.counters[i].first < name) ++i;
    const std::uint64_t base =
        (i < before.counters.size() && before.counters[i].first == name)
            ? before.counters[i].second
            : 0;
    // Counters are monotone except across reset(); a shrink reports the
    // post-reset value rather than wrapping around.
    const std::uint64_t d = value >= base ? value - base : value;
    if (d != 0) delta.counters.emplace_back(name, d);
  }
  i = 0;
  for (const auto& [name, value] : after.gauges) {
    while (i < before.gauges.size() && before.gauges[i].first < name) ++i;
    const bool known =
        i < before.gauges.size() && before.gauges[i].first == name;
    if (!known || before.gauges[i].second != value)
      delta.gauges.emplace_back(name, value);
  }
  return delta;
}

std::string to_json(const MetricsValueSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << json_number(value);
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kCounter) continue;
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << entry.counter->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kGauge) continue;
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << json_number(entry.gauge->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::kHistogram) continue;
    if (!first) os << ',';
    first = false;
    const HistogramSnapshot s = entry.histogram->snapshot();
    os << json_quote(name) << ":{\"count\":" << s.count
       << ",\"sum\":" << json_number(s.sum)
       << ",\"min\":" << json_number(s.min)
       << ",\"max\":" << json_number(s.max)
       << ",\"p50\":" << json_number(s.p50)
       << ",\"p95\":" << json_number(s.p95)
       << ",\"p99\":" << json_number(s.p99) << ",\"buckets\":[";
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      if (i > 0) os << ',';
      os << "{\"le\":"
         << (i < s.bounds.size() ? json_number(s.bounds[i])
                                 : std::string("null"))
         << ",\"count\":" << s.buckets[i] << '}';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::to_csv() const {
  std::lock_guard lock(mutex_);
  std::ostringstream os;
  os << "name,type,value,count,sum,min,max,p50,p95,p99\n";
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        os << name << ",counter," << entry.counter->value()
           << ",,,,,,,\n";
        break;
      case Kind::kGauge:
        os << name << ",gauge," << entry.gauge->value() << ",,,,,,,\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot s = entry.histogram->snapshot();
        // Empty histograms have no order statistics (the percentiles are
        // NaN); empty cells keep the CSV honest and parseable.
        os << name << ",histogram,," << s.count << ',' << s.sum << ','
           << s.min << ',' << s.max << ',';
        const auto cell = [&os](double v) {
          if (!std::isnan(v)) os << v;
        };
        cell(s.p50);
        os << ',';
        cell(s.p95);
        os << ',';
        cell(s.p99);
        os << '\n';
        break;
      }
    }
  }
  return os.str();
}

void MetricsRegistry::write(const std::string& path) const {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::ofstream os(path);
  DCS_REQUIRE(static_cast<bool>(os),
              "cannot open metrics output '" + path + "'");
  os << (csv ? to_csv() : to_json());
  if (!csv) os << '\n';
  DCS_REQUIRE(static_cast<bool>(os),
              "failed writing metrics output '" + path + "'");
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: entry.counter->reset(); break;
      case Kind::kGauge: entry.gauge->reset(); break;
      case Kind::kHistogram: entry.histogram->reset(); break;
    }
  }
}

}  // namespace dcs::obs
