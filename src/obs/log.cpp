#include "obs/log.hpp"

#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "obs/json.hpp"

namespace dcs::obs {

namespace {

/// Microseconds on the steady clock since the first observability call in
/// the process. Log records and trace events share this epoch so a trace
/// and a JSON-lines log of the same run can be correlated.
double monotonic_micros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view text) {
  if (text == "trace") return LogLevel::kTrace;
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off" || text == "none") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level '" + std::string(text) +
                              "' (want trace|debug|info|warn|error|off)");
}

struct Logger::Impl {
  mutable std::mutex mutex;
  LogLevel default_level = LogLevel::kWarn;
  std::map<std::string, LogLevel, std::less<>> component_levels;
  Format format = Format::kText;
  std::ostream* stream = &std::cerr;
  std::unique_ptr<std::ofstream> file;
};

Logger::Logger()
    : floor_(static_cast<int>(LogLevel::kWarn)), impl_(new Impl) {}

Logger& Logger::instance() {
  static Logger* logger = new Logger;  // leaked on purpose, see header
  return *logger;
}

void Logger::set_level(LogLevel level) {
  std::lock_guard lock(impl_->mutex);
  impl_->default_level = level;
  recompute_floor_locked();
}

void Logger::set_component_level(std::string_view component, LogLevel level) {
  std::lock_guard lock(impl_->mutex);
  impl_->component_levels.insert_or_assign(std::string(component), level);
  recompute_floor_locked();
}

void Logger::clear_component_levels() {
  std::lock_guard lock(impl_->mutex);
  impl_->component_levels.clear();
  recompute_floor_locked();
}

void Logger::configure(std::string_view spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(start, comma - start);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string_view::npos) {
        set_level(parse_log_level(item));
      } else {
        const std::string_view component = item.substr(0, eq);
        if (component.empty()) {
          throw std::invalid_argument("empty component in log spec");
        }
        set_component_level(component, parse_log_level(item.substr(eq + 1)));
      }
    }
    start = comma + 1;
  }
}

void Logger::set_format(Format format) {
  std::lock_guard lock(impl_->mutex);
  impl_->format = format;
}

void Logger::set_stream(std::ostream* os) {
  std::lock_guard lock(impl_->mutex);
  impl_->file.reset();
  impl_->stream = os != nullptr ? os : &std::cerr;
}

void Logger::open_file(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*file) {
    throw std::invalid_argument("cannot open log file '" + path + "'");
  }
  std::lock_guard lock(impl_->mutex);
  impl_->file = std::move(file);
  impl_->stream = impl_->file.get();
}

void Logger::reset() {
  std::lock_guard lock(impl_->mutex);
  impl_->default_level = LogLevel::kWarn;
  impl_->component_levels.clear();
  impl_->format = Format::kText;
  impl_->file.reset();
  impl_->stream = &std::cerr;
  floor_.store(static_cast<int>(LogLevel::kWarn),
               std::memory_order_relaxed);
}

void Logger::recompute_floor_locked() {
  int floor = static_cast<int>(impl_->default_level);
  for (const auto& [component, level] : impl_->component_levels) {
    floor = std::min(floor, static_cast<int>(level));
  }
  floor_.store(floor, std::memory_order_relaxed);
}

bool Logger::enabled_slow(std::string_view component, LogLevel level) const {
  std::lock_guard lock(impl_->mutex);
  const auto it = impl_->component_levels.find(component);
  const LogLevel threshold =
      it != impl_->component_levels.end() ? it->second
                                          : impl_->default_level;
  return level >= threshold;
}

void Logger::write(std::string_view component, LogLevel level,
                   std::string_view message) {
  const double ts = monotonic_micros();
  std::lock_guard lock(impl_->mutex);
  std::ostream& os = *impl_->stream;
  if (impl_->format == Format::kJsonLines) {
    os << "{\"ts_us\":" << json_number(ts) << ",\"level\":"
       << json_quote(to_string(level)) << ",\"component\":"
       << json_quote(component) << ",\"msg\":" << json_quote(message)
       << "}\n";
  } else {
    os << to_string(level) << " [" << component << "] " << message << '\n';
  }
  os.flush();
}

}  // namespace dcs::obs
