#include "obs/flight_recorder.hpp"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <algorithm>
#include <mutex>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace dcs::obs {

const char* to_string(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kEpochPublish: return "epoch-publish";
    case FlightEventKind::kEpochAdopt: return "epoch-adopt";
    case FlightEventKind::kLadder: return "ladder";
    case FlightEventKind::kShed: return "shed";
    case FlightEventKind::kRepair: return "repair";
    case FlightEventKind::kCheckFail: return "check-fail";
    case FlightEventKind::kInvariant: return "invariant";
    case FlightEventKind::kCustom: return "custom";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kDefaultCapacity = 1024;

// One event slot. The writer publishes via `seq`: it stores the odd value
// 2*index+1 before touching the payload and the even value 2*(index+1)
// after, so a reader accepting only matching even values before *and* after
// the payload reads either sees a fully written event or rejects the slot.
// Payload fields are relaxed atomics purely so concurrent reads of a slot
// being rewritten are well-defined (the seq check then discards them).
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<double> ts_us{0.0};
  std::atomic<std::uint32_t> tid{0};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<const char*> detail{nullptr};
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
};

struct Ring {
  explicit Ring(std::size_t capacity) : slots(capacity) {}
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};   ///< events ever written to this ring
  std::atomic<std::uint64_t> floor{0};  ///< events below this are cleared
};

std::atomic<bool> g_enabled{true};
std::atomic<std::size_t> g_capacity{kDefaultCapacity};

// Ring registry. Rings are leaked deliberately: a thread may exit while its
// events are still the interesting part of the story, and the crash-dump
// path walks this vector with no lock, so entries must stay valid forever.
std::mutex& rings_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::vector<Ring*>& rings() {
  static std::vector<Ring*>* r = new std::vector<Ring*>;
  return *r;
}

// Lock-free view of the registry for the crash path: rings are only ever
// appended, and g_ring_count is bumped (release) after the slot is written.
constexpr std::size_t kMaxRings = 4096;
Ring* g_ring_table[kMaxRings] = {};
std::atomic<std::size_t> g_ring_count{0};

Ring& local_ring() {
  thread_local Ring* ring = [] {
    auto* r = new Ring(std::max<std::size_t>(
        1, g_capacity.load(std::memory_order_relaxed)));
    std::lock_guard lock(rings_mutex());
    rings().push_back(r);
    const std::size_t n = g_ring_count.load(std::memory_order_relaxed);
    if (n < kMaxRings) {
      g_ring_table[n] = r;
      g_ring_count.store(n + 1, std::memory_order_release);
    }
    return r;
  }();
  return *ring;
}

// Reads event `index` out of `ring` if it is still intact. Returns false
// when the slot was overwritten (or is being overwritten) by a newer event.
bool read_slot(const Ring& ring, std::uint64_t index, FlightEvent& out) {
  const Slot& s = ring.slots[index % ring.slots.size()];
  const std::uint64_t want = 2 * (index + 1);
  if (s.seq.load(std::memory_order_acquire) != want) return false;
  out.ts_us = s.ts_us.load(std::memory_order_relaxed);
  out.tid = s.tid.load(std::memory_order_relaxed);
  out.kind = static_cast<FlightEventKind>(s.kind.load(std::memory_order_relaxed));
  const char* detail = s.detail.load(std::memory_order_relaxed);
  out.detail = detail == nullptr ? "" : detail;
  out.a = s.a.load(std::memory_order_relaxed);
  out.b = s.b.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  return s.seq.load(std::memory_order_relaxed) == want;
}

void collect_ring(const Ring& ring, std::vector<FlightEvent>& out) {
  const std::uint64_t head = ring.head.load(std::memory_order_acquire);
  const std::uint64_t floor = ring.floor.load(std::memory_order_acquire);
  const std::uint64_t cap = ring.slots.size();
  std::uint64_t begin = head > cap ? head - cap : 0;
  begin = std::max(begin, floor);
  for (std::uint64_t i = begin; i < head; ++i) {
    FlightEvent e;
    if (read_slot(ring, i, e)) out.push_back(e);
  }
}

// ---- crash dump -----------------------------------------------------------

constexpr std::size_t kCrashPathMax = 512;
char g_crash_path[kCrashPathMax] = {};
std::atomic<bool> g_crash_armed{false};
std::atomic<bool> g_crash_dumped{false};

extern "C" void dcs_flight_signal_handler(int signo) {
  FlightRecorder::instance().record(FlightEventKind::kCheckFail,
                                    "fatal-signal",
                                    static_cast<std::uint64_t>(signo));
  FlightRecorder::crash_dump_now();
  // Restore default disposition and re-raise so the process still dies with
  // the original signal (core dump, wait status) after the dump.
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

void check_failure_hook() noexcept {
  FlightRecorder::instance().record(FlightEventKind::kCheckFail, "check-abort");
  FlightRecorder::crash_dump_now();
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder;
  return *recorder;
}

void FlightRecorder::record(FlightEventKind kind, const char* detail,
                            std::uint64_t a, std::uint64_t b) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  Ring& ring = local_ring();
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  Slot& s = ring.slots[h % ring.slots.size()];
  s.seq.store(2 * h + 1, std::memory_order_release);
  s.ts_us.store(Trace::now_us(), std::memory_order_relaxed);
  s.tid.store(Trace::thread_id(), std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  s.detail.store(detail, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.seq.store(2 * (h + 1), std::memory_order_release);
  ring.head.store(h + 1, std::memory_order_release);
}

void FlightRecorder::set_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool FlightRecorder::enabled() const {
  return g_enabled.load(std::memory_order_relaxed);
}

void FlightRecorder::set_capacity(std::size_t events_per_thread) {
  DCS_REQUIRE(events_per_thread > 0,
              "flight recorder capacity must be positive");
  g_capacity.store(events_per_thread, std::memory_order_relaxed);
}

std::size_t FlightRecorder::capacity() const {
  return g_capacity.load(std::memory_order_relaxed);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  {
    std::lock_guard lock(rings_mutex());
    for (const Ring* ring : rings()) collect_ring(*ring, out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.ts_us < y.ts_us;
                   });
  return out;
}

std::vector<FlightEvent> FlightRecorder::tail(std::size_t max_events) const {
  std::vector<FlightEvent> all = snapshot();
  if (max_events != 0 && all.size() > max_events)
    all.erase(all.begin(), all.end() - static_cast<std::ptrdiff_t>(max_events));
  return all;
}

std::string FlightRecorder::to_json(std::size_t max_events) const {
  const std::vector<FlightEvent> events = tail(max_events);
  std::ostringstream os;
  os << "{\"flight\":[";
  bool first = true;
  for (const FlightEvent& e : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"ts_us\":" << json_number(e.ts_us) << ",\"tid\":" << e.tid
       << ",\"kind\":" << json_quote(to_string(e.kind))
       << ",\"detail\":" << json_quote(e.detail) << ",\"a\":" << e.a
       << ",\"b\":" << e.b << '}';
  }
  os << "]}";
  return os.str();
}

bool FlightRecorder::dump(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

void FlightRecorder::clear() {
  std::lock_guard lock(rings_mutex());
  for (Ring* ring : rings())
    ring->floor.store(ring->head.load(std::memory_order_acquire),
                      std::memory_order_release);
}

void FlightRecorder::arm_crash_dump(const std::string& path,
                                    bool install_signal_handlers) {
  DCS_REQUIRE(!path.empty() && path.size() < kCrashPathMax,
              "crash dump path must be non-empty and short");
  std::snprintf(g_crash_path, kCrashPathMax, "%s", path.c_str());
  g_crash_dumped.store(false, std::memory_order_relaxed);
  g_crash_armed.store(true, std::memory_order_release);
  dcs::detail::set_check_failure_hook(&check_failure_hook);
  if (install_signal_handlers) {
    for (int signo : {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL})
      std::signal(signo, &dcs_flight_signal_handler);
  }
}

void FlightRecorder::crash_dump_now() noexcept {
  if (!g_crash_armed.load(std::memory_order_acquire)) return;
  // Dump once: the SIGABRT raised by std::abort after the check hook already
  // dumped would otherwise truncate-and-rewrite the file mid-death.
  if (g_crash_dumped.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  // Walk the lock-free ring table (never the mutexed vector: the crashing
  // thread may hold that mutex). Fixed-size line buffer, write(2) only.
  char buf[384];
  auto emit = [&](const char* s, std::size_t n) {
    std::size_t off = 0;
    while (off < n) {
      const ::ssize_t w = ::write(fd, s + off, n - off);
      if (w <= 0) return;
      off += static_cast<std::size_t>(w);
    }
  };
  emit("{\"flight\":[", 11);
  bool first = true;
  const std::size_t count = g_ring_count.load(std::memory_order_acquire);
  for (std::size_t r = 0; r < count; ++r) {
    const Ring* ring = g_ring_table[r];
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t floor = ring->floor.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    std::uint64_t begin = head > cap ? head - cap : 0;
    begin = std::max(begin, floor);
    for (std::uint64_t i = begin; i < head; ++i) {
      FlightEvent e;
      if (!read_slot(*ring, i, e)) continue;
      const int n = std::snprintf(
          buf, sizeof buf,
          "%s{\"ts_us\":%.3f,\"tid\":%u,\"kind\":\"%s\",\"detail\":\"%s\","
          "\"a\":%llu,\"b\":%llu}",
          first ? "" : ",", e.ts_us, e.tid, to_string(e.kind), e.detail,
          static_cast<unsigned long long>(e.a),
          static_cast<unsigned long long>(e.b));
      first = false;
      if (n > 0) emit(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                 sizeof buf - 1));
    }
  }
  emit("]}\n", 3);
  ::close(fd);
}

}  // namespace dcs::obs
