#pragma once

// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, exportable as JSON or CSV.
//
// Recording is gated on a single global switch (set_metrics_enabled) that
// defaults to OFF: a disabled counter increment is one relaxed atomic load
// and a branch, so instrumented hot paths cost nothing in normal library
// use. The dcs_tool front end enables metrics when --metrics-out is given;
// benches enable them through bench::PerfRecord.
//
// Naming convention (see docs/observability.md):
//   <subsystem>.<thing>[.<unit>]      e.g. spanner.regular.edges_sampled,
//                                          packet_sim.round_max_queue,
//                                          bench.table1_regular.build.ms
// Units go in the trailing segment only when the value is not a plain
// count (.ms, .bytes).
//
// Thread-safety: registration takes the registry mutex; returned references
// stay valid for the process lifetime (reset() zeroes values but never
// removes metrics, so cached references in hot loops survive). Counter and
// Gauge updates are lock-free; histogram records serialize on a
// per-histogram mutex (they are recorded at phase/round granularity, not
// per element).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace dcs::obs {

namespace detail {
inline std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

inline void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    if (metrics_enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) {
    if (metrics_enabled()) value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (metrics_enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  std::size_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Percentiles are quiet NaN when count == 0 (exact_percentile's empty
  /// contract): the JSON exporter emits null and the CSV exporter an empty
  /// cell, so an empty histogram can never pose as a measured zero.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Upper bounds of the fixed buckets; buckets[i] counts values ≤
  /// bounds[i], buckets.back() is the overflow bucket (> bounds.back()).
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
};

class HistogramMetric {
 public:
  /// `bounds` are the strictly increasing bucket upper bounds. The default
  /// covers 2^-10 … 2^20 in powers of two — wide enough for millisecond
  /// timings, queue depths, and set sizes alike.
  explicit HistogramMetric(std::vector<double> bounds = default_bounds(),
                           std::uint64_t reservoir_seed = 1);

  void record(double value);
  HistogramSnapshot snapshot() const;
  void reset();

  static std::vector<double> default_bounds();

  /// Log-spaced preset for latency histograms in microseconds: a 1–2–5
  /// decade ladder from 1 µs to 10 s (1, 2, 5, 10, …, 5e6, 1e7). The
  /// power-of-two default squashes the microsecond tail for latency data;
  /// this preset keeps sub-millisecond resolution while still covering
  /// multi-second stalls. Used by serve.latency.us (see the compat note in
  /// docs/observability.md — bucket edges changed when it migrated).
  static std::vector<double> latency_bounds_us();

  /// Percentiles in the snapshot are exact over a bounded reservoir of the
  /// recorded values (uniform sample once the reservoir overflows).
  static constexpr std::size_t kReservoirSize = 4096;

 private:
  mutable std::mutex mutex_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow)
  std::vector<double> samples_;
  std::uint64_t seen_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  Rng rng_;
};

/// Flat name→value view of the scalar metrics (counters and gauges) at one
/// instant, for diffing two points in time. Histograms are excluded: their
/// deltas are not meaningful bucket-by-bucket under reservoir sampling.
struct MetricsValueSnapshot {
  /// Sorted by name (registry order).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};

/// `after` minus `before`: counters keep after−before (entries whose delta
/// is 0 are dropped; counters absent from `before` contribute their full
/// value), gauges keep `after`'s value when it changed. Both inputs must
/// come from value_snapshot() (sorted by name).
MetricsValueSnapshot snapshot_delta(const MetricsValueSnapshot& before,
                                    const MetricsValueSnapshot& after);

/// {"counters":{...},"gauges":{...}} of a value snapshot (or delta).
std::string to_json(const MetricsValueSnapshot& snapshot);

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Lookup-or-create by name; references remain valid forever. Creating
  /// the same name with a different metric kind throws
  /// std::invalid_argument.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  HistogramMetric& histogram(std::string_view name,
                             std::span<const double> bounds = {});

  /// Point-in-time values of every counter and gauge, for snapshot_delta().
  MetricsValueSnapshot value_snapshot() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  /// Flat CSV: name,type,value,count,sum,min,max,p50,p95,p99.
  std::string to_csv() const;
  /// Writes to_json / to_csv to `path`, chosen by extension (".csv" → CSV,
  /// anything else → JSON). Throws on I/O failure.
  void write(const std::string& path) const;

  /// Zeroes every metric's value but keeps the metrics registered, so
  /// references held by instrumented code stay valid. For tests and for
  /// benches that record per-phase deltas.
  void reset();

 private:
  MetricsRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry& find_or_create(std::string_view name, Kind kind,
                        std::span<const double> bounds);

  mutable std::mutex mutex_;
  // Sorted map → deterministic export order.
  std::vector<std::pair<std::string, Entry>> entries_;
};

}  // namespace dcs::obs
