#pragma once

// Per-request tracing for the serving plane.
//
// A TraceContext is allocated when a query enters QueryEngine::submit() and
// rides the request through admission, EDF dispatch, batch coalescing, the
// MS-BFS sweep, and row fill. On completion the engine offers the tracer a
// RequestExemplar carrying the full latency decomposition plus the causal
// coordinates that explain it: the dispatch batch it was coalesced into, the
// snapshot epoch it was answered on, and whether the cache short-circuited
// the sweep.
//
// The tracer keeps only *tail exemplars* — requests at or above a latency
// threshold — in a bounded ring, so steady-state traffic costs one branch
// per request and a hot mutex is only touched by the slow outliers worth
// explaining. While an obs::Trace session is active, every kept exemplar is
// additionally expanded into its span chain (req / req.queue_wait /
// req.dispatch / req.execute / req.row_fill, each tagged args.trace with the
// request's id) so the existing Chrome/Perfetto stream shows individual slow
// requests alongside the engine's serve_batch phase spans.
//
// Id allocation is two relaxed fetch_adds on process-wide counters; ids are
// unique per process run, never 0.

#include <cstdint>
#include <string>
#include <vector>

namespace dcs::obs {

/// Causal identity of one in-flight request. trace_id 0 means "untraced"
/// (tracing disabled at submit time); parent_id links derived work — e.g. a
/// batch span — back to the request that caused it.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_id = 0;
};

/// One completed traced request, fully decomposed. Durations in
/// microseconds on the shared obs clock (Trace::now_us); total_us is
/// end-to-end (submit → answer ready) and the phases partition it:
/// queue_us (submit → dispatcher drain) + dispatch_us (drain → sweep start)
/// + execute_us (coalesce + MS-BFS sweep) + row_fill_us (route next-hop
/// fill; 0 for distance queries).
struct RequestExemplar {
  std::uint64_t trace_id = 0;
  std::uint64_t batch_id = 0;  ///< dispatch batch (causal parent), 0 = none
  std::uint64_t epoch = 0;     ///< snapshot epoch the answer was pinned to
  std::uint32_t kind = 0;      ///< serve::QueryKind numeric value
  std::uint32_t outcome = 0;   ///< serve::QueryOutcome numeric value
  std::uint32_t dispatcher = 0;  ///< dispatcher shard that executed the
                                 ///< batch (1-based); 0 = synchronous path
                                 ///< or shed before reaching a dispatcher
  bool cache_hit = false;      ///< answered from the distance-row cache
  double start_us = 0.0;       ///< submit timestamp (obs clock)
  double queue_us = 0.0;
  double dispatch_us = 0.0;
  double execute_us = 0.0;
  double row_fill_us = 0.0;
  double total_us = 0.0;
};

class RequestTracer {
 public:
  static RequestTracer& instance();

  /// Sets the exemplar threshold (keep requests with total_us >= threshold;
  /// 0 keeps everything) and the ring capacity, and clears kept exemplars.
  void configure(double threshold_us, std::size_t capacity = 256);
  double threshold_us() const;
  std::size_t capacity() const;

  /// Fresh non-zero request / batch ids (relaxed atomic increments).
  std::uint64_t next_trace_id();
  std::uint64_t next_batch_id();

  /// Reserves `n` consecutive trace ids with one relaxed fetch_add and
  /// returns the first — how the synchronous batch path stamps a whole
  /// batch without n atomic operations. Never returns 0 (n >= 1).
  std::uint64_t next_trace_id_block(std::uint64_t n);

  /// Offers a completed request. Below-threshold exemplars return after one
  /// comparison; tail exemplars are kept (ring evicts oldest) and, when a
  /// Trace session is active, expanded into their span chain.
  void offer(const RequestExemplar& exemplar);

  /// Offers many completed requests, taking the ring mutex at most once
  /// (and only if at least one exemplar survives the threshold). Same
  /// per-exemplar semantics as offer(), in order.
  void offer_batch(const std::vector<RequestExemplar>& batch);

  /// Kept exemplars, oldest first.
  std::vector<RequestExemplar> exemplars() const;
  std::size_t size() const;

  /// {"threshold_us":..,"exemplars":[{"trace_id":..,...},..]} — embedded
  /// verbatim in BENCH_serve.json and served by the stats endpoint.
  std::string to_json() const;

  void clear();

 private:
  RequestTracer() = default;
};

}  // namespace dcs::obs
