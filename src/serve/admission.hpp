#pragma once

// Admission control for the query-serving engine, reusing the overload
// vocabulary established by routing/packet_sim: a bounded queue refuses
// work at the edge (kShedAdmission) and a deadline sheds work that waited
// too long to still be useful (kShedDeadline), so an overloaded engine
// degrades predictably — bounded queue, bounded staleness — instead of
// collapsing under unbounded backlog. As in the simulator, shedding is
// conservative by accounting: served + shed always equals submitted.

#include <cstddef>
#include <cstdint>

namespace dcs::serve {

/// Terminal state of one query. Mirrors packet_sim's PacketOutcome naming
/// so dashboards read the same across the serving and simulation layers.
enum class QueryOutcome : std::uint8_t {
  kServed,         ///< answered (the answer may still be "unreachable")
  kShedAdmission,  ///< refused at submit: pending queue full
  kShedDeadline,   ///< dropped at dispatch: deadline passed while queued
  kShedDegraded,   ///< refused at execute: published certificate too weak
                   ///< (supervisor ladder past the shed threshold, stale
                   ///< certificate, or guarantees lost) — the engine sheds
                   ///< with this structured reason instead of serving an
                   ///< answer it cannot certify
  kShedShutdown,   ///< refused at submit: the engine is not accepting
                   ///< (never started, stopping, or stopped) — a producer
                   ///< racing stop() gets a resolved future, not a crash
};

const char* to_string(QueryOutcome outcome);

struct AdmissionOptions {
  /// Pending-queue bound; 0 = unbounded. A submit() past the bound is
  /// refused immediately with kShedAdmission.
  std::size_t queue_capacity = 4096;
  /// Default per-query latency budget in microseconds; 0 = none. A query
  /// still queued when its budget elapses is shed with kShedDeadline at
  /// the next dispatch instead of consuming a BFS it can no longer use.
  std::uint64_t default_deadline_us = 0;
};

/// Pure policy object: decides admission and deadline expiry from counts
/// and clock readings the engine supplies. Keeping it stateless makes the
/// shed paths trivially unit-testable.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  bool admit(std::size_t pending) const {
    return options_.queue_capacity == 0 || pending < options_.queue_capacity;
  }

  /// Absolute deadline for a query submitted at `now_us` with per-query
  /// budget `deadline_us` (0 = use the default; both 0 = no deadline).
  std::uint64_t deadline_for(std::uint64_t now_us,
                             std::uint64_t deadline_us) const {
    const std::uint64_t budget =
        deadline_us != 0 ? deadline_us : options_.default_deadline_us;
    return budget == 0 ? 0 : now_us + budget;
  }

  static bool expired(std::uint64_t now_us, std::uint64_t deadline_us) {
    return deadline_us != 0 && now_us > deadline_us;
  }

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
};

}  // namespace dcs::serve
