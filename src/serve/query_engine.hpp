#pragma once

// Concurrent query-serving engine: turns a built spanner into a long-lived
// distance/route oracle.
//
// The paper's (α,β)-DC-spanner is a *serving substrate*: distances stretch
// by at most α and congestion by at most β when live traffic is answered
// over the sparse subgraph H instead of G. Everything upstream of this file
// is batch-only; QueryEngine is the missing query path. Three ideas carry
// the whole design:
//
//  * Coalescing.  Point queries are grouped by their BFS endpoint —
//    Distance{u,v} by source u, Route{u,v} by destination v (a next-hop
//    table row is per-destination) — and the distinct endpoints of a batch
//    are advanced through one 64-wide multi_source_bfs sweep of H
//    (graph/traversal's MS-BFS engine, previously used only by offline
//    verification). One sweep of the adjacency serves a whole word of
//    concurrent queries, which is where the ≥3× over one-BFS-per-query
//    comes from.
//
//  * Bounded everything.  Materialized distance rows live in bounded
//    scan-resistant 2Q caches (serve/lru_cache.hpp), one per execution
//    context, so repeat sources are cache hits; route rows fill lazily
//    (routing/tables LazyRoutingTables); admission control
//    (serve/admission.hpp) bounds the pending queue globally and sheds
//    deadline-expired queries with packet_sim-style terminal outcomes, so
//    overload degrades throughput, never accounting: served + shed ==
//    submitted, always — across every shard.
//
//  * Epoch snapshots.  The engine never reads a mutable graph: it serves
//    from immutable ServeSnapshots pinned out of a SnapshotStore
//    (serve/snapshot.hpp). When the maintenance plane (the
//    SpannerSupervisor) publishes a new epoch, the first batch to notice
//    *adopts* it — dropping every cached distance row and lazy route row,
//    because both were materialized against the previous topology — and
//    in-flight batches finish on the epoch they pinned. Every result
//    carries the epoch it was served under. When the published
//    certificate is too weak to stand behind (ladder at/past
//    ServeOptions::shed_at, guarantees lost, or stale when freshness is
//    required), the batch is shed with the structured kShedDegraded
//    outcome instead of stalling or serving uncertified answers.
//
// Thread model — the N-way sharded dispatcher:
//
//   producers ──route──▶ shard 0 deque ──▶ dispatcher 0 ─┐
//              (hash or  shard 1 deque ──▶ dispatcher 1 ─┼─▶ shared pinned
//          least-loaded)        …                 …      │    snapshot
//                        shard N-1     ──▶ dispatcher N-1┘   (one pin/epoch)
//
//  * submit() routes each query to a shard (ServeOptions::routing):
//    two-choice least-loaded balances skewed producers; hash routing is
//    source-affine so a repeat endpoint hits the shard whose cache holds
//    its row. Admission is reserved against one global atomic, so the
//    queue bound and conservation hold engine-wide, not per shard.
//  * Each dispatcher drains its own deque earliest-deadline-first and
//    executes batches concurrently with its siblings. An idle dispatcher
//    steals the newest half of the deepest sibling backlog, so one hot
//    shard cannot stall the others' capacity.
//  * All dispatchers serve under ONE pinned snapshot. Per batch, epoch
//    currency costs two atomic loads (store epoch vs adopted epoch); only
//    when they differ does a dispatcher take the exclusive substrate lock
//    and adopt — pinning once, dropping every context's row cache once,
//    and rebinding the route tables once per epoch, no matter how many
//    dispatchers are in flight (SnapshotStore::pin_if_newer makes the
//    race-losing adopters free).
//  * stop() is shed-safe: producers racing it get futures resolved with
//    kShedShutdown (counted in conservation) instead of a crash, and every
//    query enqueued before the shard's dispatcher observed the stop is
//    drained. A submit that enqueues does so under its shard mutex after
//    reading accepting_ == true; stop() clears accepting_ before raising
//    stopping_, and a dispatcher exits only after seeing stopping_ with an
//    empty deque under that same mutex — so an enqueue either precedes the
//    dispatcher's final check (and is drained) or observes accepting_ ==
//    false (and sheds). All three flags are seq_cst.
//
// serve_batch() remains the synchronous core (benches, tests, and the
// soak's lockstep mode use it directly); sync callers serialize on their
// own context and run concurrently with the dispatcher shards.
//
// Instrumentation: a trace span per dispatched batch, serve.* counters,
// per-shard serve.shard.<i>.{queries,batches,steals,stolen_queries}
// counters, the dispatcher id on every result/exemplar, and
// serve.latency.us / serve.batch.queries histograms — see docs/serving.md
// and docs/observability.md.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "graph/renumber.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "routing/routing.hpp"
#include "routing/tables.hpp"
#include "serve/admission.hpp"
#include "serve/lru_cache.hpp"
#include "serve/snapshot.hpp"

namespace dcs::serve {

enum class QueryKind : std::uint8_t {
  kDistance,  ///< hop distance u → v on the spanner
  kRoute,     ///< explicit next-hop path u → v on the spanner
};

struct Query {
  QueryKind kind = QueryKind::kDistance;
  Vertex u = 0;
  Vertex v = 0;
  /// Per-query latency budget in microseconds; 0 = the engine default
  /// (AdmissionOptions::default_deadline_us). Only the concurrent path
  /// sheds on deadlines — a synchronous serve_batch() serves everything.
  std::uint64_t deadline_us = 0;
};

/// Per-query latency decomposition, microseconds. The phases partition the
/// end-to-end latency: queue_us (submit → dispatcher drain) + dispatch_us
/// (drain → sweep start) + execute_us (coalesce + MS-BFS sweep) +
/// row_fill_us (route next-hop fill). Batch-level phases (execute,
/// row_fill) are attributed whole to every query in the batch — the
/// question they answer is "what was this query waiting on", not "what
/// share of the sweep did it consume" — and are filled on every path;
/// queue_us/dispatch_us need a TraceContext, so they are 0 unless
/// ServeOptions::trace.exemplars is on (and always 0 on the synchronous
/// serve_batch() path, which has no queue).
struct QueryLatencyBreakdown {
  double queue_us = 0.0;
  double dispatch_us = 0.0;
  double execute_us = 0.0;
  double row_fill_us = 0.0;
};

struct QueryResult {
  QueryOutcome outcome = QueryOutcome::kServed;
  /// Hop distance u → v (route queries: the served path's length);
  /// kUnreachable when no path exists or the query was shed.
  Dist distance = kUnreachable;
  /// Route queries only: the path, empty if unreachable or shed.
  Path path;
  /// Snapshot epoch the batch was pinned to. 0 only for queries shed
  /// before reaching a snapshot (admission/deadline/shutdown sheds).
  std::uint64_t epoch = 0;
  /// Submit-to-completion latency (concurrent path) or batch-call latency
  /// (synchronous path), microseconds.
  double latency_us = 0.0;
  /// Request trace id (obs/request_trace); 0 when tracing is off.
  std::uint64_t trace_id = 0;
  /// Dispatcher shard that executed (or deadline-shed) this query,
  /// 1-based; 0 = synchronous serve_batch() path or shed before reaching
  /// a dispatcher (admission/shutdown).
  std::uint32_t dispatcher = 0;
  /// Distance query answered from the 2Q row cache without a sweep.
  bool cache_hit = false;
  QueryLatencyBreakdown breakdown;
};

/// How submit() picks a shard when ServeOptions::dispatchers > 1.
enum class ShardRouting : std::uint8_t {
  /// Two-choice least-loaded: probe two rotating shards, enqueue on the
  /// shallower. Balances skewed producers; the default.
  kLeastLoaded,
  /// Source-affine hash of the query's BFS endpoint (distance: u, route:
  /// v): a repeat endpoint always lands on the shard whose 2Q cache holds
  /// its row. Work stealing backstops the skew this can create.
  kHash,
};

struct ServeOptions {
  /// Distance rows kept in each execution context's 2Q cache (one context
  /// per dispatcher shard, plus one for the synchronous path).
  std::size_t cache_rows = 256;
  /// Queries drained per dispatch; larger windows coalesce better but add
  /// queueing latency under saturation.
  std::size_t batch_window = 4096;
  AdmissionOptions admission;
  /// Tie-break seed for lazily built route tables.
  std::uint64_t seed = 1;
  /// Dispatcher threads draining the submit queue. 1 (the default)
  /// preserves single-dispatcher behavior; N > 1 shards the pending queue
  /// N ways — see the thread-model diagram above.
  std::size_t dispatchers = 1;
  /// Shard-routing policy for submit() (ignored when dispatchers == 1).
  ShardRouting routing = ShardRouting::kLeastLoaded;
  /// Drain each shard's pending queue earliest-deadline-first, so
  /// near-deadline queries are not shed behind fresh no-deadline arrivals
  /// when the backlog exceeds one batch window.
  bool edf_dispatch = true;
  /// Ladder threshold for graceful degradation: a batch pinned to a
  /// snapshot whose ladder state is >= this sheds with kShedDegraded.
  /// The default sheds only at kLost (the certificate itself is gone);
  /// harnesses that demand a certified envelope on every answer tighten
  /// it (the chaos soak uses kRebuilding).
  SupervisorState shed_at = SupervisorState::kLost;
  /// Also shed when the published certificate was not re-measured against
  /// the published topology (SpannerCertificate::fresh == false).
  bool require_fresh_certificate = false;
  /// Request tracing. Off by default: untraced requests skip id allocation
  /// and exemplar offers entirely (the obs layer's disabled-cost
  /// discipline). When on, every request gets a TraceContext at submit()
  /// and completed requests at/above RequestTracer's threshold are kept as
  /// tail exemplars (configure the threshold via
  /// obs::RequestTracer::instance().configure()).
  struct RequestTraceOptions {
    bool exemplars = false;
  };
  RequestTraceOptions trace;
  /// Cache-order vertex renumbering for the serving substrate (see
  /// graph/renumber.hpp). The engine sweeps a relabeled copy of each
  /// pinned spanner and translates at its boundary, so queries, answers,
  /// paths, epochs, and everything upstream (snapshots, certificates,
  /// checkpoints) stay in original-ID space. kOriginal is zero-overhead.
  VertexOrder renumber = VertexOrder::kOriginal;
};

/// Monotonic tallies, readable concurrently with serving. Conservation
/// holds globally across shards once the engine is drained:
/// queries == served + shed_admission + shed_deadline + shed_degraded
///            + shed_shutdown.
struct ServeStats {
  std::uint64_t queries = 0;
  std::uint64_t distance_queries = 0;
  std::uint64_t route_queries = 0;
  std::uint64_t served = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_sources = 0;  ///< distinct BFS endpoints swept
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t route_rows_filled = 0;
  std::uint64_t shed_admission = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_degraded = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t unreachable = 0;
  std::uint64_t epochs_adopted = 0;  ///< snapshot swaps observed (≥ 1)
  std::uint64_t steals = 0;          ///< work-steal operations between shards
  std::uint64_t stolen_queries = 0;  ///< queries moved by those steals
};

/// Indices of the `take` most deadline-pressed entries of `deadlines`, in
/// dispatch order. A deadline of 0 means none and sorts last; equal
/// deadlines dispatch FIFO (by index). Equivalent to a stable_sort of the
/// whole backlog by effective deadline truncated to `take`, but via an
/// O(Q) nth_element partition plus an O(take log take) sort of the window
/// only — this runs under a shard's queue mutex, squarely in the
/// producers' critical section, so the full-backlog O(Q log Q) sort it
/// replaces was a submit-side stall. Exposed for the equivalence test.
std::vector<std::uint32_t> edf_select(std::span<const std::uint64_t> deadlines,
                                      std::size_t take);

class QueryEngine {
 public:
  /// Serves from `store` (borrowed; must outlive the engine). Every batch
  /// checks the store's epoch; changes invalidate the distance-row caches
  /// and lazy route tables exactly once per epoch.
  explicit QueryEngine(SnapshotStore& store, ServeOptions options = {});

  /// Static-substrate convenience: copies `h` into an internal single-
  /// snapshot store (healthy certificate, epoch 1). Benches and tests
  /// that never churn use this.
  explicit QueryEngine(const Graph& h, ServeOptions options = {});

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // --- synchronous batched path ------------------------------------------
  /// Serves every query (no admission control, no deadlines): coalesces by
  /// BFS endpoint, sweeps cache misses through 64-wide MS-BFS batches,
  /// fills route rows lazily, and returns results in input order. Safe to
  /// call from any thread (sync callers serialize on a dedicated context;
  /// dispatcher shards keep running). Sheds the whole batch with
  /// kShedDegraded when the pinned certificate is below the serving
  /// policy (see ServeOptions::shed_at).
  std::vector<QueryResult> serve_batch(std::span<const Query> queries);

  /// One-query convenience wrapper over serve_batch.
  QueryResult serve_one(const Query& query);

  // --- concurrent path ----------------------------------------------------
  /// Starts the dispatcher shards (ServeOptions::dispatchers threads).
  /// Idempotent.
  void start();
  /// Drains every shard's pending queue, then stops the dispatchers.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Enqueues a query for batched dispatch on one of the shards. The
  /// returned future is already resolved with kShedAdmission when the
  /// global pending bound is full, and with kShedShutdown when the engine
  /// is not accepting (never started, stopping, or stopped — a producer
  /// racing stop() sheds cleanly instead of crashing). If the query's
  /// deadline passes before its batch is drained it resolves with
  /// kShedDeadline.
  std::future<QueryResult> submit(const Query& query);

  ServeStats stats() const;
  const SnapshotStore& snapshots() const { return *store_; }
  /// Epoch of the currently adopted snapshot (a batch may adopt a newer
  /// one the moment it executes).
  std::uint64_t serving_epoch() const {
    return serving_epoch_.load(std::memory_order_relaxed);
  }
  std::size_t num_vertices() const { return n_; }
  /// Total distance rows cached across every execution context. Served by
  /// a lock-free mirror (safe to poll while serving; never a barrier);
  /// exact whenever no batch is mid-execution.
  std::size_t cached_rows() const;
  std::size_t num_dispatchers() const { return shards_.size(); }

  /// Fault injection for the chaos-soak harness: skip the distance-row
  /// cache drop on epoch adoption, so rows materialized under a pre-
  /// repair epoch keep answering post-repair queries. The soak's
  /// query-certified invariant must catch and ddmin-minimize this.
  void inject_stale_cache_bug() { stale_cache_bug_ = true; }

 private:
  struct Pending {
    Query query;
    std::uint64_t enqueue_us = 0;
    std::uint64_t deadline_us = 0;  // absolute; 0 = none
    obs::TraceContext ctx;          // trace_id 0 = untraced
    double enqueue_obs_us = 0.0;    // obs clock, for the queue_wait phase
    std::promise<QueryResult> promise;
  };

  /// Causal coordinates of one execute() call, for exemplar assembly.
  struct BatchMeta {
    std::uint64_t batch_id = 0;    // 0 when tracing is off
    std::uint64_t epoch = 0;
    double start_obs_us = 0.0;     // obs clock at sweep start
  };

  /// Per-executor serving state: the 2Q distance-row cache plus the
  /// exported-tally watermarks for it. Each dispatcher shard owns one and
  /// the synchronous path owns one; only the owner touches it (under the
  /// shared substrate lock), except epoch adoption, which clears every
  /// cache under the exclusive lock. Owner-only watermarks are what make
  /// the cache-metric delta export race-free: the old engine re-read
  /// shared counters read-modify-write, which double-counts the moment
  /// two executors export concurrently.
  struct ServeContext {
    TwoQCache<Vertex, std::vector<Dist>> rows;
    std::uint64_t hits_exported = 0;
    std::uint64_t misses_exported = 0;
    std::uint64_t evictions_exported = 0;
    /// rows.size() at the last delta export, for the n_cached_rows_ mirror.
    std::size_t rows_exported = 0;
    explicit ServeContext(std::size_t capacity) : rows(capacity) {}
  };

  /// One dispatcher shard: its slice of the pending queue plus its
  /// execution context and obs counters.
  struct Shard {
    std::mutex mutex;  ///< guards queue (and the accepting_ check+enqueue)
    std::condition_variable cv;
    std::deque<Pending> queue;
    /// queue.size() mirror for lock-free routing/steal-victim probes
    /// (approximate reads are fine: both are load-balance heuristics).
    std::atomic<std::size_t> depth{0};
    std::thread dispatcher;
    ServeContext context;
    obs::Counter* c_queries = nullptr;  // serve.shard.<i>.*
    obs::Counter* c_batches = nullptr;
    obs::Counter* c_steals = nullptr;
    obs::Counter* c_stolen = nullptr;
    explicit Shard(std::size_t cache_rows) : context(cache_rows) {}
  };

  /// Shared constructor tail: epoch bookkeeping, substrate bind, shard +
  /// per-shard counter creation.
  void init_engine();

  void dispatcher_loop(std::size_t shard_index);
  /// Deadline-sheds then executes one drained batch and resolves its
  /// futures; `dispatcher_id` is 1-based (stamped on results/exemplars).
  void process_batch(std::size_t shard_index, std::vector<Pending>& drained);
  /// Drains up to one batch window from `shard.queue` (EDF selection when
  /// the backlog exceeds the window). Caller holds shard.mutex.
  void drain_window(Shard& shard, std::vector<Pending>& out);
  /// Steals the newest half of the deepest sibling backlog into `out`.
  /// Returns false when no sibling has queued work. Takes only the
  /// victim's mutex (never two shard mutexes at once).
  bool steal_batch(std::size_t thief_index, std::vector<Pending>& out);
  /// Picks the shard index for one submitted query (ServeOptions::routing).
  std::size_t route_shard(const Query& query);
  /// Reserves one slot against the global pending bound (CAS, exact across
  /// shards). Drains/steals release with fetch_sub.
  bool reserve_pending();

  /// The coalesced serving core: runs under the shared substrate lock with
  /// the caller-owned `ctx` caches; counts everything except query intake,
  /// which submit()/serve_batch() tally. Fills each result's
  /// execute/row_fill breakdown and, when `meta` is non-null, the batch's
  /// causal coordinates.
  std::vector<QueryResult> execute(std::span<const Query> queries,
                                   ServeContext& ctx,
                                   std::uint32_t dispatcher_id,
                                   BatchMeta* meta = nullptr);
  /// Epoch-currency check: two atomic loads on the fast path; on a change,
  /// upgrades to the exclusive substrate lock and adopts (exactly one
  /// adopter per epoch wins; see adopt_locked()). May release and
  /// reacquire `lock`.
  void maybe_adopt(std::shared_lock<std::shared_mutex>& lock);
  /// Pins the newer snapshot (if still newer — the adoption race loser
  /// returns without touching anything) and drops every context's cached
  /// rows + rebinds the route tables, once. Caller holds the exclusive
  /// substrate lock.
  void adopt_locked();
  /// Recomputes the internal (possibly renumbered) serving graph from the
  /// pinned snapshot and rebinds the route tables to it. Caller holds the
  /// exclusive substrate lock (or is the constructor).
  void rebind_serving_graph();
  /// True when the pinned certificate is below the serving policy.
  bool should_shed_degraded() const;
  std::size_t cached_rows_locked() const;

  std::unique_ptr<SnapshotStore> owned_store_;  ///< Graph-ctor compat only
  SnapshotStore* store_;
  ServeOptions options_;
  AdmissionController admission_;
  std::size_t n_;  ///< vertex count (fixed across epochs)

  // The serving substrate, guarded by substrate_mutex_: executors hold it
  // shared (batches on distinct contexts proceed concurrently); epoch
  // adoption holds it exclusive. tables_ additionally serializes its
  // fill/walk phase on route_mutex_ (LazyRoutingTables is not internally
  // synchronized), taken while already holding the shared lock.
  mutable std::shared_mutex substrate_mutex_;
  SnapshotRef serving_;  ///< snapshot the caches are keyed to
  // Cache-order serving substrate: when options_.renumber != kOriginal the
  // sweeps and route tables run on internal_spanner_ (a relabeled copy of
  // serving_->spanner) and renum_ translates external <-> internal at the
  // query boundary. Cached rows are keyed and indexed by internal IDs.
  // Declared before tables_, which holds a reference to the graph it
  // routes on.
  Renumbering renum_;
  Graph internal_spanner_;
  bool renumbered_ = false;
  LazyRoutingTables tables_;
  std::mutex route_mutex_;
  std::atomic<bool> stale_cache_bug_{false};

  // Dispatcher shards (fixed at construction) and the synchronous path's
  // context. sync_mutex_ serializes concurrent serve_batch() callers.
  std::vector<std::unique_ptr<Shard>> shards_;
  ServeContext sync_context_;
  std::mutex sync_mutex_;

  // Lifecycle. All seq_cst: the shutdown-shed safety argument in the file
  // header leans on the single total order of accepting_/stopping_ stores
  // and loads. lifecycle_mutex_ serializes start()/stop() themselves.
  std::mutex lifecycle_mutex_;
  std::atomic<bool> accepting_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Queries queued across all shards, bounded by the admission policy.
  std::atomic<std::size_t> pending_total_{0};
  /// Rotor for two-choice least-loaded routing.
  std::atomic<std::uint64_t> rotor_{0};
  /// Rotor spreading submit()'s steal nudges across sibling shards.
  std::atomic<std::uint64_t> nudge_rotor_{0};

  // Stats mirrors (relaxed atomics so stats() never takes a lock). Cache
  // tallies accumulate owner-computed deltas from each context.
  std::atomic<std::uint64_t> n_queries_{0}, n_distance_{0}, n_route_{0},
      n_served_{0}, n_batches_{0}, n_sources_{0}, n_hits_{0}, n_misses_{0},
      n_evictions_{0}, n_rows_filled_{0}, n_shed_admission_{0},
      n_shed_deadline_{0}, n_shed_degraded_{0}, n_shed_shutdown_{0},
      n_unreachable_{0}, n_epochs_adopted_{0}, n_steals_{0}, n_stolen_{0},
      serving_epoch_{0};
  /// Lock-free cached_rows() mirror: owners fold their context's row-count
  /// delta in at batch end; adoption re-syncs it under the exclusive lock.
  /// Signed because an executor can net-shrink its cache (evictions).
  std::atomic<std::int64_t> n_cached_rows_{0};
};

}  // namespace dcs::serve
