#pragma once

// Concurrent query-serving engine: turns a built spanner into a long-lived
// distance/route oracle.
//
// The paper's (α,β)-DC-spanner is a *serving substrate*: distances stretch
// by at most α and congestion by at most β when live traffic is answered
// over the sparse subgraph H instead of G. Everything upstream of this file
// is batch-only; QueryEngine is the missing query path. Three ideas carry
// the whole design:
//
//  * Coalescing.  Point queries are grouped by their BFS endpoint —
//    Distance{u,v} by source u, Route{u,v} by destination v (a next-hop
//    table row is per-destination) — and the distinct endpoints of a batch
//    are advanced through one 64-wide multi_source_bfs sweep of H
//    (graph/traversal's MS-BFS engine, previously used only by offline
//    verification). One sweep of the adjacency serves a whole word of
//    concurrent queries, which is where the ≥3× over one-BFS-per-query
//    comes from.
//
//  * Bounded everything.  Materialized distance rows live in a bounded
//    scan-resistant 2Q cache (serve/lru_cache.hpp) so repeat sources are
//    cache hits; route rows fill lazily (routing/tables
//    LazyRoutingTables); admission control (serve/admission.hpp) bounds
//    the pending queue and sheds deadline-expired queries with
//    packet_sim-style terminal outcomes, so overload degrades throughput,
//    never accounting: served + shed == submitted, always.
//
//  * Epoch snapshots.  The engine never reads a mutable graph: it serves
//    from immutable ServeSnapshots pinned per batch out of a
//    SnapshotStore (serve/snapshot.hpp). When the maintenance plane (the
//    SpannerSupervisor) publishes a new epoch, the first batch to pin it
//    *adopts* it — dropping every cached distance row and lazy route row,
//    because both were materialized against the previous topology — and
//    in-flight batches finish on the epoch they pinned. Every result
//    carries the epoch it was served under. When the published
//    certificate is too weak to stand behind (ladder at/past
//    ServeOptions::shed_at, guarantees lost, or stale when freshness is
//    required), the batch is shed with the structured kShedDegraded
//    outcome instead of stalling or serving uncertified answers.
//
// Instrumentation: a trace span per dispatched batch, serve.* counters
// (queries, batches, coalesced sources, cache hits/misses/evictions,
// sheds, epoch adoptions/invalidations), the serve.cache.hit_ratio gauge,
// and serve.latency.us / serve.batch.queries histograms — see
// docs/serving.md and docs/observability.md.
//
// Thread model: submit()/wait is many-producer safe; one internal
// dispatcher thread drains the queue and executes batches. serve_batch()
// is the synchronous core (also used directly by benches and tests); it
// serializes on an internal mutex, and its parallel phases run on the
// shared thread pool, safely nesting if the caller is already inside a
// parallel region (see ThreadPool::parallel_ranges).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "graph/renumber.hpp"
#include "obs/request_trace.hpp"
#include "routing/routing.hpp"
#include "routing/tables.hpp"
#include "serve/admission.hpp"
#include "serve/lru_cache.hpp"
#include "serve/snapshot.hpp"

namespace dcs::serve {

enum class QueryKind : std::uint8_t {
  kDistance,  ///< hop distance u → v on the spanner
  kRoute,     ///< explicit next-hop path u → v on the spanner
};

struct Query {
  QueryKind kind = QueryKind::kDistance;
  Vertex u = 0;
  Vertex v = 0;
  /// Per-query latency budget in microseconds; 0 = the engine default
  /// (AdmissionOptions::default_deadline_us). Only the concurrent path
  /// sheds on deadlines — a synchronous serve_batch() serves everything.
  std::uint64_t deadline_us = 0;
};

/// Per-query latency decomposition, microseconds. The phases partition the
/// end-to-end latency: queue_us (submit → dispatcher drain) + dispatch_us
/// (drain → sweep start) + execute_us (coalesce + MS-BFS sweep) +
/// row_fill_us (route next-hop fill). Batch-level phases (execute,
/// row_fill) are attributed whole to every query in the batch — the
/// question they answer is "what was this query waiting on", not "what
/// share of the sweep did it consume" — and are filled on every path;
/// queue_us/dispatch_us need a TraceContext, so they are 0 unless
/// ServeOptions::trace.exemplars is on (and always 0 on the synchronous
/// serve_batch() path, which has no queue).
struct QueryLatencyBreakdown {
  double queue_us = 0.0;
  double dispatch_us = 0.0;
  double execute_us = 0.0;
  double row_fill_us = 0.0;
};

struct QueryResult {
  QueryOutcome outcome = QueryOutcome::kServed;
  /// Hop distance u → v (route queries: the served path's length);
  /// kUnreachable when no path exists or the query was shed.
  Dist distance = kUnreachable;
  /// Route queries only: the path, empty if unreachable or shed.
  Path path;
  /// Snapshot epoch the batch was pinned to. 0 only for queries shed
  /// before reaching a snapshot (admission/deadline sheds).
  std::uint64_t epoch = 0;
  /// Submit-to-completion latency (concurrent path) or batch-call latency
  /// (synchronous path), microseconds.
  double latency_us = 0.0;
  /// Request trace id (obs/request_trace); 0 when tracing is off.
  std::uint64_t trace_id = 0;
  /// Distance query answered from the 2Q row cache without a sweep.
  bool cache_hit = false;
  QueryLatencyBreakdown breakdown;
};

struct ServeOptions {
  /// Distance rows kept in the 2Q cache.
  std::size_t cache_rows = 256;
  /// Queries drained per dispatch; larger windows coalesce better but add
  /// queueing latency under saturation.
  std::size_t batch_window = 4096;
  AdmissionOptions admission;
  /// Tie-break seed for lazily built route tables.
  std::uint64_t seed = 1;
  /// Drain the pending queue earliest-deadline-first, so near-deadline
  /// queries are not shed behind fresh no-deadline arrivals when the
  /// backlog exceeds one batch window.
  bool edf_dispatch = true;
  /// Ladder threshold for graceful degradation: a batch pinned to a
  /// snapshot whose ladder state is >= this sheds with kShedDegraded.
  /// The default sheds only at kLost (the certificate itself is gone);
  /// harnesses that demand a certified envelope on every answer tighten
  /// it (the chaos soak uses kRebuilding).
  SupervisorState shed_at = SupervisorState::kLost;
  /// Also shed when the published certificate was not re-measured against
  /// the published topology (SpannerCertificate::fresh == false).
  bool require_fresh_certificate = false;
  /// Request tracing. Off by default: untraced requests skip id allocation
  /// and exemplar offers entirely (the obs layer's disabled-cost
  /// discipline). When on, every request gets a TraceContext at submit()
  /// and completed requests at/above RequestTracer's threshold are kept as
  /// tail exemplars (configure the threshold via
  /// obs::RequestTracer::instance().configure()).
  struct RequestTraceOptions {
    bool exemplars = false;
  };
  RequestTraceOptions trace;
  /// Cache-order vertex renumbering for the serving substrate (see
  /// graph/renumber.hpp). The engine sweeps a relabeled copy of each
  /// pinned spanner and translates at its boundary, so queries, answers,
  /// paths, epochs, and everything upstream (snapshots, certificates,
  /// checkpoints) stay in original-ID space. kOriginal is zero-overhead.
  VertexOrder renumber = VertexOrder::kOriginal;
};

/// Monotonic tallies, readable concurrently with serving. Conservation:
/// queries == served + shed_admission + shed_deadline + shed_degraded
/// once the engine is drained.
struct ServeStats {
  std::uint64_t queries = 0;
  std::uint64_t distance_queries = 0;
  std::uint64_t route_queries = 0;
  std::uint64_t served = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_sources = 0;  ///< distinct BFS endpoints swept
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t route_rows_filled = 0;
  std::uint64_t shed_admission = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_degraded = 0;
  std::uint64_t unreachable = 0;
  std::uint64_t epochs_adopted = 0;  ///< snapshot swaps observed (≥ 1)
};

class QueryEngine {
 public:
  /// Serves from `store` (borrowed; must outlive the engine). Every batch
  /// pins the store's current snapshot; epoch changes invalidate the
  /// distance-row cache and lazy route tables.
  explicit QueryEngine(SnapshotStore& store, ServeOptions options = {});

  /// Static-substrate convenience: copies `h` into an internal single-
  /// snapshot store (healthy certificate, epoch 1). Benches and tests
  /// that never churn use this.
  explicit QueryEngine(const Graph& h, ServeOptions options = {});

  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // --- synchronous batched path ------------------------------------------
  /// Serves every query (no admission control, no deadlines): coalesces by
  /// BFS endpoint, sweeps cache misses through 64-wide MS-BFS batches,
  /// fills route rows lazily, and returns results in input order. Safe to
  /// call from any thread (internally serialized). Sheds the whole batch
  /// with kShedDegraded when the pinned certificate is below the serving
  /// policy (see ServeOptions::shed_at).
  std::vector<QueryResult> serve_batch(std::span<const Query> queries);

  /// One-query convenience wrapper over serve_batch.
  QueryResult serve_one(const Query& query);

  // --- concurrent path ----------------------------------------------------
  /// Starts the dispatcher thread. Idempotent.
  void start();
  /// Drains the pending queue, then stops the dispatcher. Idempotent;
  /// also run by the destructor.
  void stop();

  /// Enqueues a query for batched dispatch. If the pending queue is full
  /// the returned future is already resolved with kShedAdmission; if the
  /// query's deadline passes before its batch is drained it resolves with
  /// kShedDeadline. Requires start().
  std::future<QueryResult> submit(const Query& query);

  ServeStats stats() const;
  const SnapshotStore& snapshots() const { return *store_; }
  /// Epoch of the currently adopted snapshot (a batch may adopt a newer
  /// one the moment it executes).
  std::uint64_t serving_epoch() const {
    return serving_epoch_.load(std::memory_order_relaxed);
  }
  std::size_t num_vertices() const { return n_; }
  std::size_t cached_rows() const;

  /// Fault injection for the chaos-soak harness: skip the distance-row
  /// cache drop on epoch adoption, so rows materialized under a pre-
  /// repair epoch keep answering post-repair queries. The soak's
  /// query-certified invariant must catch and ddmin-minimize this.
  void inject_stale_cache_bug() { stale_cache_bug_ = true; }

 private:
  struct Pending {
    Query query;
    std::uint64_t enqueue_us = 0;
    std::uint64_t deadline_us = 0;  // absolute; 0 = none
    obs::TraceContext ctx;          // trace_id 0 = untraced
    double enqueue_obs_us = 0.0;    // obs clock, for the queue_wait phase
    std::promise<QueryResult> promise;
  };

  /// Causal coordinates of one execute() call, for exemplar assembly.
  struct BatchMeta {
    std::uint64_t batch_id = 0;    // 0 when tracing is off
    std::uint64_t epoch = 0;
    double start_obs_us = 0.0;     // obs clock at sweep start
  };

  void dispatcher_loop();
  /// The coalesced serving core (takes serve_mutex_); counts everything
  /// except query intake, which submit()/serve_batch() tally. Fills each
  /// result's execute/row_fill breakdown and, when `meta` is non-null, the
  /// batch's causal coordinates.
  std::vector<QueryResult> execute(std::span<const Query> queries,
                                   BatchMeta* meta = nullptr);
  /// Pins the store's current snapshot and, on an epoch change, drops the
  /// caches keyed to the previous epoch. Caller holds serve_mutex_.
  void adopt_current_snapshot();
  /// Recomputes the internal (possibly renumbered) serving graph from the
  /// pinned snapshot and rebinds the route tables to it. Caller holds
  /// serve_mutex_ (or is the constructor).
  void rebind_serving_graph();
  /// True when the pinned certificate is below the serving policy.
  bool should_shed_degraded() const;

  std::unique_ptr<SnapshotStore> owned_store_;  ///< Graph-ctor compat only
  SnapshotStore* store_;
  ServeOptions options_;
  AdmissionController admission_;
  std::size_t n_;  ///< vertex count (fixed across epochs)

  // Serving state, guarded by serve_mutex_.
  mutable std::mutex serve_mutex_;
  SnapshotRef serving_;  ///< snapshot the caches are keyed to
  // Cache-order serving substrate: when options_.renumber != kOriginal the
  // sweeps and route tables run on internal_spanner_ (a relabeled copy of
  // serving_->spanner) and renum_ translates external <-> internal at the
  // query boundary. Cached rows are keyed and indexed by internal IDs.
  // Declared before tables_, which holds a reference to the graph it
  // routes on.
  Renumbering renum_;
  Graph internal_spanner_;
  bool renumbered_ = false;
  TwoQCache<Vertex, std::vector<Dist>> rows_;
  LazyRoutingTables tables_;
  std::atomic<bool> stale_cache_bug_{false};

  // Pending queue, guarded by queue_mutex_.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool running_ = false;
  bool stopping_ = false;
  std::thread dispatcher_;

  // Stats mirrors (relaxed atomics so stats() never takes serve_mutex_).
  std::atomic<std::uint64_t> n_queries_{0}, n_distance_{0}, n_route_{0},
      n_served_{0}, n_batches_{0}, n_sources_{0}, n_hits_{0}, n_misses_{0},
      n_evictions_{0}, n_rows_filled_{0}, n_shed_admission_{0},
      n_shed_deadline_{0}, n_shed_degraded_{0}, n_unreachable_{0},
      n_epochs_adopted_{0}, serving_epoch_{0};
};

}  // namespace dcs::serve
