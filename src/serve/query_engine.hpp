#pragma once

// Concurrent query-serving engine: turns a built spanner into a long-lived
// distance/route oracle.
//
// The paper's (α,β)-DC-spanner is a *serving substrate*: distances stretch
// by at most α and congestion by at most β when live traffic is answered
// over the sparse subgraph H instead of G. Everything upstream of this file
// is batch-only; QueryEngine is the missing query path. Two ideas carry
// the whole design:
//
//  * Coalescing.  Point queries are grouped by their BFS endpoint —
//    Distance{u,v} by source u, Route{u,v} by destination v (a next-hop
//    table row is per-destination) — and the distinct endpoints of a batch
//    are advanced through one 64-wide multi_source_bfs sweep of H
//    (graph/traversal's MS-BFS engine, previously used only by offline
//    verification). One sweep of the adjacency serves a whole word of
//    concurrent queries, which is where the ≥3× over one-BFS-per-query
//    comes from.
//
//  * Bounded everything.  Materialized distance rows live in a bounded
//    LRU cache (serve/lru_cache.hpp) so repeat sources are cache hits;
//    route rows fill lazily (routing/tables LazyRoutingTables); admission
//    control (serve/admission.hpp) bounds the pending queue and sheds
//    deadline-expired queries with packet_sim-style terminal outcomes, so
//    overload degrades throughput, never accounting: served + shed ==
//    submitted, always.
//
// Instrumentation: a trace span per dispatched batch, serve.* counters
// (queries, batches, coalesced sources, cache hits/misses/evictions,
// sheds), and serve.latency.us / serve.batch.queries histograms — see
// docs/serving.md and docs/observability.md.
//
// Thread model: submit()/wait is many-producer safe; one internal
// dispatcher thread drains the queue and executes batches. serve_batch()
// is the synchronous core (also used directly by benches and tests); it
// serializes on an internal mutex, and its parallel phases run on the
// shared thread pool, safely nesting if the caller is already inside a
// parallel region (see ThreadPool::parallel_ranges).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "routing/routing.hpp"
#include "routing/tables.hpp"
#include "serve/admission.hpp"
#include "serve/lru_cache.hpp"

namespace dcs::serve {

enum class QueryKind : std::uint8_t {
  kDistance,  ///< hop distance u → v on the spanner
  kRoute,     ///< explicit next-hop path u → v on the spanner
};

struct Query {
  QueryKind kind = QueryKind::kDistance;
  Vertex u = 0;
  Vertex v = 0;
  /// Per-query latency budget in microseconds; 0 = the engine default
  /// (AdmissionOptions::default_deadline_us). Only the concurrent path
  /// sheds on deadlines — a synchronous serve_batch() serves everything.
  std::uint64_t deadline_us = 0;
};

struct QueryResult {
  QueryOutcome outcome = QueryOutcome::kServed;
  /// Hop distance u → v (route queries: the served path's length);
  /// kUnreachable when no path exists or the query was shed.
  Dist distance = kUnreachable;
  /// Route queries only: the path, empty if unreachable or shed.
  Path path;
  /// Submit-to-completion latency (concurrent path) or batch-call latency
  /// (synchronous path), microseconds.
  double latency_us = 0.0;
};

struct ServeOptions {
  /// Distance rows kept in the LRU cache.
  std::size_t cache_rows = 256;
  /// Queries drained per dispatch; larger windows coalesce better but add
  /// queueing latency under saturation.
  std::size_t batch_window = 4096;
  AdmissionOptions admission;
  /// Tie-break seed for lazily built route tables.
  std::uint64_t seed = 1;
};

/// Monotonic tallies, readable concurrently with serving. Conservation:
/// queries == served + shed_admission + shed_deadline once the engine is
/// drained.
struct ServeStats {
  std::uint64_t queries = 0;
  std::uint64_t distance_queries = 0;
  std::uint64_t route_queries = 0;
  std::uint64_t served = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced_sources = 0;  ///< distinct BFS endpoints swept
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t route_rows_filled = 0;
  std::uint64_t shed_admission = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t unreachable = 0;
};

class QueryEngine {
 public:
  /// Borrows `h` (typically a built spanner); it must outlive the engine.
  explicit QueryEngine(const Graph& h, ServeOptions options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // --- synchronous batched path ------------------------------------------
  /// Serves every query (no admission control, no deadlines): coalesces by
  /// BFS endpoint, sweeps cache misses through 64-wide MS-BFS batches,
  /// fills route rows lazily, and returns results in input order. Safe to
  /// call from any thread (internally serialized).
  std::vector<QueryResult> serve_batch(std::span<const Query> queries);

  /// One-query convenience wrapper over serve_batch.
  QueryResult serve_one(const Query& query);

  // --- concurrent path ----------------------------------------------------
  /// Starts the dispatcher thread. Idempotent.
  void start();
  /// Drains the pending queue, then stops the dispatcher. Idempotent;
  /// also run by the destructor.
  void stop();

  /// Enqueues a query for batched dispatch. If the pending queue is full
  /// the returned future is already resolved with kShedAdmission; if the
  /// query's deadline passes before its batch is drained it resolves with
  /// kShedDeadline. Requires start().
  std::future<QueryResult> submit(const Query& query);

  ServeStats stats() const;
  const Graph& graph() const { return *h_; }
  std::size_t cached_rows() const;

 private:
  struct Pending {
    Query query;
    std::uint64_t enqueue_us = 0;
    std::uint64_t deadline_us = 0;  // absolute; 0 = none
    std::promise<QueryResult> promise;
  };

  void dispatcher_loop();
  /// The coalesced serving core (takes serve_mutex_); counts everything
  /// except query intake, which submit()/serve_batch() tally.
  std::vector<QueryResult> execute(std::span<const Query> queries);

  const Graph* h_;
  ServeOptions options_;
  AdmissionController admission_;

  // Serving state, guarded by serve_mutex_.
  mutable std::mutex serve_mutex_;
  LruCache<Vertex, std::vector<Dist>> rows_;
  LazyRoutingTables tables_;

  // Pending queue, guarded by queue_mutex_.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool running_ = false;
  bool stopping_ = false;
  std::thread dispatcher_;

  // Stats mirrors (relaxed atomics so stats() never takes serve_mutex_).
  std::atomic<std::uint64_t> n_queries_{0}, n_distance_{0}, n_route_{0},
      n_served_{0}, n_batches_{0}, n_sources_{0}, n_hits_{0}, n_misses_{0},
      n_evictions_{0}, n_rows_filled_{0}, n_shed_admission_{0},
      n_shed_deadline_{0}, n_unreachable_{0};
};

}  // namespace dcs::serve
