#include "serve/query_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "graph/traversal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dcs::serve {

namespace {

/// serve.latency.us uses the log-spaced latency preset (1–2–5 µs decades)
/// instead of the power-of-two default, which squashed the sub-millisecond
/// tail. Compat note: bucket edges in exported histograms changed when this
/// migrated (docs/observability.md).
std::span<const double> latency_bounds() {
  static const std::vector<double> bounds =
      obs::HistogramMetric::latency_bounds_us();
  return bounds;
}

/// Cached references into the process-wide registry (references stay valid
/// for the process lifetime, so the hot path never re-hashes a name).
struct ServeMetrics {
  obs::Counter& queries =
      obs::MetricsRegistry::instance().counter("serve.queries");
  obs::Counter& distance_queries =
      obs::MetricsRegistry::instance().counter("serve.distance_queries");
  obs::Counter& route_queries =
      obs::MetricsRegistry::instance().counter("serve.route_queries");
  obs::Counter& batches =
      obs::MetricsRegistry::instance().counter("serve.batches");
  obs::Counter& coalesced_sources =
      obs::MetricsRegistry::instance().counter("serve.coalesced_sources");
  obs::Counter& cache_hits =
      obs::MetricsRegistry::instance().counter("serve.cache.hits");
  obs::Counter& cache_misses =
      obs::MetricsRegistry::instance().counter("serve.cache.misses");
  obs::Counter& cache_evictions =
      obs::MetricsRegistry::instance().counter("serve.cache.evictions");
  obs::Gauge& cache_hit_ratio =
      obs::MetricsRegistry::instance().gauge("serve.cache.hit_ratio");
  obs::Counter& route_rows_filled =
      obs::MetricsRegistry::instance().counter("serve.route_rows_filled");
  obs::Counter& shed_admission =
      obs::MetricsRegistry::instance().counter("serve.shed.admission");
  obs::Counter& shed_deadline =
      obs::MetricsRegistry::instance().counter("serve.shed.deadline");
  obs::Counter& shed_degraded =
      obs::MetricsRegistry::instance().counter("serve.shed.degraded");
  obs::Counter& shed_shutdown =
      obs::MetricsRegistry::instance().counter("serve.shed.shutdown");
  obs::Counter& unreachable =
      obs::MetricsRegistry::instance().counter("serve.unreachable");
  obs::Counter& epoch_invalidations =
      obs::MetricsRegistry::instance().counter("serve.epoch.invalidations");
  obs::Counter& epoch_rows_dropped =
      obs::MetricsRegistry::instance().counter("serve.epoch.rows_dropped");
  obs::Counter& steals =
      obs::MetricsRegistry::instance().counter("serve.steals");
  obs::Counter& stolen_queries =
      obs::MetricsRegistry::instance().counter("serve.stolen_queries");
  obs::HistogramMetric& batch_queries =
      obs::MetricsRegistry::instance().histogram("serve.batch.queries");
  obs::HistogramMetric& latency_us =
      obs::MetricsRegistry::instance().histogram("serve.latency.us",
                                                 latency_bounds());
};

ServeMetrics& metrics() {
  static ServeMetrics m;
  return m;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// How long an idle dispatcher naps between steal-victim probes. Producers
/// notify their own shard's cv directly — and nudge one sibling's cv when
/// their shard's backlog is building — so this only backstops how fast an
/// idle shard notices a sibling backlog whose nudge was lost. The interval
/// doubles up to the max while the whole engine stays quiescent (a 1 ms
/// poll forever is ~1000 wakeups/sec/shard of idle CPU) and resets the
/// moment any work is seen.
constexpr std::chrono::milliseconds kStealPollInterval{1};
constexpr std::chrono::milliseconds kStealPollIntervalMax{64};

constexpr std::uint64_t kNoDeadline =
    std::numeric_limits<std::uint64_t>::max();

}  // namespace

std::vector<std::uint32_t> edf_select(std::span<const std::uint64_t> deadlines,
                                      std::size_t take) {
  const std::size_t n = deadlines.size();
  take = std::min(take, n);
  // Lexicographic (effective deadline, arrival index) keys: nth_element
  // partitions deterministically and the final sort's tie-break is the
  // arrival index — exactly stable_sort's FIFO-within-deadline order.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = {deadlines[i] == 0 ? kNoDeadline : deadlines[i],
               static_cast<std::uint32_t>(i)};
  }
  if (take < n) {
    std::nth_element(keys.begin(), keys.begin() + static_cast<long>(take),
                     keys.end());
  }
  std::sort(keys.begin(), keys.begin() + static_cast<long>(take));
  std::vector<std::uint32_t> out(take);
  for (std::size_t i = 0; i < take; ++i) out[i] = keys[i].second;
  return out;
}

QueryEngine::QueryEngine(SnapshotStore& store, ServeOptions options)
    : store_(&store),
      options_(options),
      admission_(options.admission),
      n_(store.num_vertices()),
      serving_(store.pin()),
      tables_(serving_->spanner, options.seed),
      sync_context_(std::max<std::size_t>(1, options.cache_rows)) {
  init_engine();
}

QueryEngine::QueryEngine(const Graph& h, ServeOptions options)
    : owned_store_(std::make_unique<SnapshotStore>(h, h)),
      store_(owned_store_.get()),
      options_(options),
      admission_(options.admission),
      n_(h.num_vertices()),
      serving_(store_->pin()),
      tables_(serving_->spanner, options.seed),
      sync_context_(std::max<std::size_t>(1, options.cache_rows)) {
  init_engine();
}

void QueryEngine::init_engine() {
  serving_epoch_.store(serving_->epoch, std::memory_order_relaxed);
  n_epochs_adopted_.store(1, std::memory_order_relaxed);
  rebind_serving_graph();
  const std::size_t count = std::max<std::size_t>(1, options_.dispatchers);
  const std::size_t cap = std::max<std::size_t>(1, options_.cache_rows);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  for (std::size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>(cap);
    const std::string prefix = "serve.shard." + std::to_string(i) + ".";
    shard->c_queries = &reg.counter(prefix + "queries");
    shard->c_batches = &reg.counter(prefix + "batches");
    shard->c_steals = &reg.counter(prefix + "steals");
    shard->c_stolen = &reg.counter(prefix + "stolen_queries");
    shards_.push_back(std::move(shard));
  }
}

QueryEngine::~QueryEngine() { stop(); }

void QueryEngine::rebind_serving_graph() {
  renumbered_ = options_.renumber != VertexOrder::kOriginal;
  if (renumbered_) {
    RenumberedGraph rg = serving_->spanner.renumber(options_.renumber);
    internal_spanner_ = std::move(rg.graph);
    renum_ = std::move(rg.map);
    tables_.reset(internal_spanner_);
  } else {
    tables_.reset(serving_->spanner);
  }
}

QueryResult QueryEngine::serve_one(const Query& query) {
  return serve_batch({&query, 1}).front();
}

std::vector<QueryResult> QueryEngine::serve_batch(
    std::span<const Query> queries) {
  std::size_t distance = 0;
  for (const Query& q : queries) {
    if (q.kind == QueryKind::kDistance) ++distance;
  }
  n_queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  n_distance_.fetch_add(distance, std::memory_order_relaxed);
  n_route_.fetch_add(queries.size() - distance, std::memory_order_relaxed);
  metrics().queries.inc(queries.size());
  metrics().distance_queries.inc(distance);
  metrics().route_queries.inc(queries.size() - distance);
  // Sync callers share one context; dispatcher shards keep running on
  // theirs concurrently.
  std::lock_guard sync(sync_mutex_);
  if (!options_.trace.exemplars) return execute(queries, sync_context_, 0);

  // Traced synchronous path: the batch-call latency is the whole story (no
  // queue/dispatch phases), so the whole batch shares one total_us. Ids come
  // from one block reservation and exemplars go through one offer_batch —
  // per-query cost stays a couple of stores, not an atomic plus a mutex
  // (the ≤3% tracing-overhead gate in bench_serve holds the line).
  obs::RequestTracer& tracer = obs::RequestTracer::instance();
  BatchMeta meta;
  std::vector<QueryResult> results = execute(queries, sync_context_, 0, &meta);
  const double done_obs = obs::Trace::now_us();
  const double total_us = done_obs - meta.start_obs_us;
  const std::uint64_t first_id = tracer.next_trace_id_block(
      std::max<std::uint64_t>(1, results.size()));
  for (std::size_t i = 0; i < results.size(); ++i)
    results[i].trace_id = first_id + i;
  if (total_us >= tracer.threshold_us()) {
    // Every result shares total_us here, so once the ring is full only the
    // newest `capacity` of this batch can survive it — skip building the
    // rest. A live Trace session is the exception: span chains are emitted
    // per offered exemplar, so it gets the whole batch.
    std::size_t first = 0;
    if (!obs::Trace::active()) {
      const std::size_t cap = tracer.capacity();
      if (results.size() > cap) first = results.size() - cap;
    }
    // Scratch reused across batches: the exemplar block runs on every
    // above-threshold batch, and a fresh allocation per batch shows up in
    // the overhead gate.
    static thread_local std::vector<obs::RequestExemplar> batch;
    batch.assign(results.size() - first, obs::RequestExemplar{});
    for (std::size_t i = first; i < results.size(); ++i) {
      const QueryResult& r = results[i];
      obs::RequestExemplar& ex = batch[i - first];
      ex.trace_id = r.trace_id;
      ex.batch_id = meta.batch_id;
      ex.epoch = r.epoch;
      ex.kind = static_cast<std::uint32_t>(queries[i].kind);
      ex.outcome = static_cast<std::uint32_t>(r.outcome);
      ex.dispatcher = r.dispatcher;
      ex.cache_hit = r.cache_hit;
      ex.start_us = meta.start_obs_us;
      ex.execute_us = r.breakdown.execute_us;
      ex.row_fill_us = r.breakdown.row_fill_us;
      ex.total_us = total_us;
    }
    tracer.offer_batch(batch);
  }
  return results;
}

void QueryEngine::maybe_adopt(std::shared_lock<std::shared_mutex>& lock) {
  // Fast path: two atomic loads per batch, no store mutex, no writer lock.
  // N dispatchers at steady epoch cost nothing here.
  if (store_->current_epoch() ==
      serving_epoch_.load(std::memory_order_acquire)) {
    return;
  }
  lock.unlock();
  {
    std::unique_lock exclusive(substrate_mutex_);
    adopt_locked();
  }
  lock.lock();
}

void QueryEngine::adopt_locked() {
  // pin_if_newer is the once-per-epoch guarantee: of the dispatchers that
  // raced to this exclusive section, the first pins and adopts; the rest
  // see their epoch already current and return without re-pinning,
  // re-dropping, or re-binding (the store counts their skips).
  SnapshotRef latest = store_->pin_if_newer(serving_->epoch);
  if (latest == nullptr) return;
  // The caches were materialized against the previous epoch's topology;
  // none of their contents may answer queries on this one. (The injected
  // stale-cache bug skips exactly this drop — the soak harness's
  // query-certified invariant exists to catch it.)
  const std::size_t dropped = cached_rows_locked();
  if (!stale_cache_bug_.load(std::memory_order_relaxed)) {
    sync_context_.rows.clear();
    for (auto& shard : shards_) shard->context.rows.clear();
  }
  // Re-sync the lock-free row-count mirror and the owner watermarks: every
  // executor is quiescent under this exclusive lock, so the recomputed sum
  // is exact (and nonzero on the injected stale-cache path, which keeps
  // its rows).
  sync_context_.rows_exported = sync_context_.rows.size();
  for (auto& shard : shards_)
    shard->context.rows_exported = shard->context.rows.size();
  n_cached_rows_.store(static_cast<std::int64_t>(cached_rows_locked()),
                       std::memory_order_relaxed);
  serving_ = std::move(latest);
  rebind_serving_graph();
  serving_epoch_.store(serving_->epoch, std::memory_order_release);
  n_epochs_adopted_.fetch_add(1, std::memory_order_relaxed);
  ServeMetrics& m = metrics();
  m.epoch_invalidations.inc();
  m.epoch_rows_dropped.inc(dropped);
  obs::FlightRecorder::instance().record(obs::FlightEventKind::kEpochAdopt,
                                         "query-engine", serving_->epoch,
                                         dropped);
}

bool QueryEngine::should_shed_degraded() const {
  const SpannerCertificate& cert = serving_->certificate;
  if (cert.status == GuaranteeStatus::kLost) return true;
  if (options_.require_fresh_certificate && !cert.fresh) return true;
  return static_cast<int>(cert.ladder) >= static_cast<int>(options_.shed_at);
}

std::vector<QueryResult> QueryEngine::execute(std::span<const Query> queries,
                                              ServeContext& ctx,
                                              std::uint32_t dispatcher_id,
                                              BatchMeta* meta) {
  std::shared_lock lock(substrate_mutex_);
  DCS_TRACE_SPAN("serve_batch");
  Timer batch_timer;
  const double start_obs_us = obs::Trace::now_us();
  ServeMetrics& m = metrics();
  n_batches_.fetch_add(1, std::memory_order_relaxed);
  m.batches.inc();
  m.batch_queries.record(static_cast<double>(queries.size()));

  maybe_adopt(lock);
  const std::uint64_t epoch = serving_->epoch;
  if (meta != nullptr) {
    meta->batch_id = options_.trace.exemplars
                         ? obs::RequestTracer::instance().next_batch_id()
                         : 0;
    meta->epoch = epoch;
    meta->start_obs_us = start_obs_us;
  }
  std::vector<QueryResult> results(queries.size());
  for (QueryResult& r : results) r.dispatcher = dispatcher_id;

  // Graceful degradation: the pinned certificate is below the serving
  // policy, so the whole batch sheds with a structured reason instead of
  // stalling behind the repair plane or serving uncertified answers.
  if (should_shed_degraded()) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      DCS_REQUIRE(queries[i].u < n_ && queries[i].v < n_,
                  "query vertex out of range");
      results[i].outcome = QueryOutcome::kShedDegraded;
      results[i].epoch = epoch;
    }
    n_shed_degraded_.fetch_add(queries.size(), std::memory_order_relaxed);
    m.shed_degraded.inc(queries.size());
    obs::FlightRecorder::instance().record(obs::FlightEventKind::kShed,
                                           "degraded", queries.size(), epoch);
    const double elapsed_us = batch_timer.seconds() * 1e6;
    for (QueryResult& r : results) r.latency_us = elapsed_us;
    return results;
  }

  // Sweeps run on the internal (cache-ordered) substrate when renumbering
  // is on; queries and answers cross the boundary through to_int/to_ext.
  // Cached rows are keyed and indexed in internal IDs so a row survives
  // exactly as long as its substrate does.
  const Graph& h = renumbered_ ? internal_spanner_ : serving_->spanner;
  const auto to_int = [this](Vertex x) {
    return renumbered_ ? renum_.internal(x) : x;
  };
  std::uint64_t unreachable = 0;
  const auto answer_distance = [&](QueryResult& r, Dist d) {
    r.distance = d;
    if (d == kUnreachable) ++unreachable;
  };

  // Phase 1: coalesce. Distance queries are keyed by their BFS source;
  // cached rows answer immediately, misses group per distinct source.
  // Route queries are keyed by destination (a next-hop row is per-dest).
  std::unordered_map<Vertex, std::vector<std::size_t>> miss_by_source;
  std::vector<Vertex> missing_sources;
  std::vector<std::size_t> route_indices;
  std::vector<Vertex> route_dests;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    DCS_REQUIRE(q.u < n_ && q.v < n_, "query vertex out of range");
    if (q.kind == QueryKind::kDistance) {
      const Vertex iu = to_int(q.u);
      if (const std::vector<Dist>* row = ctx.rows.find(iu)) {
        results[i].cache_hit = true;
        answer_distance(results[i], (*row)[to_int(q.v)]);
      } else {
        const auto [it, fresh] = miss_by_source.try_emplace(iu);
        if (fresh) missing_sources.push_back(iu);
        it->second.push_back(i);
      }
    } else {
      route_indices.push_back(i);
      route_dests.push_back(to_int(q.v));
    }
  }

  // Phase 2: one 64-wide MS-BFS sweep per chunk of distinct missing
  // sources. A single-chunk batch (the common closed-loop shape) sweeps
  // inline on this thread: the shared pool admits one top-level batch at a
  // time, so routing every sweep through it would serialize the dispatcher
  // shards right back into one lane. Multi-chunk batches still fan out on
  // the pool. Materialized rows land in locals first so eviction order
  // cannot snatch a row before its queries are answered.
  if (!missing_sources.empty()) {
    n_sources_.fetch_add(missing_sources.size(), std::memory_order_relaxed);
    m.coalesced_sources.inc(missing_sources.size());
    const std::size_t num_chunks =
        (missing_sources.size() + kMsBfsBatch - 1) / kMsBfsBatch;
    std::vector<std::vector<Dist>> fresh_rows(missing_sources.size());
    const auto sweep_chunks = [&](std::size_t lo, std::size_t hi) {
      auto& scratch = traversal_scratch();
      for (std::size_t c = lo; c < hi; ++c) {
        const std::size_t first = c * kMsBfsBatch;
        const std::size_t count =
            std::min(kMsBfsBatch, missing_sources.size() - first);
        const std::span<const Vertex> sweep(missing_sources.data() + first,
                                            count);
        const MsBfsView view =
            multi_source_bfs(h, sweep, kUnreachable, &scratch);
        for (std::size_t i = 0; i < count; ++i) {
          std::vector<Dist>& row = fresh_rows[first + i];
          row.resize(n_);
          for (Vertex v = 0; v < n_; ++v) row[v] = view.at(i, v);
        }
      }
    };
    if (num_chunks == 1) {
      sweep_chunks(0, 1);
    } else {
      parallel_chunks(0, num_chunks,
                      [&](std::size_t lo, std::size_t hi, std::size_t) {
                        sweep_chunks(lo, hi);
                      });
    }
    for (std::size_t s = 0; s < missing_sources.size(); ++s) {
      const Vertex u = missing_sources[s];
      for (const std::size_t qi : miss_by_source[u]) {
        answer_distance(results[qi], fresh_rows[s][to_int(queries[qi].v)]);
      }
      ctx.rows.insert(u, std::move(fresh_rows[s]));
    }
  }

  // The sweep (phases 1–2) is done; everything after this stamp is route
  // row fill. Batch phases are attributed whole to each query — see
  // QueryLatencyBreakdown.
  const double sweep_done_us = batch_timer.seconds() * 1e6;

  // Phase 3: routes. Lazily fill the next-hop rows for this batch's
  // distinct destinations, then walk each path. tables_ is shared across
  // contexts (rows are substrate-keyed, not context-keyed) and not
  // internally synchronized, so the fill+walk serializes on route_mutex_.
  if (!route_indices.empty()) {
    std::lock_guard route_lock(route_mutex_);
    const std::size_t before = tables_.rows_filled();
    tables_.fill_rows(route_dests);
    const std::size_t filled = tables_.rows_filled() - before;
    n_rows_filled_.fetch_add(filled, std::memory_order_relaxed);
    m.route_rows_filled.inc(filled);
    for (const std::size_t qi : route_indices) {
      const Query& q = queries[qi];
      QueryResult& r = results[qi];
      r.path = tables_.route(to_int(q.u), to_int(q.v));
      if (r.path.empty()) {
        ++unreachable;
        r.distance = kUnreachable;
      } else {
        // The walk happened in internal IDs; the answer leaves the engine
        // in the caller's (original) ID space.
        if (renumbered_) {
          for (Vertex& p : r.path) p = renum_.external(p);
        }
        r.distance = static_cast<Dist>(path_length(r.path));
      }
    }
  }

  n_unreachable_.fetch_add(unreachable, std::memory_order_relaxed);
  m.unreachable.inc(unreachable);
  n_served_.fetch_add(queries.size(), std::memory_order_relaxed);

  // Export this context's cache-tally deltas. The watermarks live in the
  // context and only its owner writes them, so concurrent executors each
  // export exactly their own delta — the shared-counter read-modify-write
  // this replaces double-counted under concurrency.
  const std::uint64_t d_hits = ctx.rows.hits() - ctx.hits_exported;
  const std::uint64_t d_misses = ctx.rows.misses() - ctx.misses_exported;
  const std::uint64_t d_evictions =
      ctx.rows.evictions() - ctx.evictions_exported;
  ctx.hits_exported = ctx.rows.hits();
  ctx.misses_exported = ctx.rows.misses();
  ctx.evictions_exported = ctx.rows.evictions();
  const std::size_t rows_now = ctx.rows.size();
  n_cached_rows_.fetch_add(static_cast<std::int64_t>(rows_now) -
                               static_cast<std::int64_t>(ctx.rows_exported),
                           std::memory_order_relaxed);
  ctx.rows_exported = rows_now;
  m.cache_hits.inc(d_hits);
  m.cache_misses.inc(d_misses);
  m.cache_evictions.inc(d_evictions);
  const std::uint64_t hits_total =
      n_hits_.fetch_add(d_hits, std::memory_order_relaxed) + d_hits;
  const std::uint64_t misses_total =
      n_misses_.fetch_add(d_misses, std::memory_order_relaxed) + d_misses;
  n_evictions_.fetch_add(d_evictions, std::memory_order_relaxed);
  const std::uint64_t lookups = hits_total + misses_total;
  if (lookups > 0) {
    m.cache_hit_ratio.set(static_cast<double>(hits_total) /
                          static_cast<double>(lookups));
  }

  const double elapsed_us = batch_timer.seconds() * 1e6;
  const double row_fill_us = elapsed_us - sweep_done_us;
  for (std::size_t i = 0; i < results.size(); ++i) {
    QueryResult& r = results[i];
    r.epoch = epoch;
    r.latency_us = elapsed_us;
    r.breakdown.execute_us = sweep_done_us;
    if (queries[i].kind == QueryKind::kRoute)
      r.breakdown.row_fill_us = row_fill_us;
  }
  return results;
}

void QueryEngine::start() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (running_.load()) return;
  stopping_.store(false);
  running_.store(true);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->dispatcher = std::thread([this, i] { dispatcher_loop(i); });
  }
  accepting_.store(true);
}

void QueryEngine::stop() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (!running_.load()) return;
  // Order matters for the shed-safety argument (see the file header):
  // accepting_ falls before stopping_ rises, so a producer that observes
  // the engine still accepting enqueued before any dispatcher could have
  // seen the stop.
  accepting_.store(false);
  stopping_.store(true);
  // Publish the stop under each shard's mutex before notifying. A bare
  // store+notify can land between a dispatcher's predicate check
  // (queue.empty() && !stopping_) and its cv.wait() — the notify is lost
  // and a single-shard dispatcher, which waits unbounded, sleeps forever
  // with this join() deadlocked behind it. Passing through the mutex
  // guarantees the dispatcher is either before its predicate check (and
  // will see stopping_) or already waiting (and receives the notify).
  for (auto& shard : shards_) {
    { std::lock_guard publish(shard->mutex); }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->dispatcher.joinable()) shard->dispatcher.join();
  }
  stopping_.store(false);
  running_.store(false);
}

bool QueryEngine::reserve_pending() {
  const std::size_t cap = options_.admission.queue_capacity;
  if (cap == 0) {
    pending_total_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  std::size_t cur = pending_total_.load(std::memory_order_relaxed);
  while (admission_.admit(cur)) {
    if (pending_total_.compare_exchange_weak(cur, cur + 1,
                                             std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

std::size_t QueryEngine::route_shard(const Query& query) {
  const std::size_t count = shards_.size();
  if (count == 1) return 0;
  if (options_.routing == ShardRouting::kHash) {
    // Source-affine: mix the query's BFS endpoint (splitmix64 finalizer)
    // so a repeat endpoint lands on the shard whose cache holds its row.
    std::uint64_t h = query.kind == QueryKind::kDistance ? query.u : query.v;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h % count;
  }
  // Two-choice least-loaded over a rotating pair of shards.
  const std::uint64_t r = rotor_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = r % count;
  const std::size_t b = (r + 1) % count;
  return shards_[a]->depth.load(std::memory_order_relaxed) <=
                 shards_[b]->depth.load(std::memory_order_relaxed)
             ? a
             : b;
}

std::future<QueryResult> QueryEngine::submit(const Query& query) {
  DCS_REQUIRE(query.u < n_ && query.v < n_, "query vertex out of range");
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();
  const std::uint64_t now = now_us();
  // The TraceContext is allocated here, before admission, so even a shed
  // request has an identity its caller can correlate.
  obs::TraceContext ctx;
  double enqueue_obs_us = 0.0;
  if (options_.trace.exemplars) {
    ctx.trace_id = obs::RequestTracer::instance().next_trace_id();
    enqueue_obs_us = obs::Trace::now_us();
  }
  bool admitted = false;
  bool shutdown = false;
  std::size_t depth_after = 0;
  const std::size_t shard_index = route_shard(query);
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard lock(shard.mutex);
    if (!accepting_.load()) {
      // The engine is not accepting (never started, stopping, or
      // stopped): shed with a terminal outcome instead of aborting the
      // producer. See the header for why this check under the shard mutex
      // cannot strand an enqueued query behind an exiting dispatcher.
      shutdown = true;
    } else if (reserve_pending()) {
      Pending pending;
      pending.query = query;
      pending.enqueue_us = now;
      pending.deadline_us = admission_.deadline_for(now, query.deadline_us);
      pending.ctx = ctx;
      pending.enqueue_obs_us = enqueue_obs_us;
      pending.promise = std::move(promise);
      shard.queue.push_back(std::move(pending));
      depth_after = shard.queue.size();
      shard.depth.store(depth_after, std::memory_order_relaxed);
      admitted = true;
    }
  }
  // Intake tallies are atomics/registry counters; keeping them outside the
  // shard mutex keeps producers from serializing on bookkeeping.
  n_queries_.fetch_add(1, std::memory_order_relaxed);
  ServeMetrics& m = metrics();
  m.queries.inc();
  if (query.kind == QueryKind::kDistance) {
    n_distance_.fetch_add(1, std::memory_order_relaxed);
    m.distance_queries.inc();
  } else {
    n_route_.fetch_add(1, std::memory_order_relaxed);
    m.route_queries.inc();
  }
  if (admitted) {
    shard.cv.notify_one();
    if (depth_after > 1 && shards_.size() > 1) {
      // Backlog building behind a busy dispatcher: nudge one sibling so an
      // idle (possibly backed-off) dispatcher steals now rather than on
      // its next poll. Lossy by design — no sibling mutex is taken, so a
      // nudge landing between a sibling's predicate check and its wait can
      // vanish; the backed-off steal poll is the backstop.
      const std::size_t count = shards_.size();
      const std::uint64_t r =
          nudge_rotor_.fetch_add(1, std::memory_order_relaxed);
      shards_[(shard_index + 1 + r % (count - 1)) % count]->cv.notify_one();
    }
  } else if (shutdown) {
    n_shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
    m.shed_shutdown.inc();
    obs::FlightRecorder::instance().record(obs::FlightEventKind::kShed,
                                           "shutdown", 1, ctx.trace_id);
    QueryResult shed;
    shed.outcome = QueryOutcome::kShedShutdown;
    shed.trace_id = ctx.trace_id;
    promise.set_value(std::move(shed));
  } else {
    n_shed_admission_.fetch_add(1, std::memory_order_relaxed);
    m.shed_admission.inc();
    obs::FlightRecorder::instance().record(obs::FlightEventKind::kShed,
                                           "admission", 1, ctx.trace_id);
    QueryResult shed;
    shed.outcome = QueryOutcome::kShedAdmission;
    shed.trace_id = ctx.trace_id;
    promise.set_value(std::move(shed));
  }
  return future;
}

void QueryEngine::drain_window(Shard& shard, std::vector<Pending>& out) {
  const std::size_t window =
      options_.batch_window == 0 ? shard.queue.size() : options_.batch_window;
  const std::size_t take = std::min(shard.queue.size(), window);
  out.reserve(out.size() + take);
  // EDF: when the backlog exceeds one window, drain the most deadline-
  // pressed queries first so they are not shed behind fresh arrivals that
  // could afford to wait. edf_select keeps this O(Q) under the shard
  // mutex instead of stable_sorting the whole backlog.
  if (options_.edf_dispatch && take < shard.queue.size()) {
    std::vector<std::uint64_t> deadlines;
    deadlines.reserve(shard.queue.size());
    for (const Pending& p : shard.queue) deadlines.push_back(p.deadline_us);
    const std::vector<std::uint32_t> selected = edf_select(deadlines, take);
    std::vector<char> taken(shard.queue.size(), 0);
    for (const std::uint32_t idx : selected) {
      out.push_back(std::move(shard.queue[idx]));
      taken[idx] = 1;
    }
    // Compact the survivors in place; their relative (arrival) order is
    // preserved, which is what keeps the FIFO tie-break stable across
    // successive drains.
    std::size_t w = 0;
    for (std::size_t r = 0; r < shard.queue.size(); ++r) {
      if (taken[r]) continue;
      if (w != r) shard.queue[w] = std::move(shard.queue[r]);
      ++w;
    }
    shard.queue.resize(w);
  } else {
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(shard.queue.front()));
      shard.queue.pop_front();
    }
  }
  shard.depth.store(shard.queue.size(), std::memory_order_relaxed);
  pending_total_.fetch_sub(take, std::memory_order_relaxed);
}

bool QueryEngine::steal_batch(std::size_t thief_index,
                              std::vector<Pending>& out) {
  // Deepest-victim probe over the lock-free depth mirrors (racy reads are
  // fine: this is a heuristic, correctness is re-checked under the
  // victim's mutex).
  std::size_t victim_index = thief_index;
  std::size_t best = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i == thief_index) continue;
    const std::size_t d = shards_[i]->depth.load(std::memory_order_relaxed);
    if (d > best) {
      best = d;
      victim_index = i;
    }
  }
  if (victim_index == thief_index) return false;
  Shard& victim = *shards_[victim_index];
  std::size_t take = 0;
  {
    // Only the victim's mutex is held — never two shard mutexes at once,
    // so thieves cannot deadlock with each other or with producers.
    std::lock_guard lock(victim.mutex);
    if (victim.queue.empty()) return false;
    const std::size_t window = options_.batch_window == 0
                                   ? victim.queue.size()
                                   : options_.batch_window;
    take = std::min((victim.queue.size() + 1) / 2, window);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(victim.queue.back()));
      victim.queue.pop_back();
    }
    victim.depth.store(victim.queue.size(), std::memory_order_relaxed);
  }
  // The back of the deque is the newest work: the victim keeps the oldest
  // entries (which it drains next anyway) and the thief's batch stays in
  // FIFO order after the reversal. Stolen work skips EDF selection — it
  // executes immediately, which is sooner than any EDF position.
  std::reverse(out.end() - static_cast<long>(take), out.end());
  pending_total_.fetch_sub(take, std::memory_order_relaxed);
  n_steals_.fetch_add(1, std::memory_order_relaxed);
  n_stolen_.fetch_add(take, std::memory_order_relaxed);
  ServeMetrics& m = metrics();
  m.steals.inc();
  m.stolen_queries.inc(take);
  Shard& thief = *shards_[thief_index];
  thief.c_steals->inc();
  thief.c_stolen->inc(take);
  // The victim id is 1-based like every other serve-plane dispatcher id
  // (results, exemplars, deadline-shed events; 0 = the sync path).
  obs::FlightRecorder::instance().record(obs::FlightEventKind::kCustom,
                                         "work-steal", take, victim_index + 1);
  return true;
}

void QueryEngine::dispatcher_loop(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<Pending> drained;
  std::chrono::milliseconds idle_wait = kStealPollInterval;
  for (;;) {
    drained.clear();
    {
      std::unique_lock lock(shard.mutex);
      while (shard.queue.empty() && !stopping_.load()) {
        if (shards_.size() > 1) {
          // Idle: nap, then look for a sibling to steal from. A producer
          // landing on *this* shard wakes the cv immediately, and one
          // whose shard is backing up nudges a sibling's cv, so the nap
          // only backstops a lost nudge. While nothing turns up the nap
          // doubles toward the max — a quiescent engine converges to a
          // handful of wakeups per second instead of a 1 ms busy-poll.
          bool sibling_backlog = false;
          for (std::size_t i = 0; i < shards_.size(); ++i) {
            if (i != shard_index &&
                shards_[i]->depth.load(std::memory_order_relaxed) > 0) {
              sibling_backlog = true;
              break;
            }
          }
          if (sibling_backlog) break;
          shard.cv.wait_for(lock, idle_wait);
          idle_wait = std::min(idle_wait * 2, kStealPollIntervalMax);
        } else {
          shard.cv.wait(lock);
        }
      }
      if (!shard.queue.empty()) {
        drain_window(shard, drained);
      } else if (stopping_.load()) {
        // Own queue drained and the engine is stopping. Siblings drain
        // their own queues before exiting, so no backlog is stranded.
        return;
      }
    }
    if (drained.empty()) {
      // Broke out of the wait on a sibling's backlog: steal outside our
      // own mutex.
      if (!steal_batch(shard_index, drained)) continue;
    }
    idle_wait = kStealPollInterval;  // work seen: restore steal latency
    process_batch(shard_index, drained);
  }
}

void QueryEngine::process_batch(std::size_t shard_index,
                                std::vector<Pending>& drained) {
  Shard& shard = *shards_[shard_index];
  const std::uint32_t dispatcher_id =
      static_cast<std::uint32_t>(shard_index) + 1;
  ServeMetrics& m = metrics();
  shard.c_queries->inc(drained.size());

  // Deadline shedding: a query whose budget elapsed while queued gets a
  // terminal outcome now instead of consuming a sweep it cannot use.
  const std::uint64_t drain_time = now_us();
  const double drain_obs_us = obs::Trace::now_us();
  obs::RequestTracer& tracer = obs::RequestTracer::instance();
  std::vector<Query> live;
  std::vector<std::size_t> live_index;
  live.reserve(drained.size());
  std::uint64_t deadline_sheds = 0;
  for (std::size_t i = 0; i < drained.size(); ++i) {
    if (AdmissionController::expired(drain_time, drained[i].deadline_us)) {
      n_shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      m.shed_deadline.inc();
      ++deadline_sheds;
      QueryResult shed;
      shed.outcome = QueryOutcome::kShedDeadline;
      shed.latency_us =
          static_cast<double>(drain_time - drained[i].enqueue_us);
      shed.trace_id = drained[i].ctx.trace_id;
      shed.dispatcher = dispatcher_id;
      if (shed.trace_id != 0) {
        shed.breakdown.queue_us = drain_obs_us - drained[i].enqueue_obs_us;
        obs::RequestExemplar ex;
        ex.trace_id = shed.trace_id;
        ex.kind = static_cast<std::uint32_t>(drained[i].query.kind);
        ex.outcome = static_cast<std::uint32_t>(shed.outcome);
        ex.dispatcher = dispatcher_id;
        ex.start_us = drained[i].enqueue_obs_us;
        ex.queue_us = shed.breakdown.queue_us;
        ex.total_us = shed.breakdown.queue_us;
        tracer.offer(ex);
      }
      drained[i].promise.set_value(std::move(shed));
    } else {
      live.push_back(drained[i].query);
      live_index.push_back(i);
    }
  }
  if (deadline_sheds > 0) {
    obs::FlightRecorder::instance().record(obs::FlightEventKind::kShed,
                                           "deadline", deadline_sheds,
                                           dispatcher_id);
  }
  if (live.empty()) return;

  try {
    shard.c_batches->inc();
    BatchMeta meta;
    std::vector<QueryResult> results =
        execute(live, shard.context, dispatcher_id, &meta);
    const std::uint64_t done = now_us();
    const double done_obs_us = obs::Trace::now_us();
    const bool slo_on = obs::metrics_enabled();
    for (std::size_t j = 0; j < results.size(); ++j) {
      Pending& pending = drained[live_index[j]];
      results[j].latency_us = static_cast<double>(done - pending.enqueue_us);
      m.latency_us.record(results[j].latency_us);
      if (slo_on)
        obs::slo_tracker("serve.latency").record(results[j].latency_us);
      if (pending.ctx.trace_id != 0) {
        QueryResult& r = results[j];
        r.trace_id = pending.ctx.trace_id;
        r.breakdown.queue_us = drain_obs_us - pending.enqueue_obs_us;
        r.breakdown.dispatch_us = meta.start_obs_us - drain_obs_us;
        obs::RequestExemplar ex;
        ex.trace_id = r.trace_id;
        ex.batch_id = meta.batch_id;
        ex.epoch = r.epoch;
        ex.kind = static_cast<std::uint32_t>(pending.query.kind);
        ex.outcome = static_cast<std::uint32_t>(r.outcome);
        ex.dispatcher = dispatcher_id;
        ex.cache_hit = r.cache_hit;
        ex.start_us = pending.enqueue_obs_us;
        ex.queue_us = r.breakdown.queue_us;
        ex.dispatch_us = r.breakdown.dispatch_us;
        ex.execute_us = r.breakdown.execute_us;
        ex.row_fill_us = r.breakdown.row_fill_us;
        ex.total_us = done_obs_us - pending.enqueue_obs_us;
        tracer.offer(ex);
      }
      pending.promise.set_value(std::move(results[j]));
    }
  } catch (...) {
    // Defensive: queries are validated at submit(), but a failure here
    // must reach the waiters, not kill the dispatcher.
    for (const std::size_t idx : live_index) {
      drained[idx].promise.set_exception(std::current_exception());
    }
  }
}

ServeStats QueryEngine::stats() const {
  ServeStats s;
  s.queries = n_queries_.load(std::memory_order_relaxed);
  s.distance_queries = n_distance_.load(std::memory_order_relaxed);
  s.route_queries = n_route_.load(std::memory_order_relaxed);
  s.served = n_served_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.coalesced_sources = n_sources_.load(std::memory_order_relaxed);
  s.cache_hits = n_hits_.load(std::memory_order_relaxed);
  s.cache_misses = n_misses_.load(std::memory_order_relaxed);
  s.cache_evictions = n_evictions_.load(std::memory_order_relaxed);
  s.route_rows_filled = n_rows_filled_.load(std::memory_order_relaxed);
  s.shed_admission = n_shed_admission_.load(std::memory_order_relaxed);
  s.shed_deadline = n_shed_deadline_.load(std::memory_order_relaxed);
  s.shed_degraded = n_shed_degraded_.load(std::memory_order_relaxed);
  s.shed_shutdown = n_shed_shutdown_.load(std::memory_order_relaxed);
  s.unreachable = n_unreachable_.load(std::memory_order_relaxed);
  s.epochs_adopted = n_epochs_adopted_.load(std::memory_order_relaxed);
  s.steals = n_steals_.load(std::memory_order_relaxed);
  s.stolen_queries = n_stolen_.load(std::memory_order_relaxed);
  return s;
}

std::size_t QueryEngine::cached_rows_locked() const {
  std::size_t total = sync_context_.rows.size();
  for (const auto& shard : shards_) total += shard->context.rows.size();
  return total;
}

std::size_t QueryEngine::cached_rows() const {
  // Lock-free mirror, like the other stats: each executor folds its row-
  // count delta in at batch end (owner-only watermark) and adoption
  // re-syncs it under the exclusive lock. Taking the exclusive substrate
  // lock here instead would turn every introspection poll into a barrier
  // that stalls all dispatcher shards and sync callers.
  const std::int64_t v = n_cached_rows_.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

}  // namespace dcs::serve
