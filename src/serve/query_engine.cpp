#include "serve/query_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_map>
#include <utility>

#include "graph/traversal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace dcs::serve {

namespace {

/// serve.latency.us uses the log-spaced latency preset (1–2–5 µs decades)
/// instead of the power-of-two default, which squashed the sub-millisecond
/// tail. Compat note: bucket edges in exported histograms changed when this
/// migrated (docs/observability.md).
std::span<const double> latency_bounds() {
  static const std::vector<double> bounds =
      obs::HistogramMetric::latency_bounds_us();
  return bounds;
}

/// Cached references into the process-wide registry (references stay valid
/// for the process lifetime, so the hot path never re-hashes a name).
struct ServeMetrics {
  obs::Counter& queries =
      obs::MetricsRegistry::instance().counter("serve.queries");
  obs::Counter& distance_queries =
      obs::MetricsRegistry::instance().counter("serve.distance_queries");
  obs::Counter& route_queries =
      obs::MetricsRegistry::instance().counter("serve.route_queries");
  obs::Counter& batches =
      obs::MetricsRegistry::instance().counter("serve.batches");
  obs::Counter& coalesced_sources =
      obs::MetricsRegistry::instance().counter("serve.coalesced_sources");
  obs::Counter& cache_hits =
      obs::MetricsRegistry::instance().counter("serve.cache.hits");
  obs::Counter& cache_misses =
      obs::MetricsRegistry::instance().counter("serve.cache.misses");
  obs::Counter& cache_evictions =
      obs::MetricsRegistry::instance().counter("serve.cache.evictions");
  obs::Gauge& cache_hit_ratio =
      obs::MetricsRegistry::instance().gauge("serve.cache.hit_ratio");
  obs::Counter& route_rows_filled =
      obs::MetricsRegistry::instance().counter("serve.route_rows_filled");
  obs::Counter& shed_admission =
      obs::MetricsRegistry::instance().counter("serve.shed.admission");
  obs::Counter& shed_deadline =
      obs::MetricsRegistry::instance().counter("serve.shed.deadline");
  obs::Counter& shed_degraded =
      obs::MetricsRegistry::instance().counter("serve.shed.degraded");
  obs::Counter& unreachable =
      obs::MetricsRegistry::instance().counter("serve.unreachable");
  obs::Counter& epoch_invalidations =
      obs::MetricsRegistry::instance().counter("serve.epoch.invalidations");
  obs::Counter& epoch_rows_dropped =
      obs::MetricsRegistry::instance().counter("serve.epoch.rows_dropped");
  obs::HistogramMetric& batch_queries =
      obs::MetricsRegistry::instance().histogram("serve.batch.queries");
  obs::HistogramMetric& latency_us =
      obs::MetricsRegistry::instance().histogram("serve.latency.us",
                                                 latency_bounds());
};

ServeMetrics& metrics() {
  static ServeMetrics m;
  return m;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

QueryEngine::QueryEngine(SnapshotStore& store, ServeOptions options)
    : store_(&store),
      options_(options),
      admission_(options.admission),
      n_(store.num_vertices()),
      serving_(store.pin()),
      rows_(std::max<std::size_t>(1, options.cache_rows)),
      tables_(serving_->spanner, options.seed) {
  serving_epoch_.store(serving_->epoch, std::memory_order_relaxed);
  n_epochs_adopted_.store(1, std::memory_order_relaxed);
  rebind_serving_graph();
}

QueryEngine::QueryEngine(const Graph& h, ServeOptions options)
    : owned_store_(std::make_unique<SnapshotStore>(h, h)),
      store_(owned_store_.get()),
      options_(options),
      admission_(options.admission),
      n_(h.num_vertices()),
      serving_(store_->pin()),
      rows_(std::max<std::size_t>(1, options.cache_rows)),
      tables_(serving_->spanner, options.seed) {
  serving_epoch_.store(serving_->epoch, std::memory_order_relaxed);
  n_epochs_adopted_.store(1, std::memory_order_relaxed);
  rebind_serving_graph();
}

QueryEngine::~QueryEngine() { stop(); }

void QueryEngine::rebind_serving_graph() {
  renumbered_ = options_.renumber != VertexOrder::kOriginal;
  if (renumbered_) {
    RenumberedGraph rg = serving_->spanner.renumber(options_.renumber);
    internal_spanner_ = std::move(rg.graph);
    renum_ = std::move(rg.map);
    tables_.reset(internal_spanner_);
  } else {
    tables_.reset(serving_->spanner);
  }
}

QueryResult QueryEngine::serve_one(const Query& query) {
  return serve_batch({&query, 1}).front();
}

std::vector<QueryResult> QueryEngine::serve_batch(
    std::span<const Query> queries) {
  std::size_t distance = 0;
  for (const Query& q : queries) {
    if (q.kind == QueryKind::kDistance) ++distance;
  }
  n_queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  n_distance_.fetch_add(distance, std::memory_order_relaxed);
  n_route_.fetch_add(queries.size() - distance, std::memory_order_relaxed);
  metrics().queries.inc(queries.size());
  metrics().distance_queries.inc(distance);
  metrics().route_queries.inc(queries.size() - distance);
  if (!options_.trace.exemplars) return execute(queries);

  // Traced synchronous path: the batch-call latency is the whole story (no
  // queue/dispatch phases), so the whole batch shares one total_us. Ids come
  // from one block reservation and exemplars go through one offer_batch —
  // per-query cost stays a couple of stores, not an atomic plus a mutex
  // (the ≤3% tracing-overhead gate in bench_serve holds the line).
  obs::RequestTracer& tracer = obs::RequestTracer::instance();
  BatchMeta meta;
  std::vector<QueryResult> results = execute(queries, &meta);
  const double done_obs = obs::Trace::now_us();
  const double total_us = done_obs - meta.start_obs_us;
  const std::uint64_t first_id = tracer.next_trace_id_block(
      std::max<std::uint64_t>(1, results.size()));
  for (std::size_t i = 0; i < results.size(); ++i)
    results[i].trace_id = first_id + i;
  if (total_us >= tracer.threshold_us()) {
    // Every result shares total_us here, so once the ring is full only the
    // newest `capacity` of this batch can survive it — skip building the
    // rest. A live Trace session is the exception: span chains are emitted
    // per offered exemplar, so it gets the whole batch.
    std::size_t first = 0;
    if (!obs::Trace::active()) {
      const std::size_t cap = tracer.capacity();
      if (results.size() > cap) first = results.size() - cap;
    }
    // Scratch reused across batches: the exemplar block runs on every
    // above-threshold batch, and a fresh allocation per batch shows up in
    // the overhead gate.
    static thread_local std::vector<obs::RequestExemplar> batch;
    batch.assign(results.size() - first, obs::RequestExemplar{});
    for (std::size_t i = first; i < results.size(); ++i) {
      const QueryResult& r = results[i];
      obs::RequestExemplar& ex = batch[i - first];
      ex.trace_id = r.trace_id;
      ex.batch_id = meta.batch_id;
      ex.epoch = r.epoch;
      ex.kind = static_cast<std::uint32_t>(queries[i].kind);
      ex.outcome = static_cast<std::uint32_t>(r.outcome);
      ex.cache_hit = r.cache_hit;
      ex.start_us = meta.start_obs_us;
      ex.execute_us = r.breakdown.execute_us;
      ex.row_fill_us = r.breakdown.row_fill_us;
      ex.total_us = total_us;
    }
    tracer.offer_batch(batch);
  }
  return results;
}

void QueryEngine::adopt_current_snapshot() {
  SnapshotRef latest = store_->pin();
  if (latest->epoch == serving_->epoch) return;
  // The caches were materialized against the previous epoch's topology;
  // none of their contents may answer queries on this one. (The injected
  // stale-cache bug skips exactly this drop — the soak harness's
  // query-certified invariant exists to catch it.)
  const std::size_t dropped = rows_.size();
  if (!stale_cache_bug_.load(std::memory_order_relaxed)) rows_.clear();
  serving_ = std::move(latest);
  rebind_serving_graph();
  serving_epoch_.store(serving_->epoch, std::memory_order_relaxed);
  n_epochs_adopted_.fetch_add(1, std::memory_order_relaxed);
  ServeMetrics& m = metrics();
  m.epoch_invalidations.inc();
  m.epoch_rows_dropped.inc(dropped);
  obs::FlightRecorder::instance().record(obs::FlightEventKind::kEpochAdopt,
                                         "query-engine", serving_->epoch,
                                         dropped);
}

bool QueryEngine::should_shed_degraded() const {
  const SpannerCertificate& cert = serving_->certificate;
  if (cert.status == GuaranteeStatus::kLost) return true;
  if (options_.require_fresh_certificate && !cert.fresh) return true;
  return static_cast<int>(cert.ladder) >= static_cast<int>(options_.shed_at);
}

std::vector<QueryResult> QueryEngine::execute(std::span<const Query> queries,
                                              BatchMeta* meta) {
  std::lock_guard lock(serve_mutex_);
  DCS_TRACE_SPAN("serve_batch");
  Timer batch_timer;
  const double start_obs_us = obs::Trace::now_us();
  ServeMetrics& m = metrics();
  n_batches_.fetch_add(1, std::memory_order_relaxed);
  m.batches.inc();
  m.batch_queries.record(static_cast<double>(queries.size()));

  adopt_current_snapshot();
  const std::uint64_t epoch = serving_->epoch;
  if (meta != nullptr) {
    meta->batch_id = options_.trace.exemplars
                         ? obs::RequestTracer::instance().next_batch_id()
                         : 0;
    meta->epoch = epoch;
    meta->start_obs_us = start_obs_us;
  }
  std::vector<QueryResult> results(queries.size());

  // Graceful degradation: the pinned certificate is below the serving
  // policy, so the whole batch sheds with a structured reason instead of
  // stalling behind the repair plane or serving uncertified answers.
  if (should_shed_degraded()) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      DCS_REQUIRE(queries[i].u < n_ && queries[i].v < n_,
                  "query vertex out of range");
      results[i].outcome = QueryOutcome::kShedDegraded;
      results[i].epoch = epoch;
    }
    n_shed_degraded_.fetch_add(queries.size(), std::memory_order_relaxed);
    m.shed_degraded.inc(queries.size());
    obs::FlightRecorder::instance().record(obs::FlightEventKind::kShed,
                                           "degraded", queries.size(), epoch);
    const double elapsed_us = batch_timer.seconds() * 1e6;
    for (QueryResult& r : results) r.latency_us = elapsed_us;
    return results;
  }

  // Sweeps run on the internal (cache-ordered) substrate when renumbering
  // is on; queries and answers cross the boundary through to_int/to_ext.
  // Cached rows are keyed and indexed in internal IDs so a row survives
  // exactly as long as its substrate does.
  const Graph& h = renumbered_ ? internal_spanner_ : serving_->spanner;
  const auto to_int = [this](Vertex x) {
    return renumbered_ ? renum_.internal(x) : x;
  };
  std::uint64_t unreachable = 0;
  const auto answer_distance = [&](QueryResult& r, Dist d) {
    r.distance = d;
    if (d == kUnreachable) ++unreachable;
  };

  // Phase 1: coalesce. Distance queries are keyed by their BFS source;
  // cached rows answer immediately, misses group per distinct source.
  // Route queries are keyed by destination (a next-hop row is per-dest).
  std::unordered_map<Vertex, std::vector<std::size_t>> miss_by_source;
  std::vector<Vertex> missing_sources;
  std::vector<std::size_t> route_indices;
  std::vector<Vertex> route_dests;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    DCS_REQUIRE(q.u < n_ && q.v < n_, "query vertex out of range");
    if (q.kind == QueryKind::kDistance) {
      const Vertex iu = to_int(q.u);
      if (const std::vector<Dist>* row = rows_.find(iu)) {
        results[i].cache_hit = true;
        answer_distance(results[i], (*row)[to_int(q.v)]);
      } else {
        const auto [it, fresh] = miss_by_source.try_emplace(iu);
        if (fresh) missing_sources.push_back(iu);
        it->second.push_back(i);
      }
    } else {
      route_indices.push_back(i);
      route_dests.push_back(to_int(q.v));
    }
  }

  // Phase 2: one 64-wide MS-BFS sweep per chunk of distinct missing
  // sources — a whole word of concurrent queries amortizes each pass over
  // the adjacency of H. Chunks run on the shared pool; materialized rows
  // land in locals first so eviction order cannot snatch a row before its
  // queries are answered.
  if (!missing_sources.empty()) {
    n_sources_.fetch_add(missing_sources.size(), std::memory_order_relaxed);
    m.coalesced_sources.inc(missing_sources.size());
    const std::size_t num_chunks =
        (missing_sources.size() + kMsBfsBatch - 1) / kMsBfsBatch;
    std::vector<std::vector<Dist>> fresh_rows(missing_sources.size());
    parallel_chunks(
        0, num_chunks, [&](std::size_t lo, std::size_t hi, std::size_t) {
          auto& scratch = traversal_scratch();
          for (std::size_t c = lo; c < hi; ++c) {
            const std::size_t first = c * kMsBfsBatch;
            const std::size_t count =
                std::min(kMsBfsBatch, missing_sources.size() - first);
            const std::span<const Vertex> sweep(
                missing_sources.data() + first, count);
            const MsBfsView view =
                multi_source_bfs(h, sweep, kUnreachable, &scratch);
            for (std::size_t i = 0; i < count; ++i) {
              std::vector<Dist>& row = fresh_rows[first + i];
              row.resize(n_);
              for (Vertex v = 0; v < n_; ++v) row[v] = view.at(i, v);
            }
          }
        });
    for (std::size_t s = 0; s < missing_sources.size(); ++s) {
      const Vertex u = missing_sources[s];
      for (const std::size_t qi : miss_by_source[u]) {
        answer_distance(results[qi], fresh_rows[s][to_int(queries[qi].v)]);
      }
      rows_.insert(u, std::move(fresh_rows[s]));
    }
  }

  // The sweep (phases 1–2) is done; everything after this stamp is route
  // row fill. Batch phases are attributed whole to each query — see
  // QueryLatencyBreakdown.
  const double sweep_done_us = batch_timer.seconds() * 1e6;

  // Phase 3: routes. Lazily fill the next-hop rows for this batch's
  // distinct destinations (parallel, disjoint rows), then walk each path.
  if (!route_indices.empty()) {
    const std::size_t before = tables_.rows_filled();
    tables_.fill_rows(route_dests);
    const std::size_t filled = tables_.rows_filled() - before;
    n_rows_filled_.fetch_add(filled, std::memory_order_relaxed);
    m.route_rows_filled.inc(filled);
    for (const std::size_t qi : route_indices) {
      const Query& q = queries[qi];
      QueryResult& r = results[qi];
      r.path = tables_.route(to_int(q.u), to_int(q.v));
      if (r.path.empty()) {
        ++unreachable;
        r.distance = kUnreachable;
      } else {
        // The walk happened in internal IDs; the answer leaves the engine
        // in the caller's (original) ID space.
        if (renumbered_) {
          for (Vertex& p : r.path) p = renum_.external(p);
        }
        r.distance = static_cast<Dist>(path_length(r.path));
      }
    }
  }

  n_unreachable_.fetch_add(unreachable, std::memory_order_relaxed);
  m.unreachable.inc(unreachable);
  n_served_.fetch_add(queries.size(), std::memory_order_relaxed);

  // Mirror the cache tallies (rows_ is only touched under serve_mutex_;
  // the atomics make stats() safe from any thread).
  m.cache_hits.inc(rows_.hits() - n_hits_.load(std::memory_order_relaxed));
  m.cache_misses.inc(rows_.misses() -
                     n_misses_.load(std::memory_order_relaxed));
  m.cache_evictions.inc(rows_.evictions() -
                        n_evictions_.load(std::memory_order_relaxed));
  n_hits_.store(rows_.hits(), std::memory_order_relaxed);
  n_misses_.store(rows_.misses(), std::memory_order_relaxed);
  n_evictions_.store(rows_.evictions(), std::memory_order_relaxed);
  const std::uint64_t lookups = rows_.hits() + rows_.misses();
  if (lookups > 0) {
    m.cache_hit_ratio.set(static_cast<double>(rows_.hits()) /
                          static_cast<double>(lookups));
  }

  const double elapsed_us = batch_timer.seconds() * 1e6;
  const double row_fill_us = elapsed_us - sweep_done_us;
  for (std::size_t i = 0; i < results.size(); ++i) {
    QueryResult& r = results[i];
    r.epoch = epoch;
    r.latency_us = elapsed_us;
    r.breakdown.execute_us = sweep_done_us;
    if (queries[i].kind == QueryKind::kRoute)
      r.breakdown.row_fill_us = row_fill_us;
  }
  return results;
}

void QueryEngine::start() {
  std::lock_guard lock(queue_mutex_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void QueryEngine::stop() {
  {
    std::lock_guard lock(queue_mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
  std::lock_guard lock(queue_mutex_);
  running_ = false;
  stopping_ = false;
}

std::future<QueryResult> QueryEngine::submit(const Query& query) {
  DCS_REQUIRE(query.u < n_ && query.v < n_, "query vertex out of range");
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();
  const std::uint64_t now = now_us();
  // The TraceContext is allocated here, before admission, so even a shed
  // request has an identity its caller can correlate.
  obs::TraceContext ctx;
  double enqueue_obs_us = 0.0;
  if (options_.trace.exemplars) {
    ctx.trace_id = obs::RequestTracer::instance().next_trace_id();
    enqueue_obs_us = obs::Trace::now_us();
  }
  bool admitted = false;
  {
    std::lock_guard lock(queue_mutex_);
    DCS_REQUIRE(running_ && !stopping_,
                "submit() requires a started engine (call start())");
    n_queries_.fetch_add(1, std::memory_order_relaxed);
    if (query.kind == QueryKind::kDistance) {
      n_distance_.fetch_add(1, std::memory_order_relaxed);
    } else {
      n_route_.fetch_add(1, std::memory_order_relaxed);
    }
    if (admission_.admit(queue_.size())) {
      Pending pending;
      pending.query = query;
      pending.enqueue_us = now;
      pending.deadline_us = admission_.deadline_for(now, query.deadline_us);
      pending.ctx = ctx;
      pending.enqueue_obs_us = enqueue_obs_us;
      pending.promise = std::move(promise);
      queue_.push_back(std::move(pending));
      admitted = true;
    } else {
      n_shed_admission_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ServeMetrics& m = metrics();
  m.queries.inc();
  if (query.kind == QueryKind::kDistance) {
    m.distance_queries.inc();
  } else {
    m.route_queries.inc();
  }
  if (admitted) {
    queue_cv_.notify_one();
  } else {
    m.shed_admission.inc();
    obs::FlightRecorder::instance().record(obs::FlightEventKind::kShed,
                                           "admission", 1, ctx.trace_id);
    QueryResult shed;
    shed.outcome = QueryOutcome::kShedAdmission;
    shed.trace_id = ctx.trace_id;
    promise.set_value(std::move(shed));
  }
  return future;
}

void QueryEngine::dispatcher_loop() {
  ServeMetrics& m = metrics();
  std::vector<Pending> drained;
  for (;;) {
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      const std::size_t window =
          options_.batch_window == 0 ? queue_.size() : options_.batch_window;
      const std::size_t take = std::min(queue_.size(), window);
      // EDF: when the backlog exceeds one window, drain the most deadline-
      // pressed queries first so they are not shed behind fresh arrivals
      // that could afford to wait. No-deadline queries sort last; stable
      // sort keeps FIFO order inside each deadline class.
      if (options_.edf_dispatch && take < queue_.size()) {
        std::stable_sort(
            queue_.begin(), queue_.end(),
            [](const Pending& a, const Pending& b) {
              constexpr std::uint64_t kNone =
                  std::numeric_limits<std::uint64_t>::max();
              const std::uint64_t da = a.deadline_us == 0 ? kNone
                                                          : a.deadline_us;
              const std::uint64_t db = b.deadline_us == 0 ? kNone
                                                          : b.deadline_us;
              return da < db;
            });
      }
      drained.clear();
      drained.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        drained.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }

    // Deadline shedding: a query whose budget elapsed while queued gets a
    // terminal outcome now instead of consuming a sweep it cannot use.
    const std::uint64_t drain_time = now_us();
    const double drain_obs_us = obs::Trace::now_us();
    obs::RequestTracer& tracer = obs::RequestTracer::instance();
    std::vector<Query> live;
    std::vector<std::size_t> live_index;
    live.reserve(drained.size());
    std::uint64_t deadline_sheds = 0;
    for (std::size_t i = 0; i < drained.size(); ++i) {
      if (AdmissionController::expired(drain_time, drained[i].deadline_us)) {
        n_shed_deadline_.fetch_add(1, std::memory_order_relaxed);
        m.shed_deadline.inc();
        ++deadline_sheds;
        QueryResult shed;
        shed.outcome = QueryOutcome::kShedDeadline;
        shed.latency_us =
            static_cast<double>(drain_time - drained[i].enqueue_us);
        shed.trace_id = drained[i].ctx.trace_id;
        if (shed.trace_id != 0) {
          shed.breakdown.queue_us = drain_obs_us - drained[i].enqueue_obs_us;
          obs::RequestExemplar ex;
          ex.trace_id = shed.trace_id;
          ex.kind = static_cast<std::uint32_t>(drained[i].query.kind);
          ex.outcome = static_cast<std::uint32_t>(shed.outcome);
          ex.start_us = drained[i].enqueue_obs_us;
          ex.queue_us = shed.breakdown.queue_us;
          ex.total_us = shed.breakdown.queue_us;
          tracer.offer(ex);
        }
        drained[i].promise.set_value(std::move(shed));
      } else {
        live.push_back(drained[i].query);
        live_index.push_back(i);
      }
    }
    if (deadline_sheds > 0)
      obs::FlightRecorder::instance().record(obs::FlightEventKind::kShed,
                                             "deadline", deadline_sheds);
    if (live.empty()) continue;

    try {
      BatchMeta meta;
      std::vector<QueryResult> results = execute(live, &meta);
      const std::uint64_t done = now_us();
      const double done_obs_us = obs::Trace::now_us();
      const bool slo_on = obs::metrics_enabled();
      for (std::size_t j = 0; j < results.size(); ++j) {
        Pending& pending = drained[live_index[j]];
        results[j].latency_us =
            static_cast<double>(done - pending.enqueue_us);
        m.latency_us.record(results[j].latency_us);
        if (slo_on)
          obs::slo_tracker("serve.latency").record(results[j].latency_us);
        if (pending.ctx.trace_id != 0) {
          QueryResult& r = results[j];
          r.trace_id = pending.ctx.trace_id;
          r.breakdown.queue_us = drain_obs_us - pending.enqueue_obs_us;
          r.breakdown.dispatch_us = meta.start_obs_us - drain_obs_us;
          obs::RequestExemplar ex;
          ex.trace_id = r.trace_id;
          ex.batch_id = meta.batch_id;
          ex.epoch = r.epoch;
          ex.kind = static_cast<std::uint32_t>(pending.query.kind);
          ex.outcome = static_cast<std::uint32_t>(r.outcome);
          ex.cache_hit = r.cache_hit;
          ex.start_us = pending.enqueue_obs_us;
          ex.queue_us = r.breakdown.queue_us;
          ex.dispatch_us = r.breakdown.dispatch_us;
          ex.execute_us = r.breakdown.execute_us;
          ex.row_fill_us = r.breakdown.row_fill_us;
          ex.total_us = done_obs_us - pending.enqueue_obs_us;
          tracer.offer(ex);
        }
        pending.promise.set_value(std::move(results[j]));
      }
    } catch (...) {
      // Defensive: queries are validated at submit(), but a failure here
      // must reach the waiters, not kill the dispatcher.
      for (const std::size_t idx : live_index) {
        drained[idx].promise.set_exception(std::current_exception());
      }
    }
  }
}

ServeStats QueryEngine::stats() const {
  ServeStats s;
  s.queries = n_queries_.load(std::memory_order_relaxed);
  s.distance_queries = n_distance_.load(std::memory_order_relaxed);
  s.route_queries = n_route_.load(std::memory_order_relaxed);
  s.served = n_served_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.coalesced_sources = n_sources_.load(std::memory_order_relaxed);
  s.cache_hits = n_hits_.load(std::memory_order_relaxed);
  s.cache_misses = n_misses_.load(std::memory_order_relaxed);
  s.cache_evictions = n_evictions_.load(std::memory_order_relaxed);
  s.route_rows_filled = n_rows_filled_.load(std::memory_order_relaxed);
  s.shed_admission = n_shed_admission_.load(std::memory_order_relaxed);
  s.shed_deadline = n_shed_deadline_.load(std::memory_order_relaxed);
  s.shed_degraded = n_shed_degraded_.load(std::memory_order_relaxed);
  s.unreachable = n_unreachable_.load(std::memory_order_relaxed);
  s.epochs_adopted = n_epochs_adopted_.load(std::memory_order_relaxed);
  return s;
}

std::size_t QueryEngine::cached_rows() const {
  std::lock_guard lock(serve_mutex_);
  return rows_.size();
}

}  // namespace dcs::serve
