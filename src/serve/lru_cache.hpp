#pragma once

// Bounded LRU map for the query-serving engine.
//
// The engine caches materialized distance rows (one std::vector<Dist> per
// BFS source) so repeat sources — the common case under skewed query
// traffic — are answered without touching the graph at all. The cache is
// the classic intrusive-list-over-hash-map design: find() promotes to MRU
// in O(1), insert() evicts the LRU entry once the capacity is reached.
//
// Not thread-safe: the engine serializes all access through its dispatch
// path and mirrors the hit/miss/eviction tallies into atomics for
// concurrent stats readers.

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/check.hpp"

namespace dcs::serve {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {
    DCS_REQUIRE(capacity > 0, "LruCache capacity must be positive");
  }

  /// Pointer to the cached value (promoted to most-recently-used), or
  /// nullptr on a miss. The pointer stays valid until the entry is evicted.
  Value* find(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  /// Inserts (or overwrites) key → value as the most-recently-used entry,
  /// evicting the least-recently-used one if the cache is full.
  Value& insert(const Key& key, Value value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return it->second->second;
    }
    if (entries_.size() >= capacity_) {
      ++evictions_;
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
    entries_.emplace_front(key, std::move(value));
    index_.emplace(key, entries_.begin());
    return entries_.front().second;
  }

  bool contains(const Key& key) const { return index_.count(key) > 0; }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  using Entry = std::pair<Key, Value>;

  std::size_t capacity_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dcs::serve
