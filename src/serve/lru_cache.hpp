#pragma once

// Scan-resistant 2Q cache for the query-serving engine.
//
// The engine caches materialized distance rows (one std::vector<Dist> per
// BFS source) so repeat sources — the common case under skewed query
// traffic — are answered without touching the graph at all. A plain LRU
// has a failure mode that matters here: one sweep of distinct sources (a
// scan, e.g. an all-pairs probe or a churn wave touching every vertex)
// evicts the entire hot set even though none of the scanned rows will be
// asked for again. The classic 2Q design (Johnson & Shasha, VLDB'94)
// fixes that with three structures:
//
//   A1in  — small FIFO holding first-time entries (¼ of capacity);
//   A1out — ghost queue of *keys only* remembering what recently left
//           A1in (½ of capacity, no values, negligible memory);
//   Am    — the main LRU, which a key enters only on its *second* miss,
//           i.e. when it is re-requested after leaving A1in.
//
// A scan flows through A1in and out again without ever touching Am, so
// the hot set survives; genuinely re-used keys get promoted via the ghost
// queue. Hits in either resident queue count as hits; only evictions that
// drop a resident value count as evictions.
//
// clear() drops everything including the ghosts — the engine calls it on
// every epoch swap, because a row materialized under a pre-repair epoch
// must never answer a post-repair query (and a ghost key must not fast-
// promote a row recomputed under the new epoch on spurious grounds).
//
// Not thread-safe: the engine serializes all access through its dispatch
// path and mirrors the hit/miss/eviction tallies into atomics for
// concurrent stats readers.

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/check.hpp"

namespace dcs::serve {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class TwoQCache {
 public:
  explicit TwoQCache(std::size_t capacity)
      : capacity_(capacity),
        in_capacity_(capacity / 4 > 0 ? capacity / 4 : 1),
        ghost_capacity_(capacity / 2 > 0 ? capacity / 2 : 1) {
    DCS_REQUIRE(capacity > 0, "TwoQCache capacity must be positive");
  }

  /// Pointer to the cached value, or nullptr on a miss. An Am hit
  /// promotes to MRU; an A1in hit does not reorder (FIFO — that is what
  /// makes a one-pass scan harmless). A ghost hit is still a miss (the
  /// value is gone) but flags the key so the caller's re-insert lands in
  /// Am. The pointer stays valid until the entry is evicted or cleared.
  Value* find(const Key& key) {
    if (const auto am = am_index_.find(key); am != am_index_.end()) {
      ++hits_;
      am_.splice(am_.begin(), am_, am->second);
      return &am->second->second;
    }
    if (const auto in = in_index_.find(key); in != in_index_.end()) {
      ++hits_;
      return &in->second->second;
    }
    ++misses_;
    if (const auto ghost = ghost_index_.find(key); ghost != ghost_index_.end()) {
      ++ghost_hits_;
    }
    return nullptr;
  }

  /// Inserts (or overwrites) key → value. First-seen keys enter the A1in
  /// FIFO; keys remembered by the ghost queue enter Am directly. Resident
  /// total never exceeds capacity().
  Value& insert(const Key& key, Value value) {
    if (const auto am = am_index_.find(key); am != am_index_.end()) {
      am->second->second = std::move(value);
      am_.splice(am_.begin(), am_, am->second);
      return am->second->second;
    }
    if (const auto in = in_index_.find(key); in != in_index_.end()) {
      in->second->second = std::move(value);
      return in->second->second;
    }
    if (const auto ghost = ghost_index_.find(key);
        ghost != ghost_index_.end()) {
      ghost_.erase(ghost->second);
      ghost_index_.erase(ghost);
      if (am_capacity() > 0) return insert_am(key, std::move(value));
    }
    return insert_in(key, std::move(value));
  }

  bool contains(const Key& key) const {
    return am_index_.count(key) > 0 || in_index_.count(key) > 0;
  }
  /// True when the key is remembered only as a ghost (value not resident).
  bool remembers(const Key& key) const {
    return ghost_index_.count(key) > 0;
  }

  /// Drops all resident entries and ghost keys. Tallies survive — they
  /// are lifetime totals, and epoch invalidation is not an eviction.
  void clear() {
    am_.clear();
    am_index_.clear();
    in_.clear();
    in_index_.clear();
    ghost_.clear();
    ghost_index_.clear();
  }

  std::size_t size() const { return am_.size() + in_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  /// Misses whose key was remembered by A1out (subset of misses()).
  std::uint64_t ghost_hits() const { return ghost_hits_; }

 private:
  using Entry = std::pair<Key, Value>;
  using EntryList = std::list<Entry>;
  template <typename It>
  using Index = std::unordered_map<Key, It, Hash>;

  std::size_t am_capacity() const { return capacity_ - in_capacity_; }

  Value& insert_am(const Key& key, Value value) {
    if (am_.size() >= am_capacity()) {
      ++evictions_;
      am_index_.erase(am_.back().first);
      am_.pop_back();
    }
    am_.emplace_front(key, std::move(value));
    am_index_.emplace(key, am_.begin());
    return am_.front().second;
  }

  Value& insert_in(const Key& key, Value value) {
    if (in_.size() >= in_capacity_) {
      // Demote the FIFO tail: its value is evicted, its key becomes a
      // ghost so a re-request promotes straight to Am.
      ++evictions_;
      remember(in_.back().first);
      in_index_.erase(in_.back().first);
      in_.pop_back();
    }
    in_.emplace_front(key, std::move(value));
    in_index_.emplace(key, in_.begin());
    return in_.front().second;
  }

  void remember(const Key& key) {
    if (ghost_.size() >= ghost_capacity_) {
      ghost_index_.erase(ghost_.back());
      ghost_.pop_back();
    }
    ghost_.push_front(key);
    ghost_index_.emplace(key, ghost_.begin());
  }

  std::size_t capacity_;
  std::size_t in_capacity_;
  std::size_t ghost_capacity_;
  EntryList am_;  // main LRU, front = most recently used
  EntryList in_;  // A1in FIFO, front = newest
  std::list<Key> ghost_;  // A1out, keys only, front = newest
  Index<typename EntryList::iterator> am_index_;
  Index<typename EntryList::iterator> in_index_;
  Index<typename std::list<Key>::iterator> ghost_index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t ghost_hits_ = 0;
};

}  // namespace dcs::serve
