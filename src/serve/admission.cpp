#include "serve/admission.hpp"

namespace dcs::serve {

const char* to_string(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kServed: return "served";
    case QueryOutcome::kShedAdmission: return "shed-admission";
    case QueryOutcome::kShedDeadline: return "shed-deadline";
    case QueryOutcome::kShedDegraded: return "shed-degraded";
    case QueryOutcome::kShedShutdown: return "shed-shutdown";
  }
  return "?";
}

}  // namespace dcs::serve
