#include "serve/admission.hpp"

namespace dcs::serve {

const char* to_string(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kServed: return "served";
    case QueryOutcome::kShedAdmission: return "shed-admission";
    case QueryOutcome::kShedDeadline: return "shed-deadline";
    case QueryOutcome::kShedDegraded: return "shed-degraded";
  }
  return "?";
}

}  // namespace dcs::serve
