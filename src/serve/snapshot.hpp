#pragma once

// Epoch snapshots: zero-downtime hand-off between the repair plane and the
// serving plane.
//
// The SpannerSupervisor mutates its spanner wave by wave; the QueryEngine
// answers queries continuously. Letting the engine read the supervisor's
// working copy directly would mean either a lock held across whole repair
// waves (queries stall) or torn reads (queries observe a half-repaired
// graph). The snapshot store is the RCU-style decoupling in between:
//
//  * the supervisor *publishes* immutable `{graph, spanner, certificate,
//    epoch}` snapshots through an atomic swap — publishing never waits for
//    readers;
//  * a reader *pins* the current snapshot at batch start and serves the
//    whole batch from that frozen view, even if newer epochs land
//    mid-batch;
//  * a superseded snapshot retires exactly when its last pinned reader
//    drains (shared ownership does the grace period), and the retirement
//    is tallied so leaks are visible in `serve.epoch.*`.
//
// The epoch number is the serving plane's cache-coherency token: the
// engine keys its distance-row cache and lazy next-hop tables by the epoch
// they were materialized under and drops both on the first batch that pins
// a newer one. A row computed against epoch e must never answer a query
// pinned to epoch e' > e — that is the stale-read class of bug the
// chaos-soak harness's query-certified invariant exists to catch.
//
// Obs: `serve.epoch.published` / `serve.epoch.retired` counters,
// `serve.epoch.current` / `serve.epoch.live` gauges.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "graph/graph.hpp"
#include "resilience/health_monitor.hpp"
#include "resilience/supervisor.hpp"

namespace dcs::serve {

/// The (α, β) envelope the published spanner is certified for, plus the
/// maintenance context a serving policy needs to decide served-vs-shed.
struct SpannerCertificate {
  /// Distance-stretch bound that actually holds (the measured bound when
  /// the certificate is degraded).
  double alpha = 3.0;
  /// Congestion-stretch bound (0 = not certified on this deployment).
  double beta = 0.0;
  /// Latest recertification verdict for the published spanner.
  GuaranteeStatus status = GuaranteeStatus::kHeld;
  /// Degradation-ladder state at publish time.
  SupervisorState ladder = SupervisorState::kHealthy;
  /// True when the certificate was measured against exactly this
  /// topology — false when faults or repairs landed after the last
  /// recertification (the envelope may be stale).
  bool fresh = true;
};

/// One immutable published view. Readers navigate it freely without
/// synchronization; nothing in a snapshot ever changes after publish().
struct ServeSnapshot {
  std::uint64_t epoch = 0;
  Graph graph;    ///< network view the certificate is relative to (G∖F)
  Graph spanner;  ///< serving substrate (H∖F)
  SpannerCertificate certificate;
};

/// Shared pin on a snapshot: holding one keeps the whole view (both
/// graphs, certificate) alive; dropping the last one retires it.
using SnapshotRef = std::shared_ptr<const ServeSnapshot>;

class SnapshotStore {
 public:
  /// Seeds epoch 1. `graph` is the view the certificate refers to; a
  /// standalone oracle without a maintained network can pass the spanner
  /// for both.
  SnapshotStore(Graph graph, Graph spanner, SpannerCertificate cert = {});

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Atomically replaces the published snapshot and returns its epoch.
  /// In-flight readers keep the epoch they pinned; the superseded
  /// snapshot retires when its last pin drops. Vertex count must match
  /// the seed snapshot (vertex ids are the serving plane's stable keys).
  std::uint64_t publish(Graph graph, Graph spanner, SpannerCertificate cert);

  /// Pins the currently published snapshot. Never blocks on publishers
  /// beyond the swap itself; never returns null.
  SnapshotRef pin() const;

  /// Pins only when the published epoch is newer than `epoch`; returns
  /// null (and counts a skipped pin) when it is not. This is the
  /// multi-dispatcher serving fast path: dispatchers compare epochs with
  /// one atomic load per batch, and after a publish only the first
  /// adopter pays the store mutex — one pin per epoch, not one per batch
  /// per dispatcher. The returned snapshot's epoch is always > `epoch`
  /// (the published epoch never moves backwards).
  SnapshotRef pin_if_newer(std::uint64_t epoch) const;

  std::uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  std::size_t num_vertices() const { return n_; }

  // --- audit tallies ------------------------------------------------------
  std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  /// Snapshots whose last reader has drained (the current one never
  /// retires while the store holds it).
  std::uint64_t retired() const {
    return retired_->load(std::memory_order_relaxed);
  }
  /// Published and not yet retired (≥ 1: the current snapshot).
  std::uint64_t live() const { return published() - retired(); }
  std::uint64_t pins() const { return pins_.load(std::memory_order_relaxed); }
  /// pin_if_newer() calls answered without pinning (epoch unchanged) —
  /// the per-dispatcher accounting that shows N dispatchers sharing one
  /// pin per epoch instead of re-pinning per batch.
  std::uint64_t pin_skips() const {
    return pin_skips_.load(std::memory_order_relaxed);
  }

 private:
  SnapshotRef wrap(ServeSnapshot&& snapshot);

  std::size_t n_ = 0;
  mutable std::mutex mutex_;  ///< guards current_ swap/copy
  SnapshotRef current_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> published_{0};
  mutable std::atomic<std::uint64_t> pins_{0};
  mutable std::atomic<std::uint64_t> pin_skips_{0};
  /// Shared with every snapshot's deleter so retirement is counted even
  /// for snapshots outliving the store.
  std::shared_ptr<std::atomic<std::uint64_t>> retired_;
};

}  // namespace dcs::serve
