#include "serve/snapshot.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace dcs::serve {

namespace {

struct EpochMetrics {
  obs::Counter& published =
      obs::MetricsRegistry::instance().counter("serve.epoch.published");
  obs::Counter& retired =
      obs::MetricsRegistry::instance().counter("serve.epoch.retired");
  obs::Gauge& current =
      obs::MetricsRegistry::instance().gauge("serve.epoch.current");
  obs::Gauge& live = obs::MetricsRegistry::instance().gauge("serve.epoch.live");
};

EpochMetrics& epoch_metrics() {
  static EpochMetrics m;
  return m;
}

}  // namespace

SnapshotStore::SnapshotStore(Graph graph, Graph spanner,
                             SpannerCertificate cert)
    : retired_(std::make_shared<std::atomic<std::uint64_t>>(0)) {
  if (graph.num_vertices() != spanner.num_vertices()) {
    throw std::invalid_argument(
        "SnapshotStore: graph and spanner vertex counts differ");
  }
  n_ = graph.num_vertices();
  publish(std::move(graph), std::move(spanner), cert);
}

std::uint64_t SnapshotStore::publish(Graph graph, Graph spanner,
                                     SpannerCertificate cert) {
  if (graph.num_vertices() != n_ || spanner.num_vertices() != n_) {
    throw std::invalid_argument(
        "SnapshotStore::publish: vertex count does not match the store");
  }
  ServeSnapshot snap;
  snap.epoch = epoch_.load(std::memory_order_relaxed) + 1;
  snap.graph = std::move(graph);
  snap.spanner = std::move(spanner);
  snap.certificate = cert;
  const std::uint64_t epoch = snap.epoch;
  SnapshotRef next = wrap(std::move(snap));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The superseded snapshot's last reference may drop right here (no
    // reader pinned it) — the deleter tallies retirement either way.
    current_ = std::move(next);
    epoch_.store(epoch, std::memory_order_release);
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  EpochMetrics& m = epoch_metrics();
  m.published.inc();
  m.current.set(static_cast<double>(epoch));
  m.live.set(static_cast<double>(live()));
  return epoch;
}

SnapshotRef SnapshotStore::pin() const {
  pins_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

SnapshotRef SnapshotStore::pin_if_newer(std::uint64_t epoch) const {
  if (epoch_.load(std::memory_order_acquire) <= epoch) {
    pin_skips_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // The epoch may advance again between the check and the pin; the caller
  // gets the newest snapshot either way, which is still strictly newer
  // than `epoch` (epochs are monotone and swapped under mutex_).
  return pin();
}

SnapshotRef SnapshotStore::wrap(ServeSnapshot&& snapshot) {
  // The deleter owns the tally (not `this`): snapshots pinned by readers
  // may legitimately outlive the store, and retirement must still count.
  auto tally = retired_;
  auto* raw = new ServeSnapshot(std::move(snapshot));
  return SnapshotRef(raw, [tally](const ServeSnapshot* p) {
    tally->fetch_add(1, std::memory_order_relaxed);
    epoch_metrics().retired.inc();
    delete p;
  });
}

}  // namespace dcs::serve
