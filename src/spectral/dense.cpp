#include "spectral/dense.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dcs {

DenseMatrix adjacency_matrix(const Graph& g) {
  DenseMatrix m;
  m.n = g.num_vertices();
  m.a.assign(m.n * m.n, 0.0);
  for (Vertex u = 0; u < m.n; ++u) {
    for (Vertex v : g.neighbors(u)) {
      m.at(u, v) = 1.0;
    }
  }
  return m;
}

std::vector<double> dense_symmetric_eigenvalues(DenseMatrix m,
                                                double tolerance,
                                                std::size_t max_sweeps) {
  const std::size_t n = m.n;
  DCS_REQUIRE(m.a.size() == n * n, "matrix storage size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      DCS_REQUIRE(std::abs(m.at(i, j) - m.at(j, i)) < 1e-9,
                  "matrix is not symmetric");
    }
  }
  if (n == 0) return {};

  auto off_norm = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        s += m.at(i, j) * m.at(i, j);
      }
    }
    return std::sqrt(2.0 * s);
  };

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tolerance) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m.at(p, q);
        if (std::abs(apq) < tolerance * 1e-3) continue;
        const double app = m.at(p, p);
        const double aqq = m.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(theta) + std::sqrt(theta * theta + 1.0)),
            theta);
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // rotate rows/columns p and q
        for (std::size_t i = 0; i < n; ++i) {
          const double aip = m.at(i, p);
          const double aiq = m.at(i, q);
          m.at(i, p) = c * aip - s * aiq;
          m.at(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = m.at(p, i);
          const double aqi = m.at(q, i);
          m.at(p, i) = c * api - s * aqi;
          m.at(q, i) = s * api + c * aqi;
        }
      }
    }
  }

  std::vector<double> eigenvalues(n);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = m.at(i, i);
  std::sort(eigenvalues.begin(), eigenvalues.end());
  return eigenvalues;
}

}  // namespace dcs
