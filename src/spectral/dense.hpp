#pragma once

// Dense symmetric eigenvalue solver (cyclic Jacobi rotations). O(n³) per
// sweep — intended for small matrices: cross-validation of the Lanczos
// path and exact spectra of the gadget graphs in tests and experiments.

#include <vector>

#include "graph/graph.hpp"

namespace dcs {

/// Symmetric dense matrix in row-major order.
struct DenseMatrix {
  std::size_t n = 0;
  std::vector<double> a;  ///< n*n entries

  double& at(std::size_t i, std::size_t j) { return a[i * n + j]; }
  double at(std::size_t i, std::size_t j) const { return a[i * n + j]; }
};

/// The adjacency matrix of g.
DenseMatrix adjacency_matrix(const Graph& g);

/// All eigenvalues, ascending (cyclic Jacobi; the input must be symmetric).
std::vector<double> dense_symmetric_eigenvalues(DenseMatrix m,
                                                double tolerance = 1e-12,
                                                std::size_t max_sweeps = 64);

}  // namespace dcs
