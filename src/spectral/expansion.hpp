#pragma once

// Spectral expansion of a graph's adjacency matrix and the expander mixing
// lemma (Lemma 3 of the paper), which drives the neighborhood-matching bound
// of Lemma 4.

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dcs {

struct ExpansionEstimate {
  double lambda1 = 0.0;  ///< largest adjacency eigenvalue (= Δ when regular)
  double lambda = 0.0;   ///< max(|λ₂|, |λ_n|)
  /// λ / λ₁ — the normalized expansion; < 1 means the graph expands.
  double normalized() const { return lambda1 > 0 ? lambda / lambda1 : 0.0; }
};

/// Measures expansion by deflated Lanczos on the adjacency operator. For
/// regular graphs the top eigenvector (all-ones) is deflated exactly;
/// otherwise the dominant eigenvector from power iteration is used.
ExpansionEstimate estimate_expansion(const Graph& g,
                                     std::size_t lanczos_steps = 80,
                                     std::uint64_t seed = 1);

/// Number of (ordered-pair) edges between S and T as in the mixing lemma:
/// e(S,T) = |{(u,v) : u ∈ S, v ∈ T, (u,v) ∈ E}| (pairs in S∩T count twice).
std::size_t edges_between(const Graph& g, std::span<const Vertex> s,
                          std::span<const Vertex> t);

struct MixingCheck {
  double observed_deviation = 0.0;  ///< |e(S,T) − Δ|S||T|/n|
  double bound = 0.0;               ///< λ·sqrt(|S||T|)
  bool holds() const { return observed_deviation <= bound + 1e-9; }
};

/// Evaluates Lemma 3 for a Δ-regular graph with given expansion λ.
MixingCheck mixing_lemma_check(const Graph& g, double lambda,
                               std::span<const Vertex> s,
                               std::span<const Vertex> t);

}  // namespace dcs
