#pragma once

// Symmetric Lanczos iteration with full reorthogonalization, plus a
// tridiagonal eigenvalue solver (implicit-shift QL). Used to measure the
// spectral expansion λ = max(|λ₂|, |λ_n|) of adjacency matrices: the paper's
// constructions *assume* expansion, our experiments *verify* it per instance.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace dcs {

/// y = A·x for a caller-supplied symmetric operator.
using MatVec = std::function<void(std::span<const double> x,
                                  std::span<double> y)>;

/// Eigenvalues of a symmetric tridiagonal matrix given diagonal `diag` and
/// sub-diagonal `off` (off.size() == diag.size() - 1), in ascending order.
std::vector<double> tridiagonal_eigenvalues(std::vector<double> diag,
                                            std::vector<double> off);

struct LanczosOptions {
  std::size_t max_steps = 80;   ///< Krylov dimension cap
  std::uint64_t seed = 1;       ///< start-vector seed
};

/// Ritz values (ascending) of the operator restricted to the Krylov space of
/// a random start vector orthogonalized against `deflate` (e.g. a known top
/// eigenvector). Full reorthogonalization keeps the basis numerically
/// orthogonal, which is affordable at our Krylov dimensions (≤ ~100).
std::vector<double> lanczos_eigenvalues(
    const MatVec& apply, std::size_t n, const LanczosOptions& options = {},
    std::span<const std::vector<double>> deflate = {});

/// Convenience: dominant eigenvalue by power iteration (also returns the
/// eigenvector through `out_vector` when non-null).
double power_iteration(const MatVec& apply, std::size_t n,
                       std::size_t iterations, std::uint64_t seed,
                       std::vector<double>* out_vector = nullptr);

}  // namespace dcs
