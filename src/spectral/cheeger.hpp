#pragma once

// Combinatorial expansion via spectral sweep cuts.
//
// The paper's constructions are parameterized by spectral expansion λ;
// Cheeger's inequality ties λ to edge conductance
//   φ(G) = min_S e(S, V∖S) / min(vol S, vol V∖S):
// for a Δ-regular graph, (Δ−λ₂)/(2Δ) ≤ φ ≤ √(2(Δ−λ₂)/Δ).
// The sweep cut over the second eigenvector realizes the upper bound and
// gives experiments a *combinatorial* witness that an input really expands
// (or that a cycle-like input really does not).

#include <vector>

#include "graph/graph.hpp"

namespace dcs {

struct SweepCutResult {
  double conductance = 1.0;      ///< φ of the best sweep cut found
  std::vector<Vertex> cut_side;  ///< the smaller-volume side of that cut
  double lambda2 = 0.0;          ///< estimated second adjacency eigenvalue
};

/// Conductance of a specific cut (S given as vertex list).
double cut_conductance(const Graph& g, std::span<const Vertex> s);

/// Best sweep cut over an approximate second eigenvector of the adjacency
/// matrix (power iteration on the deflated, shifted operator).
SweepCutResult sweep_cut_conductance(const Graph& g,
                                     std::size_t iterations = 300,
                                     std::uint64_t seed = 1);

}  // namespace dcs
