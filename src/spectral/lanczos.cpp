#include "spectral/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dcs {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (auto& v : x) v *= alpha;
}

/// Removes the projections of x onto each vector in basis (assumed unit).
void orthogonalize(std::span<double> x,
                   std::span<const std::vector<double>> basis) {
  for (const auto& b : basis) {
    axpy(-dot(x, b), b, x);
  }
}

}  // namespace

std::vector<double> tridiagonal_eigenvalues(std::vector<double> diag,
                                            std::vector<double> off) {
  const std::size_t n = diag.size();
  DCS_REQUIRE(n >= 1, "empty tridiagonal matrix");
  DCS_REQUIRE(off.size() + 1 == n, "sub-diagonal size must be n-1");
  if (n == 1) return diag;
  // Implicit-shift QL (Numerical-Recipes-style tqli without eigenvectors).
  std::vector<double>& d = diag;
  std::vector<double> e(n, 0.0);
  std::copy(off.begin(), off.end(), e.begin());  // e[0..n-2], e[n-1] = 0

  for (std::size_t l = 0; l < n; ++l) {
    std::size_t iterations = 0;
    for (;;) {
      std::size_t m = l;
      for (; m + 1 < n; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-14 * dd) break;
      }
      if (m == l) break;
      DCS_CHECK(++iterations <= 50, "tridiagonal QL failed to converge");
      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
      double s = 1.0, c = 1.0, p = 0.0;
      for (std::size_t i = m; i-- > l;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          d[i + 1] -= p;
          e[m] = 0.0;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
      }
      if (r == 0.0 && m > l + 1) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    }
  }
  std::sort(d.begin(), d.end());
  return d;
}

std::vector<double> lanczos_eigenvalues(
    const MatVec& apply, std::size_t n, const LanczosOptions& options,
    std::span<const std::vector<double>> deflate) {
  DCS_REQUIRE(n >= 1, "operator dimension must be positive");
  const std::size_t steps = std::min(options.max_steps, n);

  Rng rng(options.seed);
  std::vector<std::vector<double>> basis;
  basis.reserve(steps);
  std::vector<double> alpha_coeffs;
  std::vector<double> beta_coeffs;

  std::vector<double> q(n);
  for (auto& x : q) x = rng.uniform_double() - 0.5;
  orthogonalize(q, deflate);
  {
    const double nq = norm(q);
    DCS_REQUIRE(nq > 1e-12, "lanczos start vector vanished after deflation");
    scale(q, 1.0 / nq);
  }

  std::vector<double> w(n);
  for (std::size_t step = 0; step < steps; ++step) {
    basis.push_back(q);
    apply(q, w);
    const double alpha = dot(w, q);
    alpha_coeffs.push_back(alpha);
    // w ← w − α·q − β·q_prev, then full reorthogonalization for stability.
    axpy(-alpha, q, w);
    if (step > 0) axpy(-beta_coeffs.back(), basis[step - 1], w);
    orthogonalize(w, deflate);
    orthogonalize(w, basis);
    const double beta = norm(w);
    if (beta < 1e-10 || step + 1 == steps) break;
    beta_coeffs.push_back(beta);
    for (std::size_t i = 0; i < n; ++i) q[i] = w[i] / beta;
  }

  return tridiagonal_eigenvalues(alpha_coeffs, beta_coeffs);
}

double power_iteration(const MatVec& apply, std::size_t n,
                       std::size_t iterations, std::uint64_t seed,
                       std::vector<double>* out_vector) {
  DCS_REQUIRE(n >= 1, "operator dimension must be positive");
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.uniform_double() + 0.1;
  scale(x, 1.0 / norm(x));
  double lambda = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    apply(x, y);
    lambda = dot(x, y);
    const double ny = norm(y);
    if (ny < 1e-14) break;
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / ny;
  }
  if (out_vector != nullptr) *out_vector = x;
  return lambda;
}

}  // namespace dcs
