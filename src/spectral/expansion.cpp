#include "spectral/expansion.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "spectral/lanczos.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

namespace {

MatVec adjacency_operator(const Graph& g) {
  return [&g](std::span<const double> x, std::span<double> y) {
    parallel_for(0, g.num_vertices(), [&](std::size_t u) {
      double acc = 0.0;
      for (Vertex v : g.neighbors(static_cast<Vertex>(u))) acc += x[v];
      y[u] = acc;
    });
  };
}

}  // namespace

ExpansionEstimate estimate_expansion(const Graph& g,
                                     std::size_t lanczos_steps,
                                     std::uint64_t seed) {
  DCS_REQUIRE(g.num_vertices() >= 2, "expansion needs at least two vertices");
  const auto apply = adjacency_operator(g);
  const std::size_t n = g.num_vertices();

  ExpansionEstimate est;
  std::vector<double> top;
  if (g.is_regular()) {
    est.lambda1 = static_cast<double>(g.min_degree());
    top.assign(n, 1.0 / std::sqrt(static_cast<double>(n)));
  } else {
    est.lambda1 = power_iteration(apply, n, 300, seed, &top);
  }

  const std::vector<std::vector<double>> deflate{top};
  LanczosOptions options;
  options.max_steps = lanczos_steps;
  options.seed = seed + 0x9e37;
  const auto ritz =
      lanczos_eigenvalues(apply, n, options, deflate);
  DCS_CHECK(!ritz.empty(), "lanczos produced no ritz values");
  est.lambda = std::max(std::abs(ritz.front()), std::abs(ritz.back()));
  return est;
}

std::size_t edges_between(const Graph& g, std::span<const Vertex> s,
                          std::span<const Vertex> t) {
  std::unordered_set<Vertex> t_set(t.begin(), t.end());
  std::size_t count = 0;
  for (Vertex u : s) {
    for (Vertex v : g.neighbors(u)) {
      if (t_set.count(v) > 0) ++count;
    }
  }
  return count;
}

MixingCheck mixing_lemma_check(const Graph& g, double lambda,
                               std::span<const Vertex> s,
                               std::span<const Vertex> t) {
  DCS_REQUIRE(g.is_regular(), "mixing lemma stated for regular graphs");
  const double delta = static_cast<double>(g.min_degree());
  const double n = static_cast<double>(g.num_vertices());
  const double expected =
      delta / n * static_cast<double>(s.size()) *
      static_cast<double>(t.size());
  MixingCheck check;
  check.observed_deviation =
      std::abs(static_cast<double>(edges_between(g, s, t)) - expected);
  check.bound = lambda * std::sqrt(static_cast<double>(s.size()) *
                                   static_cast<double>(t.size()));
  return check;
}

}  // namespace dcs
