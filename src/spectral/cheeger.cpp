#include "spectral/cheeger.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "spectral/lanczos.hpp"
#include "util/check.hpp"

namespace dcs {

double cut_conductance(const Graph& g, std::span<const Vertex> s) {
  DCS_REQUIRE(!s.empty() && s.size() < g.num_vertices(),
              "cut side must be a proper non-empty subset");
  std::vector<bool> in_s(g.num_vertices(), false);
  for (Vertex v : s) in_s[v] = true;

  std::size_t crossing = 0;
  std::size_t vol_s = 0;
  for (Vertex v : s) {
    vol_s += g.degree(v);
    for (Vertex u : g.neighbors(v)) {
      if (!in_s[u]) ++crossing;
    }
  }
  const std::size_t vol_total = 2 * g.num_edges();
  const std::size_t vol_min = std::min(vol_s, vol_total - vol_s);
  DCS_REQUIRE(vol_min > 0, "cut side has zero volume");
  return static_cast<double>(crossing) / static_cast<double>(vol_min);
}

SweepCutResult sweep_cut_conductance(const Graph& g, std::size_t iterations,
                                     std::uint64_t seed) {
  const std::size_t n = g.num_vertices();
  DCS_REQUIRE(n >= 3, "sweep cut needs at least 3 vertices");
  DCS_REQUIRE(g.num_edges() >= 1, "sweep cut needs edges");

  // Approximate the second eigenvector of A. For the (near-)regular graphs
  // we care about, deflating the all-ones direction and shifting by the max
  // degree makes the second-largest eigenvalue dominant and non-negative.
  const double shift = static_cast<double>(g.max_degree());
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.uniform_double() - 0.5;

  auto deflate_ones = [&](std::vector<double>& vec) {
    double mean = std::accumulate(vec.begin(), vec.end(), 0.0) /
                  static_cast<double>(n);
    for (auto& v : vec) v -= mean;
  };
  auto normalize = [&](std::vector<double>& vec) {
    double norm = 0.0;
    for (double v : vec) norm += v * v;
    norm = std::sqrt(norm);
    DCS_REQUIRE(norm > 1e-14, "eigenvector iteration collapsed");
    for (auto& v : vec) v /= norm;
  };

  deflate_ones(x);
  normalize(x);
  double rayleigh = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    for (Vertex u = 0; u < n; ++u) {
      double acc = shift * x[u];
      for (Vertex v : g.neighbors(u)) acc += x[v];
      y[u] = acc;
    }
    rayleigh = 0.0;
    for (std::size_t i = 0; i < n; ++i) rayleigh += x[i] * y[i];
    deflate_ones(y);
    normalize(y);
    x.swap(y);
  }

  SweepCutResult result;
  result.lambda2 = rayleigh - shift;

  // Sweep: order vertices by eigenvector value, evaluate every prefix cut.
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), Vertex{0});
  std::sort(order.begin(), order.end(),
            [&x](Vertex a, Vertex b) { return x[a] < x[b]; });

  std::vector<bool> in_s(n, false);
  const std::size_t vol_total = 2 * g.num_edges();
  std::size_t crossing = 0;
  std::size_t vol_s = 0;
  double best = 1.0;
  std::size_t best_prefix = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Vertex v = order[i];
    in_s[v] = true;
    vol_s += g.degree(v);
    for (Vertex u : g.neighbors(v)) {
      if (in_s[u]) {
        --crossing;  // edge became internal
      } else {
        ++crossing;
      }
    }
    const std::size_t vol_min = std::min(vol_s, vol_total - vol_s);
    if (vol_min == 0) continue;
    const double phi =
        static_cast<double>(crossing) / static_cast<double>(vol_min);
    if (phi < best) {
      best = phi;
      best_prefix = i + 1;
    }
  }
  result.conductance = best;
  result.cut_side.assign(order.begin(),
                         order.begin() + static_cast<std::ptrdiff_t>(
                                             best_prefix));
  // Report the smaller-volume side.
  std::size_t vol_side = 0;
  for (Vertex v : result.cut_side) vol_side += g.degree(v);
  if (2 * vol_side > vol_total) {
    std::vector<Vertex> other(order.begin() + static_cast<std::ptrdiff_t>(
                                                  best_prefix),
                              order.end());
    result.cut_side = std::move(other);
  }
  return result;
}

}  // namespace dcs
