#pragma once

// Filesystem seam for the durability subsystem.
//
// Everything persist/ writes to disk goes through persist::File rather than
// iostreams, for two reasons:
//
//  * correctness — durable writes need the POSIX discipline iostreams hide:
//    short-write and EINTR retry loops, explicit fsync before rename,
//    fsync of the parent directory after rename (a rename is not durable
//    until the directory entry is), and error reporting that distinguishes
//    "nothing landed" from "a prefix landed" (a torn tail);
//
//  * testability — every write and sync consults the process-global
//    FsFaultInjector, a deterministic failpoint layer in the spirit of
//    resilience/FailureInjector: a test arms an explicit operation-indexed
//    fault plan, runs the write path, and observes exactly the failure it
//    scheduled — a short write completed by the retry loop, an ENOSPC that
//    persists nothing, a torn write that leaves a prefix on disk, a failed
//    fsync, or a silent bit flip for the CRC layer to catch. Same
//    replayable-schedule discipline as the churn harness: the plan is the
//    ground truth, the run is a pure function of it.
//
// Reads deliberately bypass the seam (plain buffered reads of whole files):
// read-side corruption is modeled by corrupting the bytes on disk, which the
// record layer's CRCs must catch regardless of how the bytes are read.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dcs::persist {

enum class FsFaultKind : std::uint8_t {
  kShortWrite,  ///< first write(2) consumes only half; the retry loop must
                ///< finish the rest (net effect: success, full bytes)
  kEnospc,      ///< write persists nothing and fails with ENOSPC
  kTornWrite,   ///< write persists a prefix, then fails (crash mid-append)
  kFsyncFail,   ///< fsync fails with EIO; nothing is guaranteed durable
  kBitFlip,     ///< write succeeds but one bit is flipped on the way down
};

const char* to_string(FsFaultKind kind);

/// One planned fault: fires when the global write/sync operation counter
/// reaches `op` (operations are counted from 0 at arm()).
struct FsFault {
  std::uint64_t op = 0;
  FsFaultKind kind = FsFaultKind::kEnospc;
};

/// Process-global failpoint registry. Disabled (no overhead beyond one
/// atomic load) until a test arms a plan. Every File::write_all and
/// File::sync consumes one operation index; the injector returns the fault
/// scheduled for that index, if any. Deterministic: the same plan against
/// the same operation sequence fires the same faults.
class FsFaultInjector {
 public:
  static FsFaultInjector& instance();

  /// Replaces the plan and resets the operation counter to 0.
  void arm(std::vector<FsFault> plan);
  /// Convenience: a single fault at operation `op`.
  void arm_one(std::uint64_t op, FsFaultKind kind);
  void disarm();
  bool armed() const;

  /// Operations observed since arm() (0 when disarmed).
  std::uint64_t ops() const;
  /// Faults actually fired since arm().
  std::uint64_t fired() const;

  // Seam consumed by File (one call = one operation index).
  std::optional<FsFaultKind> next_fault();

 private:
  FsFaultInjector() = default;
};

/// Thin RAII wrapper over a POSIX fd opened for writing. All errors are
/// reported by return value (never thrown): durability code must be able to
/// fail closed and fall back, not unwind.
class File {
 public:
  File() = default;
  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// O_CREAT|O_TRUNC|O_WRONLY|O_CLOEXEC. Invalid File (+ errno message in
  /// error_out when given) on failure.
  static File create(const std::string& path, std::string* error_out = nullptr);
  /// O_CREAT|O_APPEND|O_WRONLY|O_CLOEXEC.
  static File append(const std::string& path, std::string* error_out = nullptr);

  bool valid() const { return fd_ >= 0; }

  /// Writes all `size` bytes, looping over short writes and EINTR, applying
  /// one injected fault if scheduled for this operation. On failure a
  /// *prefix* of the buffer may have landed (torn write) — the caller must
  /// treat the file as suspect, which is exactly what the record layer's
  /// CRC framing exists for.
  bool write_all(const void* data, std::size_t size);
  bool write_all(std::string_view bytes) {
    return write_all(bytes.data(), bytes.size());
  }

  /// fsync(2) (one injectable operation).
  bool sync();

  /// close(2); returns false if the close itself reports an error. Safe to
  /// call twice. The destructor closes silently.
  bool close();

  /// Description of the first failure observed ("" if none).
  const std::string& error() const { return error_; }

 private:
  explicit File(int fd) : fd_(fd) {}
  void fail(const std::string& what);

  int fd_ = -1;
  std::string error_;
};

/// fsync on a directory, making renames within it durable. Returns false on
/// any failure (including open).
bool sync_dir(const std::string& dir, std::string* error_out = nullptr);

/// The atomic-publish discipline in one call: write `contents` to
/// `path + ".tmp"`, fsync, close, rename over `path`, fsync the parent
/// directory. On any failure (real or injected) the temp file is unlinked,
/// `path` is untouched, and false is returned with a diagnostic in
/// `error_out`. This is the helper every artifact writer (soak.json,
/// flight.json, schedule.txt, checkpoints) routes through so a crash
/// mid-dump can never leave a truncated artifact under the final name.
bool atomic_write_file(const std::string& path, std::string_view contents,
                       std::string* error_out = nullptr);

/// Reads a whole file into `out`. Returns false (with diagnostic) when the
/// file cannot be opened or read; a missing file is a failure here — callers
/// that treat absence as empty check existence first.
bool read_file(const std::string& path, std::string& out,
               std::string* error_out = nullptr);

}  // namespace dcs::persist
