#pragma once

// Checkpoint format: one record-framed file capturing everything the
// supervisor needs to resume maintenance exactly where it stopped.
//
// Record sequence (kinds below, each CRC-guarded by the frame layer):
//
//   kHeader      version, n, wave, epoch
//   kGraph       the fault-free network G (edge list)
//   kSpanner     the current *surviving* spanner H (edge list)
//   kFaults      the overlay: crashed vertices + individually-crashed edges
//   kSupervisor  debt queue (in arrival order) + maintenance counters
//   kFooter      record count — its presence proves the file is complete
//
// G is persisted in full so a checkpoint directory is self-contained: a
// recovering process can validate its world without trusting any other
// file, and `dcs_tool recover` can cross-check the operator-supplied graph
// against what the crashed process was actually maintaining. The footer
// turns "file ends early" from a guess into a hard verdict: a checkpoint
// without a footer was torn mid-write and the whole generation is invalid
// (checkpoints are atomic — there is no valid prefix to salvage, unlike a
// WAL).
//
// The certificate itself (α achieved, held/degraded/lost) is deliberately
// NOT trusted from disk: recovery always recertifies against the live
// HealthMonitor before the spanner is served. Persisting it would invite
// exactly the bug the acceptance criteria forbid — serving a corrupt or
// stale certificate.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "persist/record.hpp"

namespace dcs::persist {

inline constexpr std::uint32_t kCheckpointVersion = 1;

enum class CheckpointRecord : std::uint8_t {
  kHeader = 1,
  kGraph = 2,
  kSpanner = 3,
  kFaults = 4,
  kSupervisor = 5,
  kFooter = 6,
};

/// Everything a checkpoint round-trips. Owned variant (decode target);
/// encode_checkpoint reads the same fields.
struct CheckpointData {
  std::uint64_t wave = 0;   ///< waves consumed when the checkpoint was cut
  std::uint64_t epoch = 0;  ///< last serving epoch published (0 = none)

  Graph graph;    ///< fault-free network G
  Graph spanner;  ///< current surviving spanner H ⊆ G∖F

  std::vector<Vertex> down_vertices;  ///< ascending
  std::vector<Edge> down_edges;       ///< canonical, sorted

  std::vector<Edge> debt;  ///< repair debt, arrival order preserved
  std::uint64_t debt_oldest_wave = 0;

  std::uint64_t repairs = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t last_rebuild_wave = 0;
  std::uint64_t last_check_wave = 0;
  std::uint64_t held_streak = 0;
  bool emergency_rebuild = false;
  bool cert_dirty = false;
};

/// Serializes the full record sequence (header → footer) into a byte
/// string ready for an atomic file publish.
std::string encode_checkpoint(const CheckpointData& data);

/// Parses and validates checkpoint bytes. Returns nullopt (with a
/// diagnostic) unless *everything* checks out: clean record tail, exact
/// record sequence, version match, footer count, graphs decode with
/// consistent vertex counts, H ⊆ G, and every fault/debt entry in range.
/// Anything less and the generation is unusable — recovery falls back.
std::optional<CheckpointData> decode_checkpoint(std::string_view bytes,
                                                std::string* error_out);

}  // namespace dcs::persist
