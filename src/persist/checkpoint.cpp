#include "persist/checkpoint.hpp"

#include <sstream>

namespace dcs::persist {

namespace {

void encode_edges(Encoder& enc, const std::vector<Edge>& edges) {
  enc.u64(edges.size());
  for (Edge e : edges) {
    enc.u32(e.u);
    enc.u32(e.v);
  }
}

bool decode_edges(Decoder& dec, std::size_t n, std::vector<Edge>& out,
                  std::string* error, const char* what) {
  const std::uint64_t count = dec.u64();
  // A flipped count cannot force a huge allocation: the payload itself
  // bounds how many edges can actually be present.
  if (!dec.ok() || count > dec.remaining() / 8) {
    if (error != nullptr) *error = std::string(what) + ": bad edge count";
    return false;
  }
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const Vertex u = dec.u32();
    const Vertex v = dec.u32();
    if (!dec.ok() || u >= n || v >= n) {
      if (error != nullptr) {
        *error = std::string(what) + ": edge endpoint out of range";
      }
      return false;
    }
    out.push_back(Edge{u, v});
  }
  return true;
}

std::string graph_payload(const Graph& g) {
  Encoder enc;
  enc.u64(g.num_vertices());
  encode_edges(enc, g.edges());
  return enc.take();
}

std::optional<Graph> decode_graph(std::string_view payload,
                                  std::string* error, const char* what) {
  Decoder dec(payload);
  const std::uint64_t n = dec.u64();
  // Cap n well above any real deployment but low enough that a miraculous
  // CRC collision cannot demand a pathological allocation.
  if (!dec.ok() || n > (std::uint64_t{1} << 27)) {
    if (error != nullptr) *error = std::string(what) + ": bad vertex count";
    return std::nullopt;
  }
  std::vector<Edge> edges;
  if (!decode_edges(dec, static_cast<std::size_t>(n), edges, error, what)) {
    return std::nullopt;
  }
  if (!dec.done()) {
    if (error != nullptr) *error = std::string(what) + ": trailing bytes";
    return std::nullopt;
  }
  return Graph::from_edges(static_cast<std::size_t>(n), edges);
}

}  // namespace

std::string encode_checkpoint(const CheckpointData& data) {
  std::string out;

  Encoder header;
  header.u32(kCheckpointVersion);
  header.u64(data.graph.num_vertices());
  header.u64(data.wave);
  header.u64(data.epoch);
  append_frame(out, static_cast<std::uint8_t>(CheckpointRecord::kHeader),
               header.str());

  append_frame(out, static_cast<std::uint8_t>(CheckpointRecord::kGraph),
               graph_payload(data.graph));
  append_frame(out, static_cast<std::uint8_t>(CheckpointRecord::kSpanner),
               graph_payload(data.spanner));

  Encoder faults;
  faults.u64(data.down_vertices.size());
  for (Vertex v : data.down_vertices) faults.u32(v);
  encode_edges(faults, data.down_edges);
  append_frame(out, static_cast<std::uint8_t>(CheckpointRecord::kFaults),
               faults.str());

  Encoder sup;
  encode_edges(sup, data.debt);
  sup.u64(data.debt_oldest_wave);
  sup.u64(data.repairs);
  sup.u64(data.rebuilds);
  sup.u64(data.last_rebuild_wave);
  sup.u64(data.last_check_wave);
  sup.u64(data.held_streak);
  sup.u8(data.emergency_rebuild ? 1 : 0);
  sup.u8(data.cert_dirty ? 1 : 0);
  append_frame(out, static_cast<std::uint8_t>(CheckpointRecord::kSupervisor),
               sup.str());

  Encoder footer;
  footer.u32(5);  // records before the footer
  append_frame(out, static_cast<std::uint8_t>(CheckpointRecord::kFooter),
               footer.str());
  return out;
}

std::optional<CheckpointData> decode_checkpoint(std::string_view bytes,
                                                std::string* error_out) {
  const auto fail = [error_out](const std::string& why) {
    if (error_out != nullptr) *error_out = why;
    return std::nullopt;
  };

  const ParsedRecords parsed = parse_records(bytes);
  if (parsed.tail != TailStatus::kClean) {
    return fail("checkpoint " + std::string(to_string(parsed.tail)) + ": " +
                parsed.detail);
  }
  if (parsed.records.size() != 6) {
    return fail("checkpoint has " + std::to_string(parsed.records.size()) +
                " records, expected 6");
  }
  const auto expect = [&](std::size_t i, CheckpointRecord kind) {
    return parsed.records[i].kind == static_cast<std::uint8_t>(kind);
  };
  if (!expect(0, CheckpointRecord::kHeader) ||
      !expect(1, CheckpointRecord::kGraph) ||
      !expect(2, CheckpointRecord::kSpanner) ||
      !expect(3, CheckpointRecord::kFaults) ||
      !expect(4, CheckpointRecord::kSupervisor) ||
      !expect(5, CheckpointRecord::kFooter)) {
    return fail("checkpoint record sequence out of order");
  }

  CheckpointData data;

  {
    Decoder dec(parsed.records[0].payload);
    const std::uint32_t version = dec.u32();
    const std::uint64_t n = dec.u64();
    data.wave = dec.u64();
    data.epoch = dec.u64();
    if (!dec.done()) return fail("checkpoint header malformed");
    if (version != kCheckpointVersion) {
      return fail("checkpoint version " + std::to_string(version) +
                  " unsupported");
    }
    auto g = decode_graph(parsed.records[1].payload, error_out, "graph");
    if (!g.has_value()) return std::nullopt;
    auto h = decode_graph(parsed.records[2].payload, error_out, "spanner");
    if (!h.has_value()) return std::nullopt;
    if (g->num_vertices() != n || h->num_vertices() != n) {
      return fail("checkpoint graph vertex counts disagree with header");
    }
    data.graph = std::move(*g);
    data.spanner = std::move(*h);
  }
  const std::size_t n = data.graph.num_vertices();

  {
    Decoder dec(parsed.records[3].payload);
    const std::uint64_t vcount = dec.u64();
    if (!dec.ok() || vcount > n) return fail("faults: bad vertex count");
    data.down_vertices.reserve(static_cast<std::size_t>(vcount));
    for (std::uint64_t i = 0; i < vcount; ++i) {
      const Vertex v = dec.u32();
      if (!dec.ok() || v >= n) return fail("faults: vertex out of range");
      if (i > 0 && v <= data.down_vertices.back()) {
        return fail("faults: vertices not strictly ascending");
      }
      data.down_vertices.push_back(v);
    }
    std::string err;
    if (!decode_edges(dec, n, data.down_edges, &err, "faults")) {
      return fail(err);
    }
    if (!dec.done()) return fail("faults: trailing bytes");
  }

  {
    Decoder dec(parsed.records[4].payload);
    std::string err;
    if (!decode_edges(dec, n, data.debt, &err, "debt")) return fail(err);
    data.debt_oldest_wave = dec.u64();
    data.repairs = dec.u64();
    data.rebuilds = dec.u64();
    data.last_rebuild_wave = dec.u64();
    data.last_check_wave = dec.u64();
    data.held_streak = dec.u64();
    data.emergency_rebuild = dec.u8() != 0;
    data.cert_dirty = dec.u8() != 0;
    if (!dec.done()) return fail("supervisor record malformed");
  }

  {
    Decoder dec(parsed.records[5].payload);
    const std::uint32_t count = dec.u32();
    if (!dec.done() || count != 5) return fail("checkpoint footer malformed");
  }

  // Semantic validation — the structural checks above guarantee the bytes
  // parse; these guarantee the *state* is one the supervisor could actually
  // have been in. A checkpoint that fails here is as corrupt as a CRC miss.
  if (!data.graph.contains_subgraph(data.spanner)) {
    return fail("checkpoint spanner is not a subgraph of its network");
  }
  for (Edge e : data.debt) {
    if (!data.graph.has_edge(e.u, e.v)) {
      return fail("checkpoint debt edge absent from the network");
    }
  }
  return data;
}

}  // namespace dcs::persist
