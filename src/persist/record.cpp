#include "persist/record.hpp"

#include <array>
#include <sstream>

namespace dcs::persist {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 4 + 4;

std::uint32_t read_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Encoder::u32(std::uint32_t v) {
  out_.push_back(static_cast<char>(v & 0xFF));
  out_.push_back(static_cast<char>((v >> 8) & 0xFF));
  out_.push_back(static_cast<char>((v >> 16) & 0xFF));
  out_.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void Encoder::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  u32(static_cast<std::uint32_t>(v >> 32));
}

const unsigned char* Decoder::take(std::size_t n) {
  if (!ok_ || bytes_.size() - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const auto* p =
      reinterpret_cast<const unsigned char*>(bytes_.data()) + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Decoder::u8() {
  const unsigned char* p = take(1);
  return p != nullptr ? *p : 0;
}

std::uint32_t Decoder::u32() {
  const unsigned char* p = take(4);
  return p != nullptr ? read_u32le(p) : 0;
}

std::uint64_t Decoder::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

void append_frame(std::string& out, std::uint8_t kind,
                  std::string_view payload) {
  Encoder header;
  header.u32(kRecordMagic);
  header.u8(kind);
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(crc32(payload));
  out.append(header.str());
  out.append(payload);
}

bool write_record(File& file, std::uint8_t kind, std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  append_frame(frame, kind, payload);
  return file.write_all(frame);
}

const char* to_string(TailStatus status) {
  switch (status) {
    case TailStatus::kClean: return "clean";
    case TailStatus::kTorn: return "torn";
    case TailStatus::kCorrupt: return "corrupt";
  }
  return "?";
}

ParsedRecords parse_records(std::string_view bytes) {
  ParsedRecords out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t left = bytes.size() - pos;
    if (left < kFrameHeaderBytes) {
      out.tail = TailStatus::kTorn;
      out.detail = "partial frame header (" + std::to_string(left) +
                   " trailing bytes)";
      break;
    }
    const auto* p =
        reinterpret_cast<const unsigned char*>(bytes.data()) + pos;
    const std::uint32_t magic = read_u32le(p);
    if (magic != kRecordMagic) {
      // A wrong magic on a *complete* header is corruption, not a torn
      // append: appends write the header before the payload, so a crash
      // cannot leave garbage where the magic belongs.
      out.tail = TailStatus::kCorrupt;
      {
        std::ostringstream os;
        os << "bad magic 0x" << std::hex << magic << " at offset "
           << std::dec << pos;
        out.detail = os.str();
      }
      break;
    }
    const std::uint8_t kind = p[4];
    const std::uint32_t len = read_u32le(p + 5);
    const std::uint32_t crc = read_u32le(p + 9);
    if (left - kFrameHeaderBytes < len) {
      out.tail = TailStatus::kTorn;
      out.detail = "payload truncated at offset " + std::to_string(pos) +
                   " (" + std::to_string(left - kFrameHeaderBytes) + " of " +
                   std::to_string(len) + " bytes)";
      break;
    }
    const std::string_view payload =
        bytes.substr(pos + kFrameHeaderBytes, len);
    if (crc32(payload) != crc) {
      out.tail = TailStatus::kCorrupt;
      out.detail = "crc mismatch in record " +
                   std::to_string(out.records.size()) + " at offset " +
                   std::to_string(pos);
      break;
    }
    out.records.push_back(Record{kind, std::string(payload)});
    pos += kFrameHeaderBytes + len;
  }
  out.valid_bytes = pos;
  return out;
}

}  // namespace dcs::persist
