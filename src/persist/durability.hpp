#pragma once

// DurabilityManager — generation-numbered checkpoints plus a per-generation
// WAL, with fallback recovery.
//
// Directory layout (one directory per supervised oracle):
//
//     checkpoint-000007.ckpt   newest generation (atomic-renamed into place)
//     wal-000007.log           churn waves since checkpoint 7 was cut
//     checkpoint-000006.ckpt   previous generation (kept for fallback)
//     wal-000006.log
//
// Write path: `checkpoint()` publishes a new generation with the full
// temp → fsync → rename → fsync-dir discipline, then opens a fresh WAL and
// prunes generations beyond `keep_generations`. A failed checkpoint (real
// ENOSPC or injected fault) leaves the previous generation — and its still-
// growing WAL — fully intact: durability degrades, it never regresses.
// `log_wave()` appends one record per wave; a failed append marks the WAL
// unhealthy (surfaced via metrics) rather than aborting the maintenance
// loop, and the next successful checkpoint rotates past the damage.
//
// Read path: `recover()` scans generations newest-first, taking the first
// checkpoint that fully validates, then replays its WAL (truncating a torn
// tail). Corrupt newer generations are skipped with a flight-recorder
// breadcrumb. If nothing validates, recovery fails *closed* — nullopt, an
// error string, and no partially-trusted state.
//
// Everything is exported under `persist.*` metrics:
//   persist.checkpoint.{written,failed,bytes,ms}
//   persist.wal.{records,bytes,failed}
//   persist.recovery.{attempts,failed,generations_skipped,torn_tails,
//                     wal_waves,ms}

#include <cstdint>
#include <optional>
#include <string>

#include "persist/checkpoint.hpp"
#include "persist/wal.hpp"

namespace dcs::persist {

struct DurabilityOptions {
  /// Validated generations kept *besides* the newest (fallback depth).
  std::size_t keep_generations = 2;
  /// fsync the WAL after every wave. Turning this off trades the last few
  /// waves for throughput; recovery still truncates cleanly.
  bool fsync_wal = true;
};

struct RecoveryOutcome {
  CheckpointData checkpoint;
  std::vector<WalWave> wal;  ///< waves to replay, consecutive from checkpoint
  std::uint64_t generation = 0;
  std::size_t generations_skipped = 0;  ///< newer-but-invalid generations
  bool wal_truncated = false;  ///< a torn/corrupt WAL tail was dropped
  std::string detail;          ///< human-readable recovery trail
};

class DurabilityManager {
 public:
  /// Creates the directory if needed. The manager starts at the newest
  /// generation already present (0 when the directory is fresh).
  explicit DurabilityManager(std::string dir, DurabilityOptions options = {});

  const std::string& dir() const { return dir_; }
  std::uint64_t generation() const { return generation_; }
  std::size_t checkpoints_written() const { return checkpoints_written_; }
  bool wal_healthy() const { return wal_.has_value() && wal_->healthy(); }
  const std::string& last_error() const { return last_error_; }

  /// Publishes `data` as the next generation and rotates the WAL. False on
  /// any failure (the previous generation stays current and intact).
  bool checkpoint(const CheckpointData& data);

  /// Appends one churn wave to the current WAL. False when no WAL is open
  /// or the append failed (WAL goes unhealthy until the next checkpoint).
  bool log_wave(std::uint64_t wave, std::span<const FaultEvent> events);

  /// Loads the newest valid (checkpoint, WAL) pair, falling back across
  /// corrupt generations. nullopt = fail closed (reason in last_error()).
  /// Read-only: the on-disk state is never modified by recovery.
  std::optional<RecoveryOutcome> recover();

  std::string checkpoint_path(std::uint64_t gen) const;
  std::string wal_path(std::uint64_t gen) const;

 private:
  void prune_generations();

  std::string dir_;
  DurabilityOptions options_;
  std::uint64_t generation_ = 0;  ///< newest published generation (0 = none)
  std::size_t checkpoints_written_ = 0;
  std::optional<WalWriter> wal_;
  std::string last_error_;
};

}  // namespace dcs::persist
