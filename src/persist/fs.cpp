#include "persist/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

namespace dcs::persist {

const char* to_string(FsFaultKind kind) {
  switch (kind) {
    case FsFaultKind::kShortWrite: return "short-write";
    case FsFaultKind::kEnospc: return "enospc";
    case FsFaultKind::kTornWrite: return "torn-write";
    case FsFaultKind::kFsyncFail: return "fsync-fail";
    case FsFaultKind::kBitFlip: return "bit-flip";
  }
  return "?";
}

namespace {

std::string errno_message(const std::string& what, int err) {
  std::ostringstream os;
  os << what << ": " << std::strerror(err);
  return os.str();
}

// Injector state behind one mutex; the armed flag is read lock-free so the
// production path (never armed) pays one relaxed atomic load per operation.
struct InjectorState {
  std::mutex mu;
  std::vector<FsFault> plan;
  std::uint64_t op = 0;
  std::uint64_t fired = 0;
};

InjectorState& injector_state() {
  static InjectorState state;
  return state;
}

std::atomic<bool>& injector_armed_flag() {
  static std::atomic<bool> armed{false};
  return armed;
}

// One EINTR-retrying write(2).
ssize_t write_retry(int fd, const void* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::write(fd, data, size);
    if (n >= 0 || errno != EINTR) return n;
  }
}

// Physically writes the whole buffer (short-write + EINTR loop), no faults.
bool write_full(int fd, const unsigned char* data, std::size_t size,
                std::string* error) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = write_retry(fd, data + done, size - done);
    if (n < 0) {
      if (error != nullptr) *error = errno_message("write", errno);
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FsFaultInjector& FsFaultInjector::instance() {
  static FsFaultInjector injector;
  return injector;
}

void FsFaultInjector::arm(std::vector<FsFault> plan) {
  auto& state = injector_state();
  std::lock_guard<std::mutex> lock(state.mu);
  state.plan = std::move(plan);
  state.op = 0;
  state.fired = 0;
  injector_armed_flag().store(true, std::memory_order_release);
}

void FsFaultInjector::arm_one(std::uint64_t op, FsFaultKind kind) {
  arm({FsFault{op, kind}});
}

void FsFaultInjector::disarm() {
  auto& state = injector_state();
  std::lock_guard<std::mutex> lock(state.mu);
  injector_armed_flag().store(false, std::memory_order_release);
  state.plan.clear();
  state.op = 0;
  state.fired = 0;
}

bool FsFaultInjector::armed() const {
  return injector_armed_flag().load(std::memory_order_acquire);
}

std::uint64_t FsFaultInjector::ops() const {
  auto& state = injector_state();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.op;
}

std::uint64_t FsFaultInjector::fired() const {
  auto& state = injector_state();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.fired;
}

std::optional<FsFaultKind> FsFaultInjector::next_fault() {
  if (!injector_armed_flag().load(std::memory_order_acquire)) {
    return std::nullopt;
  }
  auto& state = injector_state();
  std::lock_guard<std::mutex> lock(state.mu);
  const std::uint64_t op = state.op++;
  for (const FsFault& f : state.plan) {
    if (f.op == op) {
      ++state.fired;
      return f.kind;
    }
  }
  return std::nullopt;
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File::File(File&& other) noexcept
    : fd_(other.fd_), error_(std::move(other.error_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    error_ = std::move(other.error_);
    other.fd_ = -1;
  }
  return *this;
}

File File::create(const std::string& path, std::string* error_out) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error_out != nullptr) {
      *error_out = errno_message("open " + path, errno);
    }
    return File();
  }
  return File(fd);
}

File File::append(const std::string& path, std::string* error_out) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_APPEND | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error_out != nullptr) {
      *error_out = errno_message("open " + path, errno);
    }
    return File();
  }
  return File(fd);
}

void File::fail(const std::string& what) {
  if (error_.empty()) error_ = what;
}

bool File::write_all(const void* data, std::size_t size) {
  if (fd_ < 0) {
    fail("write on closed file");
    return false;
  }
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto fault = FsFaultInjector::instance().next_fault();
  if (fault.has_value()) {
    switch (*fault) {
      case FsFaultKind::kShortWrite: {
        // The kernel consumed only half; callers that loop (as write_all
        // does) complete the buffer, callers that do not would tear it.
        const std::size_t half = size / 2;
        std::string err;
        if (!write_full(fd_, bytes, half, &err) ||
            !write_full(fd_, bytes + half, size - half, &err)) {
          fail(err);
          return false;
        }
        return true;
      }
      case FsFaultKind::kEnospc:
        fail(errno_message("write (injected)", ENOSPC));
        return false;
      case FsFaultKind::kTornWrite: {
        // A crash mid-append: a prefix lands, then the process "dies".
        const std::size_t prefix = size / 3;
        std::string err;
        write_full(fd_, bytes, prefix, &err);
        fail("injected torn write after " + std::to_string(prefix) +
             " of " + std::to_string(size) + " bytes");
        return false;
      }
      case FsFaultKind::kFsyncFail:
        // Scheduled against a write op: treat as generic I/O failure.
        fail(errno_message("write (injected)", EIO));
        return false;
      case FsFaultKind::kBitFlip: {
        // Silent media corruption: the write "succeeds" but one bit in the
        // middle of the buffer lands flipped. Only CRCs can catch this.
        std::vector<unsigned char> copy(bytes, bytes + size);
        if (!copy.empty()) copy[copy.size() / 2] ^= 0x10;
        std::string err;
        if (!write_full(fd_, copy.data(), copy.size(), &err)) {
          fail(err);
          return false;
        }
        return true;
      }
    }
  }
  std::string err;
  if (!write_full(fd_, bytes, size, &err)) {
    fail(err);
    return false;
  }
  return true;
}

bool File::sync() {
  if (fd_ < 0) {
    fail("fsync on closed file");
    return false;
  }
  const auto fault = FsFaultInjector::instance().next_fault();
  if (fault.has_value() && *fault == FsFaultKind::kFsyncFail) {
    fail(errno_message("fsync (injected)", EIO));
    return false;
  }
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    fail(errno_message("fsync", errno));
    return false;
  }
  return true;
}

bool File::close() {
  if (fd_ < 0) return true;
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) {
    fail(errno_message("close", errno));
    return false;
  }
  return true;
}

bool sync_dir(const std::string& dir, std::string* error_out) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    if (error_out != nullptr) {
      *error_out = errno_message("open dir " + dir, errno);
    }
    return false;
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  ::close(fd);
  if (rc != 0) {
    if (error_out != nullptr) {
      *error_out = errno_message("fsync dir " + dir, errno);
    }
    return false;
  }
  return true;
}

bool atomic_write_file(const std::string& path, std::string_view contents,
                       std::string* error_out) {
  const std::string tmp = path + ".tmp";
  std::string err;
  File file = File::create(tmp, &err);
  const bool written = file.valid() && file.write_all(contents) &&
                       file.sync() && file.close();
  if (!written) {
    if (err.empty()) err = file.error();
    if (error_out != nullptr) *error_out = err;
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error_out != nullptr) {
      *error_out = errno_message("rename " + tmp + " -> " + path, errno);
    }
    ::unlink(tmp.c_str());
    return false;
  }
  // Durability of the rename itself: fsync the containing directory.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  return sync_dir(dir, error_out);
}

bool read_file(const std::string& path, std::string& out,
               std::string* error_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error_out != nullptr) *error_out = "cannot open " + path;
    return false;
  }
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) {
    if (error_out != nullptr) *error_out = "read failed on " + path;
    return false;
  }
  out = os.str();
  return true;
}

}  // namespace dcs::persist
