#include "persist/durability.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#define DCS_LOG_COMPONENT "persist"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace dcs::persist {

namespace {

std::string gen_name(const char* prefix, std::uint64_t gen,
                     const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s-%06llu%s", prefix,
                static_cast<unsigned long long>(gen), suffix);
  return buf;
}

/// Parses "checkpoint-NNNNNN.ckpt" → NNNNNN; nullopt for anything else.
std::optional<std::uint64_t> parse_gen(const std::string& name) {
  const std::string prefix = "checkpoint-";
  const std::string suffix = ".ckpt";
  if (name.size() <= prefix.size() + suffix.size() ||
      name.compare(0, prefix.size(), prefix) != 0 ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return std::nullopt;
  std::uint64_t gen = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return gen;
}

/// Generations present on disk, descending (newest first).
std::vector<std::uint64_t> list_generations(const std::string& dir) {
  std::vector<std::uint64_t> gens;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const auto gen = parse_gen(entry.path().filename().string());
    if (gen.has_value()) gens.push_back(*gen);
  }
  std::sort(gens.rbegin(), gens.rend());
  return gens;
}

void count_metric(const char* name, std::uint64_t delta = 1) {
  if (!obs::metrics_enabled()) return;
  obs::MetricsRegistry::instance().counter(name).inc(delta);
}

void gauge_metric(const char* name, double value) {
  if (!obs::metrics_enabled()) return;
  obs::MetricsRegistry::instance().gauge(name).set(value);
}

}  // namespace

DurabilityManager::DurabilityManager(std::string dir,
                                     DurabilityOptions options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const auto gens = list_generations(dir_);
  if (!gens.empty()) generation_ = gens.front();
}

std::string DurabilityManager::checkpoint_path(std::uint64_t gen) const {
  return dir_ + "/" + gen_name("checkpoint", gen, ".ckpt");
}

std::string DurabilityManager::wal_path(std::uint64_t gen) const {
  return dir_ + "/" + gen_name("wal", gen, ".log");
}

bool DurabilityManager::checkpoint(const CheckpointData& data) {
  Timer timer;
  const std::uint64_t gen = generation_ + 1;
  const std::string bytes = encode_checkpoint(data);
  std::string err;
  if (!atomic_write_file(checkpoint_path(gen), bytes, &err)) {
    last_error_ = "checkpoint generation " + std::to_string(gen) +
                  " failed: " + err;
    count_metric("persist.checkpoint.failed");
    obs::FlightRecorder::instance().record(obs::FlightEventKind::kCustom,
                                           "checkpoint-failed", gen,
                                           data.wave);
    DCS_LOG(Warn) << last_error_;
    // The previous generation and its WAL remain current; keep appending.
    return false;
  }
  // Rotate the WAL only after the checkpoint is durable: events logged to
  // the old WAL remain replayable against the old checkpoint until then.
  if (wal_.has_value()) wal_->finish();
  wal_.reset();
  std::string wal_err;
  auto writer = WalWriter::open(wal_path(gen), options_.fsync_wal, &wal_err);
  if (writer.has_value()) {
    wal_ = std::move(*writer);
  } else {
    // The checkpoint itself is durable; only forward progress is
    // unprotected until the next rotation. Surfaced, not fatal.
    last_error_ = "wal for generation " + std::to_string(gen) +
                  " failed to open: " + wal_err;
    count_metric("persist.wal.failed");
    DCS_LOG(Warn) << last_error_;
  }
  generation_ = gen;
  ++checkpoints_written_;
  prune_generations();
  count_metric("persist.checkpoint.written");
  count_metric("persist.checkpoint.bytes", bytes.size());
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::instance()
        .histogram("persist.checkpoint.ms")
        .record(timer.seconds() * 1e3);
  }
  gauge_metric("persist.generation", static_cast<double>(gen));
  obs::FlightRecorder::instance().record(obs::FlightEventKind::kCustom,
                                         "checkpoint", gen, data.wave);
  DCS_LOG(Debug) << "checkpoint generation " << gen << " at wave "
                 << data.wave << " (" << bytes.size() << " bytes)";
  return true;
}

bool DurabilityManager::log_wave(std::uint64_t wave,
                                 std::span<const FaultEvent> events) {
  if (!wal_.has_value()) {
    last_error_ = "no wal open (checkpoint first)";
    return false;
  }
  const bool was_healthy = wal_->healthy();
  if (!wal_->append(wave, events)) {
    if (was_healthy) {
      last_error_ = "wal append failed at wave " + std::to_string(wave) +
                    ": " + wal_->error();
      count_metric("persist.wal.failed");
      obs::FlightRecorder::instance().record(obs::FlightEventKind::kCustom,
                                             "wal-unhealthy", generation_,
                                             wave);
      DCS_LOG(Warn) << last_error_;
    }
    return false;
  }
  count_metric("persist.wal.records");
  return true;
}

void DurabilityManager::prune_generations() {
  if (generation_ <= options_.keep_generations) return;
  const std::uint64_t keep_from = generation_ - options_.keep_generations;
  for (std::uint64_t gen : list_generations(dir_)) {
    if (gen >= keep_from) continue;
    // Best effort: a stale generation that will not unlink is harmless.
    ::unlink(checkpoint_path(gen).c_str());
    ::unlink(wal_path(gen).c_str());
  }
}

std::optional<RecoveryOutcome> DurabilityManager::recover() {
  Timer timer;
  count_metric("persist.recovery.attempts");
  const auto gens = list_generations(dir_);
  std::ostringstream trail;
  std::size_t skipped = 0;
  for (std::uint64_t gen : gens) {
    std::string bytes;
    std::string err;
    if (!read_file(checkpoint_path(gen), bytes, &err)) {
      trail << "generation " << gen << ": " << err << "; ";
      ++skipped;
      continue;
    }
    auto ckpt = decode_checkpoint(bytes, &err);
    if (!ckpt.has_value()) {
      trail << "generation " << gen << ": " << err << "; ";
      ++skipped;
      count_metric("persist.recovery.generations_skipped");
      obs::FlightRecorder::instance().record(obs::FlightEventKind::kCustom,
                                             "ckpt-fallback", gen, 0);
      DCS_LOG(Warn) << "checkpoint generation " << gen
                    << " invalid, falling back: " << err;
      continue;
    }

    WalContents wal =
        read_wal(wal_path(gen), ckpt->wave, ckpt->graph.num_vertices());
    RecoveryOutcome out;
    out.checkpoint = std::move(*ckpt);
    out.wal = std::move(wal.waves);
    out.generation = gen;
    out.generations_skipped = skipped;
    out.wal_truncated = wal.tail != TailStatus::kClean;
    if (out.wal_truncated) {
      trail << "wal " << to_string(wal.tail) << " after "
            << out.wal.size() << " waves (" << wal.detail << "); ";
      count_metric("persist.recovery.torn_tails");
      obs::FlightRecorder::instance().record(
          obs::FlightEventKind::kCustom, "wal-truncated", gen,
          out.wal.size());
      DCS_LOG(Warn) << "wal generation " << gen << " " << to_string(wal.tail)
                    << ", truncated to " << out.wal.size() << " waves";
    }
    trail << "recovered generation " << gen << " (wave "
          << out.checkpoint.wave << " + " << out.wal.size()
          << " wal waves)";
    out.detail = trail.str();
    gauge_metric("persist.recovery.generation", static_cast<double>(gen));
    gauge_metric("persist.recovery.generations_skipped",
                 static_cast<double>(skipped));
    gauge_metric("persist.recovery.wal_waves",
                 static_cast<double>(out.wal.size()));
    gauge_metric("persist.recovery.ms", timer.seconds() * 1e3);
    obs::FlightRecorder::instance().record(obs::FlightEventKind::kCustom,
                                           "recovery-loaded", gen,
                                           out.checkpoint.wave);
    return out;
  }
  last_error_ = gens.empty()
                    ? "no checkpoint generations in " + dir_
                    : "no valid checkpoint generation: " + trail.str();
  count_metric("persist.recovery.failed");
  obs::FlightRecorder::instance().record(obs::FlightEventKind::kCustom,
                                         "recovery-failed", gens.size(), 0);
  DCS_LOG(Error) << "recovery failed closed: " << last_error_;
  return std::nullopt;
}

}  // namespace dcs::persist
