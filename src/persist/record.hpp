#pragma once

// Length-prefixed, CRC32-guarded record framing for checkpoints and WALs.
//
// On-disk frame (all integers little-endian, fixed width):
//
//     u32 magic 'DCSR' | u8 kind | u32 payload_len | u32 crc32(payload) | payload
//
// The frame is designed so a reader can always classify the tail of a file:
//
//  * kClean   — the file ends exactly at a frame boundary;
//  * kTorn    — the trailing bytes are a *prefix* of a frame (header cut
//               short, or payload shorter than its declared length). This is
//               what a crash mid-append leaves behind; the valid prefix
//               before it is trustworthy and the tail is truncated away.
//  * kCorrupt — a complete frame is present but its magic or CRC does not
//               match (bit rot, overwrite, injected bit-flip). Nothing after
//               this point can be trusted either — a flipped length field
//               desynchronizes all subsequent framing — so parsing stops,
//               and callers decide whether the prefix alone is acceptable.
//
// Payloads are encoded with the Encoder/Decoder helpers below: explicit
// little-endian fixed-width integers, bounds-checked on decode, so a
// checkpoint written on one machine replays identically on another.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "persist/fs.hpp"

namespace dcs::persist {

inline constexpr std::uint32_t kRecordMagic = 0x52534344;  // "DCSR" in LE

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);
inline std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

/// Little-endian payload builder.
class Encoder {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::string_view b) { out_.append(b); }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian payload reader. Any out-of-bounds read sets
/// a sticky failure flag and returns 0 — callers check ok() once at the end
/// instead of threading a status through every field.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();

  bool ok() const { return ok_; }
  /// True when every byte was consumed and no read overran.
  bool done() const { return ok_ && pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const unsigned char* take(std::size_t n);

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

struct Record {
  std::uint8_t kind = 0;
  std::string payload;
};

/// Serializes one frame (header + payload) into `out`.
void append_frame(std::string& out, std::uint8_t kind,
                  std::string_view payload);

/// Appends one frame through the (fault-injectable) file seam.
bool write_record(File& file, std::uint8_t kind, std::string_view payload);

enum class TailStatus : std::uint8_t {
  kClean,    ///< file ends on a frame boundary
  kTorn,     ///< trailing partial frame (crash mid-append) — truncatable
  kCorrupt,  ///< bad magic or CRC mid-stream — prefix only, flagged loudly
};

const char* to_string(TailStatus status);

struct ParsedRecords {
  std::vector<Record> records;  ///< the valid prefix
  TailStatus tail = TailStatus::kClean;
  std::size_t valid_bytes = 0;  ///< offset of the first non-valid byte
  std::string detail;           ///< diagnostic for non-clean tails
};

/// Walks `bytes` frame by frame, returning every fully-validated record
/// before the first anomaly. Never throws; a hostile length field cannot
/// make it read out of bounds or allocate more than the file's own size.
ParsedRecords parse_records(std::string_view bytes);

}  // namespace dcs::persist
