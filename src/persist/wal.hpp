#pragma once

// Write-ahead log of churn waves between checkpoints.
//
// One record per wave — *including empty waves*. The supervisor's
// maintenance decisions (recheck cadence, rebuild debounce, repair
// hysteresis) depend on wave indices, not just events, so replay must
// re-step every wave the crashed process stepped or the recovered state
// would drift from the pre-crash one. Each record:
//
//     u64 wave | u32 event_count | event_count × (u8 kind, u32 u, u32 v)
//
// framed and CRC-guarded by the record layer. The log is append-only and
// (optionally) fsynced per wave; a crash mid-append leaves a torn tail
// that read_wal truncates at the last valid record — losing at most the
// wave being logged when the process died, which the WAL-before-apply
// ordering makes the only wave whose effects were not yet visible anyway.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "persist/fs.hpp"
#include "persist/record.hpp"
#include "resilience/fault_state.hpp"

namespace dcs::persist {

inline constexpr std::uint8_t kWalWaveRecord = 16;

struct WalWave {
  std::uint64_t wave = 0;
  std::vector<FaultEvent> events;
};

/// Append-side handle. Never throws; after the first failed append the
/// writer is `!healthy()` and further appends are rejected (the caller's
/// durability manager surfaces the outage and rotates to a fresh log at
/// the next successful checkpoint).
class WalWriter {
 public:
  WalWriter() = default;

  /// Opens (creating or truncating) `path` for appending.
  static std::optional<WalWriter> open(const std::string& path,
                                       bool fsync_each_wave,
                                       std::string* error_out = nullptr);

  bool append(std::uint64_t wave, std::span<const FaultEvent> events);

  bool healthy() const { return healthy_; }
  const std::string& error() const { return error_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t bytes() const { return bytes_; }

  /// Flush + close; returns false if the final sync/close failed.
  bool finish();

 private:
  File file_;
  bool fsync_each_wave_ = true;
  bool healthy_ = false;
  std::string error_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

struct WalContents {
  std::vector<WalWave> waves;
  TailStatus tail = TailStatus::kClean;
  std::size_t valid_bytes = 0;
  std::string detail;
};

/// Reads and validates a WAL. A missing file is a valid empty log (the
/// process may have died between publishing a checkpoint and creating its
/// WAL). A torn or corrupt tail truncates: only the valid prefix is
/// returned, with the tail status reporting what was dropped. Waves must
/// be consecutive ascending starting at `first_wave` — a gap means the
/// file is not the log it claims to be, and everything from the gap on is
/// discarded as corrupt. Event payloads are bounds-checked against
/// `num_vertices`.
WalContents read_wal(const std::string& path, std::uint64_t first_wave,
                     std::size_t num_vertices);

}  // namespace dcs::persist
