#include "persist/wal.hpp"

#include <sys/stat.h>

namespace dcs::persist {

std::optional<WalWriter> WalWriter::open(const std::string& path,
                                         bool fsync_each_wave,
                                         std::string* error_out) {
  std::string err;
  File file = File::create(path, &err);
  if (!file.valid()) {
    if (error_out != nullptr) *error_out = err;
    return std::nullopt;
  }
  WalWriter writer;
  writer.file_ = std::move(file);
  writer.fsync_each_wave_ = fsync_each_wave;
  writer.healthy_ = true;
  return writer;
}

bool WalWriter::append(std::uint64_t wave,
                       std::span<const FaultEvent> events) {
  if (!healthy_) return false;
  Encoder enc;
  enc.u64(wave);
  enc.u32(static_cast<std::uint32_t>(events.size()));
  for (const FaultEvent& e : events) {
    enc.u8(static_cast<std::uint8_t>(e.kind));
    enc.u32(e.u);
    enc.u32(e.v);
  }
  const std::string payload = enc.take();
  if (!write_record(file_, kWalWaveRecord, payload) ||
      (fsync_each_wave_ && !file_.sync())) {
    healthy_ = false;
    error_ = file_.error();
    return false;
  }
  ++records_;
  bytes_ += 13 + payload.size();
  return true;
}

bool WalWriter::finish() {
  if (!file_.valid()) return healthy_;
  const bool ok = file_.sync() && file_.close();
  if (!ok && error_.empty()) error_ = file_.error();
  healthy_ = healthy_ && ok;
  return ok;
}

WalContents read_wal(const std::string& path, std::uint64_t first_wave,
                     std::size_t num_vertices) {
  WalContents out;
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    out.detail = "wal missing (treated as empty)";
    return out;  // clean empty log
  }
  std::string bytes;
  std::string err;
  if (!read_file(path, bytes, &err)) {
    out.tail = TailStatus::kCorrupt;
    out.detail = err;
    return out;
  }
  const ParsedRecords parsed = parse_records(bytes);
  out.tail = parsed.tail;
  out.valid_bytes = parsed.valid_bytes;
  out.detail = parsed.detail;

  std::uint64_t expected = first_wave;
  for (const Record& rec : parsed.records) {
    if (rec.kind != kWalWaveRecord) {
      out.tail = TailStatus::kCorrupt;
      out.detail = "unexpected record kind " + std::to_string(rec.kind);
      break;
    }
    Decoder dec(rec.payload);
    WalWave wave;
    wave.wave = dec.u64();
    const std::uint32_t count = dec.u32();
    bool bad = !dec.ok() || wave.wave != expected ||
               count > dec.remaining() / 9;
    if (!bad) {
      wave.events.reserve(count);
      for (std::uint32_t i = 0; i < count && !bad; ++i) {
        const std::uint8_t kind = dec.u8();
        const Vertex u = dec.u32();
        const Vertex v = dec.u32();
        if (!dec.ok() || kind > static_cast<std::uint8_t>(FaultKind::kEdgeUp)) {
          bad = true;
          break;
        }
        FaultEvent event;
        event.wave = static_cast<std::size_t>(wave.wave);
        event.kind = static_cast<FaultKind>(kind);
        event.u = u;
        event.v = v;
        const bool edge_event = event.kind == FaultKind::kEdgeDown ||
                                event.kind == FaultKind::kEdgeUp;
        if (u >= num_vertices || (edge_event && v >= num_vertices)) {
          bad = true;
          break;
        }
        wave.events.push_back(event);
      }
      if (!bad && !dec.done()) bad = true;
    }
    if (bad) {
      // A record that frames and CRCs correctly but decodes inconsistently
      // (gap in the wave sequence, out-of-range vertex) is not this
      // checkpoint's log from this point on — stop and report corrupt.
      out.tail = TailStatus::kCorrupt;
      out.detail = "wal record " + std::to_string(out.waves.size()) +
                   " inconsistent (expected wave " +
                   std::to_string(expected) + ")";
      break;
    }
    out.waves.push_back(std::move(wave));
    ++expected;
  }
  return out;
}

}  // namespace dcs::persist
