#include "graph/io.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace dcs {

void write_graph(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge e : g.edges()) {
    os << e.u << ' ' << e.v << '\n';
  }
}

void write_graph_file(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  DCS_REQUIRE(os.good(), "cannot open graph file for writing: " + path);
  write_graph(os, g);
  DCS_REQUIRE(os.good(), "write failed: " + path);
}

namespace {

// Fetches the next content line (skipping blanks and comments); returns
// false at EOF.
bool next_line(std::istream& is, std::string& line, std::size_t& lineno) {
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

// True when only whitespace is left: "0 1 junk" is a malformed line, not
// an edge with a trailing comment.
bool fully_consumed(std::istream& is) {
  is >> std::ws;
  return is.eof();
}

// iostreams silently wrap "-1" into ULLONG_MAX for unsigned reads, so a
// negative id must be rejected before extraction.
bool has_minus(const std::string& line) {
  return line.find('-') != std::string::npos;
}

}  // namespace

Graph read_graph(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  DCS_REQUIRE(next_line(is, line, lineno), "empty graph file");
  DCS_REQUIRE(!has_minus(line),
              "negative value at line " + std::to_string(lineno));
  std::istringstream header(line);
  std::size_t n = 0, m = 0;
  DCS_REQUIRE(static_cast<bool>(header >> n >> m),
              "malformed header at line " + std::to_string(lineno));
  DCS_REQUIRE(fully_consumed(header),
              "trailing garbage in header at line " + std::to_string(lineno));

  std::vector<Edge> edges;
  edges.reserve(m);
  EdgeSet seen;
  for (std::size_t i = 0; i < m; ++i) {
    DCS_REQUIRE(next_line(is, line, lineno),
                "expected " + std::to_string(m) + " edges, got " +
                    std::to_string(i));
    DCS_REQUIRE(!has_minus(line),
                "negative value at line " + std::to_string(lineno));
    std::istringstream row(line);
    std::uint64_t u = 0, v = 0;
    DCS_REQUIRE(static_cast<bool>(row >> u >> v),
                "malformed edge at line " + std::to_string(lineno));
    DCS_REQUIRE(fully_consumed(row),
                "trailing garbage at line " + std::to_string(lineno));
    DCS_REQUIRE(u < n && v < n,
                "endpoint out of range at line " + std::to_string(lineno));
    DCS_REQUIRE(u != v, "self-loop at line " + std::to_string(lineno));
    const Edge e = canonical(static_cast<Vertex>(u), static_cast<Vertex>(v));
    DCS_REQUIRE(seen.insert(e),
                "duplicate edge at line " + std::to_string(lineno));
    edges.push_back(e);
  }
  DCS_REQUIRE(!next_line(is, line, lineno),
              "unexpected content after the declared " + std::to_string(m) +
                  " edges at line " + std::to_string(lineno));
  return Graph::from_edges(n, edges);
}

Graph read_graph_file(const std::string& path) {
  std::ifstream is(path);
  DCS_REQUIRE(is.good(), "cannot open graph file: " + path);
  return read_graph(is);
}

void write_metis(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (i > 0) os << ' ';
      os << (nb[i] + 1);  // METIS is 1-indexed
    }
    os << '\n';
  }
}

void write_metis_file(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  DCS_REQUIRE(os.good(), "cannot open METIS file for writing: " + path);
  write_metis(os, g);
  DCS_REQUIRE(os.good(), "write failed: " + path);
}

namespace {

bool next_metis_line(std::istream& is, std::string& line,
                     std::size_t& lineno) {
  while (std::getline(is, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first != std::string::npos && line[first] == '%') continue;
    return true;  // blank lines are significant (isolated vertices)
  }
  return false;
}

}  // namespace

Graph read_metis(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  DCS_REQUIRE(next_metis_line(is, line, lineno), "empty METIS file");
  std::istringstream header(line);
  std::size_t n = 0, m = 0;
  DCS_REQUIRE(static_cast<bool>(header >> n >> m),
              "malformed METIS header at line " + std::to_string(lineno));
  std::size_t fmt = 0;
  if (header >> fmt) {
    DCS_REQUIRE(fmt == 0, "only the plain unweighted METIS format (fmt=0) "
                          "is supported");
  }

  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t v = 0; v < n; ++v) {
    DCS_REQUIRE(next_metis_line(is, line, lineno),
                "METIS file ends before vertex " + std::to_string(v + 1));
    DCS_REQUIRE(!has_minus(line),
                "negative value at line " + std::to_string(lineno));
    std::istringstream row(line);
    std::uint64_t nb = 0;
    while (row >> nb) {
      DCS_REQUIRE(nb >= 1 && nb <= n,
                  "neighbor out of range at line " + std::to_string(lineno));
      const auto u = static_cast<Vertex>(v);
      const auto w = static_cast<Vertex>(nb - 1);
      DCS_REQUIRE(u != w, "self-loop at line " + std::to_string(lineno));
      if (u < w) edges.push_back(Edge{u, w});  // each edge listed twice
    }
    row.clear();
    DCS_REQUIRE(fully_consumed(row),
                "non-numeric neighbor at line " + std::to_string(lineno));
  }
  const Graph g = Graph::from_edges(n, edges);
  DCS_REQUIRE(g.num_edges() == m,
              "METIS edge count mismatch: header says " + std::to_string(m) +
                  ", adjacency lists contain " +
                  std::to_string(g.num_edges()));
  return g;
}

Graph read_metis_file(const std::string& path) {
  std::ifstream is(path);
  DCS_REQUIRE(is.good(), "cannot open METIS file: " + path);
  return read_metis(is);
}

}  // namespace dcs
