#include "graph/bfs.hpp"

#include <algorithm>
#include <functional>

#include "graph/traversal.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

std::vector<Dist> bfs_distances(const Graph& g, Vertex source) {
  return bfs_distances_bounded(g, source, kUnreachable);
}

std::vector<Dist> bfs_distances_bounded(const Graph& g, Vertex source,
                                        Dist max_depth) {
  DCS_REQUIRE(source < g.num_vertices(), "BFS source out of range");
  std::vector<Dist> dist(g.num_vertices(), kUnreachable);
  std::vector<Vertex> frontier{source};
  std::vector<Vertex> next;
  dist[source] = 0;
  Dist level = 0;
  while (!frontier.empty() && level < max_depth) {
    next.clear();
    for (Vertex u : frontier) {
      for (Vertex v : g.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          dist[v] = level + 1;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    ++level;
  }
  return dist;
}

Dist bfs_distance(const Graph& g, Vertex source, Vertex target) {
  DCS_REQUIRE(source < g.num_vertices() && target < g.num_vertices(),
              "BFS endpoint out of range");
  if (source == target) return 0;
  std::vector<Dist> dist(g.num_vertices(), kUnreachable);
  std::vector<Vertex> frontier{source};
  std::vector<Vertex> next;
  dist[source] = 0;
  Dist level = 0;
  while (!frontier.empty()) {
    next.clear();
    for (Vertex u : frontier) {
      for (Vertex v : g.neighbors(u)) {
        if (dist[v] == kUnreachable) {
          if (v == target) return level + 1;
          dist[v] = level + 1;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
    ++level;
  }
  return kUnreachable;
}

std::vector<Vertex> bfs_shortest_path(const Graph& g, Vertex source,
                                      Vertex target, Rng* rng) {
  DCS_REQUIRE(source < g.num_vertices() && target < g.num_vertices(),
              "BFS endpoint out of range");
  if (source == target) return {source};
  // BFS from target so that walking parents from source yields the path in
  // forward order directly.
  const std::vector<Dist> dist = bfs_distances(g, target);
  if (dist[source] == kUnreachable) return {};

  std::vector<Vertex> path;
  path.reserve(dist[source] + 1);
  Vertex cur = source;
  path.push_back(cur);
  while (cur != target) {
    const Dist want = dist[cur] - 1;
    // Collect the equal-distance successors; pick randomly if requested.
    Vertex chosen = kInvalidVertex;
    if (rng == nullptr) {
      for (Vertex v : g.neighbors(cur)) {
        if (dist[v] == want) {
          chosen = v;
          break;
        }
      }
    } else {
      std::size_t count = 0;
      for (Vertex v : g.neighbors(cur)) {
        if (dist[v] == want) {
          ++count;
          // Reservoir sampling over the candidates avoids materializing them.
          if (rng->uniform(count) == 0) chosen = v;
        }
      }
    }
    DCS_CHECK(chosen != kInvalidVertex, "BFS parent chain broken");
    path.push_back(chosen);
    cur = chosen;
  }
  return path;
}

void batch_bfs(
    const Graph& g, std::span<const Vertex> sources,
    const std::function<void(Vertex, const std::vector<Dist>&)>& fn) {
  parallel_chunks(0, sources.size(),
                  [&](std::size_t lo, std::size_t hi, std::size_t) {
                    // Direction-optimizing BFS out of the worker's arena;
                    // one reusable export buffer per chunk keeps the
                    // callback's vector-shaped contract without a fresh
                    // allocation per source.
                    auto& scratch = traversal_scratch();
                    std::vector<Dist> dist;
                    for (std::size_t i = lo; i < hi; ++i) {
                      bfs_hybrid(g, sources[i], kUnreachable, &scratch)
                          .export_distances(dist);
                      fn(sources[i], dist);
                    }
                  });
}

Dist eccentricity(const Graph& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  Dist ecc = 0;
  for (Dist d : dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

}  // namespace dcs
