#include "graph/traversal.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace dcs {

namespace {

// Beamer's direction-optimization thresholds: go bottom-up when the
// frontier's out-edges exceed 1/kBottomUpAlpha of the edges still
// incident to unvisited vertices; return top-down when the frontier
// shrinks below n/kTopDownBeta vertices.
constexpr std::size_t kBottomUpAlpha = 14;
constexpr std::size_t kTopDownBeta = 24;
// Below this the bitmap machinery costs more than it saves.
constexpr std::size_t kMinBottomUpVertices = 256;

// Adjacency rows prefetched ahead of the bottom-up candidate scan: deep
// enough to cover a DRAM miss at the scan's consumption rate, shallow
// enough not to thrash L1.
constexpr std::size_t kBottomUpPrefetchAhead = 4;

// MS-BFS merge: neighbors gathered per simd::ms_propagate call, and the
// degree below which the call overhead beats the gather win.
constexpr std::size_t kMsPropagateChunk = 64;
constexpr std::size_t kMsPropagateMinDegree = 16;

obs::Counter& bottom_up_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("traversal.bottom_up_switches");
  return c;
}

obs::Counter& arena_reuse_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("traversal.arena_reuse_hits");
  return c;
}

obs::Counter& ms_batch_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("traversal.ms_batches");
  return c;
}

obs::Counter& ms_source_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("traversal.ms_sources");
  return c;
}

}  // namespace

struct TraversalScratch::Impl {
  // All O(n)+ arrays live in ArenaBuffers: growth first-touches the pages
  // on the owning thread (NUMA placement), and the epoch stamps make the
  // "contents unspecified after growth" contract safe.

  // --- single-source arena -------------------------------------------------
  struct SsState {
    std::size_t n = 0;
    std::uint32_t epoch = 0;
    ArenaBuffer<Dist> dist;
    ArenaBuffer<std::uint32_t> stamp;  // dist[v] valid iff stamp[v] == epoch
    std::vector<Vertex> frontier, next;
    ArenaBuffer<std::uint64_t> visited_bits, frontier_bits;

    std::uint32_t begin(std::size_t want_n) {
      if (want_n != n) {
        n = want_n;
        dist.resize(n);
        stamp.assign(n, 0);
        epoch = 0;
      } else {
        arena_reuse_counter().inc();
      }
      if (++epoch == 0) {  // stamp wrap: old stamps become ambiguous
        stamp.fill(0u);
        epoch = 1;
      }
      return epoch;
    }
  } ss;

  // --- multi-source arena --------------------------------------------------
  struct MsState {
    std::size_t n = 0;
    std::uint32_t epoch = 0;
    ArenaBuffer<Dist> dist;  // n * kMsBfsBatch, vertex-major
    ArenaBuffer<std::uint64_t> seen;
    ArenaBuffer<std::uint32_t> seen_stamp;
    // Invariant between calls and between levels: cur_mask[v] != 0 only
    // for v in `frontier`, nxt_mask[v] != 0 only for v in `next`.
    ArenaBuffer<std::uint64_t> cur_mask, nxt_mask;
    std::vector<Vertex> frontier, next;

    std::uint32_t begin(std::size_t want_n) {
      if (want_n != n) {
        n = want_n;
        dist.resize(n * kMsBfsBatch);
        seen.resize(n);
        seen_stamp.assign(n, 0);
        cur_mask.assign(n, 0);
        nxt_mask.assign(n, 0);
        epoch = 0;
      } else {
        arena_reuse_counter().inc();
      }
      if (++epoch == 0) {
        seen_stamp.fill(0u);
        epoch = 1;
      }
      return epoch;
    }
  } ms;
};

TraversalScratch::TraversalScratch() : impl_(std::make_unique<Impl>()) {}
TraversalScratch::~TraversalScratch() = default;

TraversalScratch& traversal_scratch() {
  thread_local TraversalScratch scratch;
  return scratch;
}

void warm_traversal_scratch(std::size_t n) {
  ThreadPool::shared().warm([n](std::size_t) {
    auto& impl = traversal_scratch().impl();
    impl.ss.begin(n);
    impl.ms.begin(n);
  });
}

void SsBfsView::export_distances(std::vector<Dist>& out) const {
  out.resize(dist.size());
  for (std::size_t v = 0; v < dist.size(); ++v) {
    out[v] = stamp[v] == epoch ? dist[v] : kUnreachable;
  }
}

SsBfsView bfs_hybrid(const Graph& g, Vertex source, Dist max_depth,
                     TraversalScratch* scratch) {
  const std::size_t n = g.num_vertices();
  DCS_REQUIRE(source < n, "BFS source out of range");
  auto& s = (scratch != nullptr ? *scratch : traversal_scratch()).impl().ss;
  const std::uint32_t epoch = s.begin(n);

  s.dist[source] = 0;
  s.stamp[source] = epoch;
  s.frontier.clear();
  s.frontier.push_back(source);
  std::size_t frontier_edges = g.degree(source);
  // Directed endpoints still incident to unvisited vertices.
  std::size_t remaining_edges = 2 * g.num_edges() - frontier_edges;

  const std::size_t words = (n + 63) / 64;
  bool bottom_up = false;
  std::uint64_t switches = 0;
  Dist level = 0;

  while (!s.frontier.empty() && level < max_depth) {
    if (!bottom_up) {
      if (n >= kMinBottomUpVertices &&
          frontier_edges > remaining_edges / kBottomUpAlpha) {
        bottom_up = true;
        ++switches;
        // Build the visited bitmap from the stamps once per switch; while
        // bottom-up it is maintained incrementally.
        s.visited_bits.assign(words, 0);
        for (std::size_t v = 0; v < n; ++v) {
          if (s.stamp[v] == epoch) s.visited_bits[v >> 6] |= 1ull << (v & 63);
        }
      }
    } else if (s.frontier.size() < n / kTopDownBeta) {
      bottom_up = false;
    }

    s.next.clear();
    std::size_t next_edges = 0;
    if (!bottom_up) {
      for (Vertex u : s.frontier) {
        for (Vertex v : g.neighbors(u)) {
          if (s.stamp[v] != epoch) {
            s.stamp[v] = epoch;
            s.dist[v] = level + 1;
            s.next.push_back(v);
            next_edges += g.degree(v);
          }
        }
      }
    } else {
      // Frontier bitmap for membership tests, rebuilt per level (the
      // bottom-up regime only triggers on frontiers worth Ω(m/α) edges,
      // so the O(n/64) clear is noise).
      s.frontier_bits.assign(words, 0);
      for (Vertex u : s.frontier) {
        s.frontier_bits[u >> 6] |= 1ull << (u & 63);
      }
      // Per 64-vertex word: extract the unvisited candidates, then scan
      // each candidate's adjacency with the SIMD membership kernel while
      // prefetching the adjacency rows a few candidates ahead — the row
      // starts are data-dependent, so the hardware prefetcher misses them.
      Vertex cand[64];
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t unvisited = ~s.visited_bits[w];
        if (w == words - 1 && (n & 63) != 0) {
          unvisited &= (1ull << (n & 63)) - 1;  // mask tail past n
        }
        std::size_t cand_count = 0;
        while (unvisited != 0) {
          cand[cand_count++] = static_cast<Vertex>(
              w * 64 + static_cast<std::size_t>(std::countr_zero(unvisited)));
          unvisited &= unvisited - 1;
        }
        for (std::size_t i = 0;
             i < std::min(cand_count, kBottomUpPrefetchAhead); ++i) {
          __builtin_prefetch(g.neighbors(cand[i]).data());
        }
        for (std::size_t i = 0; i < cand_count; ++i) {
          if (i + kBottomUpPrefetchAhead < cand_count) {
            __builtin_prefetch(
                g.neighbors(cand[i + kBottomUpPrefetchAhead]).data());
          }
          const Vertex v = cand[i];
          const auto nb = g.neighbors(v);
          if (simd::any_bit_of(nb.data(), nb.size(), s.frontier_bits.data())) {
            s.stamp[v] = epoch;
            s.dist[v] = level + 1;
            s.visited_bits[w] |= 1ull << (v & 63);
            s.next.push_back(v);
            next_edges += nb.size();
          }
        }
      }
    }
    remaining_edges -= std::min(remaining_edges, next_edges);
    frontier_edges = next_edges;
    s.frontier.swap(s.next);
    ++level;
  }

  if (switches != 0) bottom_up_counter().inc(switches);
  return SsBfsView{std::span<const Dist>(s.dist.data(), n),
                   std::span<const std::uint32_t>(s.stamp.data(), n), epoch};
}

std::vector<Dist> bfs_distances_hybrid(const Graph& g, Vertex source,
                                       Dist max_depth) {
  std::vector<Dist> out;
  bfs_hybrid(g, source, max_depth).export_distances(out);
  return out;
}

MsBfsView multi_source_bfs(const Graph& g, std::span<const Vertex> sources,
                           Dist max_depth, TraversalScratch* scratch) {
  const std::size_t n = g.num_vertices();
  DCS_REQUIRE(sources.size() <= kMsBfsBatch,
              "multi_source_bfs batch exceeds kMsBfsBatch sources");
  for (Vertex src : sources) {
    DCS_REQUIRE(src < n, "BFS source out of range");
  }
  auto& s = (scratch != nullptr ? *scratch : traversal_scratch()).impl().ms;
  const std::uint32_t epoch = s.begin(n);
  ms_batch_counter().inc();
  ms_source_counter().inc(sources.size());

  const auto seen_at = [&](Vertex v) -> std::uint64_t {
    return s.seen_stamp[v] == epoch ? s.seen[v] : 0;
  };
  const auto mark_seen = [&](Vertex v, std::uint64_t bits) {
    if (s.seen_stamp[v] == epoch) {
      s.seen[v] |= bits;
    } else {
      s.seen[v] = bits;
      s.seen_stamp[v] = epoch;
    }
  };

  s.frontier.clear();
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Vertex src = sources[i];
    const std::uint64_t bit = 1ull << i;
    if (s.cur_mask[src] == 0) s.frontier.push_back(src);
    s.cur_mask[src] |= bit;
    mark_seen(src, bit);
    s.dist[src * kMsBfsBatch + i] = 0;
  }

  // `seen` is static during a level's expansion, so the per-neighbor
  // propagate masks are pure gathers — exactly what simd::ms_propagate
  // vectorizes. Scratch for one chunk of gathered masks:
  std::uint64_t prop[kMsPropagateChunk];

  Dist level = 0;
  while (!s.frontier.empty() && level < max_depth) {
    s.next.clear();
    for (Vertex v : s.frontier) {
      const std::uint64_t fmask = s.cur_mask[v];
      const auto nb = g.neighbors(v);
      if (nb.size() < kMsPropagateMinDegree) {
        for (Vertex w : nb) {
          const std::uint64_t propagate = fmask & ~seen_at(w);
          if (propagate != 0) {
            if (s.nxt_mask[w] == 0) s.next.push_back(w);
            s.nxt_mask[w] |= propagate;
          }
        }
      } else {
        const Vertex* ws = nb.data();
        const std::size_t deg = nb.size();
        for (std::size_t off = 0; off < deg; off += kMsPropagateChunk) {
          const std::size_t cnt = std::min(kMsPropagateChunk, deg - off);
          simd::ms_propagate(ws + off, cnt, fmask, s.seen.data(),
                             s.seen_stamp.data(), epoch, prop);
          for (std::size_t j = 0; j < cnt; ++j) {
            const std::uint64_t propagate = prop[j];
            if (propagate != 0) {
              const Vertex w = ws[off + j];
              if (s.nxt_mask[w] == 0) s.next.push_back(w);
              s.nxt_mask[w] |= propagate;
            }
          }
        }
      }
    }
    // Settle the level: commit new mask bits and record first-arrival
    // distances. `seen` is static during expansion, so nxt_mask already
    // holds exactly the newly reached (source, vertex) pairs.
    for (Vertex w : s.next) {
      std::uint64_t newbits = s.nxt_mask[w];
      mark_seen(w, newbits);
      while (newbits != 0) {
        const auto i =
            static_cast<std::size_t>(std::countr_zero(newbits));
        newbits &= newbits - 1;
        s.dist[w * kMsBfsBatch + i] = level + 1;
      }
    }
    // Restore the mask invariants before the role swap.
    for (Vertex v : s.frontier) s.cur_mask[v] = 0;
    s.frontier.swap(s.next);
    std::swap(s.cur_mask, s.nxt_mask);
    ++level;
  }
  // Depth-capped exit can leave a live frontier; re-zero its masks.
  for (Vertex v : s.frontier) s.cur_mask[v] = 0;

  return MsBfsView{
      sources.size(), std::span<const Dist>(s.dist.data(), n * kMsBfsBatch),
      std::span<const std::uint64_t>(s.seen.data(), n),
      std::span<const std::uint32_t>(s.seen_stamp.data(), n), epoch};
}

}  // namespace dcs
