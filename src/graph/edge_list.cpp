#include "graph/edge_list.hpp"

#include <algorithm>

namespace dcs {

void canonicalize_edge_list(std::vector<Edge>& edges) {
  for (auto& e : edges) e = canonical(e);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

}  // namespace dcs
