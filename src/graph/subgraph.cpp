#include "graph/subgraph.hpp"

#include "util/check.hpp"

namespace dcs {

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<bool>& keep) {
  DCS_REQUIRE(keep.size() == g.num_vertices(),
              "keep mask size must match vertex count");
  InducedSubgraph out;
  out.from_host.assign(g.num_vertices(), kInvalidVertex);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (keep[v]) {
      out.from_host[v] = static_cast<Vertex>(out.to_host.size());
      out.to_host.push_back(v);
    }
  }
  std::vector<Edge> edges;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (!keep[u]) continue;
    for (Vertex v : g.neighbors(u)) {
      if (u < v && keep[v]) {
        edges.push_back(Edge{out.from_host[u], out.from_host[v]});
      }
    }
  }
  out.graph = Graph::from_edges(out.to_host.size(), edges);
  return out;
}

Graph remove_vertices(const Graph& g, std::span<const Vertex> faults) {
  std::vector<bool> faulty(g.num_vertices(), false);
  for (Vertex v : faults) {
    DCS_REQUIRE(v < g.num_vertices(), "fault vertex out of range");
    faulty[v] = true;
  }
  std::vector<Edge> edges;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (faulty[u]) continue;
    for (Vertex v : g.neighbors(u)) {
      if (u < v && !faulty[v]) edges.push_back(Edge{u, v});
    }
  }
  return Graph::from_edges(g.num_vertices(), edges);
}

}  // namespace dcs
