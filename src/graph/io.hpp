#pragma once

// Plain-text graph serialization.
//
// Format (one graph per file):
//   line 1:  "n m"            — vertex count, edge count
//   lines 2..m+1:  "u v"      — one canonical edge per line, 0-indexed
//   '#' begins a comment line; blank lines are ignored.
//
// The reader validates ranges, rejects self-loops/duplicates, and reports
// the offending line on error.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace dcs {

void write_graph(std::ostream& os, const Graph& g);
void write_graph_file(const std::string& path, const Graph& g);

Graph read_graph(std::istream& is);
Graph read_graph_file(const std::string& path);

// METIS graph format (interop with partitioners and other graph tools):
//   line 1:  "n m"          — vertex count, edge count
//   line i+1: the neighbors of vertex i, 1-indexed, space-separated.
// '%' begins a comment line. Only the plain unweighted variant is
// supported; format flags other than 0 are rejected.

void write_metis(std::ostream& os, const Graph& g);
void write_metis_file(const std::string& path, const Graph& g);

Graph read_metis(std::istream& is);
Graph read_metis_file(const std::string& path);

}  // namespace dcs
