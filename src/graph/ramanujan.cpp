#include "graph/ramanujan.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <queue>
#include <unordered_map>

#include "util/check.hpp"

namespace dcs {

namespace {

using Mat = std::array<std::uint64_t, 4>;  // [[a b],[c d]] row-major, mod q

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp,
                      std::uint64_t mod) {
  std::uint64_t result = 1 % mod;
  base %= mod;
  while (exp > 0) {
    if (exp & 1) result = result * base % mod;
    base = base * base % mod;
    exp >>= 1;
  }
  return result;
}

std::uint64_t mod_inverse(std::uint64_t a, std::uint64_t q) {
  // q prime → a^{q−2}
  return mod_pow(a % q, q - 2, q);
}

/// A square root of −1 mod q (exists since q ≡ 1 mod 4): for a
/// non-residue n, x = n^{(q−1)/4}.
std::uint64_t sqrt_minus_one(std::uint64_t q) {
  for (std::uint64_t n = 2; n < q; ++n) {
    if (mod_pow(n, (q - 1) / 2, q) == q - 1) {
      return mod_pow(n, (q - 1) / 4, q);
    }
  }
  throw std::logic_error("no quadratic non-residue found (q not prime?)");
}

/// Canonical projective representative: scale so the first nonzero entry
/// (row-major) equals 1. Two matrices represent the same PGL element iff
/// their canonical forms match.
Mat projective_canonical(Mat m, std::uint64_t q) {
  for (std::size_t i = 0; i < 4; ++i) {
    if (m[i] % q != 0) {
      const std::uint64_t inv = mod_inverse(m[i], q);
      for (auto& x : m) x = x % q * inv % q;
      return m;
    }
  }
  throw std::logic_error("zero matrix is not a group element");
}

Mat multiply(const Mat& x, const Mat& y, std::uint64_t q) {
  return Mat{(x[0] * y[0] + x[1] * y[2]) % q,
             (x[0] * y[1] + x[1] * y[3]) % q,
             (x[2] * y[0] + x[3] * y[2]) % q,
             (x[2] * y[1] + x[3] * y[3]) % q};
}

std::uint64_t mat_key(const Mat& m, std::uint64_t q) {
  return ((m[0] * q + m[1]) * q + m[2]) * q + m[3];
}

}  // namespace

bool is_prime(std::size_t n) {
  if (n < 2) return false;
  for (std::size_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

std::size_t legendre_symbol(std::size_t a, std::size_t q) {
  DCS_REQUIRE(q > 2 && is_prime(q), "q must be an odd prime");
  return static_cast<std::size_t>(mod_pow(a % q, (q - 1) / 2, q));
}

LpsGraph lps_ramanujan_graph(std::size_t p, std::size_t q) {
  DCS_REQUIRE(is_prime(p) && p % 4 == 1, "p must be a prime ≡ 1 (mod 4)");
  DCS_REQUIRE(is_prime(q) && q % 4 == 1, "q must be a prime ≡ 1 (mod 4)");
  DCS_REQUIRE(p != q, "p and q must be distinct");
  DCS_REQUIRE(static_cast<double>(q) > 2.0 * std::sqrt(static_cast<double>(p)),
              "q must exceed 2√p for a simple graph");

  LpsGraph out;
  out.p = p;
  out.q = q;
  out.is_psl = legendre_symbol(p, q) == 1;

  // Enumerate the p+1 quaternions a0 + a1 i + a2 j + a3 k of norm p with
  // a0 odd positive and a1, a2, a3 even (Jacobi: exactly p+1 of them).
  const auto bound = static_cast<std::int64_t>(
      std::floor(std::sqrt(static_cast<double>(p))));
  const std::int64_t even_bound = bound - (bound % 2);  // largest even ≤ bound
  std::vector<std::array<std::int64_t, 4>> quaternions;
  for (std::int64_t a0 = 1; a0 <= bound; a0 += 2) {
    for (std::int64_t a1 = -even_bound; a1 <= even_bound; a1 += 2) {
      for (std::int64_t a2 = -even_bound; a2 <= even_bound; a2 += 2) {
        for (std::int64_t a3 = -even_bound; a3 <= even_bound; a3 += 2) {
          if (a0 * a0 + a1 * a1 + a2 * a2 + a3 * a3 ==
              static_cast<std::int64_t>(p)) {
            quaternions.push_back({a0, a1, a2, a3});
          }
        }
      }
    }
  }
  DCS_CHECK(quaternions.size() == p + 1,
            "expected exactly p+1 norm-p quaternions");

  // Map each quaternion to the matrix [[a0+i·a1, a2+i·a3],
  //                                    [−a2+i·a3, a0−i·a1]] mod q.
  const std::uint64_t i_mod = sqrt_minus_one(q);
  auto to_modq = [&](std::int64_t v) {
    const auto qi = static_cast<std::int64_t>(q);
    return static_cast<std::uint64_t>(((v % qi) + qi) % qi);
  };
  std::vector<Mat> generators;
  generators.reserve(quaternions.size());
  for (const auto& [a0, a1, a2, a3] : quaternions) {
    const Mat m{(to_modq(a0) + i_mod * to_modq(a1)) % q,
                (to_modq(a2) + i_mod * to_modq(a3)) % q,
                (to_modq(-a2) + i_mod * to_modq(a3)) % q,
                (to_modq(a0) + (q - i_mod % q) * to_modq(a1) % q) % q};
    generators.push_back(projective_canonical(m, q));
  }

  // BFS closure of the generated subgroup from the identity; the Cayley
  // graph is connected by construction. The generator set is closed under
  // inverses (conjugate quaternions), so edges are undirected.
  std::unordered_map<std::uint64_t, Vertex> index;
  std::vector<Mat> elements;
  const Mat identity{1, 0, 0, 1};
  index.emplace(mat_key(identity, q), 0);
  elements.push_back(identity);
  std::queue<Vertex> frontier;
  frontier.push(0);
  std::size_t self_loop_arcs = 0;
  EdgeSet seen;
  while (!frontier.empty()) {
    const Vertex v = frontier.front();
    frontier.pop();
    const Mat current = elements[v];
    for (const Mat& s : generators) {
      const Mat next = projective_canonical(multiply(current, s, q), q);
      const std::uint64_t key = mat_key(next, q);
      auto it = index.find(key);
      if (it == index.end()) {
        const auto id = static_cast<Vertex>(elements.size());
        index.emplace(key, id);
        elements.push_back(next);
        frontier.push(id);
        it = index.find(key);
      }
      const Vertex u = it->second;
      if (u == v) {
        ++self_loop_arcs;
      } else {
        seen.insert(v, u);
      }
    }
  }
  // Arc accounting: every vertex emits p+1 arcs; the generator set is
  // inverse-closed, so non-loop arcs pair up into undirected edges.
  const std::size_t total_arcs = elements.size() * (p + 1);
  const std::size_t undirected = (total_arcs - self_loop_arcs) / 2;
  out.self_loops = self_loop_arcs / 2;
  out.multi_edges = undirected - seen.size();
  const auto edge_list = seen.to_vector();
  out.graph = Graph::from_edges(elements.size(), edge_list);
  return out;
}

}  // namespace dcs
