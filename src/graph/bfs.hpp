#pragma once

// Breadth-first search primitives: single-source distances, depth-bounded
// search, shortest-path extraction (with optional randomized tie-breaking so
// that repeated path queries spread congestion), and a parallel batch driver.

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dcs {

using Dist = std::uint32_t;
inline constexpr Dist kUnreachable = std::numeric_limits<Dist>::max();

/// Distances from `source` to every vertex (kUnreachable if disconnected).
std::vector<Dist> bfs_distances(const Graph& g, Vertex source);

/// Distances from `source`, exploring only up to depth `max_depth`.
/// Vertices beyond the horizon are kUnreachable.
std::vector<Dist> bfs_distances_bounded(const Graph& g, Vertex source,
                                        Dist max_depth);

/// Distance between a single pair; bidirectional BFS would be possible but a
/// plain forward BFS with early exit is sufficient at our scales.
Dist bfs_distance(const Graph& g, Vertex source, Vertex target);

/// One shortest path from source to target (empty if unreachable). The path
/// includes both endpoints. If `rng` is non-null, parent choices among
/// equal-distance predecessors are randomized, so that repeated calls sample
/// different shortest paths (used to spread routing congestion).
std::vector<Vertex> bfs_shortest_path(const Graph& g, Vertex source,
                                      Vertex target, Rng* rng = nullptr);

/// Runs `fn(source, distances)` for every source in `sources`, in parallel.
/// `fn` must be safe to call concurrently from different threads.
void batch_bfs(const Graph& g, std::span<const Vertex> sources,
               const std::function<void(Vertex, const std::vector<Dist>&)>& fn);

/// Eccentricity of `source` (max finite distance); kUnreachable if the graph
/// is disconnected from source.
Dist eccentricity(const Graph& g, Vertex source);

}  // namespace dcs
