#pragma once

// Graph families used throughout the paper and its evaluation:
//
//  * random Δ-regular graphs (union of random perfect matchings with edge
//    repair) — near-Ramanujan expanders w.h.p., the input class of
//    Theorems 2 and 3;
//  * the explicit Gabber–Galil / Margulis-style 8-regular expander;
//  * the clique–matching graph of Figure 1 (fault-tolerant-spanner
//    counterexample);
//  * the Lemma 2 separation family (cliques + matching + detour paths);
//  * the Lemma 18 "fan" gadget (line + hub with rays to odd positions);
//  * standard topologies (complete, cycle, path, hypercube, torus,
//    Erdős–Rényi) used by tests and examples.

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dcs {

Graph complete_graph(std::size_t n);
Graph cycle_graph(std::size_t n);
Graph path_graph(std::size_t n);

/// d-dimensional hypercube on 2^d vertices.
Graph hypercube(std::size_t dim);

/// rows x cols torus (wrap-around grid); degenerate dimensions (< 3) produce
/// paths/cycles without duplicate edges.
Graph torus_2d(std::size_t rows, std::size_t cols);

/// G(n, p) random graph.
Graph erdos_renyi(std::size_t n, double p, std::uint64_t seed);

/// Random Δ-regular simple graph on an even number of vertices, built as the
/// union of Δ random perfect matchings with local repair of duplicate edges.
/// Such graphs are expanders with λ close to 2√(Δ-1) w.h.p.
Graph random_regular(std::size_t n, std::size_t delta, std::uint64_t seed);

/// Explicit expander in the Gabber–Galil / Margulis style on m² vertices,
/// degree ≤ 8 (slightly irregular near fixed points after deduplication).
Graph margulis_expander(std::size_t m);

/// Ring of cliques: `num_cliques` cliques of `clique_size` vertices, where
/// vertex j of clique i is also matched to vertex j of clique i+1 (mod).
/// The result is (clique_size+1)-regular. Cross edges have no common
/// neighbors, so they are never (a,b)-supported — the canonical input where
/// Algorithm 1's support-based reinsertion rule is load-bearing.
Graph ring_of_cliques(std::size_t num_cliques, std::size_t clique_size);

/// Figure 1 graph: two cliques of size n/2 inter-connected by a perfect
/// matching; vertex i of clique A is matched to vertex i of clique B.
/// n must be even. Clique A occupies vertices [0, n/2), B occupies [n/2, n).
Graph clique_matching_graph(std::size_t n);

/// Lemma 2 separation family.
struct Lemma2Graph {
  Graph g;
  std::size_t alpha = 0;           ///< distance-stretch parameter (≥ 2)
  std::vector<Vertex> a;           ///< clique A nodes a_1..a_n
  std::vector<Vertex> b;           ///< clique B nodes b_1..b_n
  std::vector<std::vector<Vertex>> detours;  ///< detours[i] = d_{i,1..α-1}
};

/// Builds the Lemma 2 graph with `pairs` matched pairs and parameter alpha:
/// cliques on A and B, perfect matching (a_i, b_i), and per-pair detour path
/// a_i – d_{i,1} – … – d_{i,α-1} – b_i of length α.
Lemma2Graph lemma2_graph(std::size_t pairs, std::size_t alpha);

/// Lemma 18 "fan" gadget: line a_1..a_{2k+1} plus hub s with rays to every
/// odd-indexed line node; |V| = 2k+2, |E| = 3k+1.
struct FanGadget {
  Graph g;
  std::size_t k = 0;
  Vertex hub = kInvalidVertex;
  std::vector<Vertex> line;  ///< a_1..a_{2k+1} in line order
};

FanGadget fan_gadget(std::size_t k);

}  // namespace dcs
