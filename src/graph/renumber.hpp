#pragma once

// Cache-order vertex renumbering.
//
// The traversal core streams CSR adjacency; how much of that streaming
// hits cache depends on the vertex numbering, which for generated and
// ingested graphs is arbitrary. Renumbering relabels vertices so that
// vertices referenced together sit close in memory:
//
//   kDegreeDescending — hubs first. High-degree rows are touched by the
//       most neighbor scans, so packing them into the first pages keeps
//       the hottest distance/visited words resident (the classic
//       "frequency-based" ordering from the Beamer/GAP line of work).
//   kBfs — BFS visitation order, seeded per component at its
//       highest-degree vertex (a lightweight cousin of RCM). Neighbors
//       get nearby IDs, so frontier expansion walks nearly-sequential
//       index ranges instead of random ones.
//
// A Renumbering is a bijection between the caller's original ("external")
// IDs and the relabeled ("internal") IDs. Everything outside the
// traversal hot path — certificates, checkpoints, routes, query answers
// — stays in external IDs; the serving plane translates at its boundary
// (see serve/query_engine.hpp). tests/test_renumber.cpp pins the
// end-to-end isomorphism.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dcs {

enum class VertexOrder : std::uint8_t {
  kOriginal = 0,          ///< identity — keep the caller's numbering
  kDegreeDescending = 1,  ///< hubs first, ties by original ID
  kBfs = 2,               ///< BFS visitation order from per-component hubs
};

const char* vertex_order_name(VertexOrder order);

/// The permutation produced by Graph::renumber. `to_internal[ext] == int`
/// and `to_external[int] == ext`; both directions are full bijections on
/// [0, n).
struct Renumbering {
  std::vector<Vertex> to_internal;
  std::vector<Vertex> to_external;

  std::size_t size() const { return to_internal.size(); }

  Vertex internal(Vertex external_id) const { return to_internal[external_id]; }
  Vertex external(Vertex internal_id) const { return to_external[internal_id]; }

  /// Relabel a graph in external IDs into internal IDs.
  Graph apply_to(const Graph& g) const;

  /// True iff both arrays are mutually inverse bijections on [0, n).
  bool is_valid() const;

  static Renumbering identity(std::size_t n);
};

struct RenumberedGraph {
  Graph graph;     ///< relabeled into internal IDs
  Renumbering map;
};

/// Compute just the permutation for `order` without building the graph.
Renumbering compute_renumbering(const Graph& g, VertexOrder order);

}  // namespace dcs
