#pragma once

// Canonical undirected edge representation and hashed edge sets.

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_set>
#include <vector>

namespace dcs {

using Vertex = std::uint32_t;
inline constexpr Vertex kInvalidVertex = static_cast<Vertex>(-1);

/// An undirected edge stored in canonical orientation (u <= v after
/// canonicalize). Equality and hashing are orientation-insensitive only if
/// edges are canonical, so library code always canonicalizes on creation.
struct Edge {
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;

  bool operator==(const Edge&) const = default;
  auto operator<=>(const Edge&) const = default;
};

/// Returns the canonical orientation (min endpoint first).
constexpr Edge canonical(Vertex u, Vertex v) {
  return u <= v ? Edge{u, v} : Edge{v, u};
}

constexpr Edge canonical(Edge e) { return canonical(e.u, e.v); }

/// Packs a canonical edge into a 64-bit key (useful as a hash-map key).
constexpr std::uint64_t edge_key(Edge e) {
  return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
}

struct EdgeHash {
  std::size_t operator()(Edge e) const {
    // splitmix-style avalanche of the packed key
    std::uint64_t z = edge_key(e) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

/// Hash set of canonical edges.
class EdgeSet {
 public:
  EdgeSet() = default;
  explicit EdgeSet(std::span<const Edge> edges) {
    for (Edge e : edges) insert(e);
  }

  bool insert(Edge e) { return set_.insert(canonical(e)).second; }
  bool insert(Vertex u, Vertex v) { return insert(canonical(u, v)); }
  bool erase(Edge e) { return set_.erase(canonical(e)) > 0; }
  bool contains(Edge e) const { return set_.count(canonical(e)) > 0; }
  bool contains(Vertex u, Vertex v) const {
    return contains(canonical(u, v));
  }
  std::size_t size() const { return set_.size(); }
  bool empty() const { return set_.empty(); }

  std::vector<Edge> to_vector() const {
    return {set_.begin(), set_.end()};
  }

  auto begin() const { return set_.begin(); }
  auto end() const { return set_.end(); }

 private:
  std::unordered_set<Edge, EdgeHash> set_;
};

/// Sorts and deduplicates an edge list in place (canonicalizing first).
void canonicalize_edge_list(std::vector<Edge>& edges);

}  // namespace dcs
