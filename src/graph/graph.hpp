#pragma once

// Immutable CSR (compressed sparse row) undirected graph.
//
// All algorithms in this library work on simple undirected graphs. The CSR
// layout keeps each adjacency list contiguous and sorted, which makes
// neighborhood scans cache-friendly and `has_edge` a binary search — both
// matter because spanner verification scans every adjacency of every vertex.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/edge_list.hpp"

namespace dcs {

enum class VertexOrder : std::uint8_t;
struct RenumberedGraph;

class Graph {
 public:
  /// Empty graph on n vertices.
  explicit Graph(std::size_t n = 0);

  /// Builds from an arbitrary edge list: self-loops are rejected, duplicate
  /// edges are collapsed.
  static Graph from_edges(std::size_t n, std::span<const Edge> edges);

  std::size_t num_vertices() const { return offsets_.size() - 1; }
  std::size_t num_edges() const { return adjacency_.size() / 2; }

  std::span<const Vertex> neighbors(Vertex v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  std::size_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// O(log degree) membership test on the sorted adjacency list.
  /// Branchless binary search with software prefetch of the candidate
  /// midpoints — it sits on the repair screening hot path where the
  /// adjacency lists of random vertices are cold.
  bool has_edge(Vertex u, Vertex v) const;

  /// Rebuild this graph under a cache-friendly vertex ordering (see
  /// graph/renumber.hpp). Returns the relabeled graph together with the
  /// permutation so callers can translate between ID spaces.
  RenumberedGraph renumber(VertexOrder order) const;

  /// Canonical (u < v) edge list in lexicographic order.
  std::vector<Edge> edges() const;

  /// {min, max} degree in a single scan; {0, 0} on the empty graph.
  std::pair<std::size_t, std::size_t> degree_bounds() const;
  std::size_t min_degree() const { return degree_bounds().first; }
  std::size_t max_degree() const { return degree_bounds().second; }
  bool is_regular() const {
    const auto [lo, hi] = degree_bounds();
    return lo == hi;
  }

  /// True if `other` has the same vertex set and a subset of the edges.
  bool contains_subgraph(const Graph& other) const;

  bool operator==(const Graph& other) const = default;

 private:
  // offsets_[v]..offsets_[v+1] delimit v's neighbors in adjacency_.
  std::vector<std::size_t> offsets_;
  std::vector<Vertex> adjacency_;
};

/// Incremental construction helper. Accepts duplicates (collapsed on build)
/// and rejects self-loops at insertion time.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t n) : n_(n) {}

  void add_edge(Vertex u, Vertex v);
  void add_edges(std::span<const Edge> edges);
  std::size_t num_vertices() const { return n_; }
  std::size_t pending_edges() const { return edges_.size(); }

  Graph build() const { return Graph::from_edges(n_, edges_); }

 private:
  std::size_t n_;
  std::vector<Edge> edges_;
};

}  // namespace dcs
