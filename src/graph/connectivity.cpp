#include "graph/connectivity.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

namespace dcs {

std::vector<std::size_t> connected_components(const Graph& g) {
  constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
  std::vector<std::size_t> comp(g.num_vertices(), kUnassigned);
  std::size_t next_id = 0;
  std::vector<Vertex> stack;
  for (Vertex start = 0; start < g.num_vertices(); ++start) {
    if (comp[start] != kUnassigned) continue;
    comp[start] = next_id;
    stack.push_back(start);
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      for (Vertex v : g.neighbors(u)) {
        if (comp[v] == kUnassigned) {
          comp[v] = next_id;
          stack.push_back(v);
        }
      }
    }
    ++next_id;
  }
  return comp;
}

std::size_t num_components(const Graph& g) {
  const auto comp = connected_components(g);
  if (comp.empty()) return 0;
  return *std::max_element(comp.begin(), comp.end()) + 1;
}

bool is_connected(const Graph& g) {
  return g.num_vertices() == 0 || num_components(g) == 1;
}

std::size_t diameter_lower_bound(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  const auto dist = bfs_distances(g, 0);
  Vertex far = 0;
  Dist best = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] == kUnreachable) return kUnreachable;
    if (dist[v] > best) {
      best = dist[v];
      far = v;
    }
  }
  const Dist ecc = eccentricity(g, far);
  return ecc == kUnreachable ? kUnreachable : ecc;
}

}  // namespace dcs
