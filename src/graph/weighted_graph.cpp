#include "graph/weighted_graph.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.hpp"

namespace dcs {

WeightedGraph::WeightedGraph(std::size_t n) : offsets_(n + 1, 0) {}

WeightedGraph WeightedGraph::from_edges(
    std::size_t n, std::span<const WeightedEdge> edges) {
  std::unordered_map<std::uint64_t, double> best;
  best.reserve(edges.size());
  for (const auto& e : edges) {
    DCS_REQUIRE(e.u != e.v, "self-loops are not allowed");
    DCS_REQUIRE(e.u < n && e.v < n, "edge endpoint out of range");
    DCS_REQUIRE(e.w > 0.0 && std::isfinite(e.w),
                "edge weights must be positive and finite");
    const auto key = edge_key(dcs::canonical(e.u, e.v));
    const auto [it, inserted] = best.emplace(key, e.w);
    if (!inserted) it->second = std::min(it->second, e.w);
  }

  std::vector<WeightedEdge> canon;
  canon.reserve(best.size());
  for (const auto& [key, w] : best) {
    canon.push_back(WeightedEdge{static_cast<Vertex>(key >> 32),
                                 static_cast<Vertex>(key & 0xffffffffu), w});
  }
  std::sort(canon.begin(), canon.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return std::tie(a.u, a.v) < std::tie(b.u, b.v);
            });

  WeightedGraph g(n);
  std::vector<std::size_t> degree(n, 0);
  for (const auto& e : canon) {
    ++degree[e.u];
    ++degree[e.v];
  }
  for (std::size_t v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  }
  g.adjacency_.resize(2 * canon.size());
  g.weights_.resize(2 * canon.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : canon) {
    g.adjacency_[cursor[e.u]] = e.v;
    g.weights_[cursor[e.u]++] = e.w;
    g.adjacency_[cursor[e.v]] = e.u;
    g.weights_[cursor[e.v]++] = e.w;
  }
  // sort each adjacency list (with parallel weights) by neighbor id
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t lo = g.offsets_[v], hi = g.offsets_[v + 1];
    std::vector<std::pair<Vertex, double>> row;
    row.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      row.emplace_back(g.adjacency_[i], g.weights_[i]);
    }
    std::sort(row.begin(), row.end());
    for (std::size_t i = lo; i < hi; ++i) {
      g.adjacency_[i] = row[i - lo].first;
      g.weights_[i] = row[i - lo].second;
    }
  }
  return g;
}

WeightedGraph WeightedGraph::from_unweighted(const Graph& g, double w) {
  std::vector<WeightedEdge> edges;
  edges.reserve(g.num_edges());
  for (Edge e : g.edges()) edges.push_back(WeightedEdge{e.u, e.v, w});
  return from_edges(g.num_vertices(), edges);
}

bool WeightedGraph::has_edge(Vertex u, Vertex v) const {
  DCS_REQUIRE(u < num_vertices() && v < num_vertices(),
              "vertex out of range");
  if (u == v) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

double WeightedGraph::weight(Vertex u, Vertex v) const {
  DCS_REQUIRE(u < num_vertices() && v < num_vertices(),
              "vertex out of range");
  const auto nb = neighbors(u);
  const auto it = std::lower_bound(nb.begin(), nb.end(), v);
  DCS_REQUIRE(it != nb.end() && *it == v, "edge not present");
  return weights(u)[static_cast<std::size_t>(it - nb.begin())];
}

std::vector<WeightedEdge> WeightedGraph::edges() const {
  std::vector<WeightedEdge> out;
  out.reserve(num_edges());
  for (Vertex u = 0; u < num_vertices(); ++u) {
    const auto nb = neighbors(u);
    const auto ws = weights(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if (u < nb[i]) out.push_back(WeightedEdge{u, nb[i], ws[i]});
    }
  }
  return out;
}

double WeightedGraph::total_weight() const {
  double total = 0.0;
  for (const auto& e : edges()) total += e.w;
  return total;
}

Graph WeightedGraph::unweighted() const {
  std::vector<Edge> plain;
  plain.reserve(num_edges());
  for (const auto& e : edges()) plain.push_back(Edge{e.u, e.v});
  return Graph::from_edges(num_vertices(), plain);
}

}  // namespace dcs
