#pragma once

// Lubotzky–Phillips–Sarnak Ramanujan graphs X^{p,q} — the explicit
// near-optimal expanders the paper cites ([19], [20]) as instances
// attaining λ ≤ 2√(Δ−1).
//
// For primes p, q ≡ 1 (mod 4), p ≠ q, the construction is the Cayley graph
// of PGL(2, F_q) (or its index-2 subgroup PSL(2, F_q) when p is a
// quadratic residue mod q) with respect to the p+1 generators arising from
// the integer quaternions of norm p. The result is a (p+1)-regular graph
// on q(q²−1) / {1 or 2} vertices whose adjacency spectrum satisfies the
// Ramanujan bound λ ≤ 2√p.

#include "graph/graph.hpp"

namespace dcs {

struct LpsGraph {
  Graph graph;
  std::size_t p = 0;           ///< degree − 1
  std::size_t q = 0;           ///< field size
  bool is_psl = false;         ///< true → PSL(2,q) (p is a QR mod q)
  std::size_t self_loops = 0;  ///< dropped during simplification
  std::size_t multi_edges = 0; ///< collapsed during simplification
};

/// Builds X^{p,q}. Requires p, q distinct primes ≡ 1 (mod 4) with q > 2√p
/// (which keeps the graph simple). Vertices are the group elements
/// reachable from the identity under the generators (the full PGL or PSL).
LpsGraph lps_ramanujan_graph(std::size_t p, std::size_t q);

/// True iff n is prime (trial division; inputs here are small).
bool is_prime(std::size_t n);

/// Legendre symbol (a|q) for odd prime q: 1, q−1 (≡ −1), or 0.
std::size_t legendre_symbol(std::size_t a, std::size_t q);

}  // namespace dcs
