#include "graph/adjacency_bitmap.hpp"

#include <bit>

#include "obs/metrics.hpp"
#include "util/simd.hpp"

namespace dcs {

namespace {

obs::Counter& builds_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("bitmap.builds");
  return c;
}

obs::Counter& words_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("bitmap.words_scanned");
  return c;
}

}  // namespace

AdjacencyBitmap::AdjacencyBitmap(const Graph& g)
    : n_(g.num_vertices()), words_((g.num_vertices() + 63) / 64) {
  bits_.assign(n_ * words_, 0);
  for (Vertex u = 0; u < n_; ++u) {
    std::uint64_t* row = bits_.data() + u * words_;
    for (Vertex v : g.neighbors(u)) {
      row[v >> 6] |= 1ull << (v & 63);
    }
  }
  builds_counter().inc();
}

bool AdjacencyBitmap::worthwhile(std::size_t n, std::size_t m) {
  if (n < 64) return false;
  const std::size_t words = (n + 63) / 64;
  if (n * words * 8 > kMaxBytes) return false;
  // Merge cost ≈ 2·(2m/n) list entries per query vs n/64 words; require a
  // 2× margin so the bitmap only wins clearly: 2m/n ≥ n/128.
  return 256 * m >= n * n;
}

AdjacencyBitmap AdjacencyBitmap::build_if_worthwhile(const Graph& g) {
  if (!worthwhile(g.num_vertices(), g.num_edges())) return {};
  return AdjacencyBitmap(g);
}

std::size_t AdjacencyBitmap::common_count(Vertex u, Vertex v) const {
  const std::uint64_t* a = bits_.data() + u * words_;
  const std::uint64_t* b = bits_.data() + v * words_;
  // The whole row is always consumed, so this is the pure and-popcount
  // kernel — runtime-dispatched (AVX2 when available). has_common and
  // common_into stay scalar: the former early-exits (its words_scanned
  // accounting depends on where it stopped), the latter materializes.
  const std::size_t count = simd::and_popcount(a, b, words_);
  words_counter().inc(words_);
  return count;
}

bool AdjacencyBitmap::has_common(Vertex u, Vertex v) const {
  const std::uint64_t* a = bits_.data() + u * words_;
  const std::uint64_t* b = bits_.data() + v * words_;
  for (std::size_t w = 0; w < words_; ++w) {
    if ((a[w] & b[w]) != 0) {
      words_counter().inc(w + 1);
      return true;
    }
  }
  words_counter().inc(words_);
  return false;
}

std::size_t AdjacencyBitmap::common_into(Vertex u, Vertex v,
                                         std::vector<Vertex>& out) const {
  const std::uint64_t* a = bits_.data() + u * words_;
  const std::uint64_t* b = bits_.data() + v * words_;
  out.clear();
  for (std::size_t w = 0; w < words_; ++w) {
    std::uint64_t both = a[w] & b[w];
    while (both != 0) {
      out.push_back(static_cast<Vertex>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(both))));
      both &= both - 1;
    }
  }
  words_counter().inc(words_);
  return out.size();
}

}  // namespace dcs
