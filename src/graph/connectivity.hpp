#pragma once

// Connected components and diameter estimation.

#include <vector>

#include "graph/graph.hpp"

namespace dcs {

/// Component id per vertex, ids are dense starting from 0.
std::vector<std::size_t> connected_components(const Graph& g);

std::size_t num_components(const Graph& g);

bool is_connected(const Graph& g);

/// Lower bound on the diameter via a double BFS sweep (exact on trees, a
/// good estimate in general); kUnreachable if disconnected.
std::size_t diameter_lower_bound(const Graph& g);

}  // namespace dcs
