#include "graph/renumber.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace dcs {

const char* vertex_order_name(VertexOrder order) {
  switch (order) {
    case VertexOrder::kOriginal:
      return "original";
    case VertexOrder::kDegreeDescending:
      return "degree_descending";
    case VertexOrder::kBfs:
      return "bfs";
  }
  return "unknown";
}

Renumbering Renumbering::identity(std::size_t n) {
  Renumbering r;
  r.to_internal.resize(n);
  r.to_external.resize(n);
  std::iota(r.to_internal.begin(), r.to_internal.end(), Vertex{0});
  std::iota(r.to_external.begin(), r.to_external.end(), Vertex{0});
  return r;
}

bool Renumbering::is_valid() const {
  const std::size_t n = to_internal.size();
  if (to_external.size() != n) return false;
  for (std::size_t ext = 0; ext < n; ++ext) {
    const Vertex i = to_internal[ext];
    if (i >= n || to_external[i] != ext) return false;
  }
  return true;
}

Graph Renumbering::apply_to(const Graph& g) const {
  DCS_REQUIRE(g.num_vertices() == size(),
              "renumbering size does not match graph");
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : g.neighbors(u)) {
      if (u < v) {
        edges.push_back(canonical(to_internal[u], to_internal[v]));
      }
    }
  }
  return Graph::from_edges(size(), edges);
}

namespace {

// Hubs first: stable sort by descending degree so equal-degree runs keep
// their original relative order (deterministic across platforms).
Renumbering degree_descending(const Graph& g) {
  const std::size_t n = g.num_vertices();
  Renumbering r;
  r.to_external.resize(n);
  std::iota(r.to_external.begin(), r.to_external.end(), Vertex{0});
  std::stable_sort(r.to_external.begin(), r.to_external.end(),
                   [&g](Vertex a, Vertex b) {
                     return g.degree(a) > g.degree(b);
                   });
  r.to_internal.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    r.to_internal[r.to_external[i]] = static_cast<Vertex>(i);
  }
  return r;
}

// BFS visitation order. Components are processed hubs-first (each seeded
// at its highest-degree unvisited vertex), so the largest neighborhoods
// land at the front of the address space and each component's vertices
// are contiguous.
Renumbering bfs_order(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<Vertex> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), Vertex{0});
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&g](Vertex a, Vertex b) {
                     return g.degree(a) > g.degree(b);
                   });

  Renumbering r;
  r.to_external.reserve(n);
  r.to_internal.assign(n, static_cast<Vertex>(n));  // n == "unvisited"
  std::vector<Vertex> queue;
  queue.reserve(n);
  for (Vertex seed : by_degree) {
    if (r.to_internal[seed] != static_cast<Vertex>(n)) continue;
    r.to_internal[seed] = static_cast<Vertex>(r.to_external.size());
    r.to_external.push_back(seed);
    queue.clear();
    queue.push_back(seed);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex u = queue[head];
      for (Vertex w : g.neighbors(u)) {
        if (r.to_internal[w] != static_cast<Vertex>(n)) continue;
        r.to_internal[w] = static_cast<Vertex>(r.to_external.size());
        r.to_external.push_back(w);
        queue.push_back(w);
      }
    }
  }
  return r;
}

}  // namespace

Renumbering compute_renumbering(const Graph& g, VertexOrder order) {
  switch (order) {
    case VertexOrder::kOriginal:
      return Renumbering::identity(g.num_vertices());
    case VertexOrder::kDegreeDescending:
      return degree_descending(g);
    case VertexOrder::kBfs:
      return bfs_order(g);
  }
  DCS_REQUIRE(false, "unknown vertex order");
  return Renumbering::identity(g.num_vertices());
}

RenumberedGraph Graph::renumber(VertexOrder order) const {
  Renumbering map = compute_renumbering(*this, order);
  if (order == VertexOrder::kOriginal) {
    return RenumberedGraph{*this, std::move(map)};
  }
  Graph relabeled = map.apply_to(*this);
  return RenumberedGraph{std::move(relabeled), std::move(map)};
}

}  // namespace dcs
