#pragma once

// Induced subgraphs with vertex re-indexing, plus helpers to map edges back
// to the host graph. Used by the fault-tolerant spanner construction
// (spanners of random induced subgraphs) and by fault-injection tests
// (residual graphs G ∖ F).

#include <vector>

#include "graph/graph.hpp"

namespace dcs {

struct InducedSubgraph {
  Graph graph;                     ///< the induced subgraph, re-indexed
  std::vector<Vertex> to_host;     ///< sub-vertex → host-vertex
  std::vector<Vertex> from_host;   ///< host-vertex → sub-vertex (kInvalidVertex if absent)

  /// Maps an edge of `graph` back to host-vertex ids.
  Edge host_edge(Edge e) const {
    return canonical(to_host[e.u], to_host[e.v]);
  }
};

/// Subgraph induced by the vertices with keep[v] == true.
InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<bool>& keep);

/// Residual graph G ∖ F on the same vertex set: removes all edges incident
/// to the faulty vertices (the paper's fault-tolerant-spanner setting
/// measures distances in this graph).
Graph remove_vertices(const Graph& g, std::span<const Vertex> faults);

}  // namespace dcs
