#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/check.hpp"

namespace dcs {

Graph complete_graph(std::size_t n) {
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph cycle_graph(std::size_t n) {
  DCS_REQUIRE(n >= 3, "cycle needs at least 3 vertices");
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    b.add_edge(u, static_cast<Vertex>((u + 1) % n));
  }
  return b.build();
}

Graph path_graph(std::size_t n) {
  GraphBuilder b(n);
  for (Vertex u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1);
  return b.build();
}

Graph hypercube(std::size_t dim) {
  DCS_REQUIRE(dim < 30, "hypercube dimension too large");
  const std::size_t n = std::size_t{1} << dim;
  GraphBuilder b(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t d = 0; d < dim; ++d) {
      const std::size_t v = u ^ (std::size_t{1} << d);
      if (u < v) b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    }
  }
  return b.build();
}

Graph torus_2d(std::size_t rows, std::size_t cols) {
  DCS_REQUIRE(rows >= 1 && cols >= 1, "torus dimensions must be positive");
  const std::size_t n = rows * cols;
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  EdgeSet edges;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (cols > 1) {
        const Vertex right = id(r, (c + 1) % cols);
        if (right != id(r, c)) edges.insert(id(r, c), right);
      }
      if (rows > 1) {
        const Vertex down = id((r + 1) % rows, c);
        if (down != id(r, c)) edges.insert(id(r, c), down);
      }
    }
  }
  const auto list = edges.to_vector();
  return Graph::from_edges(n, list);
}

Graph erdos_renyi(std::size_t n, double p, std::uint64_t seed) {
  DCS_REQUIRE(p >= 0.0 && p <= 1.0, "edge probability must be in [0,1]");
  Rng rng(seed);
  std::vector<Edge> edges;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) edges.push_back(Edge{u, v});
    }
  }
  return Graph::from_edges(n, edges);
}

Graph random_regular(std::size_t n, std::size_t delta, std::uint64_t seed) {
  DCS_REQUIRE(n % 2 == 0, "random_regular requires an even vertex count");
  DCS_REQUIRE(delta >= 1 && delta < n,
              "degree must be in [1, n) for a simple regular graph");
  if (delta == n - 1) return complete_graph(n);
  if (delta > n / 2) {
    // Dense regime: the matching-union repair loop degenerates as the
    // remaining non-edges thin out. Build the sparse complement instead —
    // the complement of a (n-1-Δ)-regular graph is Δ-regular.
    const Graph co = random_regular(n, n - 1 - delta, seed);
    std::vector<Edge> edges;
    edges.reserve(n * delta / 2);
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = u + 1; v < n; ++v) {
        if (!co.has_edge(u, v)) edges.push_back(Edge{u, v});
      }
    }
    return Graph::from_edges(n, edges);
  }
  Rng rng(seed);
  EdgeSet edges;

  std::vector<Vertex> perm(n);
  std::iota(perm.begin(), perm.end(), Vertex{0});

  for (std::size_t round = 0; round < delta; ++round) {
    rng.shuffle(perm);
    // Pairs of this round's perfect matching that collide with an existing
    // edge; the rest are committed immediately.
    std::vector<std::pair<Vertex, Vertex>> committed;
    std::vector<std::pair<Vertex, Vertex>> bad;
    committed.reserve(n / 2);
    for (std::size_t i = 0; i < n; i += 2) {
      const Vertex a = perm[i];
      const Vertex b = perm[i + 1];
      if (!edges.contains(a, b)) {
        edges.insert(a, b);
        committed.emplace_back(a, b);
      } else {
        bad.emplace_back(a, b);
      }
    }
    // Repair duplicates by 2-swaps with committed pairs of the same
    // matching, preserving the perfect-matching (hence regularity) property.
    std::size_t attempts = 0;
    const std::size_t max_attempts = 200 * n + 10000;
    while (!bad.empty()) {
      DCS_REQUIRE(++attempts <= max_attempts,
                  "random_regular failed to repair duplicate edges; the "
                  "requested degree is too close to n");
      auto [a, b] = bad.back();
      DCS_CHECK(!committed.empty(),
                "no committed pairs available for repair swap");
      const std::size_t j = rng.uniform(committed.size());
      auto [c, d] = committed[j];
      // Try the cross pairings (a,c)(b,d) and (a,d)(b,c).
      auto ok = [&](Vertex x, Vertex y) {
        return x != y && !edges.contains(x, y);
      };
      std::pair<Vertex, Vertex> p1, p2;
      bool found = false;
      if (ok(a, c) && ok(b, d)) {
        p1 = {a, c};
        p2 = {b, d};
        found = true;
      } else if (ok(a, d) && ok(b, c)) {
        p1 = {a, d};
        p2 = {b, c};
        found = true;
      }
      if (!found) continue;  // pick a different partner next iteration
      bad.pop_back();
      edges.erase(canonical(c, d));
      edges.insert(p1.first, p1.second);
      edges.insert(p2.first, p2.second);
      committed[j] = p1;
      committed.push_back(p2);
    }
  }

  const auto list = edges.to_vector();
  Graph g = Graph::from_edges(n, list);
  DCS_CHECK(g.is_regular() && g.min_degree() == delta,
            "random_regular produced a non-regular graph");
  return g;
}

Graph margulis_expander(std::size_t m) {
  DCS_REQUIRE(m >= 2, "margulis expander needs m >= 2");
  const std::size_t n = m * m;
  auto id = [m](std::size_t x, std::size_t y) {
    return static_cast<Vertex>(x * m + y);
  };
  EdgeSet edges;
  for (std::size_t x = 0; x < m; ++x) {
    for (std::size_t y = 0; y < m; ++y) {
      const Vertex u = id(x, y);
      const Vertex targets[4] = {
          id((x + 2 * y) % m, y),
          id((x + 2 * y + 1) % m, y),
          id(x, (y + 2 * x) % m),
          id(x, (y + 2 * x + 1) % m),
      };
      for (Vertex v : targets) {
        if (v != u) edges.insert(u, v);
      }
    }
  }
  const auto list = edges.to_vector();
  return Graph::from_edges(n, list);
}

Graph ring_of_cliques(std::size_t num_cliques, std::size_t clique_size) {
  DCS_REQUIRE(num_cliques >= 3, "ring needs at least 3 cliques");
  DCS_REQUIRE(clique_size >= 2, "cliques need at least 2 vertices");
  const std::size_t n = num_cliques * clique_size;
  auto id = [clique_size](std::size_t c, std::size_t j) {
    return static_cast<Vertex>(c * clique_size + j);
  };
  GraphBuilder b(n);
  for (std::size_t c = 0; c < num_cliques; ++c) {
    for (std::size_t i = 0; i < clique_size; ++i) {
      for (std::size_t j = i + 1; j < clique_size; ++j) {
        b.add_edge(id(c, i), id(c, j));
      }
      b.add_edge(id(c, i), id((c + 1) % num_cliques, i));
    }
  }
  Graph g = b.build();
  DCS_CHECK(g.is_regular() && g.min_degree() == clique_size + 1,
            "ring_of_cliques degree mismatch");
  return g;
}

Graph clique_matching_graph(std::size_t n) {
  DCS_REQUIRE(n >= 4 && n % 2 == 0,
              "clique_matching_graph needs an even n >= 4");
  const std::size_t half = n / 2;
  GraphBuilder b(n);
  for (Vertex u = 0; u < half; ++u) {
    for (Vertex v = u + 1; v < half; ++v) {
      b.add_edge(u, v);                                    // clique A
      b.add_edge(static_cast<Vertex>(half + u),
                 static_cast<Vertex>(half + v));           // clique B
    }
  }
  for (Vertex i = 0; i < half; ++i) {
    b.add_edge(i, static_cast<Vertex>(half + i));          // matching
  }
  return b.build();
}

Lemma2Graph lemma2_graph(std::size_t pairs, std::size_t alpha) {
  DCS_REQUIRE(pairs >= 2, "lemma2_graph needs at least 2 matched pairs");
  DCS_REQUIRE(alpha >= 2, "lemma2_graph needs alpha >= 2");
  Lemma2Graph out;
  out.alpha = alpha;
  const std::size_t detour_len = alpha - 1;  // interior nodes per detour
  const std::size_t n = 2 * pairs + pairs * detour_len;
  GraphBuilder b(n);

  out.a.resize(pairs);
  out.b.resize(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    out.a[i] = static_cast<Vertex>(i);
    out.b[i] = static_cast<Vertex>(pairs + i);
  }
  Vertex next = static_cast<Vertex>(2 * pairs);
  out.detours.resize(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    out.detours[i].resize(detour_len);
    for (std::size_t j = 0; j < detour_len; ++j) out.detours[i][j] = next++;
  }

  for (std::size_t i = 0; i < pairs; ++i) {
    for (std::size_t j = i + 1; j < pairs; ++j) {
      b.add_edge(out.a[i], out.a[j]);  // clique on A
      b.add_edge(out.b[i], out.b[j]);  // clique on B
    }
  }
  for (std::size_t i = 0; i < pairs; ++i) {
    b.add_edge(out.a[i], out.b[i]);  // perfect matching M
    // detour path a_i - d_{i,1} - ... - d_{i,alpha-1} - b_i (length alpha)
    Vertex prev = out.a[i];
    for (Vertex d : out.detours[i]) {
      b.add_edge(prev, d);
      prev = d;
    }
    b.add_edge(prev, out.b[i]);
  }
  out.g = b.build();
  return out;
}

FanGadget fan_gadget(std::size_t k) {
  DCS_REQUIRE(k >= 1, "fan gadget needs k >= 1");
  FanGadget out;
  out.k = k;
  const std::size_t line_len = 2 * k + 1;
  GraphBuilder b(line_len + 1);
  out.line.resize(line_len);
  for (std::size_t i = 0; i < line_len; ++i) {
    out.line[i] = static_cast<Vertex>(i);
  }
  out.hub = static_cast<Vertex>(line_len);
  for (std::size_t i = 0; i + 1 < line_len; ++i) {
    b.add_edge(out.line[i], out.line[i + 1]);
  }
  // rays to odd-indexed positions a_1, a_3, ..., a_{2k+1} (0-based: even idx)
  for (std::size_t i = 0; i < line_len; i += 2) {
    b.add_edge(out.hub, out.line[i]);
  }
  out.g = b.build();
  DCS_CHECK(out.g.num_edges() == 3 * k + 1, "fan gadget edge count mismatch");
  return out;
}

}  // namespace dcs
