#include "graph/graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dcs {

Graph::Graph(std::size_t n) : offsets_(n + 1, 0) {}

Graph Graph::from_edges(std::size_t n, std::span<const Edge> edges) {
  std::vector<Edge> canon(edges.begin(), edges.end());
  for (const auto& e : canon) {
    DCS_REQUIRE(e.u != e.v, "self-loops are not allowed");
    DCS_REQUIRE(e.u < n && e.v < n, "edge endpoint out of range");
  }
  canonicalize_edge_list(canon);

  Graph g(n);
  std::vector<std::size_t> degree(n, 0);
  for (const auto& e : canon) {
    ++degree[e.u];
    ++degree[e.v];
  }
  for (std::size_t v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  }
  g.adjacency_.resize(2 * canon.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : canon) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  // Canonical edge order already emits each adjacency list in increasing
  // order for the second endpoint but not the first; sort to guarantee it.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  DCS_REQUIRE(u < num_vertices() && v < num_vertices(),
              "vertex out of range");
  if (u == v) return false;
  auto nb = neighbors(u);
  if (degree(v) < nb.size()) {
    nb = neighbors(v);
    std::swap(u, v);
  }
  // Branchless binary search: the conditional advance compiles to a cmov,
  // so the only data-dependent branch left is the loop itself, and both
  // possible next midpoints are prefetched while the current probe's load
  // is still in flight.
  const Vertex* base = nb.data();
  std::size_t len = nb.size();
  if (len == 0) return false;
  while (len > 1) {
    const std::size_t half = len / 2;
    __builtin_prefetch(base + half / 2);
    __builtin_prefetch(base + half + (len - half) / 2);
    base += (base[half - 1] < v) ? half : 0;
    len -= half;
  }
  return *base == v;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (Vertex u = 0; u < num_vertices(); ++u) {
    for (Vertex v : neighbors(u)) {
      if (u < v) out.push_back(Edge{u, v});
    }
  }
  return out;
}

std::pair<std::size_t, std::size_t> Graph::degree_bounds() const {
  if (num_vertices() == 0) return {0, 0};
  std::size_t lo = degree(0);
  std::size_t hi = lo;
  for (Vertex v = 1; v < num_vertices(); ++v) {
    const std::size_t d = degree(v);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  return {lo, hi};
}

bool Graph::contains_subgraph(const Graph& other) const {
  if (other.num_vertices() != num_vertices()) return false;
  for (Vertex u = 0; u < num_vertices(); ++u) {
    for (Vertex v : other.neighbors(u)) {
      if (u < v && !has_edge(u, v)) return false;
    }
  }
  return true;
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  DCS_REQUIRE(u != v, "self-loops are not allowed");
  DCS_REQUIRE(u < n_ && v < n_, "edge endpoint out of range");
  edges_.push_back(canonical(u, v));
}

void GraphBuilder::add_edges(std::span<const Edge> edges) {
  for (Edge e : edges) add_edge(e.u, e.v);
}

}  // namespace dcs
