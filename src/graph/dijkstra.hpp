#pragma once

// Dijkstra shortest paths on weighted graphs (binary-heap implementation),
// with a bounded variant used by the weighted greedy spanner.

#include <limits>
#include <vector>

#include "graph/weighted_graph.hpp"
#include "routing/routing.hpp"

namespace dcs {

inline constexpr double kInfDistance =
    std::numeric_limits<double>::infinity();

/// Distances from `source` to every vertex (kInfDistance if unreachable).
std::vector<double> dijkstra_distances(const WeightedGraph& g,
                                       Vertex source);

/// Distance between a pair with early exit.
double dijkstra_distance(const WeightedGraph& g, Vertex source,
                         Vertex target);

/// One shortest path (empty if unreachable), endpoints included.
Path dijkstra_path(const WeightedGraph& g, Vertex source, Vertex target);

/// Weight of a path under g (sum of edge weights); throws on non-edges.
double path_weight(const WeightedGraph& g, const Path& p);

}  // namespace dcs
