#pragma once

// Dense adjacency bitmaps for word-parallel neighborhood intersection.
//
// The support machinery of Section 4 (base_support, the Ê test of
// Algorithm 1, common-neighbor enumeration) is a counted merge over two
// sorted adjacency lists: O(deg u + deg z) per query. In the paper's dense
// regime Δ ≥ n^{2/3} the same query is a popcount loop over n/64 words —
// asymptotically and practically cheaper exactly when the rows it scans
// are well filled. The bitmap costs n²/8 bytes, so it is built once per
// graph and only when the density justifies it (see worthwhile()); every
// consumer keeps the sorted-merge path as the scalar fallback.
//
// Obs: bitmap.builds counts constructions, bitmap.words_scanned the words
// touched by intersection queries (aggregated per query, not per word).

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dcs {

class AdjacencyBitmap {
 public:
  /// Memory ceiling for build_if_worthwhile (n²/8 bytes must fit).
  static constexpr std::size_t kMaxBytes = std::size_t{1} << 28;  // 256 MiB

  AdjacencyBitmap() = default;

  /// Unconditionally builds the n × n bitmap of `g`.
  explicit AdjacencyBitmap(const Graph& g);

  /// True when the word-parallel path beats the sorted merge: the average
  /// degree must exceed the per-query word count (2m/n ≥ n/128, i.e. the
  /// Δ ≥ n^{2/3} regime for n ≤ ~10⁵) and the bitmap must fit kMaxBytes.
  static bool worthwhile(std::size_t n, std::size_t m);

  /// Builds the bitmap iff worthwhile(); otherwise returns an empty map
  /// (callers then stay on the scalar merge path).
  static AdjacencyBitmap build_if_worthwhile(const Graph& g);

  bool empty() const { return n_ == 0; }
  std::size_t num_vertices() const { return n_; }
  std::size_t words_per_row() const { return words_; }

  std::span<const std::uint64_t> row(Vertex v) const {
    return {bits_.data() + v * words_, words_};
  }

  bool test(Vertex u, Vertex v) const {
    return (bits_[u * words_ + (v >> 6)] >> (v & 63)) & 1;
  }

  /// |N(u) ∩ N(v)| via a word-parallel popcount loop.
  std::size_t common_count(Vertex u, Vertex v) const;

  /// True iff N(u) ∩ N(v) ≠ ∅ (early-exits on the first non-zero word).
  bool has_common(Vertex u, Vertex v) const;

  /// Materializes N(u) ∩ N(v) in increasing order into `out` (cleared
  /// first); returns the count.
  std::size_t common_into(Vertex u, Vertex v,
                          std::vector<Vertex>& out) const;

 private:
  std::size_t n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;  // n_ rows of words_ words
};

}  // namespace dcs
