#include "graph/dijkstra.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace dcs {

namespace {

using HeapEntry = std::pair<double, Vertex>;  // (distance, vertex)
using MinHeap = std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                                    std::greater<>>;

std::vector<double> run_dijkstra(const WeightedGraph& g, Vertex source,
                                 Vertex target,
                                 std::vector<Vertex>* parent) {
  DCS_REQUIRE(source < g.num_vertices(), "source out of range");
  std::vector<double> dist(g.num_vertices(), kInfDistance);
  if (parent != nullptr) {
    parent->assign(g.num_vertices(), kInvalidVertex);
  }
  MinHeap heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    if (u == target) break;
    const auto nb = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const double nd = d + ws[i];
      if (nd < dist[nb[i]]) {
        dist[nb[i]] = nd;
        if (parent != nullptr) (*parent)[nb[i]] = u;
        heap.emplace(nd, nb[i]);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<double> dijkstra_distances(const WeightedGraph& g,
                                       Vertex source) {
  return run_dijkstra(g, source, kInvalidVertex, nullptr);
}

double dijkstra_distance(const WeightedGraph& g, Vertex source,
                         Vertex target) {
  DCS_REQUIRE(target < g.num_vertices(), "target out of range");
  const auto dist = run_dijkstra(g, source, target, nullptr);
  return dist[target];
}

Path dijkstra_path(const WeightedGraph& g, Vertex source, Vertex target) {
  DCS_REQUIRE(target < g.num_vertices(), "target out of range");
  std::vector<Vertex> parent;
  const auto dist = run_dijkstra(g, source, target, &parent);
  if (dist[target] == kInfDistance) return {};
  Path path{target};
  Vertex cur = target;
  while (cur != source) {
    cur = parent[cur];
    DCS_CHECK(cur != kInvalidVertex, "parent chain broken");
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double path_weight(const WeightedGraph& g, const Path& p) {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    total += g.weight(p[i], p[i + 1]);
  }
  return total;
}

}  // namespace dcs
