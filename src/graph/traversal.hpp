#pragma once

// Batched traversal engine.
//
// Every empirical claim in this library bottoms out in thousands of
// independent BFS runs (distance-stretch verification over all non-spanner
// edges, the support-reinsertion loop, the supervisor's periodic
// recertification under churn). The scalar BFS in graph/bfs.hpp pays a
// fresh O(n) allocation and fill per call and walks one source at a time;
// this engine removes both costs:
//
//  * multi_source_bfs advances up to 64 sources per pass using 64-bit
//    visit/frontier masks (MS-BFS in the style of Then et al.), so one
//    sweep over the adjacency serves a whole batch of sources;
//  * bfs_hybrid is a direction-optimizing single-source BFS (Beamer's
//    top-down/bottom-up switching on frontier density), which skips most
//    edge examinations on the dense middle levels of expanders;
//  * both draw from per-thread epoch-stamped scratch arenas, so repeated
//    calls do zero allocation and zero O(n) clearing — a bounded BFS that
//    touches k vertices costs O(k), not O(n).
//
// The hot loops (bottom-up parent search, MS-BFS frontier merge) run on
// the runtime-dispatched kernels in util/simd.hpp — AVX2 when available,
// bit-identical scalar otherwise — with software prefetch covering the
// bottom-up adjacency scans; scratch arrays live in first-touch
// ArenaBuffers (util/arena.hpp) so each worker's scratch stays on its
// NUMA node. Pair with Graph::renumber for the cache-order layout.
//
// The scalar implementations in graph/bfs.hpp remain the reference; the
// equivalence property tests in tests/test_traversal.cpp pin this engine
// to them bit-for-bit. Obs counters: traversal.bottom_up_switches,
// traversal.arena_reuse_hits, traversal.ms_batches, traversal.ms_sources.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace dcs {

/// Sources advanced together per multi-source pass (one mask bit each).
inline constexpr std::size_t kMsBfsBatch = 64;

/// Reusable per-thread traversal buffers. A scratch may be used freely
/// from one thread at a time; traversal_scratch() hands out a thread-local
/// instance so pool workers reuse their arenas across calls.
class TraversalScratch {
 public:
  TraversalScratch();
  ~TraversalScratch();
  TraversalScratch(const TraversalScratch&) = delete;
  TraversalScratch& operator=(const TraversalScratch&) = delete;

  struct Impl;
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// The calling thread's scratch arena (created on first use, reused for
/// the lifetime of the thread).
TraversalScratch& traversal_scratch();

/// Pre-size every ThreadPool worker's thread-local scratch (and the
/// caller's) for graphs of `n` vertices. Each worker first-touches its
/// own arena pages, so on NUMA machines the scratch lands on the
/// worker's local node before the first timed sweep (see util/arena.hpp
/// and docs/performance.md). Idempotent and cheap when already sized.
void warm_traversal_scratch(std::size_t n);

/// Borrowed view of one single-source traversal. Entries live in the
/// scratch arena: the view is valid until the next single-source call on
/// the same scratch. Untouched vertices read as kUnreachable via the
/// epoch stamps — no O(n) result array is materialized.
struct SsBfsView {
  std::span<const Dist> dist;
  std::span<const std::uint32_t> stamp;
  std::uint32_t epoch = 0;

  Dist at(Vertex v) const {
    return stamp[v] == epoch ? dist[v] : kUnreachable;
  }

  /// Materializes the full distance array (kUnreachable where unvisited)
  /// into `out`, resizing it; for callers that need the scalar-BFS shape.
  void export_distances(std::vector<Dist>& out) const;
};

/// Borrowed view of one multi-source batch. dist is vertex-major
/// (kMsBfsBatch entries per vertex); validity of entry (i, v) is carried
/// by bit i of the per-vertex seen mask. Valid until the next
/// multi_source_bfs call on the same scratch.
struct MsBfsView {
  std::size_t batch = 0;  ///< number of sources in this batch
  std::span<const Dist> dist;
  std::span<const std::uint64_t> seen;
  std::span<const std::uint32_t> seen_stamp;
  std::uint32_t epoch = 0;

  /// Distance from sources[source_index] to v (kUnreachable if not
  /// reached within the depth bound).
  Dist at(std::size_t source_index, Vertex v) const {
    const std::uint64_t mask = seen_stamp[v] == epoch ? seen[v] : 0;
    return (mask >> source_index) & 1
               ? dist[v * kMsBfsBatch + source_index]
               : kUnreachable;
  }
};

/// Direction-optimizing single-source BFS. Produces distances identical
/// to bfs_distances_bounded(g, source, max_depth). `scratch` defaults to
/// the calling thread's arena.
SsBfsView bfs_hybrid(const Graph& g, Vertex source,
                     Dist max_depth = kUnreachable,
                     TraversalScratch* scratch = nullptr);

/// Convenience wrapper materializing the full distance vector (same
/// output as bfs_distances); still allocation-free internally but pays
/// the O(n) export.
std::vector<Dist> bfs_distances_hybrid(const Graph& g, Vertex source,
                                       Dist max_depth = kUnreachable);

/// Multi-source BFS over up to kMsBfsBatch sources simultaneously, depth
/// bounded by `max_depth` (same horizon semantics as
/// bfs_distances_bounded). Duplicate sources are allowed and resolve to
/// identical rows. `scratch` defaults to the calling thread's arena.
MsBfsView multi_source_bfs(const Graph& g, std::span<const Vertex> sources,
                           Dist max_depth = kUnreachable,
                           TraversalScratch* scratch = nullptr);

}  // namespace dcs
