#pragma once

// Weighted undirected graphs in CSR form.
//
// The DC-spanner theory of the paper is unweighted; the weighted layer
// exists for the classical spanner baselines it cites (Baswana–Sen and the
// greedy spanner are stated for weighted graphs) and for users who want
// weighted distance spanners alongside the unweighted DC constructions.

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/graph.hpp"

namespace dcs {

struct WeightedEdge {
  Vertex u = kInvalidVertex;
  Vertex v = kInvalidVertex;
  double w = 1.0;

  bool operator==(const WeightedEdge&) const = default;
};

/// Canonical orientation (min endpoint first), weight preserved.
constexpr WeightedEdge canonical(WeightedEdge e) {
  return e.u <= e.v ? e : WeightedEdge{e.v, e.u, e.w};
}

class WeightedGraph {
 public:
  explicit WeightedGraph(std::size_t n = 0);

  /// Builds from an edge list; duplicate edges keep the smallest weight.
  /// Weights must be positive and finite.
  static WeightedGraph from_edges(std::size_t n,
                                  std::span<const WeightedEdge> edges);

  /// Lifts an unweighted graph (every edge gets weight `w`).
  static WeightedGraph from_unweighted(const Graph& g, double w = 1.0);

  std::size_t num_vertices() const { return offsets_.size() - 1; }
  std::size_t num_edges() const { return adjacency_.size() / 2; }

  std::span<const Vertex> neighbors(Vertex v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }
  std::span<const double> weights(Vertex v) const {
    return {weights_.data() + offsets_[v],
            weights_.data() + offsets_[v + 1]};
  }

  std::size_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  bool has_edge(Vertex u, Vertex v) const;

  /// Weight of edge (u,v); throws if absent.
  double weight(Vertex u, Vertex v) const;

  /// Canonical weighted edge list.
  std::vector<WeightedEdge> edges() const;

  /// Sum of all edge weights.
  double total_weight() const;

  /// Forgets the weights.
  Graph unweighted() const;

  bool operator==(const WeightedGraph&) const = default;

 private:
  std::vector<std::size_t> offsets_;
  std::vector<Vertex> adjacency_;
  std::vector<double> weights_;  // parallel to adjacency_
};

}  // namespace dcs
