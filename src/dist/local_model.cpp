#include "dist/local_model.hpp"

#include "util/check.hpp"

namespace dcs {

LocalRunStats run_local(
    const Graph& g,
    std::span<const std::unique_ptr<LocalAlgorithm>> nodes,
    std::size_t max_rounds) {
  const std::size_t n = g.num_vertices();
  DCS_REQUIRE(nodes.size() == n, "one algorithm instance per vertex");

  for (Vertex v = 0; v < n; ++v) {
    nodes[v]->init(v, g.neighbors(v));
  }

  LocalRunStats stats;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool all_done = true;
    for (Vertex v = 0; v < n; ++v) {
      if (!nodes[v]->done(round)) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      stats.rounds = round;
      return stats;
    }

    // Collect all outgoing messages before delivering any: rounds are
    // synchronous, so this round's messages must not influence this round's
    // broadcasts.
    std::vector<std::vector<std::uint64_t>> outbox(n);
    for (Vertex v = 0; v < n; ++v) {
      outbox[v] = nodes[v]->broadcast(round);
    }
    for (Vertex v = 0; v < n; ++v) {
      for (Vertex nb : g.neighbors(v)) {
        nodes[nb]->receive(round, v, outbox[v]);
        ++stats.total_messages;
        stats.total_words += outbox[v].size();
      }
    }
  }

  // Final check after the last allowed round.
  for (Vertex v = 0; v < n; ++v) {
    DCS_REQUIRE(nodes[v]->done(max_rounds),
                "LOCAL simulation exceeded the round limit");
  }
  stats.rounds = max_rounds;
  return stats;
}

}  // namespace dcs
