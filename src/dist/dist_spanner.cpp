#include "dist/dist_spanner.hpp"

#include <unordered_map>

#include "core/support.hpp"
#include "util/check.hpp"

namespace dcs {

namespace {

// One node of the distributed Algorithm 1. Knowledge is a map from edge key
// to the edge's sampled bit; three flood rounds give every node all edges
// incident to its distance-3 neighborhood (the paper's "forward all
// information about G and G' for the next 3 rounds").
class SpannerNode final : public LocalAlgorithm {
 public:
  SpannerNode(std::size_t n, const RegularSpannerParams& params,
              const RegularSpannerOptions& options)
      : n_(n), params_(params), options_(options) {}

  void init(Vertex self, std::span<const Vertex> neighbors) override {
    self_ = self;
    neighbors_.assign(neighbors.begin(), neighbors.end());
    for (Vertex v : neighbors_) {
      const Edge e = canonical(self_, v);
      // Both endpoints evaluate the same deterministic coin, so the sampled
      // status needs no agreement message.
      knowledge_[edge_key(e)] = edge_sampled(e, params_.rho, options_.seed)
                                    ? std::uint64_t{1}
                                    : std::uint64_t{0};
    }
  }

  std::vector<std::uint64_t> broadcast(std::size_t round) override {
    if (round >= kFloodRounds) return {};
    std::vector<std::uint64_t> payload;
    payload.reserve(2 * knowledge_.size());
    for (const auto& [key, bit] : knowledge_) {
      payload.push_back(key);
      payload.push_back(bit);
    }
    return payload;
  }

  void receive(std::size_t /*round*/, Vertex /*from*/,
               std::span<const std::uint64_t> payload) override {
    DCS_CHECK(payload.size() % 2 == 0, "malformed knowledge payload");
    for (std::size_t i = 0; i < payload.size(); i += 2) {
      knowledge_.emplace(payload[i], payload[i + 1]);
    }
  }

  bool done(std::size_t rounds_elapsed) const override {
    return rounds_elapsed >= kFloodRounds;
  }

  /// After the run: contributes this node's incident spanner edges (only in
  /// the canonical direction to avoid duplicates). Decisions are symmetric —
  /// both endpoints hold a superset of the distance-2 information the tests
  /// read — so no decision-exchange round is required.
  void harvest(GraphBuilder& builder) const {
    // Materialize the local views of G and G' from knowledge.
    std::vector<Edge> g_edges;
    std::vector<Edge> gp_edges;
    g_edges.reserve(knowledge_.size());
    for (const auto& [key, bit] : knowledge_) {
      const Edge e{static_cast<Vertex>(key >> 32),
                   static_cast<Vertex>(key & 0xffffffffu)};
      g_edges.push_back(e);
      if (bit != 0) gp_edges.push_back(e);
    }
    const Graph local_g = Graph::from_edges(n_, g_edges);
    const Graph local_gp = Graph::from_edges(n_, gp_edges);

    for (Vertex v : neighbors_) {
      if (v < self_) continue;  // canonical owner emits the edge
      const Edge e = canonical(self_, v);
      if (knowledge_.at(edge_key(e)) != 0) {
        builder.add_edge(e.u, e.v);  // sampled: in G'
        continue;
      }
      const bool supported =
          is_ab_supported(local_g, e, params_.support_a, params_.support_b);
      if (!supported) {
        if (options_.reinsert_unsupported) builder.add_edge(e.u, e.v);
        continue;
      }
      if (options_.reinsert_undetoured &&
          !has_short_replacement(local_gp, e.u, e.v)) {
        builder.add_edge(e.u, e.v);
      }
    }
  }

 private:
  static constexpr std::size_t kFloodRounds = 3;

  std::size_t n_;
  RegularSpannerParams params_;
  RegularSpannerOptions options_;
  Vertex self_ = kInvalidVertex;
  std::vector<Vertex> neighbors_;
  std::unordered_map<std::uint64_t, std::uint64_t> knowledge_;
};

}  // namespace

DistSpannerResult build_regular_spanner_local(
    const Graph& g, const RegularSpannerOptions& options) {
  DCS_REQUIRE(g.is_regular(), "Algorithm 1 requires a Δ-regular input");
  const RegularSpannerParams params =
      compute_regular_spanner_params(g.min_degree(), options);

  std::vector<std::unique_ptr<LocalAlgorithm>> nodes;
  nodes.reserve(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    nodes.push_back(
        std::make_unique<SpannerNode>(g.num_vertices(), params, options));
  }

  DistSpannerResult result;
  result.stats = run_local(g, nodes, /*max_rounds=*/8);

  GraphBuilder builder(g.num_vertices());
  for (const auto& node : nodes) {
    static_cast<const SpannerNode*>(node.get())->harvest(builder);
  }
  result.h = builder.build();
  return result;
}

}  // namespace dcs
