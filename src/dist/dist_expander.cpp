#include "dist/dist_expander.hpp"

#include <cmath>
#include <unordered_map>

#include "core/support.hpp"
#include "util/check.hpp"

namespace dcs {

namespace {

class ExpanderNode final : public LocalAlgorithm {
 public:
  ExpanderNode(std::size_t n, double p, const ExpanderSpannerOptions& options)
      : n_(n), p_(p), options_(options) {}

  void init(Vertex self, std::span<const Vertex> neighbors) override {
    self_ = self;
    neighbors_.assign(neighbors.begin(), neighbors.end());
    for (Vertex v : neighbors_) {
      const Edge e = canonical(self_, v);
      knowledge_[edge_key(e)] =
          edge_sampled(e, p_, options_.seed) ? std::uint64_t{1}
                                             : std::uint64_t{0};
    }
  }

  std::vector<std::uint64_t> broadcast(std::size_t round) override {
    if (round >= kFloodRounds) return {};
    std::vector<std::uint64_t> payload;
    payload.reserve(2 * knowledge_.size());
    for (const auto& [key, bit] : knowledge_) {
      payload.push_back(key);
      payload.push_back(bit);
    }
    return payload;
  }

  void receive(std::size_t /*round*/, Vertex /*from*/,
               std::span<const std::uint64_t> payload) override {
    DCS_CHECK(payload.size() % 2 == 0, "malformed knowledge payload");
    for (std::size_t i = 0; i < payload.size(); i += 2) {
      knowledge_.emplace(payload[i], payload[i + 1]);
    }
  }

  bool done(std::size_t rounds_elapsed) const override {
    return rounds_elapsed >= kFloodRounds;
  }

  void harvest(GraphBuilder& builder) const {
    std::vector<Edge> sampled_edges;
    for (const auto& [key, bit] : knowledge_) {
      if (bit != 0) {
        sampled_edges.push_back(Edge{static_cast<Vertex>(key >> 32),
                                     static_cast<Vertex>(key & 0xffffffffu)});
      }
    }
    const Graph local_sampled = Graph::from_edges(n_, sampled_edges);
    for (Vertex v : neighbors_) {
      if (v < self_) continue;  // canonical owner emits the edge
      const Edge e = canonical(self_, v);
      if (knowledge_.at(edge_key(e)) != 0) {
        builder.add_edge(e.u, e.v);
        continue;
      }
      if (options_.repair_uncovered &&
          !has_short_replacement(local_sampled, e.u, e.v)) {
        builder.add_edge(e.u, e.v);
      }
    }
  }

 private:
  static constexpr std::size_t kFloodRounds = 3;

  std::size_t n_;
  double p_;
  ExpanderSpannerOptions options_;
  Vertex self_ = kInvalidVertex;
  std::vector<Vertex> neighbors_;
  std::unordered_map<std::uint64_t, std::uint64_t> knowledge_;
};

}  // namespace

DistExpanderResult build_expander_spanner_local(
    const Graph& g, const ExpanderSpannerOptions& options) {
  DCS_REQUIRE(g.is_regular(), "Theorem 2 requires a Δ-regular expander");
  const auto n = static_cast<double>(g.num_vertices());
  const auto delta = static_cast<double>(g.min_degree());
  double p;
  if (options.epsilon >= 0.0) {
    p = std::pow(n, -options.epsilon);
  } else {
    p = std::pow(n, 2.0 / 3.0) / delta;
  }
  p = std::min(1.0, p);

  std::vector<std::unique_ptr<LocalAlgorithm>> nodes;
  nodes.reserve(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    nodes.push_back(
        std::make_unique<ExpanderNode>(g.num_vertices(), p, options));
  }

  DistExpanderResult result;
  result.stats = run_local(g, nodes, /*max_rounds=*/8);

  GraphBuilder builder(g.num_vertices());
  for (const auto& node : nodes) {
    static_cast<const ExpanderNode*>(node.get())->harvest(builder);
  }
  result.h = builder.build();
  return result;
}

}  // namespace dcs
