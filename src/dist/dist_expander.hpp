#pragma once

// Distributed (LOCAL-model) version of the Theorem 2 expander spanner.
//
// The construction is inherently local: edge sampling uses the shared
// deterministic coin (both endpoints agree without communication), and the
// repair test — "does a removed edge still have a replacement of length
// ≤ 3 in the sampled graph?" — reads only the 3-hop neighborhood. Three
// knowledge-flooding rounds therefore suffice, mirroring Corollary 3's
// scheme for Algorithm 1.

#include "core/expander_spanner.hpp"
#include "dist/local_model.hpp"
#include "graph/graph.hpp"

namespace dcs {

struct DistExpanderResult {
  Graph h;
  LocalRunStats stats;
};

/// Runs the distributed Theorem 2 construction; output is bit-identical to
/// build_expander_spanner with the same options.
DistExpanderResult build_expander_spanner_local(
    const Graph& g, const ExpanderSpannerOptions& options = {});

}  // namespace dcs
