#pragma once

// A round-based simulator of the LOCAL model of distributed computing:
// synchronous rounds, unbounded local computation, and per-round message
// exchange restricted to graph neighbors. Locality is enforced by
// construction — a node's only input channel is its neighbors' messages.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace dcs {

/// One node's algorithm. The simulator drives:
///   init → [broadcast → deliver receive()s] per round → done?
class LocalAlgorithm {
 public:
  virtual ~LocalAlgorithm() = default;

  virtual void init(Vertex self, std::span<const Vertex> neighbors) = 0;

  /// Payload broadcast to every neighbor this round (LOCAL allows distinct
  /// per-neighbor messages; broadcast suffices for our algorithms).
  virtual std::vector<std::uint64_t> broadcast(std::size_t round) = 0;

  virtual void receive(std::size_t round, Vertex from,
                       std::span<const std::uint64_t> payload) = 0;

  /// Once every node reports done, the simulation stops.
  virtual bool done(std::size_t rounds_elapsed) const = 0;
};

struct LocalRunStats {
  std::size_t rounds = 0;
  std::size_t total_messages = 0;
  std::size_t total_words = 0;  ///< sum of payload lengths (64-bit words)
};

/// Runs one algorithm instance per vertex for at most `max_rounds` rounds.
/// Returns the statistics of the run; throws if the round limit is hit
/// before every node is done.
LocalRunStats run_local(const Graph& g,
                        std::span<const std::unique_ptr<LocalAlgorithm>> nodes,
                        std::size_t max_rounds);

}  // namespace dcs
