#include "dist/dist_verify.hpp"

#include <unordered_set>

#include "graph/bfs.hpp"
#include "util/check.hpp"

namespace dcs {

namespace {

class VerifyNode final : public LocalAlgorithm {
 public:
  VerifyNode(std::size_t n, const Graph& g, const Graph& h, Dist alpha)
      : n_(n), g_(g), h_(h), alpha_(alpha) {}

  void init(Vertex self, std::span<const Vertex> /*neighbors*/) override {
    self_ = self;
    // Seed knowledge with the node's incident H-edges. (The simulator's
    // neighbor lists come from G — verification floods over G links, which
    // is legitimate: LOCAL communication uses the network G itself.)
    for (Vertex v : h_.neighbors(self_)) {
      knowledge_.insert(edge_key(canonical(self_, v)));
    }
  }

  std::vector<std::uint64_t> broadcast(std::size_t round) override {
    if (round >= alpha_) return {};
    return {knowledge_.begin(), knowledge_.end()};
  }

  void receive(std::size_t /*round*/, Vertex /*from*/,
               std::span<const std::uint64_t> payload) override {
    knowledge_.insert(payload.begin(), payload.end());
  }

  bool done(std::size_t rounds_elapsed) const override {
    return rounds_elapsed >= alpha_;
  }

  /// After the flood: accept iff every owned incident G-edge has a ≤α-hop
  /// path in the known fragment of H.
  bool accepts() const {
    std::vector<Edge> local_edges;
    local_edges.reserve(knowledge_.size());
    for (std::uint64_t key : knowledge_) {
      local_edges.push_back(Edge{static_cast<Vertex>(key >> 32),
                                 static_cast<Vertex>(key & 0xffffffffu)});
    }
    const Graph local_h = Graph::from_edges(n_, local_edges);
    const auto dist = bfs_distances_bounded(local_h, self_, alpha_);
    for (Vertex v : g_.neighbors(self_)) {
      if (v < self_) continue;  // canonical owner checks the edge
      if (dist[v] == kUnreachable) return false;
    }
    return true;
  }

 private:
  std::size_t n_;
  const Graph& g_;
  const Graph& h_;
  Dist alpha_;
  Vertex self_ = kInvalidVertex;
  std::unordered_set<std::uint64_t> knowledge_;
};

}  // namespace

DistVerifyResult verify_spanner_local(const Graph& g, const Graph& h,
                                      Dist alpha) {
  DCS_REQUIRE(g.num_vertices() == h.num_vertices(),
              "spanner must share the vertex set");
  DCS_REQUIRE(g.contains_subgraph(h), "H must be a subgraph of G");
  DCS_REQUIRE(alpha >= 1, "stretch must be at least 1");

  std::vector<std::unique_ptr<LocalAlgorithm>> nodes;
  nodes.reserve(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    nodes.push_back(
        std::make_unique<VerifyNode>(g.num_vertices(), g, h, alpha));
  }

  DistVerifyResult result;
  result.stats = run_local(g, nodes, alpha + 2);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (!static_cast<const VerifyNode*>(nodes[v].get())->accepts()) {
      result.violating.push_back(v);
    }
  }
  result.ok = result.violating.empty();
  return result;
}

}  // namespace dcs
