#pragma once

// Section 7 / Corollary 3: the O(1)-round LOCAL implementation of
// Algorithm 1.
//
// Each node flips the shared per-edge coin for its incident edges (both
// endpoints compute the same deterministic hash, so no agreement message is
// needed), then floods its accumulated edge knowledge for three rounds.
// After the flood every node knows all edges — with their sampled bits —
// incident to nodes within distance 3, which is exactly the information
// needed to evaluate the (a,b)-support test and the 3-detour-survival test
// for its incident edges. One final round announces reinsertion decisions.
//
// The output is bit-identical to the sequential build_regular_spanner run
// with the same seed and thresholds (verified by tests/test_dist).

#include "core/regular_spanner.hpp"
#include "dist/local_model.hpp"
#include "graph/graph.hpp"

namespace dcs {

struct DistSpannerResult {
  Graph h;              ///< the distributed spanner
  LocalRunStats stats;  ///< rounds (constant) and message volume
};

/// Runs the distributed Algorithm 1 on g in the LOCAL simulator. `options`
/// is interpreted exactly as by build_regular_spanner.
DistSpannerResult build_regular_spanner_local(
    const Graph& g, const RegularSpannerOptions& options = {});

}  // namespace dcs
