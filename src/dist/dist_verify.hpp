#pragma once

// Distributed spanner verification in the LOCAL model: each node checks
// that every incident edge of G it owns has a replacement of length ≤ α in
// the spanner H, using only α-hop knowledge of H (flooded in α rounds).
// A companion to Corollary 3 — construction *and* verification of the
// 3-distance property are O(1)-round local tasks.

#include "dist/local_model.hpp"
#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace dcs {

struct DistVerifyResult {
  bool ok = false;                     ///< all nodes accepted
  std::vector<Vertex> violating;      ///< nodes that rejected
  LocalRunStats stats;
};

/// Verifies that H is an α-distance spanner of G, distributed: node u
/// checks d_H(u,v) ≤ α for each incident G-edge (u,v) with u < v.
/// H must be a subgraph of G on the same vertex set.
DistVerifyResult verify_spanner_local(const Graph& g, const Graph& h,
                                      Dist alpha = 3);

}  // namespace dcs
