// Figure 2 / Lemma 4: on a Δ-regular graph with spectral expansion λ, the
// neighborhoods of any two vertices u, v admit a matching of size at least
// Δ(1 − λn/Δ²). We measure maximum N(u)–N(v) matchings over random vertex
// pairs and compare with the bound computed from the *measured* λ.

#include "bench_common.hpp"

#include "graph/generators.hpp"
#include "routing/matching.hpp"
#include "spectral/expansion.hpp"
#include "util/rng.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("fig2_neighborhood_matching");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Figure 2 / Lemma 4 — neighborhood matchings on expanders",
      "claim: max matching between N(u) and N(v) has size ≥ Δ(1 − λn/Δ²)");

  const std::uint64_t seed = 17;
  Table t({"n", "Δ", "λ", "bound Δ(1−λn/Δ²)", "min |M|", "mean |M|",
           "bound holds"});
  for (std::size_t n : {200, 400, 800}) {
    for (double exp_delta : {0.75, 0.85}) {
      const std::size_t delta = degree_for(n, exp_delta);
      const Graph g = random_regular(n, delta, seed + n + delta);
      const auto expansion = estimate_expansion(g);
      const double d = static_cast<double>(delta);
      const double bound =
          d * (1.0 - expansion.lambda * static_cast<double>(n) / (d * d));

      Rng rng(seed);
      std::vector<double> sizes;
      for (int trial = 0; trial < 30; ++trial) {
        const auto u = static_cast<Vertex>(rng.uniform(n));
        auto v = static_cast<Vertex>(rng.uniform(n));
        if (u == v) continue;
        std::vector<Vertex> nu(g.neighbors(u).begin(),
                               g.neighbors(u).end());
        std::vector<Vertex> nv(g.neighbors(v).begin(),
                               g.neighbors(v).end());
        const auto m = maximum_bipartite_matching(g, nu, nv);
        sizes.push_back(static_cast<double>(m.size()));
      }
      const auto s = summarize(sizes);
      t.add(n, delta, expansion.lambda, bound, s.min, s.mean,
            std::string(s.min >= bound - 1e-9 ? "yes" : "NO"));
    }
  }
  t.print(std::cout);
  std::cout << "(a negative bound means the mixing-lemma guarantee is "
               "vacuous at that density — the measured matchings show the "
               "construction still works there)\n";
  return 0;
}
