// Extension — the paper's Section 1.1 motivation made measurable: "routing
// paths with smaller congestion result in lower packet latency and queue
// sizes". We schedule the same matching workload as store-and-forward
// packets (node capacity 1) on:
//
//   * the original graph (direct edges, congestion 1 — the baseline),
//   * the Algorithm 1 DC-spanner with random detours (bounded congestion),
//   * a Baswana–Sen 3-spanner with shortest-path routing (no congestion
//     guarantee),
//   * the Figure 1-style spanner of the clique–matching graph (provably
//     congested) — the case where latency visibly explodes.

#include "bench_common.hpp"

#include "core/baseline_spanners.hpp"
#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "graph/generators.hpp"
#include "routing/packet_sim.hpp"
#include "routing/workloads.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("ext_packet_latency");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Extension — packet latency under node-capacitated forwarding",
      "store-and-forward makespan tracks max(C−1, D): low-congestion "
      "substitutes deliver almost as fast as the original graph; forced "
      "congestion translates directly into latency and queue growth");

  const std::uint64_t seed = 61;

  std::cout << "-- matching workload on a dense regular graph --\n";
  Table t({"arm", "C (node)", "D", "makespan", "lower bound", "mean latency",
           "max queue"});
  {
    const std::size_t n = 400;
    const Graph g = random_regular(n, degree_for(n, 0.75), seed);
    const auto matching = random_matching_problem(g, seed + 1);
    const auto built = build_regular_spanner(g, {.seed = seed});
    const auto bs = baswana_sen_3_spanner(g, seed);

    struct Arm {
      std::string name;
      const Graph* h;
      Routing routing;
    };
    std::vector<Arm> arms;
    arms.push_back({"original graph (direct)", &g,
                    Routing::direct_edges(matching)});
    {
      DetourRouter router(built.spanner.h, built.sampled);
      arms.push_back({"dc-spanner (Alg 1)", &built.spanner.h,
                      route_problem(router, matching, seed + 2)});
    }
    {
      ShortestPathPairRouter router(bs.h);
      arms.push_back({"baswana-sen 3-spanner", &bs.h,
                      route_problem(router, matching, seed + 3)});
    }
    for (const auto& arm : arms) {
      const auto sim = simulate_store_and_forward(*arm.h, arm.routing,
                                                  {.seed = seed + 4});
      const std::size_t c =
          node_congestion(arm.routing, arm.h->num_vertices());
      t.add(arm.name, c, sim.dilation, sim.makespan,
            PacketSimResult::lower_bound(c, sim.dilation),
            sim.mean_latency, sim.max_queue);
    }
  }
  t.print(std::cout);

  std::cout << "\n-- Figure 1 graph: forced congestion becomes latency --\n";
  Table t2({"n", "C on H", "makespan on G", "makespan on H", "max queue H"});
  for (std::size_t n : {128, 256, 512}) {
    const Graph g = clique_matching_graph(n);
    const auto problem = clique_matching_pairs(n);
    const Routing direct = Routing::direct_edges(problem);
    // Fig-1 spanner: keep ⌈n^{1/3}⌉+1 matching edges, round-robin routing.
    const auto kept = static_cast<std::size_t>(std::ceil(
                          std::pow(static_cast<double>(n), 1.0 / 3.0))) + 1;
    const std::size_t half = n / 2;
    GraphBuilder b(n);
    for (Vertex u = 0; u < half; ++u) {
      for (Vertex v = u + 1; v < half; ++v) {
        b.add_edge(u, v);
        b.add_edge(static_cast<Vertex>(half + u),
                   static_cast<Vertex>(half + v));
      }
    }
    for (Vertex i = 0; i < kept; ++i) {
      b.add_edge(i, static_cast<Vertex>(half + i));
    }
    const Graph h = b.build();
    Routing sub;
    for (std::size_t i = 0; i < half; ++i) {
      const auto a = static_cast<Vertex>(i);
      const auto bb = static_cast<Vertex>(half + i);
      if (i < kept) {
        sub.paths.push_back(Path{a, bb});
      } else {
        const auto j = static_cast<Vertex>(i % kept);
        sub.paths.push_back(Path{a, j, static_cast<Vertex>(half + j), bb});
      }
    }
    const auto sim_g = simulate_store_and_forward(g, direct);
    const auto sim_h = simulate_store_and_forward(h, sub);
    t2.add(n, node_congestion(sub, n), sim_g.makespan, sim_h.makespan,
           sim_h.max_queue);
  }
  t2.print(std::cout);
  return 0;
}
