// Microbenchmarks of the library's hot kernels. Two sections:
//
//  * a kernel-comparison pass (runs first, always): times the scalar
//    reference implementations against the batched traversal engine and
//    the bitmap support oracle on identical inputs, checks the outputs
//    are checksum-identical, and emits the timings and speedup ratios
//    through PerfRecord so tools/bench_compare can diff runs against the
//    committed baselines in bench/baselines/;
//  * the google-benchmark suite (BFS, spanner constructions, edge
//    coloring, bipartite matching, spectral estimation, decomposition).
//    Pass --benchmark_filter=^$ to skip it (CI's perf-smoke job does).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/expander_spanner.hpp"
#include "graph/renumber.hpp"
#include "util/simd.hpp"
#include "core/matching_decomposition.hpp"
#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "core/support.hpp"
#include "graph/bfs.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "graph/weighted_graph.hpp"
#include "routing/edge_coloring.hpp"
#include "routing/matching.hpp"
#include "routing/mwu_routing.hpp"
#include "routing/packet_sim.hpp"
#include "routing/shortest_paths.hpp"
#include "routing/tables.hpp"
#include "routing/workloads.hpp"
#include "spectral/expansion.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace {

using namespace dcs;

const Graph& shared_graph(std::size_t n, std::size_t delta) {
  static std::map<std::pair<std::size_t, std::size_t>, Graph> cache;
  auto [it, inserted] = cache.try_emplace({n, delta});
  if (inserted) it->second = random_regular(n, delta, 12345);
  return it->second;
}

void BM_BfsDistances(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  Vertex source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(g, source));
    source = static_cast<Vertex>((source + 1) % n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BfsDistances)->Arg(1024)->Arg(4096);

void BM_RegularSpannerBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto delta = static_cast<std::size_t>(
      std::llround(std::pow(static_cast<double>(n), 2.0 / 3.0)));
  const Graph& g = shared_graph(n, delta + delta % 2);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    RegularSpannerOptions o;
    o.seed = ++seed;
    benchmark::DoNotOptimize(build_regular_spanner(g, o));
  }
}
BENCHMARK(BM_RegularSpannerBuild)->Arg(256)->Arg(512);

void BM_ExpanderSpannerBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 64);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ExpanderSpannerOptions o;
    o.seed = ++seed;
    benchmark::DoNotOptimize(build_expander_spanner(g, o));
  }
}
BENCHMARK(BM_ExpanderSpannerBuild)->Arg(512);

void BM_MisraGries(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(misra_gries_edge_coloring(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_MisraGries)->Arg(512)->Arg(1024);

void BM_HopcroftKarpNeighborhoods(benchmark::State& state) {
  const Graph& g = shared_graph(1024, 96);
  Vertex u = 0;
  for (auto _ : state) {
    const Vertex v = g.neighbors(u)[0];
    std::vector<Vertex> nu(g.neighbors(u).begin(), g.neighbors(u).end());
    std::vector<Vertex> nv(g.neighbors(v).begin(), g.neighbors(v).end());
    benchmark::DoNotOptimize(maximum_bipartite_matching(g, nu, nv));
    u = static_cast<Vertex>((u + 1) % g.num_vertices());
  }
}
BENCHMARK(BM_HopcroftKarpNeighborhoods);

void BM_ExpansionEstimate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_expansion(g, 60, ++seed));
  }
}
BENCHMARK(BM_ExpansionEstimate)->Arg(1024);

void BM_SupportTest(benchmark::State& state) {
  const Graph& g = shared_graph(512, 64);
  const auto edges = g.edges();
  std::size_t i = 0;
  for (auto _ : state) {
    const Edge e = edges[i++ % edges.size()];
    benchmark::DoNotOptimize(is_ab_supported(g, e, 2, 16));
  }
}
BENCHMARK(BM_SupportTest);

void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const WeightedGraph g =
      WeightedGraph::from_unweighted(shared_graph(n, 16));
  Vertex source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra_distances(g, source));
    source = static_cast<Vertex>((source + 1) % n);
  }
}
BENCHMARK(BM_Dijkstra)->Arg(1024)->Arg(4096);

void BM_MwuRound(benchmark::State& state) {
  const Graph& g = shared_graph(256, 16);
  const auto problem = random_pairs_problem(256, 200, 3);
  MwuOptions o;
  o.rounds = 1;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    o.seed = ++seed;
    benchmark::DoNotOptimize(mwu_min_congestion(g, problem, o));
  }
}
BENCHMARK(BM_MwuRound);

void BM_PacketSim(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  const auto problem = random_permutation_problem(n, 5);
  const Routing p = shortest_path_routing(g, problem, 7);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_store_and_forward(g, p, {.seed = ++seed}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(problem.size()));
}
BENCHMARK(BM_PacketSim)->Arg(1024);

void BM_RoutingTables(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoutingTables::build(g, ++seed));
  }
}
BENCHMARK(BM_RoutingTables)->Arg(512);

void BM_DecompositionPipeline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  const auto problem = random_pairs_problem(n, n / 2, 7);
  const Routing p = shortest_path_routing(g, problem, 9);
  DetourRouter router(g, g);
  const auto fn = matching_route_fn(router);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        substitute_routing_via_matchings(n, p, fn, ++seed));
  }
}
BENCHMARK(BM_DecompositionPipeline)->Arg(256);

// ---------------------------------------------------------------------------
// Kernel comparisons: scalar reference vs accelerated engine, same inputs,
// checksum-verified outputs. Single-threaded so the ratios measure the
// kernels, not the pool.

/// Best-of-k wall time of `fn` in milliseconds; `fn` returns a checksum.
template <typename Fn>
double best_of(int k, std::uint64_t& checksum, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < k; ++rep) {
    Timer t;
    checksum = fn();
    best = std::min(best, t.seconds() * 1e3);
  }
  return best;
}

void report_kernel(bench::PerfRecord&, const char* name, const char* gauge,
                   double scalar_ms, double fast_ms) {
  const double speedup = scalar_ms / fast_ms;
  auto& reg = obs::MetricsRegistry::instance();
  reg.gauge(std::string("bench.microbench.") + gauge + "_scalar_ms")
      .set(scalar_ms);
  reg.gauge(std::string("bench.microbench.") + gauge + "_fast_ms")
      .set(fast_ms);
  reg.gauge(std::string("bench.microbench.") + gauge + "_speedup")
      .set(speedup);
  std::printf("%-28s scalar %9.3f ms   engine %9.3f ms   speedup %5.2fx\n",
              name, scalar_ms, fast_ms, speedup);
}

/// MS-BFS verification kernel: all-distances from a batch of sources, the
/// shape of measure_distance_stretch / exact_pairwise_stretch.
void kernel_msbfs(bench::PerfRecord& rec) {
  const std::size_t n = 2048;
  const Graph& g = shared_graph(n, 16);
  constexpr std::size_t kSources = 192;  // 3 full batches

  std::uint64_t scalar_sum = 0;
  const double scalar_ms = best_of(3, scalar_sum, [&] {
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < kSources; ++s) {
      const auto dist = bfs_distances(g, static_cast<Vertex>(s));
      for (Dist d : dist) sum += d;
    }
    return sum;
  });

  std::uint64_t ms_sum = 0;
  const double ms_ms = best_of(3, ms_sum, [&] {
    std::uint64_t sum = 0;
    std::vector<Vertex> batch;
    for (std::size_t lo = 0; lo < kSources; lo += kMsBfsBatch) {
      batch.clear();
      for (std::size_t s = lo; s < lo + kMsBfsBatch; ++s) {
        batch.push_back(static_cast<Vertex>(s));
      }
      const MsBfsView view = multi_source_bfs(g, batch);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        for (Vertex v = 0; v < n; ++v) sum += view.at(i, v);
      }
    }
    return sum;
  });
  DCS_CHECK(scalar_sum == ms_sum, "MS-BFS checksum mismatch");
  report_kernel(rec, "batched BFS verify (n=2048)", "msbfs", scalar_ms,
                ms_ms);
}

/// Direction-optimizing single-source BFS vs the scalar reference.
void kernel_hybrid_bfs(bench::PerfRecord& rec) {
  const std::size_t n = 2048;
  const Graph& g = shared_graph(n, 16);
  constexpr std::size_t kSources = 128;

  std::uint64_t scalar_sum = 0;
  const double scalar_ms = best_of(3, scalar_sum, [&] {
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < kSources; ++s) {
      for (Dist d : bfs_distances(g, static_cast<Vertex>(s))) sum += d;
    }
    return sum;
  });

  std::uint64_t hybrid_sum = 0;
  const double hybrid_ms = best_of(3, hybrid_sum, [&] {
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < kSources; ++s) {
      const SsBfsView view = bfs_hybrid(g, static_cast<Vertex>(s));
      for (Vertex v = 0; v < n; ++v) sum += view.at(v);
    }
    return sum;
  });
  DCS_CHECK(scalar_sum == hybrid_sum, "hybrid BFS checksum mismatch");
  report_kernel(rec, "dir-opt BFS (n=2048)", "hybrid_bfs", scalar_ms,
                hybrid_ms);
}

/// Support counting in the paper's dense regime (Δ ≈ n^{2/3}): sorted-merge
/// reference vs the bitmap oracle.
void kernel_bitmap_support(bench::PerfRecord& rec) {
  const std::size_t n = 2048;
  const Graph& g = shared_graph(n, bench::degree_for(n, 2.0 / 3.0));
  const auto edges = g.edges();
  const std::size_t kEdges = std::min<std::size_t>(edges.size(), 2000);

  std::uint64_t scalar_sum = 0;
  const double scalar_ms = best_of(3, scalar_sum, [&] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kEdges; ++i) {
      sum += count_supported_extensions(g, edges[i].u, edges[i].v, 2);
    }
    return sum;
  });

  const SupportOracle oracle(g);
  DCS_CHECK(oracle.bitmapped(),
            "dense benchmark graph should trigger the bitmap");
  std::uint64_t bitmap_sum = 0;
  const double bitmap_ms = best_of(3, bitmap_sum, [&] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kEdges; ++i) {
      sum += oracle.count_supported_extensions(edges[i].u, edges[i].v, 2);
    }
    return sum;
  });
  DCS_CHECK(scalar_sum == bitmap_sum, "bitmap support checksum mismatch");
  report_kernel(rec, "support counting (Δ=n^2/3)", "bitmap_support",
                scalar_ms, bitmap_ms);
}

/// Re-times `fn` on the forced-scalar tier and checks the checksum is
/// bit-identical to `expected` — the dispatch layer's contract, verified
/// in-process on every bench run. Exports the checksum as a gauge so CI
/// can also diff it across separate SIMD and DCS_FORCE_SCALAR=1 runs.
/// Restores (rather than clears) the override so a forced-scalar process
/// stays forced-scalar.
template <typename Fn>
void check_tier_invariance(const char* gauge, std::uint64_t expected,
                           Fn&& fn) {
  const bool prev = simd::force_scalar();
  simd::set_force_scalar(true);
  std::uint64_t scalar_tier = 0;
  best_of(1, scalar_tier, fn);
  simd::set_force_scalar(prev);
  DCS_CHECK(scalar_tier == expected,
            "SIMD and forced-scalar tiers disagree");
  obs::MetricsRegistry::instance()
      .gauge(std::string("bench.microbench.checksum.") + gauge)
      .set(static_cast<double>(expected));
}

/// Bottom-up BFS step at n=4096: scalar reference BFS on the original
/// labeling vs the full hardware story — BFS cache-order renumbering plus
/// the direction-optimizing engine's SIMD bottom-up probes and software
/// prefetch. The sum-of-distances checksum is permutation-invariant, so
/// it certifies the relabeled run computes the same metric space.
void kernel_bottomup_4096(bench::PerfRecord& rec) {
  const std::size_t n = 4096;
  const Graph& g = shared_graph(n, 64);
  constexpr std::size_t kSources = 48;

  std::uint64_t scalar_sum = 0;
  const double scalar_ms = best_of(3, scalar_sum, [&] {
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < kSources; ++s) {
      const auto src = static_cast<Vertex>((s * 131) % n);
      for (Dist d : bfs_distances(g, src)) sum += d;
    }
    return sum;
  });

  // Renumbering is a one-time index build (measured by BM_Renumber), so it
  // stays outside the timed region like any other preprocessing.
  const RenumberedGraph rg = g.renumber(VertexOrder::kBfs);
  const auto fast_pass = [&] {
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < kSources; ++s) {
      const auto src = static_cast<Vertex>((s * 131) % n);
      const SsBfsView view = bfs_hybrid(rg.graph, rg.map.internal(src));
      for (Vertex v = 0; v < n; ++v) sum += view.at(v);
    }
    return sum;
  };
  std::uint64_t fast_sum = 0;
  const double fast_ms = best_of(3, fast_sum, fast_pass);
  DCS_CHECK(scalar_sum == fast_sum, "bottom-up 4096 checksum mismatch");
  check_tier_invariance("bottomup4096", fast_sum, fast_pass);
  report_kernel(rec, "bottom-up BFS (n=4096)", "bottomup4096", scalar_ms,
                fast_ms);
}

/// Support counting at n=4096 in the paper's dense regime: sorted-merge
/// reference vs the bitmap oracle's AND+popcount kernel.
void kernel_bitmap_support_4096(bench::PerfRecord& rec) {
  const std::size_t n = 4096;
  const Graph& g = shared_graph(n, bench::degree_for(n, 2.0 / 3.0));
  const auto edges = g.edges();
  const std::size_t kEdges = std::min<std::size_t>(edges.size(), 1500);

  std::uint64_t scalar_sum = 0;
  const double scalar_ms = best_of(3, scalar_sum, [&] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kEdges; ++i) {
      sum += count_supported_extensions(g, edges[i].u, edges[i].v, 2);
    }
    return sum;
  });

  const SupportOracle oracle(g);
  DCS_CHECK(oracle.bitmapped(),
            "dense 4096 benchmark graph should trigger the bitmap");
  const auto fast_pass = [&] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kEdges; ++i) {
      sum += oracle.count_supported_extensions(edges[i].u, edges[i].v, 2);
    }
    return sum;
  };
  std::uint64_t bitmap_sum = 0;
  const double bitmap_ms = best_of(3, bitmap_sum, fast_pass);
  DCS_CHECK(scalar_sum == bitmap_sum,
            "bitmap support 4096 checksum mismatch");
  check_tier_invariance("bitmap_support4096", bitmap_sum, fast_pass);
  report_kernel(rec, "support counting (n=4096)", "bitmap_support4096",
                scalar_ms, bitmap_ms);
}

void run_kernel_comparisons() {
  bench::PerfRecord rec("microbench");
  bench::print_header("Traversal-engine kernel comparisons",
                      "Scalar reference vs batched engine on identical "
                      "inputs; outputs checksum-verified equal.");
  std::printf("SIMD dispatch tier: %s (hardware: %s)\n\n",
              simd::tier_name(simd::active_tier()),
              simd::tier_name(simd::hardware_tier()));
  {
    ScopedTimer t(rec.phase("msbfs"));
    kernel_msbfs(rec);
  }
  {
    ScopedTimer t(rec.phase("hybrid_bfs"));
    kernel_hybrid_bfs(rec);
  }
  {
    ScopedTimer t(rec.phase("bitmap_support"));
    kernel_bitmap_support(rec);
  }
  {
    ScopedTimer t(rec.phase("bottomup4096"));
    kernel_bottomup_4096(rec);
  }
  {
    ScopedTimer t(rec.phase("bitmap_support4096"));
    kernel_bitmap_support_4096(rec);
  }
}

// google-benchmark entries for the same kernels, for interactive use.

void BM_MultiSourceBfs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  std::vector<Vertex> batch(kMsBfsBatch);
  Vertex base = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kMsBfsBatch; ++i) {
      batch[i] = static_cast<Vertex>((base + i) % n);
    }
    benchmark::DoNotOptimize(multi_source_bfs(g, batch));
    base = static_cast<Vertex>((base + kMsBfsBatch) % n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMsBfsBatch));
}
BENCHMARK(BM_MultiSourceBfs)->Arg(1024)->Arg(4096);

void BM_HybridBfs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  Vertex source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_hybrid(g, source));
    source = static_cast<Vertex>((source + 1) % n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_HybridBfs)->Arg(1024)->Arg(4096);

void BM_BitmapSupportTest(benchmark::State& state) {
  const Graph& g = shared_graph(512, 64);
  static const SupportOracle oracle(g);
  const auto edges = g.edges();
  std::size_t i = 0;
  for (auto _ : state) {
    const Edge e = edges[i++ % edges.size()];
    benchmark::DoNotOptimize(oracle.is_ab_supported(e, 2, 16));
  }
}
BENCHMARK(BM_BitmapSupportTest);

void BM_Renumber(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  const auto order = static_cast<VertexOrder>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.renumber(order));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(vertex_order_name(order));
}
BENCHMARK(BM_Renumber)
    ->Args({4096, static_cast<int>(VertexOrder::kDegreeDescending)})
    ->Args({4096, static_cast<int>(VertexOrder::kBfs)});

void BM_BottomUpPrefetch(benchmark::State& state) {
  // Direction-optimizing BFS on the BFS-renumbered graph: the bottom-up
  // steps (prefetched adjacency scans + SIMD frontier probes) dominate on
  // this degree-64 graph, so this gauges the prefetch + renumber combo.
  const auto n = static_cast<std::size_t>(state.range(0));
  const RenumberedGraph rg = shared_graph(n, 64).renumber(VertexOrder::kBfs);
  Vertex source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_hybrid(rg.graph, source));
    source = static_cast<Vertex>((source + 1) % n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rg.graph.num_edges()));
}
BENCHMARK(BM_BottomUpPrefetch)->Arg(1024)->Arg(4096);

void BM_HasEdge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 64);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;  // xorshift query stream
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const auto u = static_cast<Vertex>(x % n);
    const auto v = static_cast<Vertex>((x >> 32) % n);
    benchmark::DoNotOptimize(g.has_edge(u, v));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HasEdge)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  run_kernel_comparisons();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
