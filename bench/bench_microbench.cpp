// Microbenchmarks of the library's hot kernels (google-benchmark): BFS,
// spanner constructions, edge coloring, bipartite matching, spectral
// estimation, and the decomposition pipeline.

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "core/expander_spanner.hpp"
#include "core/matching_decomposition.hpp"
#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "core/support.hpp"
#include "graph/bfs.hpp"
#include "graph/dijkstra.hpp"
#include "graph/generators.hpp"
#include "graph/weighted_graph.hpp"
#include "routing/edge_coloring.hpp"
#include "routing/matching.hpp"
#include "routing/mwu_routing.hpp"
#include "routing/packet_sim.hpp"
#include "routing/shortest_paths.hpp"
#include "routing/tables.hpp"
#include "routing/workloads.hpp"
#include "spectral/expansion.hpp"

namespace {

using namespace dcs;

const Graph& shared_graph(std::size_t n, std::size_t delta) {
  static std::map<std::pair<std::size_t, std::size_t>, Graph> cache;
  auto [it, inserted] = cache.try_emplace({n, delta});
  if (inserted) it->second = random_regular(n, delta, 12345);
  return it->second;
}

void BM_BfsDistances(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  Vertex source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(g, source));
    source = static_cast<Vertex>((source + 1) % n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BfsDistances)->Arg(1024)->Arg(4096);

void BM_RegularSpannerBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto delta = static_cast<std::size_t>(
      std::llround(std::pow(static_cast<double>(n), 2.0 / 3.0)));
  const Graph& g = shared_graph(n, delta + delta % 2);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    RegularSpannerOptions o;
    o.seed = ++seed;
    benchmark::DoNotOptimize(build_regular_spanner(g, o));
  }
}
BENCHMARK(BM_RegularSpannerBuild)->Arg(256)->Arg(512);

void BM_ExpanderSpannerBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 64);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    ExpanderSpannerOptions o;
    o.seed = ++seed;
    benchmark::DoNotOptimize(build_expander_spanner(g, o));
  }
}
BENCHMARK(BM_ExpanderSpannerBuild)->Arg(512);

void BM_MisraGries(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(misra_gries_edge_coloring(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_MisraGries)->Arg(512)->Arg(1024);

void BM_HopcroftKarpNeighborhoods(benchmark::State& state) {
  const Graph& g = shared_graph(1024, 96);
  Vertex u = 0;
  for (auto _ : state) {
    const Vertex v = g.neighbors(u)[0];
    std::vector<Vertex> nu(g.neighbors(u).begin(), g.neighbors(u).end());
    std::vector<Vertex> nv(g.neighbors(v).begin(), g.neighbors(v).end());
    benchmark::DoNotOptimize(maximum_bipartite_matching(g, nu, nv));
    u = static_cast<Vertex>((u + 1) % g.num_vertices());
  }
}
BENCHMARK(BM_HopcroftKarpNeighborhoods);

void BM_ExpansionEstimate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_expansion(g, 60, ++seed));
  }
}
BENCHMARK(BM_ExpansionEstimate)->Arg(1024);

void BM_SupportTest(benchmark::State& state) {
  const Graph& g = shared_graph(512, 64);
  const auto edges = g.edges();
  std::size_t i = 0;
  for (auto _ : state) {
    const Edge e = edges[i++ % edges.size()];
    benchmark::DoNotOptimize(is_ab_supported(g, e, 2, 16));
  }
}
BENCHMARK(BM_SupportTest);

void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const WeightedGraph g =
      WeightedGraph::from_unweighted(shared_graph(n, 16));
  Vertex source = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra_distances(g, source));
    source = static_cast<Vertex>((source + 1) % n);
  }
}
BENCHMARK(BM_Dijkstra)->Arg(1024)->Arg(4096);

void BM_MwuRound(benchmark::State& state) {
  const Graph& g = shared_graph(256, 16);
  const auto problem = random_pairs_problem(256, 200, 3);
  MwuOptions o;
  o.rounds = 1;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    o.seed = ++seed;
    benchmark::DoNotOptimize(mwu_min_congestion(g, problem, o));
  }
}
BENCHMARK(BM_MwuRound);

void BM_PacketSim(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  const auto problem = random_permutation_problem(n, 5);
  const Routing p = shortest_path_routing(g, problem, 7);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simulate_store_and_forward(g, p, {.seed = ++seed}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(problem.size()));
}
BENCHMARK(BM_PacketSim)->Arg(1024);

void BM_RoutingTables(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoutingTables::build(g, ++seed));
  }
}
BENCHMARK(BM_RoutingTables)->Arg(512);

void BM_DecompositionPipeline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph& g = shared_graph(n, 16);
  const auto problem = random_pairs_problem(n, n / 2, 7);
  const Routing p = shortest_path_routing(g, problem, 9);
  DetourRouter router(g, g);
  const auto fn = matching_route_fn(router);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        substitute_routing_via_matchings(n, p, fn, ++seed));
  }
}
BENCHMARK(BM_DecompositionPipeline)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
