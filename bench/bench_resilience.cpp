// Extension — resilience of the Algorithm 1 DC-spanner under deterministic
// fault injection:
//
//  1. Repair vs rebuild: under a seeded schedule with ≥ 10% edge faults
//     (plus a few vertex crashes) on a Theorem-3 spanner, the incremental
//     repair engine restores the 3-distance guarantee on the survivors for
//     a fraction of the cost of rebuilding the spanner from scratch. Both
//     timings are reported side by side per fault rate.
//
//  2. Degradation-aware routing: the same matching workload scheduled as
//     store-and-forward packets while faults strike mid-flight. The
//     resilient router retries with backoff and re-routes around the
//     damage; every undelivered packet ends with an explained fate
//     (destination dead/disconnected or retry budget exhausted) — never an
//     unexplained drop.
//
// Everything is replayable: the same seed reproduces the schedule, the
// repair, and the simulation byte for byte (verified below by re-running).

#include "bench_common.hpp"

#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "resilience/failure_injector.hpp"
#include "resilience/fault_state.hpp"
#include "resilience/health_monitor.hpp"
#include "resilience/resilient_router.hpp"
#include "resilience/spanner_repair.hpp"
#include "routing/workloads.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("resilience");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Extension — fault injection, self-healing repair, resilient routing",
      "incremental repair restores the α = 3 distance guarantee on the "
      "survivors at a fraction of the full-rebuild cost; the resilient "
      "router delivers every deliverable packet with explained drops only");

  const std::uint64_t seed = 71;
  const std::size_t n = 400;
  const std::size_t delta = degree_for(n, 2.0 / 3.0);
  const Graph g = random_regular(n, delta, seed);
  const auto built = build_regular_spanner(g, {.seed = seed});
  const Graph& h = built.spanner.h;
  bool all_ok = true;

  std::cout << "-- repair vs rebuild, n=" << n << " Δ=" << delta
            << " |E(G)|=" << g.num_edges() << " |E(H)|=" << h.num_edges()
            << " --\n";
  Table t({"edge faults", "vertex faults", "health before", "candidates",
           "reinserted", "health after", "repair [ms]", "rebuild [ms]",
           "speedup"});
  for (double fraction : {0.05, 0.10, 0.20}) {
    FailureInjectorOptions fo;
    fo.seed = seed + 1;
    fo.edge_fault_fraction = fraction;
    fo.vertex_faults_per_wave = 4;
    const auto schedule = FailureInjector(g, fo).generate();
    FaultState state(n);
    state.apply(schedule.events);

    const HealthMonitor monitor(g);
    const auto before = monitor.check(h, state);

    SpannerRepairOptions ro;
    ro.seed = seed + 2;
    const auto repaired =
        repair_spanner_after(g, h, state, schedule.events, ro);
    const Graph g_surv = state.surviving(g);
    const auto after = monitor.check_surviving(g_surv, repaired.h, state);

    const auto rebuilt = rebuild_spanner(g_surv, ro);
    const auto rebuilt_health =
        monitor.check_surviving(g_surv, rebuilt.h, state);

    t.add(schedule.edge_crashes(), schedule.vertex_crashes(),
          to_string(before.distance), repaired.candidate_edges,
          repaired.reinserted_edges, to_string(after.distance),
          repaired.seconds * 1e3, rebuilt.seconds * 1e3,
          repaired.seconds > 0.0 ? rebuilt.seconds / repaired.seconds : 0.0);

    if (after.distance != GuaranteeStatus::kHeld) {
      std::cout << "FAIL: repair left the guarantee " << to_string(after.distance)
                << " at fault fraction " << fraction << "\n";
      all_ok = false;
    }
    if (rebuilt_health.distance != GuaranteeStatus::kHeld) {
      std::cout << "FAIL: rebuild baseline unhealthy at " << fraction << "\n";
      all_ok = false;
    }
    if (repaired.outcome != RepairOutcome::kRebuilt &&
        repaired.seconds >= rebuilt.seconds) {
      std::cout << "WARN: repair (" << to_string(repaired.outcome)
                << ") not cheaper than rebuild at fraction " << fraction
                << "\n";
    }

    // byte-for-byte reproducibility of the whole pipeline
    const auto schedule2 = FailureInjector(g, fo).generate();
    const auto repaired2 =
        repair_spanner_after(g, h, state, schedule2.events, ro);
    if (schedule2 != schedule || !(repaired2.h == repaired.h)) {
      std::cout << "FAIL: repair pipeline not reproducible from seed\n";
      all_ok = false;
    }
  }
  t.print(std::cout);

  std::cout << "\n-- resilient routing of the matching workload on H --\n";
  const auto matching = random_matching_problem(g, seed + 3);
  DetourRouter router(h, built.sampled);
  const Routing routing = route_problem(router, matching, seed + 4);

  Table t2({"edge faults", "flap p", "delivered", "unreachable",
            "retry-limit", "reroutes", "retransmits", "makespan",
            "mean latency"});
  for (double fraction : {0.0, 0.05, 0.10, 0.20}) {
    FailureInjectorOptions fo;
    fo.seed = seed + 5;
    fo.waves = 8;
    fo.edge_fault_fraction = fraction / 8.0;  // spread over the waves
    fo.flap_probability = 0.5;
    fo.flap_duration = 2;
    const auto schedule = FailureInjector(h, fo).generate();

    ResilientRouterOptions ro;
    ro.seed = seed + 6;
    ro.wave_interval = 2;
    const auto sim = simulate_resilient(h, routing, schedule, ro);

    t2.add(schedule.edge_crashes(), fo.flap_probability, sim.delivered,
           sim.dropped_unreachable, sim.dropped_retry_limit, sim.reroutes,
           sim.retransmits, sim.makespan, sim.mean_latency);

    const std::size_t explained =
        sim.delivered + sim.dropped_unreachable + sim.dropped_retry_limit;
    if (sim.status != SimStatus::kCompleted ||
        explained != routing.paths.size()) {
      std::cout << "FAIL: " << routing.paths.size() - explained
                << " unexplained packet(s) at fault fraction " << fraction
                << "\n";
      all_ok = false;
    }
    if (fraction == 0.0 && sim.delivered != routing.paths.size()) {
      std::cout << "FAIL: fault-free run dropped packets\n";
      all_ok = false;
    }

    const auto sim2 = simulate_resilient(h, routing, schedule, ro);
    if (sim2.fate != sim.fate || sim2.latency != sim.latency ||
        sim2.makespan != sim.makespan) {
      std::cout << "FAIL: resilient simulation not reproducible from seed\n";
      all_ok = false;
    }
  }
  t2.print(std::cout);

  std::cout << "\nresilience acceptance: " << (all_ok ? "PASS" : "FAIL")
            << "\n";
  return all_ok ? 0 : 1;
}
