// Corollary 3: the LOCAL-model implementation of Algorithm 1 runs in O(1)
// rounds regardless of n, produces exactly the sequential output, and its
// message volume scales with the 3-hop neighborhood knowledge it floods.

#include "bench_common.hpp"

#include "core/regular_spanner.hpp"
#include "core/verifier.hpp"
#include "dist/dist_spanner.hpp"
#include "dist/dist_verify.hpp"
#include "graph/generators.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("cor3_distributed");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Corollary 3 — distributed Algorithm 1 in the LOCAL model",
      "claim: O(1) rounds on any Δ-regular graph with Δ ≥ n^{2/3}; output "
      "identical to the sequential construction");

  const std::uint64_t seed = 31;
  Table t({"n", "Δ", "rounds", "messages", "words", "identical to seq",
           "stretch", "dist-verify", "sim s"});
  for (std::size_t n : {32, 48, 64, 96, 128}) {
    const std::size_t delta = degree_for(n, 2.0 / 3.0);
    const Graph g = random_regular(n, delta, seed + n);
    RegularSpannerOptions options;
    options.seed = seed;

    double sim_s = 0.0;
    const auto dist = [&] {
      ScopedTimer timer(perf_record.phase("local_sim"), &sim_s);
      return build_regular_spanner_local(g, options);
    }();
    const auto seq = build_regular_spanner(g, options);
    const auto stretch = measure_distance_stretch(g, dist.h);

    const auto verify = verify_spanner_local(g, dist.h);
    t.add(n, delta, dist.stats.rounds, dist.stats.total_messages,
          dist.stats.total_words,
          std::string(dist.h == seq.spanner.h ? "yes" : "NO"),
          stretch.max_stretch,
          std::string(verify.ok ? "accepts" : "REJECTS"), sim_s);
  }
  t.print(std::cout);
  std::cout << "round count is constant (3 flood rounds) across all n — the "
               "defining property of an O(1)-round LOCAL algorithm.\n";
  return 0;
}
