// Figures 3–4: the detour/support structure of Section 4. We measure, on
// random Δ-regular graphs at the Theorem 3 density (Δ ≈ n^{2/3}):
//
//  * the distribution of base supports |N(u)∩N(z)| against the Δ²/n
//    expectation,
//  * how many extensions of a typical edge are a-supported at the
//    algorithm's threshold a ≈ Δ'/4,
//  * the fraction of edges that pass the (a,b)-support test (these never
//    need reinsertion by rule 1),
//  * how many 3-detours of a removed edge survive the ρ = 1/Δ' sampling
//    (the quantity that decides reinsertion rule 2).

#include "bench_common.hpp"

#include "core/regular_spanner.hpp"
#include "core/support.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("fig34_support");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Figures 3–4 — 2-detours, supported extensions, surviving 3-detours",
      "expectations on random Δ-regular graphs: base support ≈ Δ²/n; at "
      "Δ = n^{2/3} the typical edge is (Θ(Δ'), Θ(Δ))-supported and a "
      "removed edge keeps Θ(1)–Θ(log n) surviving 3-detours");

  const std::uint64_t seed = 23;
  Table t({"n", "Δ", "Δ²/n", "base support mean", "a=Δ'/4",
           "a-supported ext mean", "(a,b)-supported %",
           "surviving 3-detours (mean/min)"});
  for (std::size_t n : {216, 512, 1000}) {
    const std::size_t delta = degree_for(n, 2.0 / 3.0);
    const Graph g = random_regular(n, delta, seed + n);
    RegularSpannerOptions options;
    options.seed = seed;
    const auto params = compute_regular_spanner_params(delta, options);
    const auto built = build_regular_spanner(g, options);

    Rng rng(seed + 1);
    // base supports over random node pairs at distance 2-ish
    std::vector<double> supports;
    for (int trial = 0; trial < 300; ++trial) {
      const auto u = static_cast<Vertex>(rng.uniform(n));
      auto z = static_cast<Vertex>(rng.uniform(n));
      if (u == z) continue;
      supports.push_back(static_cast<double>(base_support(g, u, z)));
    }

    // supported extensions + (a,b)-support over random edges
    const auto edges = g.edges();
    std::vector<double> ext_counts;
    std::size_t ab_supported = 0;
    const std::size_t edge_trials = 200;
    for (std::size_t trial = 0; trial < edge_trials; ++trial) {
      const Edge e = edges[rng.uniform(edges.size())];
      ext_counts.push_back(static_cast<double>(
          count_supported_extensions(g, e.u, e.v, params.support_a)));
      if (is_ab_supported(g, e, params.support_a, params.support_b)) {
        ++ab_supported;
      }
    }

    // surviving 3-detours of removed edges in G'
    std::vector<double> survivors;
    for (std::size_t trial = 0; trial < 200; ++trial) {
      const Edge e = edges[rng.uniform(edges.size())];
      if (built.sampled.has_edge(e.u, e.v)) continue;
      survivors.push_back(static_cast<double>(
          find_3detours(built.sampled, e.u, e.v).size()));
    }

    const auto s_sup = summarize(supports);
    const auto s_ext = summarize(ext_counts);
    const auto s_sur = summarize(survivors);
    t.add(n, delta,
          static_cast<double>(delta) * static_cast<double>(delta) /
              static_cast<double>(n),
          s_sup.mean, params.support_a, s_ext.mean,
          100.0 * static_cast<double>(ab_supported) /
              static_cast<double>(edge_trials),
          format_cell(s_sur.mean) + "/" + format_cell(s_sur.min));
  }
  t.print(std::cout);
  return 0;
}
