// Ablation ABL-1: what do Algorithm 1's two reinsertion rules buy?
//
//  * "none"        — pure ρ = Δ'/Δ edge sampling (the naive sparsifier);
//  * "support"     — only the Ê/(a,b)-support rule of the Algorithm 1 box;
//  * "detour"      — only the surviving-3-detour rule from the text;
//  * "both"        — the full construction.
//
// Measured over several seeds: spanner size, stretch-3 violation rate,
// disconnection rate. Only the full construction is deterministic-safe.

#include "bench_common.hpp"

#include "core/regular_spanner.hpp"
#include "core/verifier.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("abl_reinsert");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Ablation — Algorithm 1 reinsertion rules",
      "pure sampling loses the stretch guarantee; each rule restores part "
      "of it; the full construction is always a 3-distance spanner");

  const std::size_t n = 300;
  const std::size_t delta = degree_for(n, 2.0 / 3.0);
  const std::size_t trials = 8;

  struct Arm {
    std::string name;
    bool unsupported;
    bool undetoured;
  };
  const std::vector<Arm> arms{
      {"none (pure sampling)", false, false},
      {"support rule only", true, false},
      {"detour rule only", false, true},
      {"both (full Alg 1)", true, true},
  };

  Table t({"variant", "mean |E(H)|", "mean reinserted",
           "stretch>3 rate", "disconnected rate", "mean max stretch"});
  for (const auto& arm : arms) {
    double sum_edges = 0, sum_reinserted = 0, sum_stretch = 0;
    std::size_t violations = 0, disconnections = 0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const Graph g = random_regular(n, delta, 100 + trial);
      RegularSpannerOptions o;
      o.seed = 200 + trial;
      o.reinsert_unsupported = arm.unsupported;
      o.reinsert_undetoured = arm.undetoured;
      const auto r = build_regular_spanner(g, o);
      sum_edges += static_cast<double>(r.spanner.h.num_edges());
      sum_reinserted += static_cast<double>(r.spanner.stats.reinserted_edges);
      const auto report = measure_distance_stretch(g, r.spanner.h);
      if (!is_connected(r.spanner.h)) ++disconnections;
      if (report.unreachable > 0 || report.max_stretch > 3.0) ++violations;
      sum_stretch += report.unreachable > 0 ? 99.0 : report.max_stretch;
    }
    const auto tr = static_cast<double>(trials);
    t.add(arm.name, sum_edges / tr, sum_reinserted / tr,
          static_cast<double>(violations) / tr,
          static_cast<double>(disconnections) / tr, sum_stretch / tr);
  }
  t.print(std::cout);

  // On homogeneous random regular graphs every edge is richly supported, so
  // the support rule never fires. The ring-of-cliques input is the opposite
  // extreme: its cross-matching edges have no 2-detours at all, so only the
  // support rule can save them — this is the structural case Algorithm 1's
  // Ê test exists for.
  std::cout << "\nring-of-cliques input (cross edges are only 2-base-"
               "supported; support thresholds a = Δ', b = Δ/2 separate "
               "them from the richly supported clique edges):\n";
  Table t2({"variant", "|E(H)|", "reinserted unsupported",
            "reinserted undetoured", "max stretch", "connected"});
  const Graph ring = ring_of_cliques(24, 25);  // 600 vertices, 26-regular
  for (const auto& arm : arms) {
    RegularSpannerOptions o;
    o.seed = 77;
    o.support_a_factor = 1.0;
    o.support_b_factor = 0.5;
    o.reinsert_unsupported = arm.unsupported;
    o.reinsert_undetoured = arm.undetoured;
    const auto r = build_regular_spanner(ring, o);
    const auto report = measure_distance_stretch(ring, r.spanner.h, 64);
    t2.add(arm.name, r.spanner.h.num_edges(), r.reinserted_unsupported,
           r.reinserted_undetoured,
           report.unreachable > 0 ? std::string("unreachable")
                                  : format_cell(report.max_stretch),
           std::string(is_connected(r.spanner.h) ? "yes" : "NO"));
  }
  t2.print(std::cout);
  return 0;
}
