#pragma once

// Shared helpers for the experiment harnesses. Each bench binary prints the
// rows/series for one paper artifact (Table 1 row, figure, or lemma) in a
// form directly comparable to EXPERIMENTS.md.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace dcs::bench {

/// Rounds up to the nearest even integer (random_regular needs even nΔ and
/// even n; all our sweeps use even n and even Δ).
inline std::size_t even(double x) {
  auto v = static_cast<std::size_t>(std::llround(x));
  return v + (v % 2);
}

/// Δ ≈ n^{exponent}, even.
inline std::size_t degree_for(std::size_t n, double exponent) {
  return even(std::pow(static_cast<double>(n), exponent));
}

inline void print_header(const std::string& title,
                         const std::string& claim) {
  std::cout << "\n=== " << title << " ===\n" << claim << "\n\n";
}

/// Prints the fitted log-log growth exponent of y against x.
inline void print_exponent(const std::string& label,
                           const std::vector<double>& x,
                           const std::vector<double>& y,
                           double expected) {
  std::cout << label << ": fitted exponent " << loglog_slope(x, y)
            << " (paper: " << expected << ")\n";
}

/// One per bench main(). Turns on metrics collection for the process and,
/// on destruction, writes BENCH_<name>.json — total wall time plus the full
/// metrics registry (library counters and any phase histograms) — into
/// $DCS_BENCH_JSON_DIR (or the working directory), so every harness run
/// leaves a machine-readable artifact next to its human-readable tables.
class PerfRecord {
 public:
  explicit PerfRecord(std::string name) : name_(std::move(name)) {
    obs::set_metrics_enabled(true);
  }
  PerfRecord(const PerfRecord&) = delete;
  PerfRecord& operator=(const PerfRecord&) = delete;

  /// Histogram sink for ScopedTimer: `ScopedTimer t(&rec.phase("build"));`
  /// records the scope's milliseconds under bench.<name>.<phase>.ms.
  obs::HistogramMetric& phase(const std::string& phase_name) {
    return obs::MetricsRegistry::instance().histogram(
        "bench." + name_ + "." + phase_name + ".ms");
  }

  /// Attaches a pre-rendered JSON document as an extra top-level key of
  /// BENCH_<name>.json (e.g. the request tracer's tail exemplars). The
  /// regression gate (tools/bench_compare) only reads wall_s and the
  /// baseline's listed gauges, so new sections never force a baseline
  /// update. `json` must be a complete JSON value.
  void add_json_section(const std::string& key, std::string json) {
    sections_.emplace_back(key, std::move(json));
  }

  ~PerfRecord() {
    const char* dir = std::getenv("DCS_BENCH_JSON_DIR");
    std::string path = dir != nullptr && *dir != '\0'
                           ? std::string(dir) + "/BENCH_" + name_ + ".json"
                           : "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return;
    }
    out << "{\"bench\":" << obs::json_quote(name_)
        << ",\"wall_s\":" << obs::json_number(wall_.seconds())
        << ",\"metrics\":" << obs::MetricsRegistry::instance().to_json();
    for (const auto& [key, json] : sections_) {
      out << "," << obs::json_quote(key) << ":" << json;
    }
    out << "}\n";
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> sections_;
  Timer wall_;
};

}  // namespace dcs::bench
