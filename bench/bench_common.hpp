#pragma once

// Shared helpers for the experiment harnesses. Each bench binary prints the
// rows/series for one paper artifact (Table 1 row, figure, or lemma) in a
// form directly comparable to EXPERIMENTS.md.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace dcs::bench {

/// Rounds up to the nearest even integer (random_regular needs even nΔ and
/// even n; all our sweeps use even n and even Δ).
inline std::size_t even(double x) {
  auto v = static_cast<std::size_t>(std::llround(x));
  return v + (v % 2);
}

/// Δ ≈ n^{exponent}, even.
inline std::size_t degree_for(std::size_t n, double exponent) {
  return even(std::pow(static_cast<double>(n), exponent));
}

inline void print_header(const std::string& title,
                         const std::string& claim) {
  std::cout << "\n=== " << title << " ===\n" << claim << "\n\n";
}

/// Prints the fitted log-log growth exponent of y against x.
inline void print_exponent(const std::string& label,
                           const std::vector<double>& x,
                           const std::vector<double>& y,
                           double expected) {
  std::cout << label << ": fitted exponent " << loglog_slope(x, y)
            << " (paper: " << expected << ")\n";
}

}  // namespace dcs::bench
