// Table 1, rows "[5]" and "[16]": prior-work expander sparsification.
//
//  [5]  (Becchetti et al.):  dense expander (Δ = Ω(n)) → O(n)-edge
//       expander; O(log n) distance stretch, O(log³ n) congestion.
//  [16] (Koutis–Xu):         any expander → O(n log n)-edge expander;
//       O(log n) distance stretch, O(log⁴ n) congestion.
//
// Mechanism reproduced here: uniform sampling to the target degree, spectral
// gap verified on the output, distance stretch measured exactly, and
// permutation routing realized with Valiant-style random-intermediate
// routing (the Scheideler-style permutation-routing role).

#include "bench_common.hpp"

#include "core/sparsify.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "graph/ramanujan.hpp"
#include "routing/valiant.hpp"
#include "routing/workloads.hpp"
#include "spectral/expansion.hpp"

namespace {

struct RowSpec {
  std::string name;
  double target_degree_factor;  // multiplies log2(n); 0 → constant degree
  double constant_degree;
};

}  // namespace

int main() {
  dcs::bench::PerfRecord perf_record("table1_sparsify");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Table 1 / rows [5] and [16] — expander sparsification baselines",
      "claims: [5] O(n) edges + O(log n) stretch + O(log³ n) congestion on "
      "dense expanders; [16] O(n log n) edges + O(log n) stretch + "
      "O(log⁴ n) congestion on any expander");

  const std::uint64_t seed = 11;
  const std::vector<RowSpec> rows{
      {"[5]  constant-degree", 0.0, 6.0},
      {"[16] log-degree", 1.5, 0.0},
  };

  for (const auto& row : rows) {
    std::cout << "\n--- " << row.name << " ---\n";
    Table t({"n", "Δ_in", "|E(H)|", "|E(H)|/n", "λ/Δ out", "stretch",
             "log₂n", "perm C_H", "log₂³n"});
    std::vector<double> ns, edges;
    for (std::size_t n : {128, 256, 512, 1024}) {
      const std::size_t delta = n / 4;  // dense: Δ = Ω(n)
      const Graph g = random_regular(n, delta, seed + n);

      SparsifyOptions o;
      o.seed = seed;
      const double log_n = std::log2(static_cast<double>(n));
      o.target_degree = row.constant_degree > 0
                            ? row.constant_degree
                            : row.target_degree_factor * log_n;
      const auto result = uniform_sparsify(g, o);
      const Graph& h = result.spanner.h;

      const auto expansion = estimate_expansion(h);
      const auto stretch = measure_distance_stretch(g, h, 64);

      const auto perm = random_permutation_problem(n, seed + 1);
      const Routing p = valiant_routing(h, perm, {.seed = seed + 2});
      const std::size_t cong = node_congestion(p, n);

      t.add(n, delta, h.num_edges(),
            static_cast<double>(h.num_edges()) / static_cast<double>(n),
            expansion.normalized(), stretch.max_stretch, log_n, cong,
            log_n * log_n * log_n);
      ns.push_back(static_cast<double>(n));
      edges.push_back(static_cast<double>(h.num_edges()));
    }
    t.print(std::cout);
    print_exponent("|E(H)| growth", ns, edges,
                   row.constant_degree > 0 ? 1.0 : 1.0);
    std::cout << "(the [16] row carries an extra log n factor on top of the "
                 "linear growth)\n";
  }

  // The [16] row on a *true* Ramanujan input (not just a random regular
  // graph): LPS X^{5,29}, degree 6, 12180 vertices — already sparse, so we
  // route permutation traffic on it directly and report the polylog
  // congestion that makes these graphs "highly suitable for routing".
  std::cout << "\n--- explicit Ramanujan input (LPS X^{5,29}) ---\n";
  {
    const LpsGraph lps = lps_ramanujan_graph(5, 29);
    const auto expansion = estimate_expansion(lps.graph, 100, seed);
    const std::size_t n = lps.graph.num_vertices();
    const auto perm = random_permutation_problem(n, seed + 5);
    const Routing p = valiant_routing(lps.graph, perm, {.seed = seed + 6});
    const double log_n = std::log2(static_cast<double>(n));
    Table t({"n", "degree", "λ", "2√p", "perm C_H", "log₂³n"});
    t.add(n, lps.graph.min_degree(), expansion.lambda,
          2.0 * std::sqrt(5.0), node_congestion(p, n),
          log_n * log_n * log_n);
    t.print(std::cout);
  }
  return 0;
}
