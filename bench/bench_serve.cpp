// Closed-loop load generator for the query-serving engine (src/serve/).
//
// Three sections, each printed as a table and recorded through PerfRecord
// into BENCH_serve.json (gated by tools/bench_compare against
// bench/baselines/serve/):
//
//  1. Batched-vs-naive throughput on two serving substrates — a regular
//     spanner and an expander spanner. The naive oracle runs one scalar
//     bfs_distances per query; the engine coalesces the same queries into
//     64-wide MS-BFS sweeps behind an LRU row cache. Answers must be
//     checksum-identical and the batched path must clear a 3x speedup
//     floor, otherwise this binary exits 1 (the CI serve-smoke job treats
//     that as a failed gate).
//
//  2. A closed-loop client sweep (1/4/16 clients): offered load vs
//     throughput and exact p50/p99 submit-to-completion latency, plus the
//     dispatcher-count axis — the 16-client load replayed at dispatchers=4
//     must answer checksum-identical to the single-dispatcher run, conserve
//     queries exactly, and (given ≥4 hardware threads) clear a 2x
//     served-throughput floor; the d4/d1 ratio is exported as the
//     bench.serve.dispatcher_scaling_speedup gauge for bench_compare.
//
//  3. An overload demonstration: an open-loop burst against a 64-deep
//     admission queue, shedding accounted exactly (served + shed ==
//     submitted or exit 1).
//
// plus the EDF regression gate (section 4, documented at its definition)
// and a tracing-overhead gate: the section-1 batched workload served with
// request-trace exemplars off and on (min of 3 fresh-engine runs each);
// the traced path must stay within 3% of the untraced one, and the
// tracer's tail exemplars are exported as the "request_trace" key of
// BENCH_serve.json.
//
// Usage: bench_serve [--quick]    (--quick shrinks sizes for smoke runs)

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/expander_spanner.hpp"
#include "obs/request_trace.hpp"
#include "core/regular_spanner.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "serve/query_engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace dcs;
using serve::Query;
using serve::QueryEngine;
using serve::QueryKind;
using serve::QueryOutcome;
using serve::QueryResult;
using serve::ServeOptions;

constexpr double kSpeedupFloor = 3.0;

/// Skewed point-query workload: half the queries hit a small hot set of
/// sources (repeat traffic the row cache should absorb), half are uniform.
std::vector<Query> skewed_queries(const Graph& g, std::size_t count,
                                  std::size_t hot_sources,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Query> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    q.u = rng.bernoulli(0.5)
              ? static_cast<Vertex>(rng.uniform(hot_sources))
              : static_cast<Vertex>(rng.uniform(g.num_vertices()));
    q.v = static_cast<Vertex>(rng.uniform(g.num_vertices()));
    queries.push_back(q);
  }
  return queries;
}

std::uint64_t checksum_results(const std::vector<QueryResult>& results) {
  std::uint64_t sum = 0;
  for (const QueryResult& r : results) {
    sum = sum * 1000003u + r.distance;
  }
  return sum;
}

/// Section 1: same queries through the scalar oracle and the batched
/// engine; returns false if answers differ or the speedup floor is missed.
bool compare_batched_vs_naive(bench::PerfRecord& rec, const char* name,
                              const Graph& h, std::size_t num_queries,
                              std::size_t window) {
  const auto queries = skewed_queries(h, num_queries, 16, 271828);

  // Both oracles fold their checksum per window so the streams compare
  // byte-for-byte.
  Timer naive_timer;
  std::uint64_t naive_sum = 0;
  for (std::size_t lo = 0; lo < queries.size(); lo += window) {
    const std::size_t hi = std::min(queries.size(), lo + window);
    std::uint64_t inner = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      inner = inner * 1000003u + bfs_distances(h, queries[i].u)[queries[i].v];
    }
    naive_sum = naive_sum * 1000003u + inner;
  }
  const double naive_ms = naive_timer.millis();

  QueryEngine engine(h);
  Timer batched_timer;
  std::uint64_t batched_sum = 0;
  for (std::size_t lo = 0; lo < queries.size(); lo += window) {
    const std::size_t hi = std::min(queries.size(), lo + window);
    const auto results = engine.serve_batch(
        std::span(queries).subspan(lo, hi - lo));
    batched_sum = batched_sum * 1000003u + checksum_results(results);
  }
  const double batched_ms = batched_timer.millis();
  const double speedup = naive_ms / batched_ms;
  const auto stats = engine.stats();

  const double lookups =
      static_cast<double>(stats.cache_hits + stats.cache_misses);
  const double hit_ratio =
      lookups > 0 ? static_cast<double>(stats.cache_hits) / lookups : 0.0;
  auto& reg = obs::MetricsRegistry::instance();
  const std::string prefix = std::string("bench.serve.") + name;
  reg.gauge(prefix + "_naive_ms").set(naive_ms);
  reg.gauge(prefix + "_batched_ms").set(batched_ms);
  reg.gauge(prefix + "_batched_speedup").set(speedup);
  reg.gauge(prefix + "_cache_hit_ratio").set(hit_ratio);

  std::printf(
      "%-10s %7zu queries   naive %9.2f ms   batched %8.2f ms   "
      "speedup %6.2fx   sweeps over %" PRIu64 " sources, 2Q hit ratio "
      "%.2f\n",
      name, queries.size(), naive_ms, batched_ms, speedup,
      stats.coalesced_sources, hit_ratio);

  if (batched_sum != naive_sum) {
    std::printf("FAIL: %s batched checksum %016" PRIx64
                " != naive %016" PRIx64 "\n",
                name, batched_sum, naive_sum);
    return false;
  }
  if (speedup < kSpeedupFloor) {
    std::printf("FAIL: %s speedup %.2fx below the %.1fx floor\n", name,
                speedup, kSpeedupFloor);
    return false;
  }
  return true;
}

/// One closed-loop measurement: `clients` threads each submit `per_client`
/// queries through `dispatchers` shards, waiting on every answer before the
/// next. Besides throughput and latency samples it folds each client's
/// answers into a deterministic checksum (per-client, in submission order,
/// combined positionally) so runs at different dispatcher counts can be
/// required to answer identically.
struct ClosedLoopRun {
  double throughput = 0.0;
  std::vector<double> latencies;
  std::uint64_t checksum = 0;
  serve::ServeStats stats;
};

ClosedLoopRun closed_loop_run(const Graph& h, std::size_t clients,
                              std::size_t per_client,
                              std::size_t dispatchers) {
  ServeOptions options;
  options.dispatchers = dispatchers;
  QueryEngine engine(h, options);
  engine.start();
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::uint64_t> sums(clients, 0);
  Timer wall;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(31 * (c + 1));
      latencies[c].reserve(per_client);
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < per_client; ++i) {
        Query q;
        // 1-in-4 route queries keep the lazy next-hop tables hot too.
        q.kind = rng.bernoulli(0.25) ? QueryKind::kRoute
                                     : QueryKind::kDistance;
        q.u = rng.bernoulli(0.5)
                  ? static_cast<Vertex>(rng.uniform(16))
                  : static_cast<Vertex>(rng.uniform(h.num_vertices()));
        q.v = static_cast<Vertex>(rng.uniform(h.num_vertices()));
        const QueryResult r = engine.submit(q).get();
        latencies[c].push_back(r.latency_us);
        sum = sum * 1099511628211ull +
              (r.distance == kUnreachable
                   ? 0xdeadull
                   : static_cast<std::uint64_t>(r.distance) + 1);
      }
      sums[c] = sum;
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = wall.seconds();
  engine.stop();

  ClosedLoopRun run;
  for (std::size_t c = 0; c < clients; ++c) {
    run.latencies.insert(run.latencies.end(), latencies[c].begin(),
                         latencies[c].end());
    run.checksum += sums[c] * (c + 1);
  }
  run.throughput = static_cast<double>(run.latencies.size()) / elapsed;
  run.stats = engine.stats();
  return run;
}

/// Section 2: closed-loop clients, each waiting for its answer before
/// sending the next query. Reports throughput and exact latency tails for
/// 1/4/16 clients on a single dispatcher, then replays the 16-client load
/// at dispatchers=4: the sharded run must answer checksum-identical to the
/// single-dispatcher one, conserve queries exactly, and — on machines with
/// at least 4 hardware threads — clear a 2x served-throughput floor.
bool closed_loop_sweep(const Graph& h, std::size_t per_client) {
  constexpr double kDispatcherSpeedupFloor = 2.0;
  std::printf("\nclosed-loop sweep (%zu queries/client):\n", per_client);
  std::printf("  %-10s %12s %10s %10s %10s\n", "clients", "throughput/s",
              "p50 us", "p99 us", "served");
  auto& reg = obs::MetricsRegistry::instance();
  const std::vector<double> qs{0.5, 0.99};
  bool ok = true;
  ClosedLoopRun base16;

  const auto check_conservation = [&](const ClosedLoopRun& run,
                                      std::size_t expected) {
    const auto& s = run.stats;
    if (s.served + s.shed_admission + s.shed_deadline + s.shed_degraded +
            s.shed_shutdown !=
        s.queries) {
      std::printf("FAIL: closed loop does not conserve queries\n");
      ok = false;
    }
    if (s.served != expected) {
      std::printf("FAIL: closed loop served %" PRIu64 " of %zu (a "
                  "closed-loop client never overruns admission)\n",
                  s.served, expected);
      ok = false;
    }
  };

  for (std::size_t clients : {1u, 4u, 16u}) {
    const ClosedLoopRun run = closed_loop_run(h, clients, per_client, 1);
    const auto tails = exact_percentiles(run.latencies, qs);
    std::printf("  %-10zu %12.0f %10.1f %10.1f %10" PRIu64 "\n", clients,
                run.throughput, tails[0], tails[1], run.stats.served);
    reg.gauge("bench.serve.closed_loop_" + std::to_string(clients) +
              "_throughput")
        .set(run.throughput);
    check_conservation(run, clients * per_client);
    if (clients == 16) base16 = run;
  }

  // The dispatcher axis: the same 16-client load against 4 shards.
  const ClosedLoopRun d4 = closed_loop_run(h, 16, per_client, 4);
  const auto tails = exact_percentiles(d4.latencies, qs);
  std::printf("  %-10s %12.0f %10.1f %10.1f %10" PRIu64 "\n", "16 (d=4)",
              d4.throughput, tails[0], tails[1], d4.stats.served);
  reg.gauge("bench.serve.closed_loop_16_d4_throughput").set(d4.throughput);
  check_conservation(d4, 16 * per_client);

  if (d4.checksum != base16.checksum) {
    std::printf("FAIL: dispatchers=4 answer checksum %016" PRIx64
                " != dispatchers=1 %016" PRIx64 "\n",
                d4.checksum, base16.checksum);
    ok = false;
  }

  const double speedup = d4.throughput / base16.throughput;
  reg.gauge("bench.serve.dispatcher_scaling_speedup").set(speedup);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("  dispatchers=4 vs 1 at 16 clients: %.2fx served throughput\n",
              speedup);
  if (cores >= 4) {
    if (speedup < kDispatcherSpeedupFloor) {
      std::printf("FAIL: dispatcher scaling %.2fx below the %.1fx floor\n",
                  speedup, kDispatcherSpeedupFloor);
      ok = false;
    }
  } else {
    // One or two cores cannot demonstrate shard parallelism; the checksum
    // and conservation gates above still ran, and bench_compare gates the
    // exported speedup gauge against the committed multi-core baseline.
    std::printf("  (%.1fx floor not gated here: %u hardware threads)\n",
                kDispatcherSpeedupFloor, cores);
  }
  return ok;
}

/// Section 3: open-loop burst into a deliberately small admission queue.
/// Returns false if the shed accounting does not conserve queries.
bool overload_demo(const Graph& h, std::size_t burst) {
  ServeOptions options;
  options.cache_rows = 1;  // every batch pays BFS work
  options.batch_window = 8;
  options.admission.queue_capacity = 64;
  QueryEngine engine(h, options);
  engine.start();
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(burst);
  Rng rng(99);
  for (std::size_t i = 0; i < burst; ++i) {
    Query q;
    q.u = static_cast<Vertex>(rng.uniform(h.num_vertices()));
    q.v = static_cast<Vertex>(rng.uniform(h.num_vertices()));
    futures.push_back(engine.submit(q));
  }
  for (auto& f : futures) f.get();
  engine.stop();
  const auto s = engine.stats();
  std::printf("\noverload burst (%zu queries, queue=64): served %" PRIu64
              ", shed-admission %" PRIu64 ", shed-deadline %" PRIu64 "\n",
              burst, s.served, s.shed_admission, s.shed_deadline);
  if (s.served + s.shed_admission + s.shed_deadline + s.shed_degraded +
          s.shed_shutdown !=
      s.queries) {
    std::printf("FAIL: shed accounting does not conserve queries\n");
    return false;
  }
  return true;
}

/// Section 4: the EDF regression gate. The same open-loop flood of
/// no-deadline queries followed by a late burst of deadline-tagged ones,
/// served once FIFO (edf_dispatch off) and once EDF. FIFO parks the tagged
/// burst behind the whole flood and sheds it at dispatch; EDF pulls the
/// deadline class forward. Returns false unless FIFO sheds some tagged
/// queries and EDF sheds strictly fewer.
bool deadline_burst_demo(const Graph& h, std::size_t flood_windows,
                         std::size_t tagged_count) {
  constexpr std::size_t kWindow = 32;

  // Calibrate the deadline to this machine: one cold window's sweep cost.
  double sweep_us = 0.0;
  {
    ServeOptions options;
    options.cache_rows = 1;
    QueryEngine probe(h, options);
    std::vector<Query> window(kWindow);
    for (std::size_t i = 0; i < kWindow; ++i) {
      window[i].u = static_cast<Vertex>(i);
      window[i].v = 0;
    }
    Timer t;
    probe.serve_batch(window);
    sweep_us = t.seconds() * 1e6;
  }
  // EDF serves tagged queries within ~2 sweeps; FIFO makes them wait
  // ~flood_windows sweeps. A 4-sweep budget separates the two cleanly.
  const auto deadline_us = static_cast<std::uint64_t>(4.0 * sweep_us) + 100;

  const std::size_t flood = flood_windows * kWindow;
  std::printf("\ndeadline burst (%zu-query flood + %zu tagged @%.1f ms):\n",
              flood, tagged_count, static_cast<double>(deadline_us) / 1e3);
  std::uint64_t shed[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    ServeOptions options;
    options.cache_rows = 1;  // every window pays a real sweep
    options.batch_window = kWindow;
    options.admission.queue_capacity = 0;  // shed only at deadlines
    options.edf_dispatch = mode == 1;
    QueryEngine engine(h, options);
    engine.start();
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(flood + tagged_count);
    Rng rng(777);
    for (std::size_t i = 0; i < flood; ++i) {
      Query q;
      q.u = static_cast<Vertex>(rng.uniform(h.num_vertices()));
      q.v = static_cast<Vertex>(rng.uniform(h.num_vertices()));
      futures.push_back(engine.submit(q));
    }
    for (std::size_t i = 0; i < tagged_count; ++i) {
      Query q;
      q.u = static_cast<Vertex>(rng.uniform(h.num_vertices()));
      q.v = static_cast<Vertex>(rng.uniform(h.num_vertices()));
      q.deadline_us = deadline_us;
      futures.push_back(engine.submit(q));
    }
    for (auto& f : futures) f.get();
    engine.stop();
    shed[mode] = engine.stats().shed_deadline;
    std::printf("  %-6s shed-deadline %" PRIu64 " / %zu tagged\n",
                mode == 0 ? "fifo" : "edf", shed[mode], tagged_count);
  }

  auto& reg = obs::MetricsRegistry::instance();
  reg.gauge("bench.serve.deadline_burst_fifo_shed")
      .set(static_cast<double>(shed[0]));
  reg.gauge("bench.serve.deadline_burst_edf_shed")
      .set(static_cast<double>(shed[1]));

  if (shed[0] == 0) {
    std::printf("FAIL: the FIFO burst shed nothing — no overload reached\n");
    return false;
  }
  if (shed[1] >= shed[0]) {
    std::printf("FAIL: EDF shed %" PRIu64 " tagged queries, FIFO %" PRIu64
                " — deadline-aware ordering bought nothing\n",
                shed[1], shed[0]);
    return false;
  }
  // The windowed EDF selection (nth_element partition instead of a
  // full-backlog sort) must not change which queries EDF saves: the budget
  // is 4 sweeps and EDF serves tagged queries within ~2, so every tagged
  // query makes its deadline — exactly as the full sort did.
  if (shed[1] != 0) {
    std::printf("FAIL: EDF shed %" PRIu64 " tagged queries (expected 0 — "
                "the windowed selection changed shed behavior)\n",
                shed[1]);
    return false;
  }
  return true;
}

/// Section 5: the tracing-overhead gate. The same batched workload served
/// with request tracing off and with exemplar sampling on, each timed as
/// the min of `kRuns` fresh-engine runs (min-of-N discards scheduler
/// noise; a fresh engine per run keeps the cache state identical). The
/// traced/untraced runs are *interleaved* rather than run as two blocks:
/// machine-load drift then hits both arms equally instead of biasing
/// whichever arm ran during the noisy window.
/// Returns false when the traced path costs more than kOverheadCeiling.
bool tracing_overhead_gate(bench::PerfRecord& rec, const Graph& h,
                           std::size_t num_queries, std::size_t window) {
  constexpr int kRuns = 7;
  constexpr double kOverheadCeiling = 0.03;
  const auto queries = skewed_queries(h, num_queries, 16, 314159);

  const auto run_once = [&](bool traced) {
    ServeOptions options;
    options.trace.exemplars = traced;
    QueryEngine engine(h, options);
    Timer t;
    for (std::size_t lo = 0; lo < queries.size(); lo += window) {
      const std::size_t hi = std::min(queries.size(), lo + window);
      engine.serve_batch(std::span(queries).subspan(lo, hi - lo));
    }
    return t.millis();
  };

  // A low threshold so the exemplar ring actually takes traffic during the
  // timed runs — this gates the worst case, not an idle tracer.
  obs::RequestTracer::instance().configure(/*threshold_us=*/100.0);
  run_once(false);  // warm the substrate (page-in, frequency ramp)
  double base_ms = run_once(false);
  double traced_ms = run_once(true);
  for (int r = 1; r < kRuns; ++r) {
    base_ms = std::min(base_ms, run_once(false));
    traced_ms = std::min(traced_ms, run_once(true));
  }
  const double overhead = traced_ms / base_ms - 1.0;

  auto& reg = obs::MetricsRegistry::instance();
  reg.gauge("bench.serve.trace_base_ms").set(base_ms);
  reg.gauge("bench.serve.trace_traced_ms").set(traced_ms);
  reg.gauge("bench.serve.trace_overhead").set(overhead);
  rec.add_json_section("request_trace",
                       obs::RequestTracer::instance().to_json());

  std::printf("\ntracing overhead (%zu queries, min of %d runs): "
              "untraced %.2f ms, exemplars on %.2f ms (%+.2f%%, "
              "%zu tail exemplars kept)\n",
              queries.size(), kRuns, base_ms, traced_ms, overhead * 1e2,
              obs::RequestTracer::instance().size());

  if (overhead > kOverheadCeiling) {
    std::printf("FAIL: exemplar tracing costs %.2f%% (> %.0f%% ceiling)\n",
                overhead * 1e2, kOverheadCeiling * 1e2);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  bench::PerfRecord rec("serve");
  bench::print_header(
      "Query serving: batched MS-BFS oracle vs one-BFS-per-query",
      "Point queries coalesced into 64-wide sweeps behind an LRU row cache "
      "must answer identically to the scalar oracle and clear a 3x "
      "throughput floor.");

  const std::size_t queries = quick ? 2048 : 8192;
  const std::size_t per_client = quick ? 256 : 1024;

  const Graph regular_g = random_regular(1024, 16, 42);
  const Graph regular_h =
      build_regular_spanner(regular_g, {.seed = 7}).spanner.h;
  // Theorem 2's construction wants a Δ-regular expander with Δ ≳ n^{2/3};
  // a dense random regular graph is one with overwhelming probability.
  const Graph expander_g = random_regular(1024, bench::degree_for(1024, 2.0 / 3.0), 43);
  const Graph expander_h =
      build_expander_spanner(expander_g, {.seed = 7}).spanner.h;
  std::printf("substrates: regular spanner %zu/%zu edges, expander spanner "
              "%zu/%zu edges\n\n",
              regular_h.num_edges(), regular_g.num_edges(),
              expander_h.num_edges(), expander_g.num_edges());

  bool ok = true;
  {
    ScopedTimer t(rec.phase("batched_vs_naive"));
    ok &= compare_batched_vs_naive(rec, "regular", regular_h, queries, 1024);
    ok &= compare_batched_vs_naive(rec, "expander", expander_h, queries, 1024);
  }
  {
    ScopedTimer t(rec.phase("closed_loop"));
    ok &= closed_loop_sweep(regular_h, per_client);
  }
  {
    ScopedTimer t(rec.phase("overload"));
    ok &= overload_demo(regular_h, quick ? 2000 : 8000);
  }
  {
    ScopedTimer t(rec.phase("deadline_burst"));
    // A big sparse substrate so one window's sweep is a measurable plug.
    const Graph burst_h = random_regular(30000, 8, 44);
    ok &= deadline_burst_demo(burst_h, quick ? 32 : 64, 100);
  }
  {
    ScopedTimer t(rec.phase("trace_overhead"));
    ok &= tracing_overhead_gate(rec, regular_h, queries, 1024);
  }

  if (!ok) {
    std::printf("\nbench_serve: FAILED\n");
    return 1;
  }
  std::printf("\nbench_serve: OK\n");
  return 0;
}
