// Theorem 1 / Algorithm 2 / Lemmas 21–23: decomposition of arbitrary
// routings into matchings. We measure, while the base congestion C(P)
// grows:
//
//  * Σ(d_k + 1) against the 12·C(P)·log₂ n bound of Lemma 21,
//  * the realized congestion multiplier C(P')/(β'·C(P)) (Lemma 22),
//  * the number of distinct matchings against the O(n³) bound (Lemma 23).
//
// The spanner is an identity spanner (H = G, β' = 1) so that the measured
// multiplier isolates the decomposition overhead itself.

#include "bench_common.hpp"

#include "core/matching_decomposition.hpp"
#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "routing/shortest_paths.hpp"
#include "routing/workloads.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("thm1_decomposition");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Theorem 1 / Algorithm 2 — routing decomposition into matchings",
      "claims: Σ(d_k+1) ≤ 12·C(P)·log₂ n; C(P') ≤ 12·β'·C(P)·log n; "
      "≤ O(n³) distinct matchings");

  const std::uint64_t seed = 29;
  const std::size_t n = 256;
  const Graph g = random_regular(n, 16, seed);
  DetourRouter router(g, g);  // identity spanner: β' = 1

  Table t({"pairs", "C(P)", "levels r", "Σ(d_k+1)", "12·C(P)·log₂n",
           "C(P')", "C(P')/C(P)", "matchings", "n³"});
  std::vector<double> cps, multipliers;
  for (std::size_t pairs : {32, 64, 128, 256, 512, 1024}) {
    const auto problem = random_pairs_problem(n, pairs, seed + pairs);
    const Routing p = shortest_path_routing(g, problem, seed + 1);
    const std::size_t cp = node_congestion(p, n);
    const auto report = measure_general_congestion(g, g, p, router,
                                                   seed + 2);
    const double bound = 12.0 * static_cast<double>(cp) *
                         std::log2(static_cast<double>(n));
    t.add(pairs, cp, report.decomposition.levels,
          report.decomposition.sum_degree_plus_one, bound,
          report.spanner_congestion, report.congestion_stretch(),
          report.decomposition.total_matchings,
          static_cast<double>(n) * static_cast<double>(n) *
              static_cast<double>(n));
    cps.push_back(static_cast<double>(cp));
    multipliers.push_back(report.congestion_stretch());
  }
  t.print(std::cout);
  std::cout << "decomposition multiplier C(P')/C(P) should stay O(log n) "
               "and independent of C(P); measured mean: "
            << summarize(multipliers).mean << " (log₂ n = "
            << std::log2(static_cast<double>(n)) << ")\n";

  // Same pipeline against a real (non-identity) spanner: the multiplier now
  // contains β' (the matching congestion of the spanner's detours) as well.
  std::cout << "\nagainst the Algorithm 1 spanner of a dense regular graph "
               "(β' > 1):\n";
  const Graph dense = random_regular(n, 48, seed + 1);
  const auto built = build_regular_spanner(dense, {.seed = seed});
  DetourRouter spanner_router(built.spanner.h, built.sampled);
  Table t2({"pairs", "C(P)", "C(P')", "C(P')/C(P)", "12·log₂n",
            "max l(p')/l(p)"});
  for (std::size_t pairs : {64, 256, 1024}) {
    const auto problem = random_pairs_problem(n, pairs, seed + pairs);
    const Routing p = shortest_path_routing(dense, problem, seed + 3);
    const auto report = measure_general_congestion(
        dense, built.spanner.h, p, spanner_router, seed + 4);
    t2.add(pairs, report.base_congestion, report.spanner_congestion,
           report.congestion_stretch(),
           12.0 * std::log2(static_cast<double>(n)),
           report.max_length_ratio);
  }
  t2.print(std::cout);
  return 0;
}
