// Extension — chaos-soak acceptance for the continuous-churn stack:
//
//  1. Survival: a seeded 1000-wave soak at 10% per-wave edge churn plus 2%
//     vertex churn with flapping links — with closed-loop query traffic
//     flowing the whole time through the snapshot-backed live oracle. The
//     supervisor must keep the spanner certified the whole way: the
//     degradation ladder never reaches kLost, every traffic burst
//     conserves packets (delivered + shed + in-flight == injected),
//     repair debt only grows by the wave's newly endangered edges, and
//     every served query answer certifies inside the published (α,β)
//     envelope or is shed with a structured reason (no stalled batches:
//     served + shed == submitted every wave).
//
//  2. Replayability: the archived schedule replayed through the harness
//     reproduces the run's aggregates exactly — including the query-plane
//     ones — and a second generated run from the same seed is identical;
//     the property the minimizer's reproduction predicate stands on.
//
//  3. Self-test: with the supervisor's deliberate repair bug enabled
//     (every repair silently loses one reinserted edge) the harness must
//     catch the invariant violation and ddmin the schedule to a minimal
//     reproducer of at most 10 events that deterministically re-triggers
//     the same invariant.
//
//  4. Live-oracle self-test: with the engine's deliberate stale-cache bug
//     enabled (distance rows survive epoch adoption) the query-certified
//     invariant must catch the stale read and minimize it the same way.

#include "bench_common.hpp"

#include "core/regular_spanner.hpp"
#include "graph/generators.hpp"
#include "resilience/soak.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("soak");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Extension — chaos soak: supervised repair under continuous churn",
      "1000 waves of 10% edge / 2% vertex churn with flapping: the ladder "
      "never hits kLost, packets are conserved, and an injected repair bug "
      "is caught and minimized to <= 10 events");

  const std::uint64_t seed = 83;
  const std::size_t n = 200;
  const std::size_t delta = degree_for(n, 2.0 / 3.0);
  const Graph g = random_regular(n, delta, seed);
  const auto built = build_regular_spanner(g, {.seed = seed});
  const Graph& h = built.spanner.h;
  bool all_ok = true;

  SoakOptions o;
  o.seed = seed;
  o.waves = 1000;
  o.churn.edge_churn_rate = 0.10;
  o.churn.vertex_churn_rate = 0.02;
  o.churn.recovery_rate = 0.5;
  o.churn.flap_probability = 0.3;
  o.churn.flap_duration = 2;
  o.traffic_interval = 25;
  o.qps = 16;  // the live oracle serves every wave, mid-churn

  std::cout << "-- 1000-wave soak, n=" << n << " Δ=" << delta
            << " |E(G)|=" << g.num_edges() << " |E(H)|=" << h.num_edges()
            << ", " << o.qps << " queries/wave --\n";
  const auto soak = run_soak(g, h, o);
  Table t({"waves", "events", "repairs", "rebuilds", "recerts", "max debt",
           "worst state", "bursts", "injected", "delivered", "shed"});
  t.add(soak.waves_run, soak.schedule.events.size(), soak.repairs,
        soak.rebuilds, soak.recertifications, soak.max_debt,
        to_string(soak.worst_state), soak.sims_run, soak.packets_injected,
        soak.packets_delivered, soak.packets_shed);
  t.print(std::cout);
  Table tq({"query batches", "submitted", "served", "shed", "epochs pub",
            "epochs adopted"});
  tq.add(soak.query_batches, soak.queries_submitted, soak.queries_served,
         soak.queries_shed, soak.epochs_published, soak.epochs_adopted);
  tq.print(std::cout);
  std::cout << soak.summary() << "\n";

  if (!soak.ok()) {
    std::cout << "FAIL: soak violated [" << soak.violations.front().invariant
              << "] at wave " << soak.violations.front().wave << ": "
              << soak.violations.front().detail << "\n";
    all_ok = false;
  }
  if (soak.waves_run != o.waves) {
    std::cout << "FAIL: soak stopped after " << soak.waves_run << " of "
              << o.waves << " waves\n";
    all_ok = false;
  }
  if (soak.worst_state == SupervisorState::kLost) {
    std::cout << "FAIL: supervisor entered kLost\n";
    all_ok = false;
  }
  if (soak.sims_run == 0 || soak.packets_injected == 0) {
    std::cout << "FAIL: soak ran no traffic\n";
    all_ok = false;
  }
  // Zero-downtime acceptance: queries flowed every wave, nothing stalled
  // (conservation is the query-certified invariant, re-checked here), and
  // churn actually exercised the epoch pipeline end to end.
  if (soak.query_batches != soak.waves_run || soak.queries_served == 0) {
    std::cout << "FAIL: the live oracle did not serve every wave\n";
    all_ok = false;
  }
  if (soak.queries_served + soak.queries_shed != soak.queries_submitted) {
    std::cout << "FAIL: query conservation broken (stalled batches)\n";
    all_ok = false;
  }
  if (soak.epochs_published < 2 || soak.epochs_adopted < 2) {
    std::cout << "FAIL: churn published no epochs through the snapshot "
                 "store\n";
    all_ok = false;
  }

  // Replayability: same seed => identical run; archived schedule => same
  // aggregates through the replay path.
  const auto soak2 = run_soak(g, h, o);
  if (soak2.schedule != soak.schedule || soak2.summary() != soak.summary()) {
    std::cout << "FAIL: soak not reproducible from seed\n";
    all_ok = false;
  }
  SoakOptions ro = o;
  ro.waves = soak.waves_run;
  const auto replayed = replay_soak(g, h, soak.schedule, ro);
  if (replayed.repairs != soak.repairs ||
      replayed.rebuilds != soak.rebuilds ||
      replayed.recertifications != soak.recertifications ||
      replayed.packets_delivered != soak.packets_delivered ||
      replayed.queries_served != soak.queries_served ||
      replayed.queries_shed != soak.queries_shed ||
      !replayed.ok()) {
    std::cout << "FAIL: schedule replay diverged from the recorded run\n";
    all_ok = false;
  }

  // Harness self-test: the soak must catch a deliberately broken repair
  // loop and shrink the schedule to a tiny deterministic reproducer.
  std::cout << "\n-- injected repair bug: catch and minimize --\n";
  SoakOptions bug = o;
  bug.waves = 120;
  bug.inject_repair_bug = true;
  const auto caught = run_soak(g, h, bug);
  std::cout << caught.summary() << "\n";
  if (caught.ok()) {
    std::cout << "FAIL: injected repair bug was not caught\n";
    all_ok = false;
  } else {
    if (!caught.minimized_available) {
      std::cout << "FAIL: violation was not minimized\n";
      all_ok = false;
    } else {
      Table tm({"invariant", "wave", "events", "minimized", "evaluations",
                "1-minimal"});
      tm.add(caught.violations.front().invariant,
             caught.violations.front().wave, caught.schedule.events.size(),
             caught.minimized.events.size(), caught.minimizer_evaluations,
             std::string(caught.minimized_is_minimal ? "yes" : "no"));
      tm.print(std::cout);
      if (caught.minimized.events.size() > 10) {
        std::cout << "FAIL: minimized schedule has "
                  << caught.minimized.events.size() << " events (> 10)\n";
        all_ok = false;
      }
      // The minimal schedule must deterministically re-trigger the same
      // invariant, twice.
      SoakOptions rep = bug;
      rep.waves = caught.waves_run;
      rep.minimize_on_violation = false;
      for (int i = 0; i < 2; ++i) {
        const auto again = replay_soak(g, h, caught.minimized, rep);
        if (again.ok() || again.violations.front().invariant !=
                              caught.violations.front().invariant) {
          std::cout << "FAIL: minimized schedule did not reproduce ["
                    << caught.violations.front().invariant << "]\n";
          all_ok = false;
          break;
        }
      }
    }
  }

  // Live-oracle self-test: a distance-row cache that survives epoch
  // adoption must be caught by the query-certified invariant and shrink
  // to a tiny reproducer, exactly like the repair bug above.
  std::cout << "\n-- injected stale-cache bug: catch and minimize --\n";
  SoakOptions stale = o;
  stale.waves = 120;
  stale.inject_stale_cache_bug = true;
  const auto stale_caught = run_soak(g, h, stale);
  std::cout << stale_caught.summary() << "\n";
  if (stale_caught.ok()) {
    std::cout << "FAIL: injected stale-cache bug was not caught\n";
    all_ok = false;
  } else if (stale_caught.violations.front().invariant !=
             "query-certified") {
    std::cout << "FAIL: stale cache tripped ["
              << stale_caught.violations.front().invariant
              << "] instead of [query-certified]\n";
    all_ok = false;
  } else if (!stale_caught.minimized_available) {
    std::cout << "FAIL: stale-cache violation was not minimized\n";
    all_ok = false;
  } else {
    Table tm({"invariant", "wave", "events", "minimized", "evaluations",
              "1-minimal"});
    tm.add(stale_caught.violations.front().invariant,
           stale_caught.violations.front().wave,
           stale_caught.schedule.events.size(),
           stale_caught.minimized.events.size(),
           stale_caught.minimizer_evaluations,
           std::string(stale_caught.minimized_is_minimal ? "yes" : "no"));
    tm.print(std::cout);
    if (stale_caught.minimized.events.size() > 10) {
      std::cout << "FAIL: minimized schedule has "
                << stale_caught.minimized.events.size() << " events (> 10)\n";
      all_ok = false;
    }
    SoakOptions rep = stale;
    rep.waves = stale_caught.waves_run;
    rep.minimize_on_violation = false;
    for (int i = 0; i < 2; ++i) {
      const auto again = replay_soak(g, h, stale_caught.minimized, rep);
      if (again.ok() ||
          again.violations.front().invariant != "query-certified") {
        std::cout << "FAIL: minimized schedule did not reproduce "
                     "[query-certified]\n";
        all_ok = false;
        break;
      }
    }
  }

  std::cout << "\nsoak acceptance: " << (all_ok ? "PASS" : "FAIL") << "\n";
  return all_ok ? 0 : 1;
}
