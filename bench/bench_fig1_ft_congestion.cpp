// Figure 1: a fault-tolerant-spanner-style sparsification that keeps only
// |M| = ⌈n^{1/3}⌉ + 1 of the clique–clique matching edges forces congestion
// Ω(n^{2/3}) on the perfect-matching routing problem, even though the
// distance stretch stays 3. This is the paper's argument for why f-VFT
// spanners of comparable size do not control congestion.

#include "bench_common.hpp"

#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "routing/workloads.hpp"

namespace {

// Keep cliques intact and the first kept_matching matching edges.
dcs::Graph ft_style_spanner(std::size_t n, std::size_t kept_matching) {
  using namespace dcs;
  const std::size_t half = n / 2;
  GraphBuilder b(n);
  for (Vertex u = 0; u < half; ++u) {
    for (Vertex v = u + 1; v < half; ++v) {
      b.add_edge(u, v);
      b.add_edge(static_cast<Vertex>(half + u),
                 static_cast<Vertex>(half + v));
    }
  }
  for (Vertex i = 0; i < kept_matching; ++i) {
    b.add_edge(i, static_cast<Vertex>(half + i));
  }
  return b.build();
}

// Canonical 3-stretch substitute: pair (a_i, b_i) with a removed matching
// edge routes a_i → a_j → b_j → b_i over kept matching edge j, assigned
// round-robin (this is load-optimal up to rounding: every valid ≤3 path
// must cross one of the kept matching edges).
dcs::Routing round_robin_routing(std::size_t n, std::size_t kept_matching) {
  using namespace dcs;
  const std::size_t half = n / 2;
  Routing r;
  for (std::size_t i = 0; i < half; ++i) {
    const auto a = static_cast<Vertex>(i);
    const auto b = static_cast<Vertex>(half + i);
    if (i < kept_matching) {
      r.paths.push_back(Path{a, b});
      continue;
    }
    const auto j = static_cast<Vertex>(i % kept_matching);
    r.paths.push_back(
        Path{a, j, static_cast<Vertex>(half + j), b});
  }
  return r;
}

}  // namespace

int main() {
  dcs::bench::PerfRecord perf_record("fig1_ft_congestion");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Figure 1 — fault-tolerant-style sparsification vs congestion",
      "claim: keeping ⌈n^{1/3}⌉+1 matching edges preserves distance stretch "
      "3 but forces congestion ≥ (n/2)/|M| = Ω(n^{2/3}) on the "
      "perfect-matching workload");

  Table t({"n", "|M| kept", "stretch", "C_G", "C_H (round-robin)",
           "lower bound (n/2)/|M|", "n^{2/3}"});
  std::vector<double> ns, congestion;
  for (std::size_t n : {64, 128, 256, 512, 1024}) {
    const auto kept = static_cast<std::size_t>(
        std::ceil(std::pow(static_cast<double>(n), 1.0 / 3.0))) + 1;
    const Graph g = clique_matching_graph(n);
    const Graph h = ft_style_spanner(n, kept);
    const auto stretch = measure_distance_stretch(g, h);

    const auto problem = clique_matching_pairs(n);
    const Routing direct = Routing::direct_edges(problem);
    const Routing sub = round_robin_routing(n, kept);
    if (!routing_is_valid(h, problem, sub)) {
      std::cout << "INTERNAL ERROR: substitute routing invalid\n";
      return 1;
    }
    const std::size_t cg = node_congestion(direct, n);
    const std::size_t ch = node_congestion(sub, n);
    t.add(n, kept, stretch.max_stretch, cg, ch,
          static_cast<double>(n / 2) / static_cast<double>(kept),
          std::pow(static_cast<double>(n), 2.0 / 3.0));
    ns.push_back(static_cast<double>(n));
    congestion.push_back(static_cast<double>(ch));
  }
  t.print(std::cout);
  print_exponent("forced congestion growth", ns, congestion, 2.0 / 3.0);
  return 0;
}
