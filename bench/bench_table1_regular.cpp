// Table 1, row "Theorem 3": Δ-regular graphs with Δ ≥ n^{2/3} admit a
// (3, O(√Δ·log n))-DC-spanner with O(n^{5/3} log² n) edges.
//
// Sweep 1 (n grows, Δ = n^{2/3}): edge count growth exponent ≈ 5/3 (up to
// polylog), distance stretch exactly ≤ 3, matching congestion vs the √Δ
// envelope, and general-routing congestion vs the √Δ·log n envelope.
// Sweep 2 (n fixed, Δ grows): congestion tracks √Δ.

#include "bench_common.hpp"

#include <memory>

#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "routing/shortest_paths.hpp"
#include "routing/workloads.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("table1_regular");
  using namespace dcs;
  using namespace dcs::bench;

  print_header("Table 1 / Theorem 3 — DC-spanner for Δ-regular graphs",
               "claim: edges = O(n^{5/3} log² n), distance stretch 3, "
               "congestion stretch O(√Δ·log n) for Δ ≥ n^{2/3}");

  const std::uint64_t seed = 42;

  // ---- Sweep 1: n grows, Δ ≈ n^{2/3} ---------------------------------
  Table t1({"n", "Δ", "|E(G)|", "|E(H)|", "stretch", "match C_H",
            "√Δ", "general C_H/C_G", "√Δ·log₂n", "build s"});
  std::unique_ptr<CsvWriter> csv;
  if (const auto path = csv_output_path("table1_regular")) {
    csv = std::make_unique<CsvWriter>(
        *path, std::vector<std::string>{"n", "delta", "edges_g", "edges_h",
                                        "stretch", "match_congestion",
                                        "general_stretch"});
  }
  std::vector<double> ns, edges;
  for (std::size_t n : {100, 160, 250, 400, 640, 1000}) {
    const std::size_t delta = degree_for(n, 2.0 / 3.0);
    const Graph g = random_regular(n, delta, seed + n);
    double build_s = 0.0;
    const auto built = [&] {
      ScopedTimer timer(perf_record.phase("build"), &build_s);
      return build_regular_spanner(g, {.seed = seed});
    }();
    const auto stretch = measure_distance_stretch(g, built.spanner.h);

    DetourRouter router(built.spanner.h, built.sampled);
    const auto matching = random_matching_problem(g, seed + 1);
    const auto mc = measure_matching_congestion(g, built.spanner.h,
                                                matching, router, seed + 2);

    const auto pairs = random_pairs_problem(n, n, seed + 3);
    const Routing p = shortest_path_routing(g, pairs, seed + 4);
    const auto gc = measure_general_congestion(g, built.spanner.h, p,
                                               router, seed + 5);

    t1.add(n, delta, g.num_edges(), built.spanner.h.num_edges(),
           stretch.max_stretch, mc.spanner_congestion,
           std::sqrt(static_cast<double>(delta)), gc.congestion_stretch(),
           std::sqrt(static_cast<double>(delta)) *
               std::log2(static_cast<double>(n)),
           build_s);
    if (csv) {
      csv->add(n, delta, g.num_edges(), built.spanner.h.num_edges(),
               stretch.max_stretch, mc.spanner_congestion,
               gc.congestion_stretch());
    }
    ns.push_back(static_cast<double>(n));
    edges.push_back(static_cast<double>(built.spanner.h.num_edges()));
  }
  t1.print(std::cout);
  print_exponent("|E(H)| growth", ns, edges, 5.0 / 3.0);

  // ---- Sweep 2: n fixed, Δ grows --------------------------------------
  const std::size_t n = 500;
  Table t2({"Δ", "|E(H)|", "compression", "stretch", "match C_H", "√Δ"});
  std::vector<double> deltas, congestions;
  for (std::size_t delta : {64, 100, 144, 196, 250}) {
    const Graph g = random_regular(n, delta, seed + delta);
    const auto built = build_regular_spanner(g, {.seed = seed});
    const auto stretch = measure_distance_stretch(g, built.spanner.h);
    DetourRouter router(built.spanner.h, built.sampled);
    const auto matching = random_matching_problem(g, seed + 7);
    const auto mc = measure_matching_congestion(g, built.spanner.h,
                                                matching, router, seed + 8);
    t2.add(delta, built.spanner.h.num_edges(),
           built.spanner.stats.compression(), stretch.max_stretch,
           mc.spanner_congestion, std::sqrt(static_cast<double>(delta)));
    deltas.push_back(static_cast<double>(delta));
    congestions.push_back(static_cast<double>(
        std::max<std::size_t>(1, mc.spanner_congestion)));
  }
  t2.print(std::cout);
  print_exponent("matching congestion vs Δ", deltas, congestions, 0.5);
  return 0;
}
