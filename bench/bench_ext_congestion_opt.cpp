// Extension — estimating C_G(R), the denominator of the congestion
// stretch. Definition 2 divides by the *optimal* congestion of the routing
// problem on G, which is NP-hard in general. This bench compares the
// library's three estimators on workloads where shortest-path routing is
// visibly suboptimal:
//
//   * randomized shortest paths (the naive upper bound),
//   * local-search rerouting (routing/rerouting.*),
//   * multiplicative-weights soft-max rerouting (routing/mwu_routing.*),
//
// and shows the effect on a measured congestion stretch: a better C_G(R)
// estimate makes the reported stretch of a spanner *larger* (more honest).

#include "bench_common.hpp"

#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "graph/generators.hpp"
#include "routing/mwu_routing.hpp"
#include "routing/rerouting.hpp"
#include "routing/shortest_paths.hpp"
#include "routing/workloads.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("ext_congestion_opt");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Extension — C_G(R) estimators (shortest paths vs local search vs MWU)",
      "Definition 2's denominator is NP-hard; better estimators matter for "
      "honest congestion-stretch measurements");

  const std::uint64_t seed = 71;

  Table t({"topology", "pairs", "C: shortest", "C: local search", "C: MWU"});
  struct Case {
    std::string name;
    Graph g;
    std::size_t pairs;
  };
  std::vector<Case> cases;
  cases.push_back({"torus 12x12", torus_2d(12, 12), 300});
  cases.push_back({"random 4-regular n=256", random_regular(256, 4, seed), 400});
  cases.push_back({"hypercube d=8", hypercube(8), 512});
  for (const auto& c : cases) {
    const auto problem =
        random_pairs_problem(c.g.num_vertices(), c.pairs, seed + 1);
    const Routing sp = shortest_path_routing(c.g, problem, seed + 2);
    MinimizeCongestionOptions lo;
    lo.seed = seed + 3;
    const auto local = minimize_congestion(c.g, problem, lo);
    MwuOptions mo;
    mo.seed = seed + 4;
    const auto mwu = mwu_min_congestion(c.g, problem, mo);
    t.add(c.name, c.pairs, node_congestion(sp, c.g.num_vertices()),
          local.final_congestion, mwu.final_congestion);
  }
  t.print(std::cout);

  // Effect on a measured congestion stretch: random pairs on a dense
  // regular graph, substituted onto the Algorithm 1 spanner.
  std::cout << "\neffect on a measured congestion stretch (regular graph "
               "n=300, Alg 1 spanner):\n";
  const std::size_t n = 300;
  const Graph g = random_regular(n, degree_for(n, 2.0 / 3.0), seed + 10);
  const auto built = build_regular_spanner(g, {.seed = seed});
  DetourRouter router(built.spanner.h, built.sampled);
  const auto problem = random_pairs_problem(n, 2 * n, seed + 11);

  const Routing base_sp = shortest_path_routing(g, problem, seed + 12);
  MwuOptions mo;
  mo.seed = seed + 13;
  const auto base_mwu = mwu_min_congestion(g, problem, mo);

  const Routing sub = route_problem(router,
                                    problem, seed + 14);
  // route each pair individually on H — a simple substitute upper bound
  const std::size_t ch = node_congestion(sub, n);
  Table t2({"C_G estimate", "value", "implied stretch C_H/C_G"});
  const std::size_t c_sp = node_congestion(base_sp, n);
  t2.add("shortest paths", c_sp,
         static_cast<double>(ch) / static_cast<double>(c_sp));
  t2.add("MWU", base_mwu.final_congestion,
         static_cast<double>(ch) /
             static_cast<double>(base_mwu.final_congestion));
  t2.print(std::cout);
  return 0;
}
