// Extension / open problem #2 of the paper's conclusion: "increase the
// distance stretches for the spectral expanders and regular graphs; this
// may give better congestion bounds."
//
// We probe the question empirically with the generalized sampling spanner:
// for α = 3, 5, 7 (k = 2, 3, 4) the sampler targets the classical
// Θ(n^{1+1/k}) density, repairs uncovered edges, and we measure spanner
// size, exact stretch, and matching congestion of the randomized
// shortest-path router. The observable tradeoff: every step of α sheds a
// large fraction of the edges while congestion degrades only mildly —
// consistent with the conjecture that higher stretch buys better
// size/congestion frontiers.

#include "bench_common.hpp"

#include "core/general_spanner.hpp"
#include "core/router.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "routing/workloads.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("ext_stretch_tradeoff");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Extension — stretch/size/congestion tradeoff (open problem #2)",
      "generalized sampling spanner at α = 2k−1; density target "
      "Θ(n^{1+1/k}); congestion of the randomized shortest-path router on "
      "matching workloads");

  const std::uint64_t seed = 51;
  for (std::size_t n : {300, 600}) {
    const std::size_t delta = degree_for(n, 0.75);
    const Graph g = random_regular(n, delta, seed + n);
    std::cout << "\nn = " << n << ", Δ = " << delta << ", |E(G)| = "
              << g.num_edges() << "\n";
    Table t({"α", "|E(H)|", "compression", "repaired", "max stretch",
             "match C_H", "edge C_H"});
    for (Dist alpha : {3u, 5u, 7u}) {
      StretchSpannerOptions o;
      o.seed = seed;
      o.alpha = alpha;
      const auto result = build_stretch_spanner(g, o);
      const auto stretch =
          measure_distance_stretch(g, result.spanner.h, alpha + 2);
      ShortestPathPairRouter router(result.spanner.h);
      const auto matching = random_matching_problem(g, seed + 1);
      const Routing routed =
          route_problem(router, matching, seed + 2);
      t.add(alpha, result.spanner.h.num_edges(),
            result.spanner.stats.compression(), result.repaired_edges,
            stretch.max_stretch,
            node_congestion(routed, n), edge_congestion(routed));
    }
    t.print(std::cout);
  }
  return 0;
}
