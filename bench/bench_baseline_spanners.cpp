// Baseline comparison: classical 3-distance spanners (Baswana–Sen, greedy)
// against the DC-spanner of Algorithm 1 on identical inputs. The classical
// constructions can be smaller, but their worst-case matching congestion is
// unbounded by design — this bench quantifies the gap the paper's
// construction closes.

#include "bench_common.hpp"

#include "core/baseline_spanners.hpp"
#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "core/verifier.hpp"
#include "core/vft_spanner.hpp"
#include "graph/generators.hpp"
#include "routing/workloads.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("baseline_spanners");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Baselines — classical 3-spanners vs the DC-spanner",
      "classical constructions guarantee only distance stretch; the "
      "DC-spanner pays some extra edges for an O(√Δ·log n) congestion "
      "guarantee");

  const std::uint64_t seed = 41;
  Table t({"n", "Δ", "construction", "edges", "stretch",
           "worst matching C_H", "√Δ"});
  for (std::size_t n : {200, 400}) {
    const std::size_t delta = degree_for(n, 0.75);
    const Graph g = random_regular(n, delta, seed + n);

    const auto dc = build_regular_spanner(g, {.seed = seed});
    const auto bs = baswana_sen_3_spanner(g, seed);
    const auto greedy = greedy_spanner(g, 3, seed);
    VftSpannerOptions vft_options;
    vft_options.seed = seed;
    vft_options.faults = 1;
    const auto vft = build_vft_spanner(g, vft_options);

    struct Arm {
      std::string name;
      const Graph* h;
      const Graph* detours;
    };
    const std::vector<Arm> arms{
        {"dc-spanner (Alg 1)", &dc.spanner.h, &dc.sampled},
        {"baswana-sen", &bs.h, &bs.h},
        {"greedy", &greedy.h, &greedy.h},
        {"1-VFT (DK union)", &vft.spanner.h, &vft.spanner.h},
    };
    for (const auto& arm : arms) {
      const auto stretch = measure_distance_stretch(g, *arm.h);
      DetourRouter router(*arm.h, *arm.detours);
      std::size_t worst = 0;
      for (std::uint64_t trial = 0; trial < 5; ++trial) {
        const auto matching = random_matching_problem(g, seed + trial);
        const auto report = measure_matching_congestion(
            g, *arm.h, matching, router, seed + 100 + trial);
        worst = std::max(worst, report.spanner_congestion);
      }
      t.add(n, delta, arm.name, arm.h->num_edges(), stretch.max_stretch,
            worst, std::sqrt(static_cast<double>(delta)));
    }
  }
  t.print(std::cout);
  return 0;
}
