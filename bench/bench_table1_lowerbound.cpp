// Table 1, row "Theorem 4": there is a graph (node degrees Θ(n^{1/6}))
// whose optimal-size 3-distance spanner has Ω(n^{7/6}) edges and is forced
// to be a (3, Ω(n^{1/6}))-DC-spanner.
//
// We build the composed fan-instance graph over a shared line-node pool
// (Lemma 19 intersection property enforced), take the optimal per-instance
// edge removal of Lemma 18, verify the 3-distance property exactly, and
// measure the forced congestion of the within-instance adversarial
// matchings (congestion 1 on G, k = Θ(n^{1/6}) through the hub on H).

#include "bench_common.hpp"

#include "core/lower_bound.hpp"
#include "core/verifier.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("table1_lowerbound");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Table 1 / Theorem 4 — 3-distance spanners with forced congestion",
      "claim: optimal 3-spanner has Ω(n^{7/6}) edges and congestion stretch "
      "Ω(n^{1/6}) (k per instance)");

  const std::uint64_t seed = 13;
  Table t({"pool n", "k", "|V|", "|E(G)|", "|E(H)|", "stretch", "C_G",
           "hub C_H", "stretch_C = k", "n^{1/6}"});
  std::vector<double> ns, spanner_edges, forced;
  // k is forced by hand (the paper's (n/17)^{1/6} formula moves k only at
  // astronomical n); we scale k as n^{1/6} directly to expose the shape.
  for (std::size_t n : {200, 500, 1200, 3000, 8000}) {
    const auto k = static_cast<std::size_t>(std::llround(
        std::pow(static_cast<double>(n), 1.0 / 6.0) / 1.5));
    const LowerBoundGraph lb = build_lower_bound_graph(n, seed, k);
    const LowerBoundSpanner spanner = lower_bound_optimal_spanner(lb);
    const auto stretch = measure_distance_stretch(lb.g, spanner.h, 8);

    const auto problem = lower_bound_adversarial_problem(spanner, 0);
    const Routing direct = Routing::direct_edges(problem);
    const Routing hub = lower_bound_hub_routing(lb, 0);
    const std::size_t cg = node_congestion(direct, lb.g.num_vertices());
    const std::size_t ch = node_congestion(hub, lb.g.num_vertices());

    t.add(n, lb.k, lb.g.num_vertices(), lb.g.num_edges(),
          spanner.h.num_edges(), stretch.max_stretch, cg, ch,
          static_cast<double>(ch) / static_cast<double>(cg),
          std::pow(static_cast<double>(n), 1.0 / 6.0));
    ns.push_back(static_cast<double>(n));
    spanner_edges.push_back(static_cast<double>(spanner.h.num_edges()));
    forced.push_back(static_cast<double>(ch));
  }
  t.print(std::cout);
  print_exponent("optimal 3-spanner |E(H)| growth", ns, spanner_edges,
                 7.0 / 6.0);
  print_exponent("forced congestion growth", ns, forced, 1.0 / 6.0);
  return 0;
}
