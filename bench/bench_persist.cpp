// Extension — crash-safe durability: recovery must beat a cold rebuild.
//
// The whole point of checkpoint + WAL is that a crashed oracle comes back
// faster than one rebuilt without durable state. This harness measures
// both paths to the *same* post-crash state at n = 4096:
//
//  1. a supervised run under churn cuts checkpoints and write-ahead logs
//     its waves, then "crashes" (the supervisor is dropped, no flush);
//  2. warm path — SpannerSupervisor::recover(): load the newest valid
//     checkpoint, replay the short WAL tail through the repair engine,
//     recertify, cut a fresh generation;
//  3. cold path — what a process without a durability directory must do
//     to reach the identical state: rebuild the initial spanner and
//     re-step the entire event history from genesis (deterministic, so it
//     lands on the same state — the soak's recovery-certified invariant
//     is built on exactly this equivalence). The fault overlay itself is
//     only known from durable state or from a full re-synchronization, so
//     this is the honest self-contained alternative.
//
// The acceptance gate: warm recovery beats the cold re-derivation
// (speedup >= 1), exported as the persist.recovery.speedup gauge and
// asserted here — exit 1 on regression, so CI fails if recovery ever
// decays into "read the checkpoint, replay everything anyway". A fresh
// rebuild-and-certify of the surviving network (which abandons the
// maintenance state and presumes the overlay is known) is also timed and
// reported as a reference point, but not gated: it shares the dominant
// recertification cost with recovery, so the ratio hovers near 1 by
// construction.

#include "bench_common.hpp"

#include <filesystem>
#include <memory>

#include "core/baseline_spanners.hpp"
#include "graph/generators.hpp"
#include "persist/durability.hpp"
#include "resilience/churn_engine.hpp"
#include "resilience/health_monitor.hpp"
#include "resilience/spanner_repair.hpp"
#include "resilience/supervisor.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("persist");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Extension — crash recovery vs cold re-derivation",
      "recovering the live oracle from checkpoint + WAL at n = 4096 must "
      "beat rebuilding the same state by replaying the full history");

  const std::uint64_t seed = 101;
  const std::size_t n = 4096;
  const std::size_t delta = 6;  // sparse: recertification is per-edge BFS
  const std::size_t waves = 34;
  const Graph g = random_regular(n, delta, seed);

  SupervisorOptions options;
  options.checkpoint_interval = 16;

  ChurnEngineOptions churn;
  churn.seed = seed + 2;
  churn.edge_churn_rate = 0.02;
  churn.vertex_churn_rate = 0.002;
  churn.recovery_rate = 0.3;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "dcs_bench_persist").string();
  std::filesystem::remove_all(dir);

  // The run that crashes: genesis checkpoint, then 34 churn waves with the
  // durability plane attached — checkpoints at waves 16 and 32, so the
  // crash leaves a 2-wave WAL tail to replay.
  Graph pre_crash_spanner;
  std::size_t pre_crash_debt = 0;
  double run_seconds = 0.0;
  {
    Timer run_timer;
    SpannerSupervisor supervisor(g, baswana_sen_3_spanner(g, seed + 1).h,
                                 options);
    persist::DurabilityManager durability(dir);
    supervisor.attach_durability(&durability);
    if (!supervisor.checkpoint_now()) {
      std::cout << "FAIL: genesis checkpoint failed: "
                << durability.last_error() << "\n";
      return 1;
    }
    ChurnEngine engine(g, churn);
    for (std::size_t w = 0; w < waves; ++w) supervisor.step(engine.advance());
    run_seconds = run_timer.seconds();
    pre_crash_spanner = supervisor.spanner();
    pre_crash_debt = supervisor.repair_debt();
  }  // crash: no flush

  // Warm path: recover from disk.
  persist::DurabilityManager durability(dir);
  SupervisorRecovery recovery;
  const auto recovered =
      SpannerSupervisor::recover(g, durability, options, recovery);
  if (recovered == nullptr) {
    std::cout << "FAIL: recovery failed closed: " << recovery.error << "\n";
    return 1;
  }
  const bool state_matches = recovered->spanner() == pre_crash_spanner &&
                             recovered->repair_debt() == pre_crash_debt;

  // Cold path: rebuild the identical state with no durable help — initial
  // spanner from scratch, every wave re-stepped (the churn stream is
  // seeded, so this is the deterministic re-derivation).
  double cold_seconds = 0.0;
  Graph cold_spanner;
  {
    Timer cold_timer;
    SpannerSupervisor rederived(g, baswana_sen_3_spanner(g, seed + 1).h,
                                options);
    ChurnEngine engine(g, churn);
    for (std::size_t w = 0; w < waves; ++w) rederived.step(engine.advance());
    cold_seconds = cold_timer.seconds();
    cold_spanner = rederived.spanner();
  }
  const bool cold_matches = cold_spanner == pre_crash_spanner;

  // Reference (not gated): fresh rebuild + certification of the surviving
  // network, granting the cold process the fault overlay for free.
  const Graph g_surv = recovered->fault_state().surviving(g);
  SpannerRepairOptions repair_options;
  repair_options.seed = seed + 3;
  const auto rebuilt = rebuild_spanner(g_surv, repair_options);
  double certify_seconds = 0.0;
  {
    Timer certify_timer;
    const HealthMonitor monitor(g);
    (void)monitor.check_surviving(g_surv, rebuilt.h,
                                  recovered->fault_state());
    certify_seconds = certify_timer.seconds();
  }
  const double fresh_seconds = rebuilt.seconds + certify_seconds;

  const double speedup = cold_seconds / recovery.seconds;
  const double speedup_vs_fresh = fresh_seconds / recovery.seconds;
  obs::MetricsRegistry::instance()
      .gauge("persist.recovery.speedup")
      .set(speedup);
  obs::MetricsRegistry::instance()
      .gauge("persist.recovery.speedup_vs_fresh_rebuild")
      .set(speedup_vs_fresh);

  Table t({"quantity", "value"});
  t.add("n", n);
  t.add("graph edges", g.num_edges());
  t.add("spanner edges", recovered->spanner().num_edges());
  t.add("waves before crash", recovered->waves());
  t.add("WAL waves replayed", recovery.wal_waves_replayed);
  t.add("crashed run [s]", run_seconds);
  t.add("recovery [ms]", recovery.seconds * 1e3);
  t.add("  load [ms]", recovery.load_seconds * 1e3);
  t.add("  replay [ms]", recovery.replay_seconds * 1e3);
  t.add("  recheck [ms]", recovery.recheck_seconds * 1e3);
  t.add("cold re-derivation [ms]", cold_seconds * 1e3);
  t.add("fresh rebuild+certify [ms]", fresh_seconds * 1e3);
  t.add("speedup (cold/warm)", speedup);
  t.add("speedup vs fresh rebuild", speedup_vs_fresh);
  t.add("recovered certificate",
        std::string(to_string(recovery.certificate)));
  t.print(std::cout);

  bool all_ok = true;
  if (!state_matches) {
    std::cout << "FAIL: recovered state differs from the pre-crash state\n";
    all_ok = false;
  }
  if (!cold_matches) {
    std::cout << "FAIL: cold re-derivation is not deterministic\n";
    all_ok = false;
  }
  if (recovery.certificate == GuaranteeStatus::kLost) {
    std::cout << "FAIL: recovery did not recertify\n";
    all_ok = false;
  }
  if (speedup < 1.0) {
    std::cout << "FAIL: recovery (" << recovery.seconds * 1e3
              << " ms) is slower than the cold re-derivation ("
              << cold_seconds * 1e3 << " ms)\n";
    all_ok = false;
  }
  if (all_ok) {
    std::cout << "OK: warm recovery is " << speedup
              << "x the cold path (and " << speedup_vs_fresh
              << "x a fresh rebuild+certify), certificate "
              << to_string(recovery.certificate) << "\n";
  }
  std::filesystem::remove_all(dir);
  return all_ok ? 0 : 1;
}
