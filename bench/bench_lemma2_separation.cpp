// Lemma 2: distance stretch + congestion stretch (separately) do not imply
// the DC property. On the lemma's family we measure all three quantities:
// the spanner keeps distance stretch 3 and routes the matching with
// congestion ≤ 2 when paths may use the private length-(α+1) detours, yet
// any routing within the DC length budget (3·1 hops) funnels every pair
// through the single kept matching edge — congestion stretch = #pairs.

#include "bench_common.hpp"

#include "core/lower_bound.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"

namespace {

dcs::Graph lemma2_spanner(const dcs::Lemma2Graph& lg) {
  using namespace dcs;
  EdgeSet keep;
  for (Edge e : lg.g.edges()) keep.insert(e);
  for (std::size_t i = 1; i < lg.a.size(); ++i) {
    keep.erase(canonical(lg.a[i], lg.b[i]));
  }
  const auto kept = keep.to_vector();
  return Graph::from_edges(lg.g.num_vertices(), kept);
}

}  // namespace

int main() {
  dcs::bench::PerfRecord perf_record("lemma2_separation");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Lemma 2 — distance+congestion spanner that is not a DC-spanner",
      "claim: H is a 3-distance spanner and (with relaxed path budgets) a "
      "2-congestion spanner, but the DC substitute of the matching has "
      "congestion stretch n (linear blow-up)");

  Table t({"pairs", "|V|", "stretch", "relaxed C_H (budget 4)",
           "DC C_H (budget 3)", "DC stretch"});
  std::vector<double> xs, ys;
  for (std::size_t pairs : {4, 8, 16, 32, 64}) {
    const Lemma2Graph lg = lemma2_graph(pairs, 4);  // detour length 4 > α·1
    const Graph h = lemma2_spanner(lg);
    const auto stretch = measure_distance_stretch(lg.g, h);

    RoutingProblem matching;
    for (std::size_t i = 0; i < pairs; ++i) {
      matching.pairs.emplace_back(lg.a[i], lg.b[i]);
    }
    const Routing relaxed = min_congestion_short_routing(h, matching, 4);
    const Routing strict = min_congestion_short_routing(h, matching, 3);
    const std::size_t c_relaxed = node_congestion(relaxed, h.num_vertices());
    const std::size_t c_strict = node_congestion(strict, h.num_vertices());
    t.add(pairs, lg.g.num_vertices(), stretch.max_stretch, c_relaxed,
          c_strict, static_cast<double>(c_strict));
    xs.push_back(static_cast<double>(pairs));
    ys.push_back(static_cast<double>(c_strict));
  }
  t.print(std::cout);
  print_exponent("DC-budget congestion growth vs pairs", xs, ys, 1.0);
  return 0;
}
