// Table 1, row "Theorem 2": n^{2/3+ε}-regular expanders admit a 3-distance
// spanner with O(n^{5/3}) edges whose matching congestion is O(log n) and
// whose general-routing congestion is O(log² n).
//
// The expansion premise is *measured* per instance (λ must be well below Δ)
// before the construction runs.

#include "bench_common.hpp"

#include <memory>

#include "core/expander_spanner.hpp"
#include "core/router.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "routing/shortest_paths.hpp"
#include "routing/workloads.hpp"
#include "spectral/expansion.hpp"

int main() {
  dcs::bench::PerfRecord perf_record("table1_expander");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Table 1 / Theorem 2 — DC-spanner for expanders",
      "claim: edges = O(n^{5/3}), distance stretch 3, matching congestion "
      "O(log n), general congestion O(log² n); premise Δ = n^{2/3+ε}, "
      "λ = o(Δ·n^{...}) verified spectrally");

  const std::uint64_t seed = 7;
  const double eps = 0.12;

  Table t({"n", "Δ=n^{2/3+ε}", "λ/Δ", "|E(H)|", "stretch", "match C_H",
           "log₂n", "general C/C_G", "log₂²n"});
  std::unique_ptr<CsvWriter> csv;
  if (const auto path = csv_output_path("table1_expander")) {
    csv = std::make_unique<CsvWriter>(
        *path,
        std::vector<std::string>{"n", "delta", "lambda_ratio", "edges_h",
                                 "stretch", "match_congestion",
                                 "general_stretch"});
  }
  std::vector<double> ns, edges, match_cong;
  for (std::size_t n : {100, 160, 250, 400, 640, 1000}) {
    const std::size_t delta = degree_for(n, 2.0 / 3.0 + eps);
    const Graph g = random_regular(n, delta, seed + n);
    const auto expansion = estimate_expansion(g);

    const auto built = build_expander_spanner(g, {.seed = seed});
    const auto stretch = measure_distance_stretch(g, built.spanner.h);

    ExpanderMatchingRouter router(built.spanner.h);
    const auto matching = random_matching_problem(g, seed + 1);
    const auto mc = measure_matching_congestion(g, built.spanner.h,
                                                matching, router, seed + 2);

    const auto pairs = random_pairs_problem(n, n, seed + 3);
    const Routing p = shortest_path_routing(g, pairs, seed + 4);
    const auto gc = measure_general_congestion(g, built.spanner.h, p,
                                               router, seed + 5);

    const double log_n = std::log2(static_cast<double>(n));
    t.add(n, delta, expansion.normalized(), built.spanner.h.num_edges(),
          stretch.max_stretch, mc.spanner_congestion, log_n,
          gc.congestion_stretch(), log_n * log_n);
    if (csv) {
      csv->add(n, delta, expansion.normalized(),
               built.spanner.h.num_edges(), stretch.max_stretch,
               mc.spanner_congestion, gc.congestion_stretch());
    }
    ns.push_back(static_cast<double>(n));
    edges.push_back(static_cast<double>(built.spanner.h.num_edges()));
    match_cong.push_back(
        static_cast<double>(std::max<std::size_t>(1, mc.spanner_congestion)));
  }
  t.print(std::cout);
  print_exponent("|E(H)| growth", ns, edges, 5.0 / 3.0);
  std::cout << "matching congestion should grow ~log n, i.e. with a "
               "near-zero power-law exponent; fitted: "
            << loglog_slope(ns, match_cong) << "\n";

  // ε-sweep at fixed n: Theorem 2's premise allows any
  // 0 < ε < 1/3 − 3·loglog n/log n; the spanner degree target n^{2/3} is
  // independent of ε, so |E(H)| should stay ≈ n^{5/3}/2 while the input
  // density (and the sampling probability) vary.
  const std::size_t n_fixed = 400;
  std::cout << "\nε-sweep at n = " << n_fixed << ":\n";
  Table t2({"ε", "Δ", "p = n^{-ε}", "|E(H)|", "n^{5/3}/2", "stretch",
            "match C_H"});
  for (double eps2 : {0.05, 0.10, 0.15, 0.20}) {
    const std::size_t delta = degree_for(n_fixed, 2.0 / 3.0 + eps2);
    const Graph g = random_regular(n_fixed, delta, seed + delta);
    ExpanderSpannerOptions options;
    options.seed = seed;
    options.epsilon = eps2;
    const auto built = build_expander_spanner(g, options);
    const auto stretch = measure_distance_stretch(g, built.spanner.h);
    ExpanderMatchingRouter router(built.spanner.h);
    const auto matching = random_matching_problem(g, seed + 6);
    const auto mc = measure_matching_congestion(g, built.spanner.h,
                                                matching, router, seed + 7);
    t2.add(eps2, delta, built.sample_probability,
           built.spanner.h.num_edges(),
           std::pow(static_cast<double>(n_fixed), 5.0 / 3.0) / 2.0,
           stretch.max_stretch, mc.spanner_congestion);
  }
  t2.print(std::cout);
  return 0;
}
