// Ablation ABL-2: the paper's congestion argument hinges on choosing the
// replacement path *uniformly at random* among the available 3-detours
// (Theorem 2's "Choosing the Replacement Paths", Lemma 7). This ablation
// compares random choice against always taking the first available detour:
// the deterministic rule concentrates many pairs on the lexicographically
// early routers and inflates congestion.

#include "bench_common.hpp"

#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "core/support.hpp"
#include "core/verifier.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"
#include "routing/workloads.hpp"

namespace {

// Deterministic counterpart of DetourRouter: always the first 3-detour.
class FirstDetourRouter final : public dcs::PairRouter {
 public:
  FirstDetourRouter(const dcs::Graph& h, const dcs::Graph& detours)
      : h_(h), detours_(detours) {}

  dcs::Path route(dcs::Vertex s, dcs::Vertex t,
                  dcs::Rng& rng) const override {
    using namespace dcs;
    if (h_.has_edge(s, t)) return {s, t};
    const auto ds = find_3detours(detours_, s, t, 1);
    if (!ds.empty()) return {s, ds[0].x, ds[0].z, t};
    const auto cn = common_neighbors(detours_, s, t);
    if (!cn.empty()) return {s, cn[0], t};
    return bfs_shortest_path(h_, s, t, &rng);
  }

 private:
  const dcs::Graph& h_;
  const dcs::Graph& detours_;
};

}  // namespace

int main() {
  dcs::bench::PerfRecord perf_record("abl_random_paths");
  using namespace dcs;
  using namespace dcs::bench;

  print_header(
      "Ablation — random vs deterministic replacement-path choice",
      "claim (Lemma 7 / Lemma 17 machinery): uniform random choice over "
      "3-detours keeps matching congestion near its expectation; a "
      "deterministic first-detour rule concentrates load");

  const std::uint64_t seed = 37;
  Table t({"n", "Δ", "random-choice C_H", "first-detour C_H"});
  for (std::size_t n : {200, 400, 600}) {
    const std::size_t delta = degree_for(n, 2.0 / 3.0);
    const Graph g = random_regular(n, delta, seed + n);
    const auto built = build_regular_spanner(g, {.seed = seed});

    DetourRouter random_router(built.spanner.h, built.sampled);
    FirstDetourRouter first_router(built.spanner.h, built.sampled);

    // The stress workload is the *all removed edges* problem: every edge of
    // G absent from H must take a detour at once, so nearby pairs compete
    // for the same routers and the path-choice policy becomes visible.
    RoutingProblem removed;
    for (Edge e : g.edges()) {
      if (!built.spanner.h.has_edge(e.u, e.v)) {
        removed.pairs.emplace_back(e.u, e.v);
      }
    }
    const Routing rnd = route_problem(random_router, removed, seed + 20);
    const Routing det = route_problem(first_router, removed, seed + 30);
    t.add(n, delta, format_cell(node_congestion(rnd, n)),
          format_cell(node_congestion(det, n)));
  }
  t.print(std::cout);
  return 0;
}
