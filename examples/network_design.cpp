// Network design scenario from the paper's introduction: sparsify a dense
// interconnect without sacrificing routing quality. We compare three
// sparsifiers of the same dense regular network:
//
//   * the DC-spanner of Algorithm 1 (this paper),
//   * the classic Baswana–Sen 3-spanner (distance-only guarantee),
//   * the greedy 3-spanner (sparsest, but no congestion control),
//
// on (a) edge count — proxy for link cost and routing-table size,
// (b) exact distance stretch, and (c) node congestion for a batch of
// matching workloads, where the DC construction is the only one with a
// guarantee.
//
//   ./network_design [n] [delta] [seed]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/baseline_spanners.hpp"
#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "routing/tables.hpp"
#include "routing/workloads.hpp"
#include "util/table.hpp"

namespace {

struct Candidate {
  std::string name;
  dcs::Graph h;
  const dcs::Graph* detour_graph;  // nullptr → use h itself
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dcs;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  const std::size_t delta =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 80;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  std::cout << "interconnect: random " << delta << "-regular network on "
            << n << " switches (" << n * delta / 2 << " links)\n\n";
  const Graph g = random_regular(n, delta, seed);

  const auto dc = build_regular_spanner(g, {.seed = seed});
  const auto bs = baswana_sen_3_spanner(g, seed);
  const auto greedy = greedy_spanner(g, 3, seed);

  std::vector<Candidate> candidates;
  candidates.push_back({"dc-spanner (Alg 1)", dc.spanner.h, &dc.sampled});
  candidates.push_back({"baswana-sen 3-spanner", bs.h, nullptr});
  candidates.push_back({"greedy 3-spanner", greedy.h, nullptr});

  Table table({"construction", "edges", "compression", "max stretch",
               "worst matching congestion"});
  for (const auto& c : candidates) {
    const auto stretch = measure_distance_stretch(g, c.h);
    // worst congestion over a few matching workloads
    std::size_t worst = 0;
    DetourRouter router(c.h, c.detour_graph ? *c.detour_graph : c.h);
    for (std::uint64_t trial = 0; trial < 5; ++trial) {
      const auto matching = random_matching_problem(g, seed + 10 + trial);
      const auto report = measure_matching_congestion(
          g, c.h, matching, router, seed + 20 + trial);
      worst = std::max(worst, report.spanner_congestion);
    }
    table.add(c.name, c.h.num_edges(),
              static_cast<double>(c.h.num_edges()) /
                  static_cast<double>(g.num_edges()),
              stretch.max_stretch, worst);
  }
  table.print(std::cout);

  std::cout
      << "\nreading: all three keep every pair within 3 hops, but only the\n"
         "DC-spanner also bounds how much any single switch is overloaded\n"
         "when the full matching workload is re-routed onto the sparse\n"
         "network (paper bound O(sqrt(delta) log n)).\n";

  // The introduction's routing-table argument: next-hop entries are
  // indices into a node's adjacency list, so table memory shrinks with the
  // spanner's degree.
  std::cout << "\nrouting-table memory (next-hop tables, "
               "ceil(log2 deg) bits/entry):\n";
  Table mem({"graph", "total KiB", "bits/entry"});
  const auto full_tables = RoutingTables::build(g, seed);
  mem.add("original", static_cast<double>(full_tables.total_bits()) / 8192.0,
          full_tables.bits_per_entry());
  const auto dc_tables = RoutingTables::build(dc.spanner.h, seed);
  mem.add("dc-spanner", static_cast<double>(dc_tables.total_bits()) / 8192.0,
          dc_tables.bits_per_entry());
  mem.print(std::cout);
  return 0;
}
