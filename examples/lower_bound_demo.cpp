// Section 5 demonstration: some graphs force every optimal-size 3-distance
// spanner to have large congestion stretch.
//
// Part 1 — the Lemma 18 fan gadget: after the only possible optimal edge
// removal, the k deleted line edges (disjoint in G, congestion 1) must all
// route through the hub in H (congestion k).
//
// Part 2 — the Theorem 4 composition: n gadgets over a shared line-node
// pool; the forced congestion grows like k = Θ(n^{1/6}).
//
//   ./lower_bound_demo [n] [seed]

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/lower_bound.hpp"
#include "core/verifier.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;

  std::cout << "== Part 1: single fan gadget (Lemma 18) ==\n";
  Table fan_table({"k", "|E(G)|", "|E(H)|", "stretch", "C_G(R)",
                   "C_H(R) via hub", "congestion stretch"});
  for (std::size_t k : {2, 4, 8, 16}) {
    const FanGadget fan = fan_gadget(k);
    const FanSpanner spanner = fan_optimal_spanner(fan);
    const auto problem = fan_adversarial_problem(spanner);
    const auto stretch = measure_distance_stretch(fan.g, spanner.h);
    const Routing direct = Routing::direct_edges(problem);
    const Routing sub = min_congestion_short_routing(spanner.h, problem, 3);
    const std::size_t cg = node_congestion(direct, fan.g.num_vertices());
    const std::size_t ch = node_congestion(sub, spanner.h.num_vertices());
    fan_table.add(k, fan.g.num_edges(), spanner.h.num_edges(),
                  stretch.max_stretch, cg, ch,
                  static_cast<double>(ch) / static_cast<double>(cg));
  }
  fan_table.print(std::cout);

  std::cout << "\n== Part 2: Theorem 4 composition (" << n
            << " instances) ==\n";
  // The paper's k = (n/17)^{1/6}/2 only leaves k ≥ 2 at astronomical n;
  // scale k as n^{1/6} directly so the forced congestion is visible.
  const auto k = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(
             std::pow(static_cast<double>(n), 1.0 / 6.0) / 1.5)));
  const LowerBoundGraph lb = build_lower_bound_graph(n, seed, k);
  const LowerBoundSpanner spanner = lower_bound_optimal_spanner(lb);
  const auto stretch = measure_distance_stretch(lb.g, spanner.h);
  std::cout << "graph: " << lb.g.num_vertices() << " vertices, "
            << lb.g.num_edges() << " edges; per-instance k = " << lb.k
            << "\noptimal 3-spanner: " << spanner.h.num_edges()
            << " edges (removed " << spanner.total_removed
            << "), stretch = " << stretch.max_stretch << "\n";

  // hub congestion of the canonical substitute routing, instance 0
  const auto problem = lower_bound_adversarial_problem(spanner, 0);
  const Routing hub = lower_bound_hub_routing(lb, 0);
  std::cout << "adversarial matching of instance 0: C_G = "
            << node_congestion(Routing::direct_edges(problem),
                               lb.g.num_vertices())
            << ", hub-substitute C_H = "
            << node_congestion(hub, lb.g.num_vertices())
            << " → congestion stretch " << lb.k << " = Θ(n^{1/6})\n";
  return 0;
}
