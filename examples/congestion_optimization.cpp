// Congestion optimization: Definition 2 measures spanners against the
// *optimal* congestion C_G(R). This example shows the three estimators the
// library ships — randomized shortest paths, local-search rerouting, and
// multiplicative-weights rerouting — on a congested mesh workload, and the
// packet-level consequence of the improvement.
//
//   ./congestion_optimization [rows] [cols] [pairs] [seed]

#include <cstdlib>
#include <iostream>

#include "graph/generators.hpp"
#include "routing/mwu_routing.hpp"
#include "routing/packet_sim.hpp"
#include "routing/rerouting.hpp"
#include "routing/shortest_paths.hpp"
#include "routing/workloads.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  const std::size_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;
  const std::size_t cols = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;
  const std::size_t pairs =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 200;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

  const Graph g = torus_2d(rows, cols);
  const auto problem =
      random_pairs_problem(g.num_vertices(), pairs, seed);
  std::cout << "torus " << rows << "x" << cols << ", " << pairs
            << " random demands\n\n";

  const Routing sp = shortest_path_routing(g, problem, seed + 1);
  MinimizeCongestionOptions lo;
  lo.seed = seed + 2;
  const auto local = minimize_congestion(g, problem, lo);
  MwuOptions mo;
  mo.seed = seed + 3;
  const auto mwu = mwu_min_congestion(g, problem, mo);

  Table t({"router", "node congestion", "edge congestion", "makespan",
           "mean latency", "max queue"});
  struct Arm {
    std::string name;
    const Routing* routing;
  };
  for (const Arm& arm :
       {Arm{"shortest paths", &sp}, Arm{"local search", &local.routing},
        Arm{"multiplicative weights", &mwu.routing}}) {
    const auto sim = simulate_store_and_forward(g, *arm.routing,
                                                {.seed = seed + 4});
    t.add(arm.name, node_congestion(*arm.routing, g.num_vertices()),
          edge_congestion(*arm.routing), sim.makespan, sim.mean_latency,
          sim.max_queue);
  }
  t.print(std::cout);
  std::cout << "\nlower congestion translates directly into lower packet "
               "latency (Section 1.1).\n";
  return 0;
}
