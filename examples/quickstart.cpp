// Quickstart: build a (3, O(√Δ·log n))-DC-spanner of a dense regular graph
// (Algorithm 1 of the paper), verify its distance stretch exactly, and
// route a matching workload to observe the congestion stretch.
//
//   ./quickstart [n] [delta] [seed]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "routing/workloads.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300;
  const std::size_t delta =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  std::cout << "building a random " << delta << "-regular graph on " << n
            << " vertices...\n";
  const Graph g = random_regular(n, delta, seed);

  RegularSpannerOptions options;
  options.seed = seed;
  const auto built = build_regular_spanner(g, options);

  std::cout << "running Algorithm 1 (sample with ρ = Δ'/Δ, reinsert "
               "unsupported/undetoured edges)...\n\n";

  Table construction({"quantity", "value"});
  construction.add("input edges |E(G)|", g.num_edges());
  construction.add("sampled edges |E'|", built.spanner.stats.sampled_edges);
  construction.add("reinserted (unsupported)", built.reinserted_unsupported);
  construction.add("reinserted (no surviving detour)",
                   built.reinserted_undetoured);
  construction.add("spanner edges |E(H)|", built.spanner.h.num_edges());
  construction.add("compression |E(H)|/|E(G)|",
                   built.spanner.stats.compression());
  construction.print(std::cout);

  const auto stretch = measure_distance_stretch(g, built.spanner.h);
  std::cout << "\ndistance stretch: max = " << stretch.max_stretch
            << ", mean = " << stretch.mean_stretch
            << (stretch.satisfies(3.0) ? "  (3-distance spanner ✓)"
                                       : "  (VIOLATES stretch 3!)")
            << "\n";

  // Route a maximal-matching workload: congestion 1 on G by construction.
  const auto matching = random_matching_problem(g, seed + 1);
  DetourRouter router(built.spanner.h, built.sampled);
  const auto congestion =
      measure_matching_congestion(g, built.spanner.h, matching, router,
                                  seed + 2);
  std::cout << "\nmatching workload (" << matching.size() << " pairs):\n"
            << "  congestion on G  = " << congestion.base_congestion << "\n"
            << "  congestion on H  = " << congestion.spanner_congestion
            << "  (paper bound O(√Δ) ≈ "
            << 2.0 * std::sqrt(static_cast<double>(delta)) << ")\n"
            << "  max path length  = " << congestion.max_length_ratio
            << "  (≤ 3)\n";
  return 0;
}
