// Corollary 3: Algorithm 1 as an O(1)-round distributed algorithm in the
// LOCAL model. Runs the message-passing simulation, reports round/message
// statistics, and confirms the distributed output is bit-identical to the
// sequential construction.
//
//   ./distributed_spanner [n] [delta] [seed]

#include <cstdlib>
#include <iostream>

#include "core/regular_spanner.hpp"
#include "core/verifier.hpp"
#include "dist/dist_spanner.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80;
  const std::size_t delta =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

  const Graph g = random_regular(n, delta, seed);
  RegularSpannerOptions options;
  options.seed = seed;

  std::cout << "running distributed Algorithm 1 on a " << delta
            << "-regular graph with " << n << " nodes...\n\n";
  const auto dist = build_regular_spanner_local(g, options);
  const auto seq = build_regular_spanner(g, options);

  Table table({"quantity", "value"});
  table.add("LOCAL rounds", dist.stats.rounds);
  table.add("messages delivered", dist.stats.total_messages);
  table.add("64-bit words exchanged", dist.stats.total_words);
  table.add("spanner edges (distributed)", dist.h.num_edges());
  table.add("spanner edges (sequential)", seq.spanner.h.num_edges());
  table.add("outputs identical",
            std::string(dist.h == seq.spanner.h ? "yes" : "NO (bug!)"));
  table.print(std::cout);

  const auto stretch = measure_distance_stretch(g, dist.h);
  std::cout << "\ndistance stretch of the distributed spanner: "
            << stretch.max_stretch
            << (stretch.satisfies(3.0) ? " (3-spanner ✓)" : " (violation!)")
            << "\n"
            << "\nthe round count is independent of n: every decision needs\n"
               "only 3-hop neighborhood knowledge (support test + detour\n"
               "survival), gathered in 3 flooding rounds.\n";
  return 0;
}
