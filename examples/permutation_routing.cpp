// Permutation routing on an expander spanner (Theorem 2 + Theorem 1):
// every node sends one message to a random partner; the routing computed on
// the dense expander G is substituted onto the sparse spanner H through the
// matching decomposition of Algorithm 2.
//
//   ./permutation_routing [n] [delta] [seed]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/expander_spanner.hpp"
#include "core/router.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "routing/shortest_paths.hpp"
#include "routing/workloads.hpp"
#include "spectral/expansion.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 250;
  const std::size_t delta =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 70;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  const Graph g = random_regular(n, delta, seed);
  const auto expansion = estimate_expansion(g);
  std::cout << "expander check: λ1 = " << expansion.lambda1
            << ", λ = " << expansion.lambda << " (normalized "
            << expansion.normalized() << ", Ramanujan bound "
            << 2.0 * std::sqrt(static_cast<double>(delta - 1)) << ")\n";

  const auto built = build_expander_spanner(g, {.seed = seed});
  std::cout << "spanner: " << built.spanner.h.num_edges() << " of "
            << g.num_edges() << " edges (sample probability "
            << built.sample_probability << ", repaired "
            << built.repaired_edges << " uncovered edges)\n";

  const auto stretch = measure_distance_stretch(g, built.spanner.h);
  std::cout << "distance stretch: " << stretch.max_stretch << "\n\n";

  ExpanderMatchingRouter router(built.spanner.h);
  Table table({"workload", "C(P) on G", "C(P') on H", "stretch",
               "levels", "matchings"});
  for (std::uint64_t trial = 0; trial < 3; ++trial) {
    const auto problem = random_permutation_problem(n, seed + 100 + trial);
    const Routing p = shortest_path_routing(g, problem, seed + trial);
    const auto report = measure_general_congestion(
        g, built.spanner.h, p, router, seed + 200 + trial);
    table.add("permutation #" + std::to_string(trial),
              report.base_congestion, report.spanner_congestion,
              report.congestion_stretch(), report.decomposition.levels,
              report.decomposition.total_matchings);
  }
  table.print(std::cout);
  std::cout << "\npaper envelope: C(P') = O(log^2 n)·C(P) ≈ "
            << std::pow(std::log2(static_cast<double>(n)), 2.0)
            << "·C(P) for Theorem 2 inputs.\n";
  return 0;
}
