// Fault tolerance vs congestion control — the related-work contrast of the
// paper's Figure 1 discussion. Builds an f-VFT spanner (survives any f
// vertex faults with stretch 3) and the DC-spanner of the same graph, then
// compares: size, fault survival under injection, and matching congestion.
// The punchline: fault tolerance and congestion control are orthogonal
// guarantees — the VFT spanner pays many more edges and still has no
// congestion bound, while the DC-spanner bounds congestion but dies with
// its detour nodes.
//
//   ./fault_tolerance [n] [delta] [f] [seed]

#include <cstdlib>
#include <iostream>

#include <algorithm>

#include "core/lower_bound.hpp"
#include "core/regular_spanner.hpp"
#include "core/router.hpp"
#include "core/verifier.hpp"
#include "core/vft_spanner.hpp"
#include "graph/generators.hpp"
#include "routing/workloads.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120;
  const std::size_t delta =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 24;
  const std::size_t f = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

  const Graph g = random_regular(n, delta, seed);
  std::cout << "input: " << delta << "-regular graph on " << n
            << " vertices; tolerating f = " << f << " faults\n\n";

  VftSpannerOptions vo;
  vo.seed = seed;
  vo.faults = f;
  const auto vft = build_vft_spanner(g, vo);
  const auto dc = build_regular_spanner(g, {.seed = seed});

  const std::size_t trials = 25;
  Table t({"construction", "edges", "stretch (no faults)",
           "fault trials failed", "worst matching C_H"});
  struct Arm {
    std::string name;
    const Graph* h;
    const Graph* detours;
  };
  for (const Arm& arm :
       {Arm{"f-VFT (DK union, " + std::to_string(vft.rounds) + " rounds)",
            &vft.spanner.h, &vft.spanner.h},
        Arm{"dc-spanner (Alg 1)", &dc.spanner.h, &dc.sampled}}) {
    const auto stretch = measure_distance_stretch(g, *arm.h);
    const std::size_t failures =
        count_vft_violations(g, *arm.h, f, 3.0, trials, seed + 7);
    DetourRouter router(*arm.h, *arm.detours);
    std::size_t worst = 0;
    for (std::uint64_t trial = 0; trial < 5; ++trial) {
      const auto matching = random_matching_problem(g, seed + 10 + trial);
      const auto report = measure_matching_congestion(
          g, *arm.h, matching, router, seed + 20 + trial);
      worst = std::max(worst, report.spanner_congestion);
    }
    t.add(arm.name, arm.h->num_edges(), stretch.max_stretch,
          std::to_string(failures) + "/" + std::to_string(trials), worst);
  }
  t.print(std::cout);
  std::cout << "\n(on dense random inputs both survive small fault sets — "
               "detours are plentiful;\nthe DK union also tends to keep "
               "most edges at these sizes. The structural contrast\nshows "
               "on tight spanners:)\n\n";

  // A tight spanner with a single detour per removed edge is maximally
  // fragile: one fault on a fan-gadget ray breaks the 3-stretch.
  const FanGadget fan = fan_gadget(6);
  EdgeSet keep;
  for (Edge e : fan.g.edges()) keep.insert(e);
  for (std::size_t i = 0; i < fan.k; ++i) {
    keep.erase(canonical(fan.line[2 * i], fan.line[2 * i + 1]));
  }
  const auto kept_edges = keep.to_vector();
  const Graph tight = Graph::from_edges(fan.g.num_vertices(), kept_edges);
  const std::size_t tight_failures =
      count_vft_violations(fan.g, tight, 1, 3.0, trials, seed + 30);
  std::cout << "fan-gadget optimal 3-spanner under 1 fault: "
            << tight_failures << "/" << trials
            << " random fault sets break the stretch.\n";
  return 0;
}
