// Weighted distance-spanner baselines: the classical constructions the
// paper builds on, run on a weighted random graph. Compares the greedy
// (2k−1)-spanner and Baswana–Sen across k on size and exact stretch.
//
//   ./weighted_baselines [n] [edge_prob_percent] [seed]

#include <cstdlib>
#include <iostream>

#include "core/weighted_spanners.hpp"
#include "graph/generators.hpp"
#include "graph/weighted_graph.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dcs;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const double p =
      (argc > 2 ? std::strtod(argv[2], nullptr) : 20.0) / 100.0;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  // random weighted graph: ER topology, weights uniform in [1, 10]
  const Graph base = erdos_renyi(n, p, seed);
  Rng rng(seed + 1);
  std::vector<WeightedEdge> edges;
  for (Edge e : base.edges()) {
    edges.push_back(WeightedEdge{e.u, e.v, 1.0 + 9.0 * rng.uniform_double()});
  }
  const auto g = WeightedGraph::from_edges(n, edges);
  std::cout << "weighted G(" << n << ", " << p << "): " << g.num_edges()
            << " edges, total weight " << g.total_weight() << "\n\n";

  Table t({"construction", "k", "stretch bound 2k-1", "edges",
           "total weight", "measured stretch"});
  for (std::size_t k : {2, 3, 4}) {
    const double alpha = static_cast<double>(2 * k - 1);
    const auto greedy = weighted_greedy_spanner(g, alpha);
    t.add("greedy", k, alpha, greedy.num_edges(), greedy.total_weight(),
          weighted_edge_stretch(g, greedy));
    const auto bs = weighted_baswana_sen_spanner(g, k, seed + k);
    t.add("baswana-sen", k, alpha, bs.num_edges(), bs.total_weight(),
          weighted_edge_stretch(g, bs));
  }
  t.print(std::cout);
  std::cout << "\nnote: these are distance-only spanners — the paper's point "
               "is that none of them\ncontrols congestion; the DC "
               "constructions (unweighted) add that guarantee.\n";
  return 0;
}
